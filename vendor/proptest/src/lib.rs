//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the property-testing surface its tests use: the
//! [`proptest!`] macro (with `#![proptest_config]`), the `prop_assert*`
//! macros, [`prop_oneof!`], [`Just`], [`any`], range / tuple / string
//! strategies, `collection::{vec, btree_set}`, and [`sample::Index`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the generated inputs
//!   formatted into the panic message, but is not minimised.
//! - **Deterministic generation.** Each test derives its RNG seed from
//!   the test function's name, so failures reproduce exactly across runs.
//! - String "regex" strategies support the character-class subset the
//!   workspace uses (`[a-z]{1,10}`-style patterns).

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for upstream compatibility; this subset never shrinks,
    /// so the value is unused. Its presence also keeps callers'
    /// `..ProptestConfig::default()` struct updates meaningful.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// The per-test random source.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Derives a deterministic RNG from a test's name.
    pub fn for_test(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a.
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics when empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi == <$t>::MAX {
                    if lo == <$t>::MIN {
                        return rng.next_u64() as $t;
                    }
                    // Sample [lo-1, hi) then shift.
                    return rng.0.gen_range(lo - 1..hi) + 1;
                }
                rng.0.gen_range(lo..hi + 1)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// String strategies from `[class]{m,n}`-style patterns.
mod pattern {
    use super::{Strategy, TestRng};

    enum Atom {
        Class(Vec<char>, usize, usize),
        Literal(char),
    }

    /// Compiled character-class pattern.
    pub struct StringPattern(Vec<Atom>);

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut set = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated [class] in pattern");
            match c {
                ']' => {
                    if let Some(p) = pending {
                        set.push(p);
                    }
                    return set;
                }
                '-' => {
                    // Range if we have a start and a following end char;
                    // literal '-' otherwise (e.g. trailing "-]").
                    match (pending.take(), chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            chars.next();
                            assert!(lo <= hi, "bad class range {lo}-{hi}");
                            set.extend(lo..=hi);
                        }
                        (p, _) => {
                            if let Some(p) = p {
                                set.push(p);
                            }
                            set.push('-');
                        }
                    }
                }
                c => {
                    if let Some(p) = pending.replace(c) {
                        set.push(p);
                    }
                }
            }
        }
    }

    fn parse_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Option<(usize, usize)> {
        if chars.peek() != Some(&'{') {
            return None;
        }
        chars.next();
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                let (lo, hi) = match spec.split_once(',') {
                    Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                    None => {
                        let n = spec.trim().parse().unwrap();
                        (n, n)
                    }
                };
                return Some((lo, hi));
            }
            spec.push(c);
        }
        panic!("unterminated {{m,n}} in pattern");
    }

    impl StringPattern {
        /// Compiles the pattern subset: classes with optional repeats and
        /// literal characters.
        pub fn compile(pat: &str) -> StringPattern {
            let mut atoms = Vec::new();
            let mut chars = pat.chars().peekable();
            while let Some(c) = chars.next() {
                match c {
                    '[' => {
                        let set = parse_class(&mut chars);
                        let (lo, hi) = parse_repeat(&mut chars).unwrap_or((1, 1));
                        atoms.push(Atom::Class(set, lo, hi));
                    }
                    c => atoms.push(Atom::Literal(c)),
                }
            }
            StringPattern(atoms)
        }
    }

    impl Strategy for StringPattern {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.0 {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set, lo, hi) => {
                        let n = if lo == hi {
                            *lo
                        } else {
                            (*lo as u64 + rng.next_u64() % (*hi - *lo + 1) as u64) as usize
                        };
                        for _ in 0..n {
                            let i = (rng.next_u64() % set.len() as u64) as usize;
                            out.push(set[i]);
                        }
                    }
                }
            }
            out
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Compile per call; patterns in tests are tiny.
        pattern::StringPattern::compile(self).generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Anything usable as a collection size: a fixed count or a range.
    pub trait IntoSizeRange {
        /// `(min, max)` inclusive bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }
    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }
    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<T>`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.min == self.max {
                self.min
            } else {
                self.min + (rng.next_u64() % (self.max - self.min + 1) as u64) as usize
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates sets whose size falls in `size` (element collisions are
    /// retried a bounded number of times).
    pub fn btree_set<S: Strategy>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = if self.min == self.max {
                self.min
            } else {
                self.min + (rng.next_u64() % (self.max - self.min + 1) as u64) as usize
            };
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 50 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of not-yet-known size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a concrete length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// `Option<T>` strategies (`proptest::option::of`).
pub mod option {
    use crate::{Strategy, TestRng};

    pub struct OfStrategy<S>(S);

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match upstream's default: Some with probability 0.5.
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// Strategy producing `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy(inner)
    }
}

/// A recoverable test-case failure. Property bodies (and helpers they call)
/// may return `Result<(), TestCaseError>` and use `?`; an `Err` fails the
/// current case just like a panicking assertion.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Compatibility module path (`proptest::test_runner::ProptestConfig`).
pub mod test_runner {
    pub use crate::ProptestConfig;
}

/// Boolean property assertion; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( {
            // Callers parenthesise range arms out of habit; don't lint.
            #[allow(unused_parens)]
            let __arm = $crate::Strategy::boxed($strat);
            __arm
        } ),+ ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body;
                        Ok(())
                    },
                ));
                match result {
                    Ok(Ok(())) => {}
                    Ok(Err(err)) => panic!(
                        "proptest case {}/{} failed in {}: {} (generation is \
                         deterministic: rerun reproduces it)",
                        case + 1, cfg.cases, stringify!($name), err,
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} failed in {} (generation is \
                             deterministic: rerun reproduces it)",
                            case + 1, cfg.cases, stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::TestRng::for_test("string_pattern_shapes");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = crate::Strategy::generate(&"[a-zA-Z0-9._-]{1,64}", &mut rng);
            assert!((1..=64).contains(&t.len()));
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || ".-_".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Self-check: ranges respect bounds.
        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in 1u8..=255, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y >= 1);
            prop_assert!((0.0..1.0).contains(&f));
        }

        /// Self-check: collections respect sizes; oneof maps compose.
        #[test]
        fn collections_and_oneof(
            v in crate::collection::vec((0u32..5, any::<u8>()).prop_map(|(a, b)| (a, b)), 1..10),
            s in crate::collection::btree_set("[a-z]{1,10}", 1..10),
            pick in prop_oneof![Just(1u32), Just(2u32), (5u32..7)],
            idx in any::<crate::sample::Index>(),
        ) {
            prop_assert!((1..10).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 10);
            prop_assert!(pick == 1 || pick == 2 || (5..7).contains(&pick));
            prop_assert!(idx.index(7) < 7);
        }
    }
}
