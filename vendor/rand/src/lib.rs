//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` / `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction the reference implementation recommends. Streams are
//! fully deterministic for a given seed (which the simulator and the
//! workload generators rely on), but they are **not** the byte streams
//! real `rand` 0.8 would produce; nothing in this repository depends on
//! the exact stream, only on determinism and statistical quality.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `gen_range` can produce, together with the ranges that produce
/// them. Mirrors `rand`'s `SampleRange` shape closely enough for the
/// call sites in this workspace.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire-style widening multiply; bias is < 2^-64 per draw.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty => $bits:expr, $denom:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / $denom;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

float_sample_range!(f64 => 53, (1u64 << 53) as f64, f32 => 24, (1u32 << 24) as f32);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (so `&mut StdRng` works transparently).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.9)).count();
        assert!((88_000..92_000).contains(&hits), "hits {hits}");
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: super::Rng>(rng: &mut R) -> u32 {
            rng.gen_range(0u32..100)
        }
        let mut r = StdRng::seed_from_u64(5);
        let _ = draw(&mut r);
        let by_ref: &mut StdRng = &mut r;
        let _ = by_ref.gen_range(0u32..100);
    }
}
