//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a small wall-clock benchmarking harness behind the
//! criterion API surface it uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], `Bencher::{iter, iter_batched,
//! iter_batched_ref}`, [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Semantics: each benchmark runs a short warm-up, then `sample_size`
//! timed samples, and reports min / mean / max per-iteration time plus
//! derived throughput. Runs in seconds, not minutes — statistical rigor
//! is traded for usability in CI. Set `CRITERION_SAMPLE_SIZE` to raise
//! the sample count. When invoked by `cargo test` (criterion-style
//! `--test` flag) each benchmark executes exactly one iteration as a
//! smoke test.

use std::time::{Duration, Instant};

/// How batched setup output is sized; accepted for API compatibility,
/// the stub treats every batch as one routine call per sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Prevents the compiler from optimising a value away.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    smoke: bool,
}

/// The benchmark driver.
pub struct Criterion {
    cfg: Config,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let smoke = std::env::args().any(|a| a == "--test");
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        Criterion {
            cfg: Config { sample_size, smoke },
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Criterion {
        run_bench(id.as_ref(), self.cfg, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            cfg: self.cfg,
            _parent: self,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.as_ref()), self.cfg, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, cfg: Config, mut f: F) {
    let samples = if cfg.smoke { 1 } else { cfg.sample_size };
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up / calibration pass (skipped under --test smoke mode).
    if !cfg.smoke {
        f(&mut b);
        // Aim for samples of at least ~10ms so Instant resolution noise
        // stays below 1%.
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        if per_iter > 0.0 && per_iter < 0.010 {
            b.iters = ((0.010 / per_iter).ceil() as u64).clamp(1, 1_000_000);
        }
    }
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / b.iters as f64);
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{id:<40} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Measures one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by `&mut`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declares a benchmark group in criterion's macro form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u32;
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls >= 2);
    }

    #[test]
    fn batched_setup_is_not_timed_into_routine_output() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched_ref(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
