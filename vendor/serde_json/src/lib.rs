//! Offline drop-in subset of the `serde_json` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice it uses: a [`Value`] tree, the [`json!`]
//! constructor macro, `Display` serialisation, and [`from_str`] parsing.
//! There is no serde data model underneath — code that previously used
//! `#[derive(Serialize)]` constructs [`Value`]s explicitly instead.
//!
//! Object key order is preserved (insertion order), so a record built by
//! the same code always serialises to the same bytes — the property the
//! parallel-vs-serial determinism tests rely on.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer representations are kept exact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
}

impl Value {
    /// Member lookup on objects; `Null` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I64(i)) => Some(*i as f64),
            Value::Number(Number::U64(u)) => Some(*u as f64),
            Value::Number(Number::F64(f)) => Some(*f),
            _ => None,
        }
    }

    /// The value as `u64` if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::I64(i)) if *i >= 0 => Some(*i as u64),
            Value::Number(Number::U64(u)) => Some(*u),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Conversions used by the `json!` macro.
pub trait ToValue {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl ToValue for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl ToValue for &str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
macro_rules! to_value_int {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            fn to_value(&self) -> Value { Value::Number(Number::I64(*self as i64)) }
        }
    )*};
}
to_value_int!(i8, i16, i32, i64, isize, u8, u16, u32);
impl ToValue for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Number(Number::I64(*self as i64))
        } else {
            Value::Number(Number::U64(*self))
        }
    }
}
impl ToValue for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}
impl ToValue for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}
impl ToValue for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}
impl<T: ToValue> ToValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}
impl<T: ToValue> ToValue for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}
impl<T: ToValue> ToValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<V: ToValue> ToValue for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(Number::I64(i)) => write!(f, "{i}"),
            Value::Number(Number::U64(u)) => write!(f, "{u}"),
            Value::Number(Number::F64(x)) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        // Keep a float marker so the value parses back as
                        // a float, the way serde_json prints e.g. `1.0`.
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    f.write_str("null") // JSON has no NaN/Inf.
                }
            }
            Value::String(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut kb = String::with_capacity(k.len() + 2);
                    escape_into(&mut kb, k);
                    write!(f, "{kb}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Serialises any [`ToValue`] to its compact JSON text.
pub fn to_string<T: ToValue + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// A parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    at: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parses JSON text into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's own output, which only escapes
                            // control characters.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar, not just one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Builds a [`Value`] from JSON-like syntax. Supports the object, array,
/// literal, and interpolated-expression forms used in this workspace.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => { $crate::json_array!([ $($elems)* ]) };
    ({ $($members:tt)* }) => { $crate::json_object!({} $($members)*) };
    ($other:expr) => { $crate::ToValue::to_value(&$other) };
}

/// Internal: array builder (TT muncher).
#[macro_export]
#[doc(hidden)]
macro_rules! json_array {
    ([ $($elems:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elems) ),* ])
    };
}

/// Internal: object builder (TT muncher over `"key": value` pairs).
#[macro_export]
#[doc(hidden)]
macro_rules! json_object {
    // Done.
    ({ $($done:tt)* }) => { $crate::Value::Object(vec![ $($done)* ]) };
    // Trailing comma.
    ({ $($done:tt)* } , ) => { $crate::json_object!({ $($done)* }) };
    // Separator comma left behind by the nested-object/array arms.
    ({ $($done:tt)* } , $($rest:tt)+) => { $crate::json_object!({ $($done)* } $($rest)+) };
    // "key": { nested object }, rest...
    ({ $($done:tt)* } $key:literal : { $($inner:tt)* } $($rest:tt)*) => {
        $crate::json_object!({ $($done)* ($key.to_string(), $crate::json!({ $($inner)* })), } $($rest)*)
    };
    // "key": [ nested array ], rest...
    ({ $($done:tt)* } $key:literal : [ $($inner:tt)* ] $($rest:tt)*) => {
        $crate::json_object!({ $($done)* ($key.to_string(), $crate::json!([ $($inner)* ])), } $($rest)*)
    };
    // "key": null, rest...   (null is a keyword to this macro, not an expr)
    ({ $($done:tt)* } $key:literal : null $($rest:tt)*) => {
        $crate::json_object!({ $($done)* ($key.to_string(), $crate::Value::Null), } $($rest)*)
    };
    // "key": expr, rest...   (expression extends to the next top-level comma)
    ({ $($done:tt)* } $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::json_object!({ $($done)* ($key.to_string(), $crate::json!($value)), } $($rest)*)
    };
    // "key": expr   (final member, no trailing comma)
    ({ $($done:tt)* } $key:literal : $value:expr) => {
        $crate::json_object!({ $($done)* ($key.to_string(), $crate::json!($value)), })
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_preserves_order_and_types() {
        let steps: u64 = 12;
        let v = json!({
            "util": 0.75, "name": "fig4", "steps": steps,
            "flag": true, "nothing": null,
        });
        assert_eq!(
            v.to_string(),
            r#"{"util":0.75,"name":"fig4","steps":12,"flag":true,"nothing":null}"#
        );
    }

    #[test]
    fn nested_structures() {
        let v = json!({"a": [1, 2, 3], "b": {"c": "x"}});
        assert_eq!(v.to_string(), r#"{"a":[1,2,3],"b":{"c":"x"}}"#);
    }

    #[test]
    fn expression_values() {
        fn cost(u: f64) -> f64 {
            2.0 / (1.0 - u)
        }
        let v = json!({"wc": cost(0.5), "sum": 1 + 2});
        assert_eq!(v.to_string(), r#"{"wc":4.0,"sum":3}"#);
    }

    #[test]
    fn roundtrip() {
        let src = r#"{"a":[1,2.5,"x\n"],"b":null,"c":true,"d":{"e":-7}}"#;
        let v = from_str(src).unwrap();
        assert_eq!(v.to_string(), src);
        assert_eq!(v.get("d").unwrap().get("e").unwrap().as_f64(), Some(-7.0));
    }

    #[test]
    fn float_integers_keep_marker() {
        assert_eq!(json!(3.0).to_string(), "3.0");
        assert_eq!(json!(3u32).to_string(), "3");
    }

    #[test]
    fn string_escaping() {
        let v = json!({"s": "tab\there \"quoted\""});
        assert_eq!(from_str(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nulll").is_err());
    }
}
