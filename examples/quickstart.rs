//! Quickstart: format a log-structured file system, use it, remount it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use blockdev::{BlockDevice, DiskModel, SimDisk};
use lfs_core::{Lfs, LfsConfig};
use vfs::FileSystem;

fn main() {
    // A simulated 64 MB Wren IV disk — the drive from the paper's testbed.
    let disk = SimDisk::new(64 * 256, DiskModel::wren_iv());

    // Format and mount in one step.
    let mut fs = Lfs::format(disk, LfsConfig::default()).expect("format");

    // The VFS surface looks like any Unix file system...
    fs.mkdir("/projects").expect("mkdir");
    fs.mkdir("/projects/lfs").expect("mkdir");
    let ino = fs
        .write_file("/projects/lfs/notes.txt", b"all writes go to the log\n")
        .expect("write");
    fs.link("/projects/lfs/notes.txt", "/notes-link")
        .expect("link");

    // ...but underneath, every modification was buffered and will reach
    // the disk as one large sequential write.
    fs.sync().expect("sync");
    let stats = fs.device().stats();
    println!(
        "after sync: {} write requests, {} seeks, {} KB written",
        stats.writes,
        stats.seeks,
        stats.bytes_written / 1024
    );

    // Reading back.
    let data = fs.read_to_vec(ino).expect("read");
    println!("notes.txt: {:?}", String::from_utf8_lossy(&data).trim_end());
    for entry in fs.readdir("/projects/lfs").expect("readdir") {
        println!("dir entry: {} (inode {})", entry.name, entry.ino);
    }

    // Unmount and remount: state comes back from the checkpoint.
    let disk = fs.into_device();
    let mut fs = Lfs::mount(disk, LfsConfig::default()).expect("mount");
    let ino = fs.lookup("/notes-link").expect("lookup");
    let again = fs.read_to_vec(ino).expect("read");
    assert_eq!(again, data);
    println!("remounted: /notes-link has the same content — done.");
}
