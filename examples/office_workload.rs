//! The paper's motivating scenario: an office/engineering workload
//! dominated by small files (§2.2), run against BOTH file systems on
//! identical simulated disks, with a side-by-side report of how they
//! use the disk.
//!
//! ```sh
//! cargo run --release --example office_workload
//! ```

use blockdev::{BlockDevice, DiskModel, IoStats, SimDisk};
use ffs_baseline::{Ffs, FfsConfig};
use lfs_core::{Lfs, LfsConfig};
use vfs::FileSystem;
use workload::{rng, sample_file_size};

use rand::Rng;

/// Runs an office-style session: create many small files across
/// directories, edit some of them, delete others.
fn office_session<F: FileSystem>(fs: &mut F) -> u64 {
    let mut r = rng(2026);
    let mut bytes = 0u64;
    for d in 0..20 {
        fs.mkdir(&format!("/proj{d:02}")).unwrap();
    }
    let mut files: Vec<(String, u64)> = Vec::new();
    // Create 600 small files (mean ~16 KB, heavily right-skewed).
    for i in 0..600 {
        let size = sample_file_size(&mut r, 16.0 * 1024.0);
        let path = format!("/proj{:02}/file{i:04}", i % 20);
        let data = vec![(i % 251) as u8; size as usize];
        fs.write_file(&path, &data).unwrap();
        bytes += size;
        files.push((path, size));
    }
    // Edit a third of them (whole-file rewrite — the common office save).
    for i in (0..files.len()).step_by(3) {
        let (path, _) = &files[i];
        let size = sample_file_size(&mut r, 16.0 * 1024.0);
        let ino = fs.lookup(path).unwrap();
        fs.truncate(ino, 0).unwrap();
        fs.write(ino, 0, &vec![0xe0u8; size as usize]).unwrap();
        bytes += size;
    }
    // Delete a quarter.
    for i in (0..files.len()).step_by(4) {
        let _ = fs.unlink(&files[i].0);
    }
    // And a burst of temporary files.
    for i in 0..100 {
        let path = format!("/proj00/tmp{i}");
        let size = r.gen_range(512..4096);
        fs.write_file(&path, &vec![1u8; size]).unwrap();
        bytes += size as u64;
        fs.unlink(&path).unwrap();
    }
    fs.sync().unwrap();
    bytes
}

fn report(name: &str, d: IoStats, new_bytes: u64) {
    let busy_s = d.busy_ns as f64 / 1e9;
    println!("{name}:");
    println!("  new data written:    {:>8} KB", new_bytes / 1024);
    println!(
        "  disk writes:         {:>8} requests, {} KB",
        d.writes,
        d.bytes_written / 1024
    );
    println!("  seeks:               {:>8}", d.seeks);
    println!("  disk busy:           {busy_s:>8.2} s (simulated)");
    println!(
        "  bandwidth used for new data: {:.0}%",
        new_bytes as f64 / (busy_s * 1_300_000.0) * 100.0
    );
}

fn main() {
    println!("Office/engineering small-file workload on a simulated Wren IV disk\n");

    let mut lfs = Lfs::format(
        SimDisk::new(64 * 256, DiskModel::wren_iv()),
        LfsConfig::default(),
    )
    .unwrap();
    let before = lfs.device().stats();
    let bytes = office_session(&mut lfs);
    report("Sprite LFS", lfs.device().stats().since(&before), bytes);

    println!();

    let mut ffs = Ffs::format(
        SimDisk::new(64 * 256, DiskModel::wren_iv()),
        FfsConfig::default(),
    )
    .unwrap();
    let before = ffs.device().stats();
    let bytes = office_session(&mut ffs);
    report("Unix FFS", ffs.device().stats().since(&before), bytes);

    println!(
        "\nThe paper's claim (§1): an order-of-magnitude difference in how much\n\
         of the disk's raw bandwidth goes to new data (LFS 65-75% vs FFS 5-10%)."
    );
}
