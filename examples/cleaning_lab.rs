//! Cleaning lab: watch the segment cleaner work.
//!
//! Fills a small disk with cold data, churns a hot file until the cleaner
//! must run, and prints the segment-state picture and cleaning statistics
//! under both policies — a miniature of Figures 5-7 running on the *real*
//! file system rather than the simulator.
//!
//! ```sh
//! cargo run --release --example cleaning_lab
//! ```

use blockdev::MemDisk;
use lfs_core::usage::SegState;
use lfs_core::{CleaningPolicy, Lfs, LfsConfig};
use vfs::FileSystem;

fn segment_picture(fs: &Lfs<MemDisk>) -> String {
    fs.segment_snapshot()
        .into_iter()
        .map(|(state, u)| match state {
            SegState::Clean => '.',
            SegState::Active => '@',
            SegState::PendingFree => 'p',
            SegState::Dirty => {
                if u < 0.25 {
                    '1'
                } else if u < 0.5 {
                    '2'
                } else if u < 0.75 {
                    '3'
                } else {
                    '4'
                }
            }
        })
        .collect()
}

fn run(policy: CleaningPolicy, age_sort: bool) {
    let mut cfg = LfsConfig::small();
    cfg.policy = policy;
    cfg.age_sort = age_sort;
    let mut fs = Lfs::format(MemDisk::new(1536), cfg).unwrap();

    // Cold data: 25 files written once and never touched again.
    for i in 0..25 {
        fs.write_file(&format!("/cold{i:02}"), &[i as u8; 8192])
            .unwrap();
    }
    // Hot churn: rotate writes over a 256 KB working set.
    let hot = fs.create("/hot").unwrap();
    println!(
        "policy {:?} (age_sort={age_sort}) — segment map per round",
        policy
    );
    println!("  legend: . clean, @ active, p pending-free, 1-4 utilization quartile\n");
    for round in 0..10u32 {
        for step in 0..30u32 {
            let off = ((round * 30 + step) % 8) as u64 * 32 * 1024;
            fs.write(hot, off, &vec![(round + step) as u8; 32 * 1024])
                .unwrap();
        }
        println!("  round {round}: {}", segment_picture(&fs));
    }
    let s = fs.stats();
    println!(
        "\n  cleaned {} segments ({:.0}% empty), avg non-empty u {:.2}, write cost {:.2}",
        s.cleaner.segments_cleaned,
        s.cleaner.empty_fraction() * 100.0,
        s.cleaner.avg_nonempty_utilization(),
        s.write_cost()
    );
    // Cold data must have survived all that cleaning.
    for i in 0..25 {
        let ino = fs.lookup(&format!("/cold{i:02}")).unwrap();
        assert_eq!(fs.read_to_vec(ino).unwrap(), vec![i as u8; 8192]);
    }
    println!("  all cold files verified intact\n");
}

fn main() {
    run(CleaningPolicy::CostBenefit, true);
    run(CleaningPolicy::Greedy, false);
    println!(
        "Cost-benefit with age-sorting segregates the cold files into their own\n\
         segments (stable '4' columns) and cleans mostly hot, mostly-empty\n\
         segments; greedy mixes them and re-copies cold data repeatedly."
    );
}
