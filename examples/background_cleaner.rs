//! Background cleaning: §3.4's first policy question — *when* should the
//! cleaner execute?
//!
//! Sprite LFS cleans on demand when clean segments run low; the paper
//! speculates that "in practice it may be possible to perform much of the
//! cleaning at night or during other idle periods". This example runs a
//! writer thread and a low-priority cleaner thread against one file
//! system: the writer signals idle moments over a channel, and the
//! cleaner opportunistically runs passes then — so that on-demand
//! cleaning (which stalls the writer) almost never triggers.
//!
//! ```sh
//! cargo run --release --example background_cleaner
//! ```

use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;

use blockdev::MemDisk;
use lfs_core::{Lfs, LfsConfig};
use vfs::FileSystem;

/// Messages from the writer to the cleaner thread.
enum Signal {
    /// The writer paused; an opportunistic cleaning window is open.
    Idle,
    /// The workload is finished.
    Done,
}

fn main() {
    let mut cfg = LfsConfig::small();
    // Lower the on-demand trigger so demand cleaning is a last resort;
    // the background thread keeps the pool topped up well above it.
    cfg.clean_low_water = 4;
    cfg.clean_high_water = 8;
    let fs = Arc::new(Mutex::new(
        Lfs::format(MemDisk::new(2048), cfg).expect("format"),
    ));

    let (tx, rx) = sync_channel::<Signal>(1);

    // --- Cleaner thread: runs a pass whenever the writer reports idle ---
    let cleaner_fs = Arc::clone(&fs);
    let cleaner = thread::spawn(move || {
        let mut background_passes = 0u32;
        while let Ok(Signal::Idle) = rx.recv() {
            let mut fs = cleaner_fs.lock().expect("lock");
            if fs.clean_segment_count() < 16 {
                if let Ok(n) = fs.clean_pass() {
                    if n > 0 {
                        background_passes += 1;
                    }
                }
            }
        }
        background_passes
    });

    // --- Writer thread (this one): bursts of churn with idle gaps -------
    {
        let mut hot_round = 0u32;
        for burst in 0..30 {
            {
                let mut fs = fs.lock().expect("lock");
                for _ in 0..10 {
                    let path = format!("/burst{burst}/f{hot_round}");
                    if hot_round.is_multiple_of(10) {
                        let _ = fs.mkdir(&format!("/burst{burst}"));
                    }
                    let _ = fs.write_file(&path, &vec![hot_round as u8; 24 * 1024]);
                    // Delete the previous burst's files: segment-sized
                    // deadness for the cleaner to harvest.
                    if burst > 0 && hot_round.is_multiple_of(2) {
                        let _ = fs.unlink(&format!("/burst{}/f{}", burst - 1, hot_round - 10));
                    }
                    hot_round += 1;
                }
            } // Lock released: the burst is over.
              // Signal an idle window; skip if one is already pending.
            if let Err(TrySendError::Disconnected(_)) = tx.try_send(Signal::Idle) {
                break;
            }
            thread::yield_now();
        }
    }
    let _ = tx.send(Signal::Done);
    drop(tx);
    let background_passes = cleaner.join().expect("cleaner thread");

    let mut fs = fs.lock().expect("lock");
    fs.sync().expect("sync");
    let stats = fs.stats();
    println!(
        "writer finished: {} segments cleaned total, {} background passes,",
        stats.cleaner.segments_cleaned, background_passes
    );
    println!(
        "write cost {:.2}, {} clean segments in reserve",
        stats.write_cost(),
        fs.clean_segment_count()
    );
    let report = fs.check().expect("fsck");
    assert!(report.is_clean(), "fsck: {:#?}", report.errors);
    println!("file system consistent after concurrent cleaning — done.");
}
