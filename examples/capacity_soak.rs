//! Debug/soak harness for cleaner behaviour near capacity.
//!
//! Runs the /user6 production model at 75% utilization and reports how the
//! cleaner copes. See DESIGN.md ("known limitations") for the tiny-segment
//! caveat this exercised during development.

#![allow(clippy::field_reassign_with_default)]

use blockdev::{DiskModel, SimDisk};
use lfs_core::{Lfs, LfsConfig};
use vfs::FileSystem;

fn main() {
    let disk = SimDisk::new(64 * 256, DiskModel::wren_iv()); // 64 MB
    let mut cfg = LfsConfig::default();
    cfg.seg_blocks = 128; // 512 KB segments
    cfg.flush_threshold_bytes = 127 * 4096;
    cfg.max_inodes = 8192;
    cfg.clean_low_water = 6;
    cfg.clean_high_water = 12;
    cfg.segs_per_clean = 8;
    let mut fs = Lfs::format(disk, cfg).unwrap();
    let mut w = workload::ProductionWorkload::new(workload::PartitionModel::user6(), 42);
    w.prime(&mut fs).unwrap();
    eprintln!(
        "primed: util {:.3} files {}",
        fs.statfs().unwrap().utilization(),
        w.live_files()
    );
    let t0 = std::time::Instant::now();
    match w.run_ops(&mut fs, 3000) {
        Ok(()) => eprintln!(
            "ops done in {:.1}s: wc {:.2} cleaned {} ({:.0}% empty)",
            t0.elapsed().as_secs_f64(),
            fs.stats().write_cost(),
            fs.stats().cleaner.segments_cleaned,
            fs.stats().cleaner.empty_fraction() * 100.0
        ),
        Err(e) => eprintln!(
            "run_ops failed: {e}; util {:.3} clean {}",
            fs.statfs().unwrap().utilization(),
            fs.clean_segment_count()
        ),
    }
    fs.sync().unwrap();
    let rep = fs.check().unwrap();
    eprintln!("fsck clean: {}", rep.is_clean());
}
