//! Crash recovery demonstration: checkpoints plus roll-forward (§4).
//!
//! Builds a file system on a crash-recording device, performs a mix of
//! operations, then simulates power failures at interesting moments and
//! shows what each recovery brings back.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use blockdev::CrashDisk;
use lfs_core::{Lfs, LfsConfig};
use vfs::FileSystem;

fn probe(image: blockdev::MemDisk, cfg: LfsConfig, label: &str) {
    let mut fs = Lfs::mount(image, cfg).expect("recovery mount");
    let report = fs.check().expect("fsck");
    let names: Vec<&str> = ["/a.txt", "/b.txt", "/renamed.txt", "/dir/c.txt"]
        .into_iter()
        .filter(|p| fs.lookup(p).is_ok())
        .collect();
    println!(
        "{label}: consistent={} files present: {names:?}",
        report.is_clean()
    );
}

fn main() {
    let cfg = LfsConfig::small();
    let mut fs = Lfs::format(CrashDisk::new(4096), cfg).expect("format");

    // --- Durable state: written and checkpointed --------------------------
    fs.write_file("/a.txt", b"checkpointed data").unwrap();
    fs.sync().unwrap();

    // --- Log tail: flushed to the log but NOT checkpointed ---------------
    fs.write_file("/b.txt", b"in the log tail").unwrap();
    fs.mkdir("/dir").unwrap();
    fs.write_file("/dir/c.txt", b"also in the tail").unwrap();
    fs.flush().unwrap();
    let cut_flushed = fs.device().num_writes();

    // --- In-memory only: never reached the disk ---------------------------
    fs.write_file("/never.txt", b"lost on crash").unwrap();

    // --- A rename straddling the crash ------------------------------------
    fs.rename("/b.txt", "/renamed.txt").unwrap();
    fs.flush().unwrap();
    let cut_renamed = fs.device().num_writes();

    println!(
        "Simulating crashes at {} recorded write points...\n",
        cut_renamed
    );

    // Crash right after the un-checkpointed creates were flushed.
    let crash: &CrashDisk = fs.device();
    probe(
        crash.image_after(cut_flushed).unwrap(),
        cfg,
        "crash after flush        ",
    );

    // Crash after the rename hit the log.
    probe(
        crash.image_after(cut_renamed).unwrap(),
        cfg,
        "crash after rename flush ",
    );

    // Same crash, but with roll-forward disabled (production Sprite did
    // this): everything since the last checkpoint is discarded.
    let mut no_rf = cfg;
    no_rf.roll_forward = false;
    probe(
        crash.image_after(cut_renamed).unwrap(),
        no_rf,
        "same, roll-forward OFF   ",
    );

    println!(
        "\nWith roll-forward, the flushed-but-not-checkpointed files (b.txt,\n\
         dir/c.txt) are recovered and the rename is atomic; without it, only\n\
         the checkpointed a.txt survives. /never.txt is gone either way —\n\
         the paper assumes losing a few seconds of work is acceptable (§2.1)."
    );
}
