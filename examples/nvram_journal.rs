//! The "NVRAM write buffer" idea from §2.1, realised as an op journal.
//!
//! "Write-buffering has the disadvantage of increasing the amount of data
//! lost during a crash ... for applications that require better crash
//! recovery, non-volatile RAM may be used for the write buffer."
//!
//! We model the NVRAM as an operation journal that survives the crash
//! (here: a `Vec<TraceOp>` kept outside the file system; on real hardware
//! it would live in battery-backed RAM). After the crash, normal LFS
//! recovery restores everything up to the last flush, and then the journal
//! tail is replayed — closing the lost-seconds window entirely.
//!
//! ```sh
//! cargo run --example nvram_journal
//! ```

use blockdev::CrashDisk;
use lfs_core::{Lfs, LfsConfig};
use vfs::FileSystem;
use workload::{replay, Tracer};

fn main() {
    let cfg = LfsConfig::small();
    let fs = Lfs::format(CrashDisk::new(2048), cfg).expect("format");
    let mut traced = Tracer::new(fs);

    // Durable prefix.
    traced.mkdir("/mail").expect("mkdir");
    traced
        .write_file("/mail/inbox", b"message 1\n")
        .expect("write");
    traced.sync().expect("sync");
    let journal_mark = traced.ops().len(); // NVRAM cleared at checkpoint.

    // The vulnerable window: buffered writes after the last sync.
    let inbox = traced.lookup("/mail/inbox").expect("lookup");
    traced
        .write(inbox, 10, b"message 2 (buffered)\n")
        .expect("write");
    traced
        .write_file("/mail/outbox", b"queued reply\n")
        .expect("write");

    // ---- CRASH: the file cache contents are gone; the op journal
    // (NVRAM) survives. -------------------------------------------------
    let journal: Vec<workload::TraceOp> = traced.tail(journal_mark).to_vec();
    let (fs, _) = traced.into_parts();
    let image = {
        let crash: &CrashDisk = fs.device();
        crash.image_after(crash.num_writes()).unwrap()
    };
    drop(fs);

    // Plain recovery: the buffered messages are lost.
    let mut plain = Lfs::mount(image, cfg).expect("recovery mount");
    let lost_outbox = plain.lookup("/mail/outbox").is_err();
    let inbox_len = {
        let ino = plain.lookup("/mail/inbox").expect("inbox survives");
        plain.metadata(ino).expect("meta").size
    };
    println!("plain recovery:  inbox {inbox_len} bytes, outbox lost: {lost_outbox}");

    // NVRAM recovery: replay the journal tail on top.
    let replayed = replay(&mut plain, &journal).expect("journal replay");
    let ino = plain.lookup("/mail/inbox").expect("inbox");
    let inbox = plain.read_to_vec(ino).expect("read");
    let outbox = plain.lookup("/mail/outbox").is_ok();
    println!(
        "nvram recovery:  replayed {replayed} journaled ops — inbox {} bytes, outbox present: {outbox}",
        inbox.len()
    );
    assert!(outbox, "journal replay must restore the buffered file");
    assert!(inbox.ends_with(b"message 2 (buffered)\n"));
    plain.sync().expect("sync after replay");
    assert!(plain.check().expect("fsck").is_clean());
    println!("no data lost — the write buffer was effectively non-volatile.");
}
