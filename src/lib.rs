//! Umbrella crate for the LFS reproduction workspace.
//!
//! This crate re-exports the workspace members so that the examples under
//! `examples/` and the integration tests under `tests/` can exercise the
//! whole system through a single dependency. The real functionality lives
//! in the member crates:
//!
//! - [`blockdev`] — block-device substrate (simulated disk, crash injection).
//! - [`vfs`] — the file-system trait both implementations share.
//! - [`lfs_core`] — Sprite LFS, the paper's contribution.
//! - [`ffs_baseline`] — the Unix FFS comparison baseline.
//! - [`cleaner_sim`] — the Section 3.5 cleaning-policy simulator.
//! - [`workload`] — workload generators for the evaluation.

pub use blockdev;
pub use cleaner_sim;
pub use ffs_baseline;
pub use lfs_core;
pub use vfs;
pub use workload;
