#![warn(missing_docs)]

//! Workload generators for the Sprite LFS evaluation.
//!
//! Everything here drives any [`vfs::FileSystem`], so each benchmark runs
//! the identical operation stream against Sprite LFS and the FFS baseline:
//!
//! - [`SmallFileBench`] — the Figure 8 micro-benchmark: create / read /
//!   delete many small files;
//! - [`LargeFileBench`] — the Figure 9 micro-benchmark: a 100 MB file
//!   written sequentially, read sequentially, written randomly, read
//!   randomly, and re-read sequentially;
//! - [`PartitionModel`] / [`ProductionWorkload`] — synthetic stand-ins for
//!   the five production partitions of Table 2 (`/user6`, `/pcs`,
//!   `/src/kernel`, `/swap2`, `/tmp`), with per-partition mean file size,
//!   disk utilization, locality, and whole-file write/delete behaviour;
//! - [`CrashWorkload`] — the fixed-size-file generator used for the
//!   Table 3 recovery-time experiment;
//! - [`clients`] — closed-loop multi-client simulation: thousands of
//!   self-verifying client state machines multiplexed over OS threads,
//!   driving one shared mount (or a server connection per thread);
//! - [`kv`] — Zipfian key-value churn: a fixed key population overwritten
//!   with a continuous popularity gradient, the workload the Cleaner 2.0
//!   temperature streams segregate;
//! - [`wal`] — write-ahead-log appends with group commit and log
//!   rotation (§2.1's database pattern), the hottest stream of all;
//! - [`trace`] — operation recording and replay: reproducible workload
//!   streams and the op-journal ("NVRAM write buffer", §2.1) demo.

pub mod clients;
pub mod kv;
mod largefile;
mod production;
mod smallfile;
pub mod trace;
pub mod wal;

pub use clients::{run_clients, ClientMix, ClientSim, ClientStats, MixReport};
pub use kv::{KvChurn, KvRun, Zipf};
pub use largefile::{LargeFileBench, LargeFilePhase};
pub use production::{PartitionModel, ProductionWorkload};
pub use smallfile::SmallFileBench;
pub use trace::{replay, TraceOp, Tracer};
pub use wal::{WalConfig, WalRun};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vfs::{FileSystem, FsResult};

/// Samples a log-normal-ish file size with the given mean, via
/// Box–Muller. File-size distributions in office/engineering workloads
/// are heavily right-skewed (§2.2); sigma = 1.0 gives a realistic spread
/// while keeping the configured mean exact in expectation.
pub fn sample_file_size<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    let sigma: f64 = 1.0;
    let mu = mean.ln() - sigma * sigma / 2.0;
    // Box–Muller transform.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    ((mu + sigma * z).exp().round() as u64).clamp(1, 16 << 20)
}

/// The Table 3 crash workload: creates `count` files of exactly
/// `file_size` bytes ("a program that created one, ten, or fifty megabytes
/// of fixed-size files before the system was crashed").
pub struct CrashWorkload {
    /// Size of every file.
    pub file_size: u64,
    /// Number of files (`total_bytes / file_size`).
    pub count: u64,
}

impl CrashWorkload {
    /// A workload writing `total_bytes` of `file_size`-byte files.
    pub fn new(file_size: u64, total_bytes: u64) -> CrashWorkload {
        CrashWorkload {
            file_size,
            count: (total_bytes / file_size).max(1),
        }
    }

    /// Runs the creation phase.
    pub fn run<F: FileSystem>(&self, fs: &mut F) -> FsResult<()> {
        let data = vec![0xc5u8; self.file_size as usize];
        for i in 0..self.count {
            fs.write_file(&format!("/crash-{i:06}"), &data)?;
        }
        Ok(())
    }
}

/// Deterministic RNG used across the workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_size_mean_is_close() {
        let mut r = rng(42);
        let n = 20_000;
        let mean = 24_000.0;
        let total: u64 = (0..n).map(|_| sample_file_size(&mut r, mean)).sum();
        let got = total as f64 / n as f64;
        assert!(
            (got - mean).abs() / mean < 0.15,
            "sampled mean {got} vs target {mean}"
        );
    }

    #[test]
    fn file_sizes_are_skewed() {
        let mut r = rng(1);
        let sizes: Vec<u64> = (0..10_000)
            .map(|_| sample_file_size(&mut r, 24_000.0))
            .collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        // Median well below mean — right-skew.
        assert!(median < 20_000, "median {median}");
    }

    #[test]
    fn crash_workload_counts() {
        let w = CrashWorkload::new(1024, 1 << 20);
        assert_eq!(w.count, 1024);
        let w = CrashWorkload::new(100 * 1024, 1 << 20);
        assert_eq!(w.count, 10);
    }

    #[test]
    fn crash_workload_runs_on_model() {
        let mut fs = vfs::model::ModelFs::new();
        let w = CrashWorkload::new(10 * 1024, 100 * 1024);
        w.run(&mut fs).unwrap();
        assert_eq!(fs.statfs().unwrap().num_files, 10);
    }
}
