//! Synthetic stand-ins for the production partitions of Table 2.
//!
//! The paper measured five partitions over four months. We have no Sprite
//! users, so each partition becomes a parameterised generator that
//! reproduces the properties §5.2 identifies as the *causes* of the
//! measured behaviour:
//!
//! 1. realistic, right-skewed file sizes around the reported mean — "there
//!    are a substantial number of longer files, and they tend to be written
//!    and deleted as a whole", producing whole-segment deadness;
//! 2. a target overall disk utilization (11–75% across partitions);
//! 3. strong locality with a very cold tail — "there are large numbers of
//!    files that are almost never written";
//! 4. for `/swap2`: large sparse files updated non-sequentially in place,
//!    with swap-outs arriving as runs of consecutive pages.

use rand::Rng;
use vfs::{FileSystem, FsError, FsResult, Ino};

use crate::sample_file_size;

/// Parameters describing one production partition.
#[derive(Clone, Copy, Debug)]
pub struct PartitionModel {
    /// Partition name (as in Table 2).
    pub name: &'static str,
    /// Mean file size in bytes (Table 2 column "Avg File Size").
    pub mean_file_size: f64,
    /// Target overall disk capacity utilization (column "In Use").
    pub target_utilization: f64,
    /// Fraction of files that are hot.
    pub hot_fraction: f64,
    /// Fraction of write operations that touch the hot group.
    pub hot_access_fraction: f64,
    /// Probability that a write rewrites the whole file (vs. a partial
    /// in-place update). Office files are mostly rewritten whole.
    pub whole_file_rewrite: f64,
    /// Swap-style workload: few large sparse files, page-sized in-place
    /// random writes, no deletes.
    pub swap_style: bool,
    /// Fraction of the primed population that is *frozen* — never written
    /// again. "Cold segments in reality are much colder than the cold
    /// segments in the simulations. A log-structured file system will
    /// isolate the very cold files in segments and never clean them"
    /// (§5.2).
    pub frozen_fraction: f64,
    /// Probability that an operation rewrites a contiguous *run* of
    /// recently-created files (a build regenerating a directory, an editor
    /// saving a project). Batch deaths are what produce the paper's
    /// totally-empty segments: files written together die together.
    pub batch_rewrite: f64,
}

impl PartitionModel {
    /// `/user6` — home directories: program development, text processing.
    pub fn user6() -> PartitionModel {
        PartitionModel {
            name: "/user6",
            mean_file_size: 23.5 * 1024.0,
            target_utilization: 0.75,
            hot_fraction: 0.05,
            hot_access_fraction: 0.90,
            whole_file_rewrite: 0.9,
            swap_style: false,
            frozen_fraction: 0.6,
            batch_rewrite: 0.10,
        }
    }

    /// `/pcs` — research project home directories.
    pub fn pcs() -> PartitionModel {
        PartitionModel {
            name: "/pcs",
            mean_file_size: 10.5 * 1024.0,
            target_utilization: 0.63,
            hot_fraction: 0.05,
            hot_access_fraction: 0.90,
            whole_file_rewrite: 0.9,
            swap_style: false,
            frozen_fraction: 0.6,
            batch_rewrite: 0.10,
        }
    }

    /// `/src/kernel` — sources and binaries of the Sprite kernel.
    pub fn src_kernel() -> PartitionModel {
        PartitionModel {
            name: "/src/kernel",
            mean_file_size: 37.5 * 1024.0,
            target_utilization: 0.72,
            hot_fraction: 0.03,
            hot_access_fraction: 0.95,
            whole_file_rewrite: 0.95,
            swap_style: false,
            frozen_fraction: 0.7,
            batch_rewrite: 0.20,
        }
    }

    /// `/tmp` — temporary files: short-lived, low utilization.
    pub fn tmp() -> PartitionModel {
        PartitionModel {
            name: "/tmp",
            mean_file_size: 28.9 * 1024.0,
            target_utilization: 0.11,
            hot_fraction: 0.5,
            hot_access_fraction: 0.9,
            whole_file_rewrite: 1.0,
            swap_style: false,
            frozen_fraction: 0.0,
            batch_rewrite: 0.15,
        }
    }

    /// `/swap2` — client workstation swap files: "large, sparse, and
    /// accessed nonsequentially".
    pub fn swap2() -> PartitionModel {
        PartitionModel {
            name: "/swap2",
            mean_file_size: 68.1 * 1024.0,
            target_utilization: 0.65,
            hot_fraction: 0.08,
            hot_access_fraction: 0.9,
            whole_file_rewrite: 0.0,
            swap_style: true,
            frozen_fraction: 0.0,
            batch_rewrite: 0.0,
        }
    }

    /// All five partitions in Table 2 row order.
    pub fn all() -> Vec<PartitionModel> {
        vec![
            PartitionModel::user6(),
            PartitionModel::pcs(),
            PartitionModel::src_kernel(),
            PartitionModel::tmp(),
            PartitionModel::swap2(),
        ]
    }
}

struct LiveFile {
    ino: Ino,
    path: String,
    size: u64,
}

/// Drives a [`PartitionModel`] against a file system.
pub struct ProductionWorkload {
    model: PartitionModel,
    rng: rand::rngs::StdRng,
    files: Vec<LiveFile>,
    next_id: u64,
    /// Bytes of new data written so far.
    pub bytes_written: u64,
}

impl ProductionWorkload {
    /// Creates the workload driver.
    pub fn new(model: PartitionModel, seed: u64) -> ProductionWorkload {
        ProductionWorkload {
            model,
            rng: crate::rng(seed),
            files: Vec::new(),
            next_id: 0,
            bytes_written: 0,
        }
    }

    fn fresh_path(&mut self) -> String {
        let id = self.next_id;
        self.next_id += 1;
        format!("/p{:02}/f{id:07}", id % 32)
    }

    fn sample_size(&mut self) -> u64 {
        if self.model.swap_style {
            // Swap files: a few large backing files (one per diskless
            // workstation), megabytes each. The configured mean is the
            // paper's *reported average*, which mixes in small control
            // files; the mechanics that matter — multi-segment runs dying
            // together on re-swap — need the large ones.
            let m = (self.model.mean_file_size * 40.0).max(2.0 * 1024.0 * 1024.0);
            self.rng.gen_range((m * 0.5) as u64..(m * 1.5) as u64)
        } else {
            sample_file_size(&mut self.rng, self.model.mean_file_size)
        }
    }

    fn create_one<F: FileSystem>(&mut self, fs: &mut F) -> FsResult<()> {
        let path = self.fresh_path();
        let mut size = self.sample_size();
        // Never try to create a file larger than half the remaining free
        // space — the fat tail of the distribution would otherwise wedge
        // small devices.
        if let Ok(s) = fs.statfs() {
            let free = s.total_bytes.saturating_sub(s.live_bytes);
            // Bound files to a small fraction of the free space and of
            // the device: the paper's partitions never see single files
            // that are a double-digit percentage of the disk, and a
            // log-structured file system near capacity legitimately
            // cannot absorb one.
            let cap = (free / 4).min(s.total_bytes / 64).max(4096);
            size = size.clamp(1, cap);
        }
        let ino = match fs.create(&path) {
            Ok(ino) => ino,
            Err(FsError::NoSpace) => return Ok(()),
            Err(e) => return Err(e),
        };
        let result = (|| -> FsResult<()> {
            if self.model.swap_style {
                // Swap files are large and sparse: a written body with a
                // trailing hole. Bounding the hole keeps later in-place
                // page rewrites from growing live data past the device.
                let pages = (size / 4096).max(1);
                let body = (pages * 3 / 4).max(1);
                let data = vec![0x5au8; (body * 4096) as usize];
                fs.write(ino, 0, &data)?;
                self.bytes_written += body * 4096;
                fs.truncate(ino, size)?;
            } else {
                let data = vec![0x6bu8; size as usize];
                fs.write(ino, 0, &data)?;
                self.bytes_written += size;
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.files.push(LiveFile { ino, path, size });
                Ok(())
            }
            Err(FsError::NoSpace) => {
                // The fat tail of the size distribution can exceed the
                // remaining space; give the space back and move on — real
                // applications see ENOSPC and cope too.
                let _ = fs.truncate(ino, 0);
                let _ = fs.unlink(&path);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Fills the file system until the target utilization is reached
    /// (sparse swap files prime slightly below target: later hole-filling
    /// writes grow them toward it).
    pub fn prime<F: FileSystem>(&mut self, fs: &mut F) -> FsResult<()> {
        for d in 0..32 {
            fs.mkdir(&format!("/p{d:02}"))?;
        }
        let mut stalled = 0;
        loop {
            let s = fs.statfs()?;
            let target = if self.model.swap_style {
                self.model.target_utilization * 0.85
            } else {
                self.model.target_utilization
            };
            if s.utilization() >= target {
                break;
            }
            let before = s.live_bytes;
            self.create_one(fs)?;
            if fs.statfs()?.live_bytes <= before {
                stalled += 1;
                if stalled > 50 {
                    break; // Target unreachable on this device; run anyway.
                }
            } else {
                stalled = 0;
            }
        }
        fs.sync()?;
        Ok(())
    }

    fn pick_file(&mut self) -> usize {
        let n = self.files.len();
        // The frozen prefix of the primed population is never touched —
        // truly cold data the cleaner should isolate and skip.
        let frozen = ((n as f64 * self.model.frozen_fraction) as usize).min(n.saturating_sub(1));
        let hot = ((n as f64 * self.model.hot_fraction) as usize)
            .max(1)
            .min(n - frozen);
        if self.rng.gen_bool(self.model.hot_access_fraction) {
            // The hot group is the most recently created tail.
            n - 1 - self.rng.gen_range(0..hot)
        } else {
            self.rng.gen_range(frozen..n)
        }
    }

    /// Executes `n` steady-state operations (writes, whole-file rewrites
    /// via delete + recreate, swap-page updates), keeping utilization
    /// near the target.
    pub fn run_ops<F: FileSystem>(&mut self, fs: &mut F, n: u64) -> FsResult<()> {
        for _ in 0..n {
            if self.files.is_empty() {
                self.create_one(fs)?;
                continue;
            }
            if self.model.swap_style {
                // Swap traffic arrives as runs of consecutive pages (a
                // process being swapped out rewrites the same regions of
                // its backing file over and over). Quantising the run
                // starts makes repeated swap-outs kill their previous
                // incarnation wholesale — whole-segment deaths, just like
                // the paper's 66%-empty /swap2 cleaning.
                let idx = self.pick_file();
                let (ino, pages) = {
                    let f = &self.files[idx];
                    (f.ino, (f.size / 4096).max(1))
                };
                let run = 256u64.min(pages); // 1 MB swap-out granularity.
                let slots = (pages / run).max(1);
                let start = self.rng.gen_range(0..slots) * run;
                let data = vec![0x77u8; (run * 4096) as usize];
                match fs.write(ino, start * 4096, &data) {
                    Ok(()) => self.bytes_written += run * 4096,
                    Err(FsError::NoSpace) => {}
                    Err(e) => return Err(e),
                }
                continue;
            }
            if self.model.batch_rewrite > 0.0 && self.rng.gen_bool(self.model.batch_rewrite) {
                // Rewrite a contiguous run of recent files: they were
                // created together (and live in the same segments), so
                // their joint death leaves whole segments empty.
                let n = self.files.len();
                let frozen =
                    ((n as f64 * self.model.frozen_fraction) as usize).min(n.saturating_sub(1));
                let span = self.rng.gen_range(16usize..96).min(n - frozen);
                let hi = n;
                let lo = hi - span;
                // Delete the run back-to-front (indices stay valid), then
                // recreate the same count.
                for i in (lo..hi).rev() {
                    let f = self.files.swap_remove(i);
                    match fs.unlink(&f.path) {
                        Ok(()) | Err(FsError::NotFound) => {}
                        Err(e) => return Err(e),
                    }
                }
                for _ in 0..span {
                    self.create_one(fs)?;
                }
                continue;
            }
            let whole = self.rng.gen_bool(self.model.whole_file_rewrite);
            let idx = self.pick_file();
            if whole {
                // Files "tend to be written and deleted as a whole":
                // delete the old file and create a fresh one.
                let f = self.files.swap_remove(idx);
                match fs.unlink(&f.path) {
                    Ok(()) => {}
                    Err(FsError::NotFound) => {}
                    Err(e) => return Err(e),
                }
                self.create_one(fs)?;
            } else {
                let f = &self.files[idx];
                let off = self.rng.gen_range(0..f.size.max(1));
                let len = 4096.min(f.size as usize).max(1);
                match fs.write(f.ino, off, &vec![0x33u8; len]) {
                    Ok(()) => self.bytes_written += len as u64,
                    Err(FsError::NoSpace) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Number of live files.
    pub fn live_files(&self) -> usize {
        self.files.len()
    }

    /// The model being driven.
    pub fn model(&self) -> &PartitionModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    #[test]
    fn all_partitions_present_in_order() {
        let names: Vec<&str> = PartitionModel::all().iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec!["/user6", "/pcs", "/src/kernel", "/tmp", "/swap2"]
        );
    }

    #[test]
    fn workload_runs_on_model_fs() {
        // ModelFs has unbounded capacity, so prime() would never finish;
        // run the op mix directly.
        let mut fs = ModelFs::new();
        for d in 0..32 {
            fs.mkdir(&format!("/p{d:02}")).unwrap();
        }
        let mut w = ProductionWorkload::new(PartitionModel::user6(), 11);
        for _ in 0..20 {
            w.create_one(&mut fs).unwrap();
        }
        w.run_ops(&mut fs, 200).unwrap();
        assert!(w.bytes_written > 0);
        assert!(w.live_files() > 0);
    }

    #[test]
    fn swap_workload_is_sparse_and_stable() {
        let mut fs = ModelFs::new();
        for d in 0..32 {
            fs.mkdir(&format!("/p{d:02}")).unwrap();
        }
        let mut w = ProductionWorkload::new(PartitionModel::swap2(), 5);
        for _ in 0..5 {
            w.create_one(&mut fs).unwrap();
        }
        let files_before = w.live_files();
        w.run_ops(&mut fs, 100).unwrap();
        // Swap files are updated in place, never created/deleted.
        assert_eq!(w.live_files(), files_before);
    }
}
