//! Zipfian key-value churn: the workload shape the Cleaner 2.0 write
//! streams are designed for.
//!
//! A fixed population of keys lives under one directory (`/kv`), each
//! key a small file. Every step overwrites one key's value, with keys
//! chosen by a Zipfian rank distribution — a continuous popularity
//! gradient rather than `HotCold`'s two flat groups, matching what
//! key-value stores and caches see in practice. Values are derived from
//! a deterministic seed (see [`crate::clients::content`]), so any read
//! can be verified byte-for-byte without storing a copy.
//!
//! The generator is fully deterministic given `(config, seed)`: the same
//! operation stream hits Sprite LFS, the FFS baseline, and the model
//! file system identically.

use rand::rngs::StdRng;
use rand::Rng;
use vfs::{FileSystem, FsError, FsResult, Ino};

use crate::clients::content;

/// Quick Zipfian sampler (Gray et al., "Quickly Generating
/// Billion-Record Synthetic Databases"): one uniform draw per sample.
/// Rank 0 is the most popular key. Skew `theta` in `(0, 1)`; the
/// key-value-store-like default is 0.9. Mirrors the sampler in
/// `cleaner_sim`, so simulator results and file-system measurements
/// describe the same distribution.
#[derive(Clone, Copy, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Sampler over ranks `0..n` with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "empty key space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zetan: f64 = (1..=n).map(|i| (i as f64).powf(-theta)).sum();
        let zeta2: f64 = (1..=2u64.min(n)).map(|i| (i as f64).powf(-theta)).sum();
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta,
        }
    }

    /// Maps a uniform draw `u` in `[0, 1)` to a rank.
    pub fn sample(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// Configuration of the key-value churn generator.
#[derive(Clone, Copy, Debug)]
pub struct KvChurn {
    /// Number of keys in the fixed population.
    pub keys: u32,
    /// Zipf skew exponent in `(0, 1)`.
    pub theta: f64,
    /// Mean value size in bytes; sizes vary in `[1, 2*mean]`.
    pub mean_value: usize,
    /// `sync()` after every this many overwrites (0 = never).
    pub sync_every: u32,
}

impl Default for KvChurn {
    fn default() -> KvChurn {
        KvChurn {
            keys: 256,
            theta: 0.9,
            mean_value: 2048,
            sync_every: 64,
        }
    }
}

/// Tracked state of one key.
#[derive(Clone, Copy, Debug)]
struct Value {
    ino: Ino,
    seed: u64,
    len: usize,
}

/// The running generator: owns the key population and the expected
/// value of every key.
pub struct KvRun {
    cfg: KvChurn,
    rng: StdRng,
    zipf: Zipf,
    values: Vec<Value>,
    next_seed: u64,
    /// Overwrites issued.
    pub writes: u64,
    /// Bytes written.
    pub write_bytes: u64,
}

impl KvRun {
    /// Creates `/kv` and the key population (`/kv/k<rank>`), each with
    /// an initial verified value. Deterministic given `(cfg, seed)`.
    pub fn setup<F: FileSystem>(fs: &mut F, cfg: KvChurn, seed: u64) -> FsResult<KvRun> {
        match fs.mkdir("/kv") {
            Ok(_) | Err(FsError::AlreadyExists) => {}
            Err(e) => return Err(e),
        }
        let mut run = KvRun {
            cfg,
            rng: crate::rng(seed ^ 0x6b76_6368_7572_6e21),
            zipf: Zipf::new(cfg.keys.max(1) as u64, cfg.theta),
            values: Vec::with_capacity(cfg.keys as usize),
            next_seed: 0,
            writes: 0,
            write_bytes: 0,
        };
        for rank in 0..cfg.keys.max(1) {
            let ino = fs.create(&format!("/kv/k{rank}"))?;
            let (vseed, len) = run.fresh_value();
            fs.write(ino, 0, &content(vseed, len))?;
            run.values.push(Value {
                ino,
                seed: vseed,
                len,
            });
        }
        Ok(run)
    }

    fn fresh_value(&mut self) -> (u64, usize) {
        self.next_seed += 1;
        let len = self.rng.gen_range(0..(self.cfg.mean_value * 2).max(1)) + 1;
        (self.next_seed, len)
    }

    /// Overwrites one Zipf-chosen key with a fresh value.
    pub fn step<F: FileSystem>(&mut self, fs: &mut F) -> FsResult<()> {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let rank = self.zipf.sample(u) as usize;
        let (vseed, len) = self.fresh_value();
        let v = self.values[rank];
        if len < v.len {
            fs.truncate(v.ino, len as u64)?;
        }
        fs.write(v.ino, 0, &content(vseed, len))?;
        self.values[rank].seed = vseed;
        self.values[rank].len = len;
        self.writes += 1;
        self.write_bytes += len as u64;
        if self.cfg.sync_every > 0 && self.writes.is_multiple_of(self.cfg.sync_every as u64) {
            fs.sync()?;
        }
        Ok(())
    }

    /// Re-reads every key and checks it byte-for-byte against the
    /// expected value. Returns the number of mismatches (0 on success),
    /// with the first mismatch described in `Err`-free form for easy
    /// assertion messages.
    pub fn verify_all<F: FileSystem>(&mut self, fs: &mut F) -> FsResult<Vec<String>> {
        let mut failures = Vec::new();
        for (rank, v) in self.values.iter().enumerate() {
            let got = fs.read_to_vec(v.ino)?;
            let expect = content(v.seed, v.len);
            if got != expect {
                failures.push(format!(
                    "key k{rank}: expected {} bytes (seed {}), got {}",
                    v.len,
                    v.seed,
                    got.len()
                ));
            }
        }
        Ok(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    #[test]
    fn zipf_rank0_dominates() {
        let z = Zipf::new(100, 0.9);
        let mut rng = crate::rng(3);
        let mut counts = [0u32; 100];
        for _ in 0..20_000 {
            let u: f64 = rng.gen_range(0.0..1.0);
            counts[z.sample(u) as usize] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > 0);
        // Top 10% of keys take well over half the accesses at theta 0.9.
        let top: u32 = counts[..10].iter().sum();
        assert!(top > 10_000, "top-decile share too small: {top}");
    }

    #[test]
    fn churn_is_deterministic_and_self_verifying() {
        let run_once = || {
            let mut fs = ModelFs::new();
            let mut kv = KvRun::setup(
                &mut fs,
                KvChurn {
                    keys: 32,
                    mean_value: 512,
                    ..KvChurn::default()
                },
                42,
            )
            .unwrap();
            for _ in 0..400 {
                kv.step(&mut fs).unwrap();
            }
            let failures = kv.verify_all(&mut fs).unwrap();
            assert!(failures.is_empty(), "{failures:?}");
            (kv.writes, kv.write_bytes)
        };
        assert_eq!(run_once(), run_once());
    }
}
