//! The Figure 8 small-file micro-benchmark.
//!
//! "A benchmark that created 10000 one-kilobyte files, then read them back
//! in the same order as created, then deleted them." The three phases are
//! exposed separately so the harness can snapshot simulated-disk
//! statistics between them.

use vfs::{FileSystem, FsResult};

/// The create / read / delete small-file benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SmallFileBench {
    /// Number of files (the paper uses 10000).
    pub nfiles: u32,
    /// Bytes per file (the paper uses 1 KB).
    pub file_size: usize,
    /// Files per directory; the benchmark spreads files over
    /// `nfiles / files_per_dir` directories as the Sprite benchmark did.
    pub files_per_dir: u32,
}

impl SmallFileBench {
    /// The paper's configuration: 10000 × 1 KB.
    pub fn paper() -> SmallFileBench {
        SmallFileBench {
            nfiles: 10_000,
            file_size: 1024,
            files_per_dir: 100,
        }
    }

    /// A scaled-down variant for tests.
    pub fn tiny() -> SmallFileBench {
        SmallFileBench {
            nfiles: 100,
            file_size: 1024,
            files_per_dir: 10,
        }
    }

    fn dir_of(&self, i: u32) -> u32 {
        i / self.files_per_dir
    }

    fn path_of(&self, i: u32) -> String {
        format!("/d{:04}/f{:06}", self.dir_of(i), i)
    }

    /// Phase 1: create all files (directories included).
    pub fn create_phase<F: FileSystem>(&self, fs: &mut F) -> FsResult<()> {
        let data = vec![0xabu8; self.file_size];
        let ndirs = self.nfiles.div_ceil(self.files_per_dir);
        for d in 0..ndirs {
            fs.mkdir(&format!("/d{d:04}"))?;
        }
        for i in 0..self.nfiles {
            fs.write_file(&self.path_of(i), &data)?;
        }
        fs.sync()?;
        Ok(())
    }

    /// Phase 2: read every file back, in creation order.
    pub fn read_phase<F: FileSystem>(&self, fs: &mut F) -> FsResult<()> {
        let mut buf = vec![0u8; self.file_size];
        for i in 0..self.nfiles {
            let ino = fs.lookup(&self.path_of(i))?;
            let n = fs.read(ino, 0, &mut buf)?;
            debug_assert_eq!(n, self.file_size);
        }
        Ok(())
    }

    /// Phase 3: delete every file.
    pub fn delete_phase<F: FileSystem>(&self, fs: &mut F) -> FsResult<()> {
        for i in 0..self.nfiles {
            fs.unlink(&self.path_of(i))?;
        }
        fs.sync()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    #[test]
    fn all_phases_run_on_model() {
        let b = SmallFileBench::tiny();
        let mut fs = ModelFs::new();
        b.create_phase(&mut fs).unwrap();
        assert_eq!(fs.statfs().unwrap().num_files as u32, b.nfiles + 10);
        b.read_phase(&mut fs).unwrap();
        b.delete_phase(&mut fs).unwrap();
        // Only the directories remain.
        assert_eq!(fs.statfs().unwrap().num_files as u32, 10);
    }

    #[test]
    fn paper_configuration() {
        let b = SmallFileBench::paper();
        assert_eq!(b.nfiles, 10_000);
        assert_eq!(b.file_size, 1024);
    }
}
