//! Operation traces: record a workload once, replay it anywhere.
//!
//! The paper's workload characterisation rests on trace-driven analysis
//! (§2.2 cites the BSD trace study). This module provides the plumbing:
//! a [`TraceOp`] is one file-system operation in a serialisable form; a
//! [`Tracer`] wraps any [`FileSystem`] and records everything driven
//! through it; [`replay`] applies a trace to any other file system.
//!
//! Two uses in this repository:
//!
//! - reproducibility: a benchmark's exact operation stream can be saved
//!   (JSONL) and re-applied to both file systems or to a future version;
//! - the `nvram_journal` example: §2.1 notes that "for applications that
//!   require better crash recovery, non-volatile RAM may be used for the
//!   write buffer". An operation journal in stable memory is the
//!   software shape of that idea — after a crash, recovery replays the
//!   journal tail over the recovered file system, eliminating the
//!   lost-seconds window.

use serde_json::Value;
use vfs::{FileSystem, FsResult, Ino};

/// One recorded operation.
///
/// Paths are recorded instead of inode numbers so a trace is meaningful
/// on a file system with different inode allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// `create(path)`.
    Create {
        /// Path of the new file.
        path: String,
    },
    /// `mkdir(path)`.
    Mkdir {
        /// Path of the new directory.
        path: String,
    },
    /// `write(lookup(path), offset, data)`. Data is stored as a fill
    /// byte + length when it is a constant run, else raw bytes.
    Write {
        /// File path.
        path: String,
        /// Byte offset.
        offset: u64,
        /// Literal data (empty when `fill` is used; omitted from the
        /// JSONL form when empty).
        data: Vec<u8>,
        /// Constant-fill representation: `(byte, length)`; omitted from
        /// the JSONL form when absent.
        fill: Option<(u8, u64)>,
    },
    /// `truncate(lookup(path), size)`.
    Truncate {
        /// File path.
        path: String,
        /// New size.
        size: u64,
    },
    /// `unlink(path)`.
    Unlink {
        /// Path to remove.
        path: String,
    },
    /// `rmdir(path)`.
    Rmdir {
        /// Directory to remove.
        path: String,
    },
    /// `rename(from, to)`.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// `link(existing, new)`.
    Link {
        /// Existing file.
        existing: String,
        /// New hard link.
        new: String,
    },
    /// `sync()`.
    Sync,
}

impl TraceOp {
    /// Applies this operation to `fs`. Errors from the underlying file
    /// system propagate (a trace replayed on a too-small disk can
    /// legitimately fail with `NoSpace`).
    pub fn apply<F: FileSystem>(&self, fs: &mut F) -> FsResult<()> {
        match self {
            TraceOp::Create { path } => fs.create(path).map(|_| ()),
            TraceOp::Mkdir { path } => fs.mkdir(path).map(|_| ()),
            TraceOp::Write {
                path,
                offset,
                data,
                fill,
            } => {
                let ino = fs.lookup(path)?;
                match fill {
                    Some((byte, len)) => fs.write(ino, *offset, &vec![*byte; *len as usize]),
                    None => fs.write(ino, *offset, data),
                }
            }
            TraceOp::Truncate { path, size } => {
                let ino = fs.lookup(path)?;
                fs.truncate(ino, *size)
            }
            TraceOp::Unlink { path } => fs.unlink(path),
            TraceOp::Rmdir { path } => fs.rmdir(path),
            TraceOp::Rename { from, to } => fs.rename(from, to),
            TraceOp::Link { existing, new } => fs.link(existing, new),
            TraceOp::Sync => fs.sync(),
        }
    }

    /// Serialises to one JSON line (externally-tagged, the same shape
    /// serde would produce: `{"Create":{"path":"/a"}}`, `"Sync"`).
    pub fn to_jsonl(&self) -> String {
        fn tag(name: &str, fields: Vec<(String, Value)>) -> Value {
            Value::Object(vec![(name.to_string(), Value::Object(fields))])
        }
        fn s(v: &str) -> Value {
            Value::String(v.to_string())
        }
        let path_field = |p: &String| ("path".to_string(), s(p));
        let value = match self {
            TraceOp::Create { path } => tag("Create", vec![path_field(path)]),
            TraceOp::Mkdir { path } => tag("Mkdir", vec![path_field(path)]),
            TraceOp::Write {
                path,
                offset,
                data,
                fill,
            } => {
                let mut fields = vec![path_field(path), ("offset".to_string(), json_u64(*offset))];
                if !data.is_empty() {
                    fields.push((
                        "data".to_string(),
                        Value::Array(data.iter().map(|&b| json_u64(b as u64)).collect()),
                    ));
                }
                if let Some((byte, len)) = fill {
                    fields.push((
                        "fill".to_string(),
                        Value::Array(vec![json_u64(*byte as u64), json_u64(*len)]),
                    ));
                }
                tag("Write", fields)
            }
            TraceOp::Truncate { path, size } => tag(
                "Truncate",
                vec![path_field(path), ("size".to_string(), json_u64(*size))],
            ),
            TraceOp::Unlink { path } => tag("Unlink", vec![path_field(path)]),
            TraceOp::Rmdir { path } => tag("Rmdir", vec![path_field(path)]),
            TraceOp::Rename { from, to } => tag(
                "Rename",
                vec![("from".to_string(), s(from)), ("to".to_string(), s(to))],
            ),
            TraceOp::Link { existing, new } => tag(
                "Link",
                vec![
                    ("existing".to_string(), s(existing)),
                    ("new".to_string(), s(new)),
                ],
            ),
            TraceOp::Sync => s("Sync"),
        };
        value.to_string()
    }

    /// Parses one JSON line.
    pub fn from_jsonl(line: &str) -> Option<TraceOp> {
        let value = serde_json::from_str(line).ok()?;
        if value.as_str() == Some("Sync") {
            return Some(TraceOp::Sync);
        }
        let Value::Object(members) = &value else {
            return None;
        };
        let (variant, body) = members.first()?;
        let field = |name: &str| body.get(name);
        let path_of = |name: &str| field(name).and_then(Value::as_str).map(String::from);
        match variant.as_str() {
            "Create" => Some(TraceOp::Create {
                path: path_of("path")?,
            }),
            "Mkdir" => Some(TraceOp::Mkdir {
                path: path_of("path")?,
            }),
            "Write" => {
                let data = match field("data") {
                    Some(v) => v
                        .as_array()?
                        .iter()
                        .map(|b| b.as_u64().map(|u| u as u8))
                        .collect::<Option<Vec<u8>>>()?,
                    None => Vec::new(),
                };
                let fill = match field("fill") {
                    Some(v) => {
                        let pair = v.as_array()?;
                        Some((pair.first()?.as_u64()? as u8, pair.get(1)?.as_u64()?))
                    }
                    None => None,
                };
                Some(TraceOp::Write {
                    path: path_of("path")?,
                    offset: field("offset")?.as_u64()?,
                    data,
                    fill,
                })
            }
            "Truncate" => Some(TraceOp::Truncate {
                path: path_of("path")?,
                size: field("size")?.as_u64()?,
            }),
            "Unlink" => Some(TraceOp::Unlink {
                path: path_of("path")?,
            }),
            "Rmdir" => Some(TraceOp::Rmdir {
                path: path_of("path")?,
            }),
            "Rename" => Some(TraceOp::Rename {
                from: path_of("from")?,
                to: path_of("to")?,
            }),
            "Link" => Some(TraceOp::Link {
                existing: path_of("existing")?,
                new: path_of("new")?,
            }),
            _ => None,
        }
    }
}

fn json_u64(v: u64) -> Value {
    use serde_json::Number;
    if v <= i64::MAX as u64 {
        Value::Number(Number::I64(v as i64))
    } else {
        Value::Number(Number::U64(v))
    }
}

/// Compresses constant-fill data into the compact representation.
fn compress(data: &[u8]) -> (Vec<u8>, Option<(u8, u64)>) {
    match data.first() {
        Some(&b) if data.iter().all(|&x| x == b) => (Vec::new(), Some((b, data.len() as u64))),
        _ => (data.to_vec(), None),
    }
}

/// A recording wrapper: drives an inner file system and remembers every
/// mutation as a [`TraceOp`]. Reads are not recorded (they don't change
/// state); inode-based calls are translated back to paths via an internal
/// reverse map maintained from the recorded operations.
pub struct Tracer<F: FileSystem> {
    inner: F,
    ops: Vec<TraceOp>,
    paths: std::collections::HashMap<Ino, String>,
}

impl<F: FileSystem> Tracer<F> {
    /// Wraps `fs` with recording.
    pub fn new(fs: F) -> Tracer<F> {
        Tracer {
            inner: fs,
            ops: Vec::new(),
            paths: std::collections::HashMap::new(),
        }
    }

    /// The recorded operations so far.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Consumes the tracer, returning the inner file system and the trace.
    pub fn into_parts(self) -> (F, Vec<TraceOp>) {
        (self.inner, self.ops)
    }

    /// Operations recorded since index `from` (the journal tail).
    pub fn tail(&self, from: usize) -> &[TraceOp] {
        &self.ops[from..]
    }

    fn path_of(&self, ino: Ino) -> FsResult<String> {
        self.paths
            .get(&ino)
            .cloned()
            .ok_or(vfs::FsError::InvalidArgument(
                "inode was not opened through this tracer",
            ))
    }
}

impl<F: FileSystem> FileSystem for Tracer<F> {
    fn create(&mut self, path: &str) -> FsResult<Ino> {
        let ino = self.inner.create(path)?;
        self.paths.insert(ino, path.to_string());
        self.ops.push(TraceOp::Create { path: path.into() });
        Ok(ino)
    }

    fn mkdir(&mut self, path: &str) -> FsResult<Ino> {
        let ino = self.inner.mkdir(path)?;
        self.paths.insert(ino, path.to_string());
        self.ops.push(TraceOp::Mkdir { path: path.into() });
        Ok(ino)
    }

    fn lookup(&mut self, path: &str) -> FsResult<Ino> {
        let ino = self.inner.lookup(path)?;
        self.paths.insert(ino, path.to_string());
        Ok(ino)
    }

    fn write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<()> {
        self.inner.write(ino, offset, data)?;
        let path = self.path_of(ino)?;
        let (raw, fill) = compress(data);
        self.ops.push(TraceOp::Write {
            path,
            offset,
            data: raw,
            fill,
        });
        Ok(())
    }

    fn read(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.inner.read(ino, offset, buf)
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        self.inner.truncate(ino, size)?;
        let path = self.path_of(ino)?;
        self.ops.push(TraceOp::Truncate { path, size });
        Ok(())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.inner.unlink(path)?;
        self.ops.push(TraceOp::Unlink { path: path.into() });
        Ok(())
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.inner.rmdir(path)?;
        self.ops.push(TraceOp::Rmdir { path: path.into() });
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.inner.rename(from, to)?;
        // Keep the reverse map coherent for later inode-based writes.
        let moved: Vec<Ino> = self
            .paths
            .iter()
            .filter(|(_, p)| p.as_str() == from)
            .map(|(&i, _)| i)
            .collect();
        for ino in moved {
            self.paths.insert(ino, to.to_string());
        }
        self.ops.push(TraceOp::Rename {
            from: from.into(),
            to: to.into(),
        });
        Ok(())
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        self.inner.link(existing, new)?;
        self.ops.push(TraceOp::Link {
            existing: existing.into(),
            new: new.into(),
        });
        Ok(())
    }

    fn metadata(&mut self, ino: Ino) -> FsResult<vfs::Metadata> {
        self.inner.metadata(ino)
    }

    fn readdir(&mut self, path: &str) -> FsResult<Vec<vfs::DirEntry>> {
        self.inner.readdir(path)
    }

    fn sync(&mut self) -> FsResult<()> {
        self.inner.sync()?;
        self.ops.push(TraceOp::Sync);
        Ok(())
    }

    fn statfs(&mut self) -> FsResult<vfs::StatFs> {
        self.inner.statfs()
    }
}

/// Replays a trace onto `fs`, stopping at the first error.
pub fn replay<F: FileSystem>(fs: &mut F, ops: &[TraceOp]) -> FsResult<usize> {
    for (i, op) in ops.iter().enumerate() {
        op.apply(fs).inspect_err(|_| {
            // Keep the index visible for debugging failed replays.
            let _ = i;
        })?;
    }
    Ok(ops.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    fn sample_trace() -> (Vec<TraceOp>, Vec<(String, Vec<u8>)>) {
        let mut t = Tracer::new(ModelFs::new());
        t.mkdir("/d").unwrap();
        let a = t.create("/d/a").unwrap();
        t.write(a, 0, &[7u8; 500]).unwrap();
        t.write(a, 250, b"mixed-content!").unwrap();
        let b = t.create("/b").unwrap();
        t.write(b, 10, &[3u8; 100]).unwrap();
        t.truncate(b, 50).unwrap();
        t.rename("/d/a", "/d/z").unwrap();
        t.link("/d/z", "/zz").unwrap();
        t.unlink("/b").unwrap();
        t.sync().unwrap();
        // A post-rename inode-based write must resolve to the new path.
        let z = t.lookup("/d/z").unwrap();
        t.write(z, 0, b"after-rename").unwrap();

        let (mut fs, ops) = t.into_parts();
        let mut state = Vec::new();
        for p in ["/d/z", "/zz"] {
            let ino = fs.lookup(p).unwrap();
            state.push((p.to_string(), fs.read_to_vec(ino).unwrap()));
        }
        (ops, state)
    }

    #[test]
    fn replay_reproduces_state_exactly() {
        let (ops, expected) = sample_trace();
        let mut fresh = ModelFs::new();
        replay(&mut fresh, &ops).unwrap();
        for (path, data) in &expected {
            let ino = fresh.lookup(path).unwrap();
            assert_eq!(&fresh.read_to_vec(ino).unwrap(), data, "{path}");
        }
        assert!(fresh.lookup("/b").is_err());
    }

    #[test]
    fn jsonl_roundtrip() {
        let (ops, _) = sample_trace();
        let lines: Vec<String> = ops.iter().map(TraceOp::to_jsonl).collect();
        let back: Vec<TraceOp> = lines
            .iter()
            .map(|l| TraceOp::from_jsonl(l).unwrap())
            .collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn constant_fills_are_compressed() {
        let mut t = Tracer::new(ModelFs::new());
        let f = t.create("/f").unwrap();
        t.write(f, 0, &[9u8; 10_000]).unwrap();
        let (_, ops) = t.into_parts();
        let line = ops.last().unwrap().to_jsonl();
        assert!(
            line.len() < 200,
            "fill not compressed: {} bytes",
            line.len()
        );
    }

    #[test]
    fn tail_is_the_journal_since_a_sync() {
        let mut t = Tracer::new(ModelFs::new());
        t.create("/a").unwrap();
        t.sync().unwrap();
        let mark = t.ops().len();
        t.create("/b").unwrap();
        t.create("/c").unwrap();
        assert_eq!(t.tail(mark).len(), 2);
    }
}
