//! Write-ahead-log / group-commit workload: the hot append stream.
//!
//! Databases layered on a file system generate a distinctive pattern the
//! paper's §2.1 calls out: many small synchronous appends to one file.
//! This generator models a WAL with group commit — records accumulate
//! and every `group` appends cost one `sync()` — plus periodic log
//! rotation (truncate to empty once the log exceeds a size budget), the
//! checkpoint analogue. Under Cleaner 2.0 the WAL file is about the
//! hottest thing on the disk: every rotation invalidates the whole log,
//! so its blocks belong in the hot stream where segments decay to
//! near-empty before cleaning.
//!
//! Records are self-verifying: record `i` of the current generation is
//! `content(gen << 32 | i, len(i))`, so [`WalRun::verify`] replays the
//! expected byte stream from just the counters.

use vfs::{FileSystem, FsResult, Ino};

use crate::clients::content;

/// Configuration of the WAL generator.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Bytes per record; varies in `[mean/2, 3*mean/2)` by record index.
    pub mean_record: usize,
    /// Appends per group commit (`sync()` every `group` records).
    pub group: u32,
    /// Rotate (truncate to 0) once the log exceeds this many bytes.
    pub rotate_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            mean_record: 512,
            group: 16,
            rotate_bytes: 256 << 10,
        }
    }
}

/// The running WAL: one log file plus the counters needed to recompute
/// its exact expected content.
pub struct WalRun {
    cfg: WalConfig,
    ino: Ino,
    /// Rotation generation (bumped on every truncate).
    generation: u32,
    /// Records appended in the current generation.
    records: u32,
    /// Bytes in the current generation.
    len: u64,
    /// Total records appended across generations.
    pub total_records: u64,
    /// Total bytes appended across generations.
    pub total_bytes: u64,
    /// Rotations performed.
    pub rotations: u64,
    /// `sync()` calls issued (group commits).
    pub commits: u64,
}

impl WalRun {
    /// Creates the log file at `path`.
    pub fn create<F: FileSystem>(fs: &mut F, path: &str, cfg: WalConfig) -> FsResult<WalRun> {
        let ino = fs.create(path)?;
        Ok(WalRun {
            cfg,
            ino,
            generation: 0,
            records: 0,
            len: 0,
            total_records: 0,
            total_bytes: 0,
            rotations: 0,
            commits: 0,
        })
    }

    /// Deterministic length of record `i`: `[mean/2, 3*mean/2)`.
    fn record_len(&self, i: u32) -> usize {
        let mean = self.cfg.mean_record.max(2);
        mean / 2 + (i as usize).wrapping_mul(0x9E37_79B9) % mean
    }

    fn record_seed(&self, i: u32) -> u64 {
        (self.generation as u64) << 32 | i as u64
    }

    /// Appends one record, group-committing and rotating as configured.
    pub fn append<F: FileSystem>(&mut self, fs: &mut F) -> FsResult<()> {
        let i = self.records;
        let len = self.record_len(i);
        fs.write(self.ino, self.len, &content(self.record_seed(i), len))?;
        self.records += 1;
        self.len += len as u64;
        self.total_records += 1;
        self.total_bytes += len as u64;
        if self.cfg.group > 0 && self.records.is_multiple_of(self.cfg.group) {
            fs.sync()?;
            self.commits += 1;
        }
        if self.len >= self.cfg.rotate_bytes {
            // Checkpoint reached: the whole log is dead at once.
            fs.truncate(self.ino, 0)?;
            self.generation += 1;
            self.records = 0;
            self.len = 0;
            self.rotations += 1;
        }
        Ok(())
    }

    /// Re-reads the whole log and verifies every record of the current
    /// generation byte-for-byte. Returns descriptions of mismatches
    /// (empty on success).
    pub fn verify<F: FileSystem>(&mut self, fs: &mut F) -> FsResult<Vec<String>> {
        let got = fs.read_to_vec(self.ino)?;
        let mut failures = Vec::new();
        if got.len() as u64 != self.len {
            failures.push(format!(
                "log length: expected {} bytes, got {}",
                self.len,
                got.len()
            ));
            return Ok(failures);
        }
        let mut off = 0usize;
        for i in 0..self.records {
            let len = self.record_len(i);
            if got[off..off + len] != content(self.record_seed(i), len) {
                failures.push(format!("record {i} (gen {}) corrupt", self.generation));
            }
            off += len;
        }
        Ok(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    #[test]
    fn wal_appends_rotate_and_verify() {
        let mut fs = ModelFs::new();
        let cfg = WalConfig {
            mean_record: 256,
            group: 8,
            rotate_bytes: 8 << 10,
        };
        let mut wal = WalRun::create(&mut fs, "/wal", cfg).unwrap();
        for _ in 0..400 {
            wal.append(&mut fs).unwrap();
        }
        assert!(wal.rotations > 0, "rotation never triggered");
        assert!(wal.commits > 0, "group commit never triggered");
        let failures = wal.verify(&mut fs).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn wal_is_deterministic() {
        let run = || {
            let mut fs = ModelFs::new();
            let mut wal = WalRun::create(&mut fs, "/wal", WalConfig::default()).unwrap();
            for _ in 0..200 {
                wal.append(&mut fs).unwrap();
            }
            (wal.total_bytes, wal.rotations, wal.commits)
        };
        assert_eq!(run(), run());
    }
}
