//! The Figure 9 large-file micro-benchmark.
//!
//! "A benchmark that creates a 100-Mbyte file with sequential writes, then
//! reads the file back sequentially, then writes 100 Mbytes randomly to
//! the existing file, then reads 100 Mbytes randomly from the file, and
//! finally reads the file sequentially again."

use rand::Rng;
use vfs::{FileSystem, FsResult, Ino};

/// The five phases of the benchmark, in paper order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LargeFilePhase {
    /// Sequential write (file creation).
    SeqWrite,
    /// Sequential read.
    SeqRead,
    /// Random writes totalling the file size.
    RandWrite,
    /// Random reads totalling the file size.
    RandRead,
    /// Sequential re-read (after the random writes).
    Reread,
}

impl LargeFilePhase {
    /// All phases in order.
    pub const ALL: [LargeFilePhase; 5] = [
        LargeFilePhase::SeqWrite,
        LargeFilePhase::SeqRead,
        LargeFilePhase::RandWrite,
        LargeFilePhase::RandRead,
        LargeFilePhase::Reread,
    ];

    /// Figure 9's x-axis label.
    pub fn label(self) -> &'static str {
        match self {
            LargeFilePhase::SeqWrite => "Write Sequential",
            LargeFilePhase::SeqRead => "Read Sequential",
            LargeFilePhase::RandWrite => "Write Random",
            LargeFilePhase::RandRead => "Read Random",
            LargeFilePhase::Reread => "Reread Sequential",
        }
    }
}

/// The large-file benchmark.
#[derive(Clone, Copy, Debug)]
pub struct LargeFileBench {
    /// Total file size (the paper uses 100 MB).
    pub file_bytes: u64,
    /// Transfer unit per call.
    pub io_size: usize,
    /// PRNG seed for the random phases.
    pub seed: u64,
}

impl LargeFileBench {
    /// The paper's configuration, scaled by `scale` (1.0 = 100 MB).
    pub fn paper_scaled(scale: f64) -> LargeFileBench {
        LargeFileBench {
            file_bytes: ((100u64 << 20) as f64 * scale) as u64,
            io_size: 8192,
            seed: 0xf19,
        }
    }

    fn nchunks(&self) -> u64 {
        self.file_bytes / self.io_size as u64
    }

    /// Creates the file and runs the sequential-write phase, returning the
    /// inode for the later phases.
    pub fn setup<F: FileSystem>(&self, fs: &mut F) -> FsResult<Ino> {
        let ino = fs.create("/bigfile")?;
        Ok(ino)
    }

    /// Runs one phase against an already-created file.
    pub fn run_phase<F: FileSystem>(
        &self,
        fs: &mut F,
        ino: Ino,
        phase: LargeFilePhase,
    ) -> FsResult<()> {
        let mut rng = crate::rng(self.seed ^ phase as u64);
        let chunk = vec![0x42u8; self.io_size];
        let mut buf = vec![0u8; self.io_size];
        let n = self.nchunks();
        match phase {
            LargeFilePhase::SeqWrite => {
                for i in 0..n {
                    fs.write(ino, i * self.io_size as u64, &chunk)?;
                }
                fs.sync()?;
            }
            LargeFilePhase::SeqRead | LargeFilePhase::Reread => {
                for i in 0..n {
                    fs.read(ino, i * self.io_size as u64, &mut buf)?;
                }
            }
            LargeFilePhase::RandWrite => {
                for _ in 0..n {
                    let i = rng.gen_range(0..n);
                    fs.write(ino, i * self.io_size as u64, &chunk)?;
                }
                fs.sync()?;
            }
            LargeFilePhase::RandRead => {
                for _ in 0..n {
                    let i = rng.gen_range(0..n);
                    fs.read(ino, i * self.io_size as u64, &mut buf)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    #[test]
    fn all_phases_run_on_model() {
        let b = LargeFileBench {
            file_bytes: 1 << 20,
            io_size: 8192,
            seed: 3,
        };
        let mut fs = ModelFs::new();
        let ino = b.setup(&mut fs).unwrap();
        for phase in LargeFilePhase::ALL {
            b.run_phase(&mut fs, ino, phase).unwrap();
        }
        assert_eq!(fs.metadata(ino).unwrap().size, 1 << 20);
    }

    #[test]
    fn scaling_changes_size_not_unit() {
        let b = LargeFileBench::paper_scaled(0.1);
        assert_eq!(b.file_bytes, 10 << 20);
        assert_eq!(b.io_size, 8192);
    }

    #[test]
    fn labels_match_figure_nine() {
        assert_eq!(LargeFilePhase::SeqWrite.label(), "Write Sequential");
        assert_eq!(LargeFilePhase::Reread.label(), "Reread Sequential");
    }
}
