//! Closed-loop multi-client workload: N simulated clients, each a
//! deterministic state machine issuing open/read/write/unlink mixes
//! against any [`FileSystem`], with self-verifying file contents.
//!
//! Every client owns a private directory (`/cli<N>`) and tracks the
//! expected content of every file it has created (derived from a
//! deterministic seed), so *any* read can be verified byte-for-byte —
//! a torn, stale, or misdirected read under concurrency shows up as a
//! verification failure, not a silent wrong answer. The server
//! throughput gate runs thousands of these over one shared mount and
//! requires zero failures.

use rand::rngs::StdRng;
use rand::Rng;
use vfs::{FileSystem, FsError, Ino};

/// Operation weights of one client's closed loop. Weights are relative;
/// they need not sum to anything in particular.
#[derive(Clone, Copy, Debug)]
pub struct ClientMix {
    /// Weight of whole-file verified reads.
    pub read: u32,
    /// Weight of whole-file rewrites (fresh deterministic content).
    pub write: u32,
    /// Weight of file creations.
    pub create: u32,
    /// Weight of unlinks.
    pub unlink: u32,
    /// Stable name for reports.
    pub name: &'static str,
}

impl ClientMix {
    /// 90% reads — the scaling mix of the `server_throughput` gate.
    pub fn read_heavy() -> ClientMix {
        ClientMix {
            read: 90,
            write: 4,
            create: 3,
            unlink: 3,
            name: "read_heavy",
        }
    }

    /// A balanced office mix.
    pub fn mixed() -> ClientMix {
        ClientMix {
            read: 50,
            write: 25,
            create: 15,
            unlink: 10,
            name: "mixed",
        }
    }

    /// Write-dominated (log-append stress).
    pub fn write_heavy() -> ClientMix {
        ClientMix {
            read: 10,
            write: 55,
            create: 20,
            unlink: 15,
            name: "write_heavy",
        }
    }
}

/// Per-client operation/verification counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Operations attempted.
    pub ops: u64,
    /// Verified whole-file reads.
    pub reads: u64,
    /// Whole-file rewrites.
    pub writes: u64,
    /// Files created.
    pub creates: u64,
    /// Files unlinked.
    pub unlinks: u64,
    /// Bytes read back (and verified).
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Reads whose content did not match the expected bytes.
    pub verify_failures: u64,
    /// Operations that returned an unexpected error.
    pub errors: u64,
}

impl ClientStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &ClientStats) {
        self.ops += other.ops;
        self.reads += other.reads;
        self.writes += other.writes;
        self.creates += other.creates;
        self.unlinks += other.unlinks;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.verify_failures += other.verify_failures;
        self.errors += other.errors;
    }
}

/// Deterministic file payload: every byte is a function of `(seed, i)`,
/// so a verifier needs only the seed and length — not a stored copy.
pub fn content(seed: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    while out.len() < len {
        // splitmix64 step.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let take = (len - out.len()).min(8);
        out.extend_from_slice(&z.to_le_bytes()[..take]);
    }
    out
}

/// Tracked state of one file a client owns.
#[derive(Clone, Debug)]
struct TrackedFile {
    name: String,
    ino: Ino,
    seed: u64,
    len: usize,
}

/// One simulated client: a closed-loop state machine over its private
/// directory. Deterministic given `(id, seed)` — the same client issues
/// the same operation stream regardless of scheduling (its verification
/// is what notices cross-client interference).
pub struct ClientSim {
    id: usize,
    rng: StdRng,
    dir: String,
    files: Vec<TrackedFile>,
    next_seq: u64,
    mix: ClientMix,
    max_files: usize,
    mean_len: usize,
    /// Counters; read after the run.
    pub stats: ClientStats,
    /// Description of the first verification failure, if any.
    pub first_failure: Option<String>,
}

impl ClientSim {
    /// Creates client `id` with its deterministic RNG. `mean_len` is the
    /// average file size; files range from 1 byte to 4× the mean.
    pub fn new(id: usize, seed: u64, mix: ClientMix, mean_len: usize) -> ClientSim {
        ClientSim {
            id,
            rng: crate::rng(seed ^ (id as u64).wrapping_mul(0x5851_F42D_4C95_7F2D)),
            dir: format!("/cli{id}"),
            files: Vec::new(),
            next_seq: 0,
            mix,
            max_files: 24,
            mean_len: mean_len.max(1),
            stats: ClientStats::default(),
            first_failure: None,
        }
    }

    /// The client's private directory.
    pub fn dir(&self) -> &str {
        &self.dir
    }

    /// Creates the private directory (idempotent).
    pub fn setup<F: FileSystem>(&mut self, fs: &mut F) -> Result<(), FsError> {
        match fs.mkdir(&self.dir) {
            Ok(_) | Err(FsError::AlreadyExists) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn pick_len(&mut self) -> usize {
        // Uniform in [1, 2*mean] with an occasional 4× outlier.
        let cap = if self.rng.gen_range(0..10) == 0 {
            self.mean_len * 4
        } else {
            self.mean_len * 2
        };
        self.rng.gen_range(0..cap.max(1)) + 1
    }

    fn fresh_seed(&mut self) -> u64 {
        self.next_seq += 1;
        (self.id as u64) << 32 | self.next_seq
    }

    fn note_failure(&mut self, what: String) {
        self.stats.verify_failures += 1;
        if self.first_failure.is_none() {
            self.first_failure = Some(what);
        }
    }

    fn do_create<F: FileSystem>(&mut self, fs: &mut F) {
        let seq = self.next_seq;
        let name = format!("{}/f{seq}", self.dir);
        let seed = self.fresh_seed();
        let len = self.pick_len();
        let data = content(seed, len);
        match fs.create(&name).and_then(|ino| {
            fs.write(ino, 0, &data)?;
            Ok(ino)
        }) {
            Ok(ino) => {
                self.stats.creates += 1;
                self.stats.write_bytes += len as u64;
                self.files.push(TrackedFile {
                    name,
                    ino,
                    seed,
                    len,
                });
            }
            Err(_) => self.stats.errors += 1,
        }
    }

    fn do_read<F: FileSystem>(&mut self, fs: &mut F) {
        let Some(idx) = self.pick_file() else { return };
        let f = self.files[idx].clone();
        let mut buf = vec![0u8; f.len];
        match fs.read(f.ino, 0, &mut buf) {
            Ok(n) => {
                self.stats.reads += 1;
                self.stats.read_bytes += n as u64;
                let expect = content(f.seed, f.len);
                if n != f.len || buf[..n] != expect[..n] {
                    self.note_failure(format!(
                        "client {}: read {} (ino {}) got {n}/{} bytes{}",
                        self.id,
                        f.name,
                        f.ino,
                        f.len,
                        if n == f.len { ", content mismatch" } else { "" }
                    ));
                }
            }
            Err(_) => self.stats.errors += 1,
        }
    }

    fn do_write<F: FileSystem>(&mut self, fs: &mut F) {
        let Some(idx) = self.pick_file() else { return };
        let seed = self.fresh_seed();
        let len = self.pick_len();
        let (ino, old_len) = (self.files[idx].ino, self.files[idx].len);
        let data = content(seed, len);
        let res = if len < old_len {
            fs.truncate(ino, len as u64)
                .and_then(|()| fs.write(ino, 0, &data))
        } else {
            fs.write(ino, 0, &data)
        };
        match res {
            Ok(()) => {
                self.stats.writes += 1;
                self.stats.write_bytes += len as u64;
                self.files[idx].seed = seed;
                self.files[idx].len = len;
            }
            Err(_) => self.stats.errors += 1,
        }
    }

    fn do_unlink<F: FileSystem>(&mut self, fs: &mut F) {
        let Some(idx) = self.pick_file() else { return };
        let f = self.files.swap_remove(idx);
        match fs.unlink(&f.name) {
            Ok(()) => self.stats.unlinks += 1,
            Err(_) => self.stats.errors += 1,
        }
    }

    fn pick_file(&mut self) -> Option<usize> {
        if self.files.is_empty() {
            None
        } else {
            Some(self.rng.gen_range(0..self.files.len()))
        }
    }

    /// Runs one operation of the closed loop.
    pub fn step<F: FileSystem>(&mut self, fs: &mut F) {
        self.stats.ops += 1;
        let total = self.mix.read + self.mix.write + self.mix.create + self.mix.unlink;
        let roll = self.rng.gen_range(0..total.max(1));
        let force_create = self.files.is_empty();
        let must_drain = self.files.len() >= self.max_files;
        if force_create || (roll >= self.mix.read + self.mix.write && !must_drain) {
            if roll < self.mix.read + self.mix.write + self.mix.create && !must_drain {
                self.do_create(fs);
            } else {
                self.do_unlink(fs);
            }
        } else if roll < self.mix.read {
            self.do_read(fs);
        } else if roll < self.mix.read + self.mix.write {
            self.do_write(fs);
        } else {
            self.do_unlink(fs);
        }
    }

    /// Final verification sweep: re-reads every tracked file.
    pub fn verify_all<F: FileSystem>(&mut self, fs: &mut F) {
        let files = self.files.clone();
        for f in files {
            let mut buf = vec![0u8; f.len];
            match fs.read(f.ino, 0, &mut buf) {
                Ok(n) => {
                    self.stats.read_bytes += n as u64;
                    let expect = content(f.seed, f.len);
                    if n != f.len || buf[..n] != expect[..n] {
                        self.note_failure(format!(
                            "client {}: final verify of {} failed ({n}/{} bytes)",
                            self.id, f.name, f.len
                        ));
                    }
                }
                Err(e) => self.note_failure(format!(
                    "client {}: final verify of {} errored: {e}",
                    self.id, f.name
                )),
            }
        }
    }
}

/// Aggregate result of a multi-client run.
#[derive(Clone, Debug, Default)]
pub struct MixReport {
    /// Merged per-client counters.
    pub stats: ClientStats,
    /// Number of clients simulated.
    pub clients: usize,
    /// First verification failure encountered, if any.
    pub first_failure: Option<String>,
}

/// Runs `nclients` closed-loop clients for `ops_per_client` operations
/// each, multiplexed over `threads` OS threads. `make_fs` builds one
/// file-system handle per thread (a [`FileSystem`] is `&mut self`, so
/// each thread needs its own — a `SharedLfs` clone, a server connection,
/// …). Clients are partitioned round-robin and stepped in rotation, so
/// the interleaving across a thread's clients is fair and deterministic
/// per thread.
pub fn run_clients<F, MK>(
    nclients: usize,
    ops_per_client: usize,
    threads: usize,
    mix: ClientMix,
    mean_len: usize,
    seed: u64,
    make_fs: MK,
) -> MixReport
where
    F: FileSystem,
    MK: Fn(usize) -> F + Sync,
{
    let threads = threads.max(1).min(nclients.max(1));
    let mut results: Vec<(ClientStats, Option<String>)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let make_fs = &make_fs;
                s.spawn(move || {
                    let mut fs = make_fs(t);
                    let mut clients: Vec<ClientSim> = (t..nclients)
                        .step_by(threads)
                        .map(|id| ClientSim::new(id, seed, mix, mean_len))
                        .collect();
                    let mut agg = ClientStats::default();
                    let mut first = None;
                    for c in &mut clients {
                        if c.setup(&mut fs).is_err() {
                            agg.errors += 1;
                        }
                    }
                    for _ in 0..ops_per_client {
                        for c in &mut clients {
                            c.step(&mut fs);
                        }
                    }
                    for c in &mut clients {
                        c.verify_all(&mut fs);
                        agg.merge(&c.stats);
                        if first.is_none() {
                            first = c.first_failure.take();
                        }
                    }
                    (agg, first)
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("client thread panicked"));
        }
    });
    let mut report = MixReport {
        clients: nclients,
        ..MixReport::default()
    };
    for (stats, first) in results {
        report.stats.merge(&stats);
        if report.first_failure.is_none() {
            report.first_failure = first;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    #[test]
    fn content_is_deterministic_and_length_exact() {
        assert_eq!(content(7, 13), content(7, 13));
        assert_eq!(content(7, 13).len(), 13);
        assert_ne!(content(7, 64), content(8, 64));
        assert_eq!(content(1, 0).len(), 0);
    }

    #[test]
    fn single_client_loop_self_verifies_on_model_fs() {
        let mut fs = ModelFs::new();
        let mut c = ClientSim::new(0, 42, ClientMix::mixed(), 2048);
        c.setup(&mut fs).unwrap();
        for _ in 0..500 {
            c.step(&mut fs);
        }
        c.verify_all(&mut fs);
        assert_eq!(c.stats.verify_failures, 0, "{:?}", c.first_failure);
        assert_eq!(c.stats.errors, 0);
        assert!(c.stats.reads > 0 && c.stats.creates > 0 && c.stats.unlinks > 0);
    }

    #[test]
    fn run_clients_aggregates_all_clients() {
        // ModelFs is not shared here (one per "thread"), which is fine:
        // each client only touches its own namespace.
        let report = run_clients(8, 50, 2, ClientMix::read_heavy(), 512, 7, |_t| {
            ModelFs::new()
        });
        assert_eq!(report.clients, 8);
        assert_eq!(
            report.stats.verify_failures, 0,
            "{:?}",
            report.first_failure
        );
        assert_eq!(report.stats.ops, 8 * 50);
        assert!(report.stats.read_bytes > 0);
    }
}
