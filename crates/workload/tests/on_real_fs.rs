#![allow(clippy::field_reassign_with_default)]

//! The workload generators must run cleanly against the real file systems,
//! not just the in-memory model.

use blockdev::MemDisk;
use ffs_baseline::{Ffs, FfsConfig};
use lfs_core::{Lfs, LfsConfig};
use vfs::FileSystem;
use workload::{
    CrashWorkload, LargeFileBench, LargeFilePhase, PartitionModel, ProductionWorkload,
    SmallFileBench,
};

#[test]
fn small_file_bench_on_lfs_and_ffs() {
    let b = SmallFileBench {
        nfiles: 150,
        file_size: 1024,
        files_per_dir: 25,
    };
    let mut lfs = Lfs::format(MemDisk::new(8192), LfsConfig::small()).unwrap();
    b.create_phase(&mut lfs).unwrap();
    b.read_phase(&mut lfs).unwrap();
    b.delete_phase(&mut lfs).unwrap();
    assert_eq!(lfs.statfs().unwrap().num_files, 6); // Just the dirs.
    assert!(lfs.check().unwrap().is_clean());

    let mut ffs = Ffs::format(MemDisk::new(8192), FfsConfig::small()).unwrap();
    b.create_phase(&mut ffs).unwrap();
    b.read_phase(&mut ffs).unwrap();
    b.delete_phase(&mut ffs).unwrap();
    assert!(ffs.fsck().unwrap().is_clean());
}

#[test]
fn large_file_bench_on_lfs() {
    let b = LargeFileBench {
        file_bytes: 2 << 20,
        io_size: 8192,
        seed: 5,
    };
    let mut fs = Lfs::format(MemDisk::new(4096), LfsConfig::small()).unwrap();
    let ino = b.setup(&mut fs).unwrap();
    for phase in LargeFilePhase::ALL {
        b.run_phase(&mut fs, ino, phase).unwrap();
    }
    assert_eq!(fs.metadata(ino).unwrap().size, 2 << 20);
    fs.sync().unwrap();
    assert!(fs.check().unwrap().is_clean());
}

#[test]
fn production_workloads_run_on_lfs() {
    // Quick pass over every partition model at reduced scale.
    for model in PartitionModel::all() {
        let mut cfg = LfsConfig::default();
        cfg.seg_blocks = 64; // 256 KB segments on a 24 MB disk.
        cfg.flush_threshold_bytes = 63 * 4096;
        cfg.max_inodes = 4096;
        cfg.clean_low_water = 6;
        cfg.clean_high_water = 12;
        let mut fs = Lfs::format(MemDisk::new(24 * 256), cfg).unwrap();
        let mut w = ProductionWorkload::new(model, 7);
        w.prime(&mut fs).unwrap();
        w.run_ops(&mut fs, 300).unwrap();
        fs.sync().unwrap();
        let report = fs.check().unwrap();
        assert!(
            report.is_clean(),
            "{}: fsck errors: {:#?}",
            model.name,
            report.errors
        );
        assert!(w.bytes_written > 0, "{}: no traffic", model.name);
    }
}

#[test]
fn crash_workload_then_recovery() {
    let mut cfg = LfsConfig::small();
    cfg.checkpoint_every_bytes = 0;
    let mut fs = Lfs::format(MemDisk::new(4096), cfg).unwrap();
    let w = CrashWorkload::new(10 * 1024, 2 << 20);
    w.run(&mut fs).unwrap();
    fs.flush().unwrap(); // Log tail only, no checkpoint.
    let image = fs.into_device().into_image();
    let mut recovered = Lfs::mount(MemDisk::from_image(image), cfg).unwrap();
    assert_eq!(recovered.statfs().unwrap().num_files, w.count);
    assert!(recovered.check().unwrap().is_clean());
}

#[test]
fn kv_churn_on_multi_stream_lfs() {
    use workload::{KvChurn, KvRun};
    let cfg = LfsConfig::small().with_streams(3);
    let mut fs = Lfs::format(MemDisk::new(8192), cfg).unwrap();
    let mut kv = KvRun::setup(
        &mut fs,
        KvChurn {
            keys: 64,
            mean_value: 1500,
            sync_every: 32,
            ..KvChurn::default()
        },
        11,
    )
    .unwrap();
    for _ in 0..1200 {
        kv.step(&mut fs).unwrap();
    }
    let failures = kv.verify_all(&mut fs).unwrap();
    assert!(failures.is_empty(), "{failures:?}");
    fs.sync().unwrap();
    assert!(fs.check().unwrap().is_clean());
    // The churn must have pushed enough traffic to exercise the cleaner.
    assert!(kv.write_bytes > 1 << 20);
}

#[test]
fn wal_on_multi_stream_lfs_and_survives_remount() {
    use workload::{WalConfig, WalRun};
    let cfg = LfsConfig::small().with_streams(3);
    let mut fs = Lfs::format(MemDisk::new(8192), cfg).unwrap();
    let mut wal = WalRun::create(
        &mut fs,
        "/wal",
        WalConfig {
            mean_record: 700,
            group: 8,
            rotate_bytes: 96 << 10,
        },
    )
    .unwrap();
    for _ in 0..900 {
        wal.append(&mut fs).unwrap();
    }
    assert!(wal.rotations > 0 && wal.commits > 0);
    assert!(wal.verify(&mut fs).unwrap().is_empty());
    fs.sync().unwrap();
    // The synced tail must survive a crash-free remount intact.
    let mut back = Lfs::mount(fs.into_device(), cfg).unwrap();
    assert!(wal.verify(&mut back).unwrap().is_empty());
    assert!(back.check().unwrap().is_clean());
}
