//! Named-metric registry: counters, gauges, and latency histograms.
//!
//! Handles are `Arc`s handed out once (at wiring time) and then updated
//! lock-free; the registry mutex is only taken on registration and
//! snapshot, never on the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde_json::{json, Value};

use crate::hist::{HistSnapshot, Histogram};

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrite the value. Used when mirroring an externally-accumulated
    /// statistic (e.g. `LfsStats`) into the registry at snapshot time.
    #[inline]
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time float value (stored as `f64` bits in an `AtomicU64`).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A gauge reading `0.0`.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Registry of named metrics. Cloningly cheap via `Arc<Registry>`.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.hists.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Immutable copy of every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let hists = self
            .hists
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            hists,
            trace_counts: BTreeMap::new(),
            trace_dropped: 0,
        }
    }
}

/// Plain-data snapshot of a [`Registry`] (plus trace-event tallies when
/// taken through [`crate::Obs::snapshot`]). Serializes to the
/// `lfs-metrics/1` JSON schema documented in EXPERIMENTS.md.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub hists: BTreeMap<String, HistSnapshot>,
    /// Recorded trace events by kind (includes events evicted from the ring).
    pub trace_counts: BTreeMap<String, u64>,
    /// Events evicted from the trace ring because it was full.
    pub trace_dropped: u64,
}

impl MetricsSnapshot {
    /// Counter value, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, or `None` when absent.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram snapshot, or `None` when absent.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.get(name)
    }

    /// The `lfs-metrics/1` JSON form.
    pub fn to_json(&self) -> Value {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), json!(*v)))
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), json!(*v)))
                .collect(),
        );
        let hists = Value::Object(
            self.hists
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let trace_counts = Value::Object(
            self.trace_counts
                .iter()
                .map(|(k, v)| (k.clone(), json!(*v)))
                .collect(),
        );
        json!({
            "schema": "lfs-metrics/1",
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
            "trace": {
                "events": trace_counts,
                "dropped": self.trace_dropped,
            },
        })
    }

    /// Parse the JSON form. Returns `None` on schema mismatch.
    pub fn from_json(v: &Value) -> Option<MetricsSnapshot> {
        if v.get("schema")?.as_str()? != "lfs-metrics/1" {
            return None;
        }
        let mut snap = MetricsSnapshot::default();
        if let Some(Value::Object(members)) = v.get("counters") {
            for (k, val) in members {
                snap.counters.insert(k.clone(), val.as_u64()?);
            }
        }
        if let Some(Value::Object(members)) = v.get("gauges") {
            for (k, val) in members {
                snap.gauges.insert(k.clone(), val.as_f64()?);
            }
        }
        if let Some(Value::Object(members)) = v.get("histograms") {
            for (k, val) in members {
                snap.hists.insert(k.clone(), HistSnapshot::from_json(val)?);
            }
        }
        if let Some(trace) = v.get("trace") {
            if let Some(Value::Object(members)) = trace.get("events") {
                for (k, val) in members {
                    snap.trace_counts.insert(k.clone(), val.as_u64()?);
                }
            }
            snap.trace_dropped = trace.get("dropped").and_then(Value::as_u64).unwrap_or(0);
        }
        Some(snap)
    }

    /// Serialize to pretty-enough compact JSON text (single line).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Write the snapshot JSON to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string() + "\n")
    }

    /// Load a snapshot from a JSON file.
    pub fn load(path: &std::path::Path) -> std::io::Result<MetricsSnapshot> {
        let text = std::fs::read_to_string(path)?;
        let value = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        MetricsSnapshot::from_json(&value).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not an lfs-metrics/1 snapshot",
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("x.count");
        c.add(41);
        c.inc();
        reg.gauge("x.frac").set(0.25);
        reg.histogram("x.ns").record(7);
        // Same name returns the same underlying metric.
        assert_eq!(reg.counter("x.count").get(), 42);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x.count"), 42);
        assert_eq!(snap.gauge("x.frac"), Some(0.25));
        assert_eq!(snap.hist("x.ns").map(|h| h.count), Some(1));
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let reg = Registry::new();
        reg.counter("a").add(3);
        reg.gauge("b").set(1.5);
        reg.histogram("c").record(1024);
        let mut snap = reg.snapshot();
        snap.trace_counts.insert("checkpoint".into(), 2);
        snap.trace_dropped = 1;
        let text = snap.to_json_string();
        let back = MetricsSnapshot::from_json(&serde_json::from_str(&text).expect("parse"))
            .expect("schema");
        assert_eq!(back, snap);
    }

    #[test]
    fn missing_metric_defaults() {
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.counter("nope"), 0);
        assert_eq!(snap.gauge("nope"), None);
        assert!(snap.hist("nope").is_none());
    }
}
