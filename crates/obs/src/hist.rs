//! Log2-bucketed latency histogram.
//!
//! Values are `u64` nanoseconds of *simulated* time. Bucket `0` holds the
//! exact value `0`; bucket `i` (for `i >= 1`) holds values in
//! `[2^(i-1), 2^i - 1]`. With 65 buckets the full `u64` range is covered,
//! so `record` never saturates or clips.
//!
//! Recording is lock-free (`AtomicU64` per bucket, relaxed ordering): the
//! histogram is shared between the device layer and snapshot readers via
//! `Arc` without a mutex on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::{json, Value};

/// Number of buckets: one for zero plus one per bit of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index for a value: `0` for `0`, else `64 - leading_zeros`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Smallest value that lands in bucket `i`.
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Largest value that lands in bucket `i` (inclusive).
#[inline]
pub fn bucket_ceil(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Concurrent log2 histogram. Create via [`Histogram::new`], share via `Arc`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow of u64 ns ≈ 584 years).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Immutable copy of the current state.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`], suitable for merging, quantile
/// queries, and JSON export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts, `NUM_BUCKETS` entries.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (`0` when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Merge `other` into `self`. Bucket counts, totals, and extrema all
    /// combine exactly, so merging is associative and commutative and
    /// preserves total count.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        // `Histogram::record` accumulates the sum with a wrapping atomic
        // add; merging wraps the same way so the two paths agree.
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Upper bound of the bucket containing quantile `q` (0.0..=1.0),
    /// clamped to the observed max. Returns `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_ceil(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Mean sample value; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// JSON form: non-empty buckets as `[index, count]` pairs plus
    /// summary fields (see EXPERIMENTS.md, "Metrics snapshot schema").
    pub fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| json!([i as u64, c]))
            .collect();
        json!({
            "count": self.count,
            "sum": self.sum,
            "min": if self.count == 0 { Value::Null } else { json!(self.min) },
            "max": if self.count == 0 { Value::Null } else { json!(self.max) },
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": Value::Array(buckets),
        })
    }

    /// Parse the JSON form produced by [`HistSnapshot::to_json`].
    pub fn from_json(v: &Value) -> Option<HistSnapshot> {
        let mut snap = HistSnapshot::empty();
        snap.count = v.get("count")?.as_u64()?;
        snap.sum = v.get("sum")?.as_u64()?;
        snap.min = v.get("min").and_then(Value::as_u64).unwrap_or(u64::MAX);
        snap.max = v.get("max").and_then(Value::as_u64).unwrap_or(0);
        for pair in v.get("buckets")?.as_array()? {
            let pair = pair.as_array()?;
            let i = pair.first()?.as_u64()? as usize;
            let c = pair.get(1)?.as_u64()?;
            if i >= NUM_BUCKETS {
                return None;
            }
            snap.buckets[i] = c;
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_of(bucket_floor(i)), i);
            assert_eq!(bucket_of(bucket_ceil(i)), i);
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1111);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!(s.quantile(0.0).is_some());
        assert_eq!(s.quantile(1.0), Some(1000));
        // p50 of 6 samples is the 3rd: value 5 → bucket [4,7].
        assert_eq!(s.quantile(0.5), Some(7));
    }

    #[test]
    fn empty_quantile_is_none() {
        assert_eq!(HistSnapshot::empty().quantile(0.5), None);
        assert_eq!(HistSnapshot::empty().mean(), None);
    }

    #[test]
    fn json_roundtrip() {
        let h = Histogram::new();
        for v in [3u64, 9, 90, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let text = s.to_json().to_string();
        let back = HistSnapshot::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
