//! `lfs-obs` — observability substrate for the LFS reproduction.
//!
//! Three pieces, all usable independently:
//!
//! - [`Histogram`]: lock-free log2-bucketed latency histogram (simulated
//!   nanoseconds), with plain-data [`HistSnapshot`] for merging,
//!   quantiles, and JSON export.
//! - [`Registry`]: named counters / gauges / histograms; snapshots to the
//!   `lfs-metrics/1` JSON schema ([`MetricsSnapshot`]).
//! - [`Trace`]: a cheap-when-off structured event recorder (ring buffer
//!   of [`TraceEvent`]s with simulated-time stamps, JSONL export).
//!
//! [`Obs`] bundles a trace and a registry into the single handle the file
//! system, devices, and tools pass around. `Obs::default()` is fully off:
//! every emit is one branch and no allocation.

#![warn(missing_docs)]

mod hist;
mod metrics;
mod trace;

pub use hist::{bucket_ceil, bucket_floor, bucket_of, HistSnapshot, Histogram, NUM_BUCKETS};
pub use metrics::{Counter, Gauge, MetricsSnapshot, Registry};
pub use trace::{TimedEvent, Trace, TraceBuffer, TraceEvent};

use std::sync::Arc;

/// A trace plus a metrics registry: the one handle wired through the
/// stack. Clones share the same underlying sinks.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Structured event trace (off by default).
    pub trace: Trace,
    /// Metrics registry (absent by default).
    pub registry: Option<Arc<Registry>>,
}

impl Obs {
    /// Fully disabled observability (the default).
    pub fn off() -> Self {
        Obs::default()
    }

    /// Recording: a fresh registry plus a trace ring of `trace_cap` events.
    pub fn recording(trace_cap: usize) -> Self {
        Obs {
            trace: Trace::ring(trace_cap),
            registry: Some(Arc::new(Registry::new())),
        }
    }

    /// Whether any sink is attached.
    pub fn is_on(&self) -> bool {
        self.trace.is_on() || self.registry.is_some()
    }

    /// Registry snapshot merged with trace tallies. `None` when no
    /// registry is attached.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        let reg = self.registry.as_ref()?;
        let mut snap = reg.snapshot();
        snap.trace_counts = self.trace.counts();
        snap.trace_dropped = self.trace.dropped();
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_obs_is_off() {
        let obs = Obs::default();
        assert!(!obs.is_on());
        assert!(obs.snapshot().is_none());
    }

    #[test]
    fn recording_obs_snapshots_trace_counts() {
        let obs = Obs::recording(16);
        assert!(obs.is_on());
        obs.trace.emit(5, || TraceEvent::Giveup { write: false });
        if let Some(reg) = &obs.registry {
            reg.counter("x").add(2);
        }
        let snap = obs.snapshot().expect("registry attached");
        assert_eq!(snap.counter("x"), 2);
        assert_eq!(snap.trace_counts.get("giveup"), Some(&1));
    }
}
