//! Structured trace recorder: a bounded ring of typed events with
//! simulated-time timestamps.
//!
//! The sink is `Option<Arc<Mutex<…>>>`; a disabled [`Trace`] is a `None`
//! and [`Trace::emit`] is a single branch — event payloads are built
//! inside a closure that never runs when tracing is off.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use serde_json::{json, Value};

/// A typed trace event. Fields carry enough to reconstruct the paper's
/// telemetry: what was written, what the cleaner picked (and how full the
/// victims were), what recovery replayed, and which I/Os misbehaved.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One partial-segment (chunk) write appended to the log.
    SegmentWrite {
        /// Segment index written into.
        seg: u32,
        /// Blocks in this chunk, summary included.
        blocks: u32,
        /// True when the chunk was written by the cleaner.
        by_cleaner: bool,
    },
    /// One cleaner pass over a set of victim segments.
    CleanerPass {
        /// Victim segments scavenged.
        segments: u32,
        /// Victims that turned out fully empty (freed without copying).
        empty: u32,
        /// Live-byte utilization of each picked segment at selection time.
        utilizations: Vec<f64>,
    },
    /// A checkpoint committed to a checkpoint region.
    Checkpoint {
        /// Checkpoint sequence number.
        seq: u64,
        /// Which of the two checkpoint regions was written.
        region: u8,
    },
    /// Roll-forward replayed one log record during recovery.
    RollForward {
        /// Write sequence number of the replayed chunk.
        seq: u64,
        /// Segment the chunk lives in.
        seg: u32,
    },
    /// A failed I/O attempt that will be retried.
    Retry {
        /// True for a write, false for a read.
        write: bool,
        /// 1-based attempt number that failed.
        attempt: u32,
    },
    /// An I/O abandoned after exhausting the retry budget.
    Giveup {
        /// True for a write, false for a read.
        write: bool,
    },
}

impl TraceEvent {
    /// Stable kind tag used in JSONL output and per-kind tallies.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::SegmentWrite { .. } => "segment_write",
            TraceEvent::CleanerPass { .. } => "cleaner_pass",
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::RollForward { .. } => "roll_forward",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::Giveup { .. } => "giveup",
        }
    }

    fn payload_json(&self) -> Value {
        match self {
            TraceEvent::SegmentWrite {
                seg,
                blocks,
                by_cleaner,
            } => json!({"seg": *seg, "blocks": *blocks, "by_cleaner": *by_cleaner}),
            TraceEvent::CleanerPass {
                segments,
                empty,
                utilizations,
            } => json!({
                "segments": *segments,
                "empty": *empty,
                "utilizations": utilizations.clone(),
            }),
            TraceEvent::Checkpoint { seq, region } => json!({"seq": *seq, "region": *region}),
            TraceEvent::RollForward { seq, seg } => json!({"seq": *seq, "seg": *seg}),
            TraceEvent::Retry { write, attempt } => json!({"write": *write, "attempt": *attempt}),
            TraceEvent::Giveup { write } => json!({"write": *write}),
        }
    }
}

/// One recorded event with its simulated-time timestamp (device
/// `busy_ns` at emission; a pure-simulation caller may pass step counts).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Simulated nanoseconds (or steps) when the event fired.
    pub t_sim_ns: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl TimedEvent {
    /// One JSONL line: `{"t": …, "kind": …, …payload fields…}`.
    pub fn to_json(&self) -> Value {
        let mut members = vec![
            ("t".to_string(), json!(self.t_sim_ns)),
            ("kind".to_string(), json!(self.event.kind())),
        ];
        if let Value::Object(payload) = self.event.payload_json() {
            members.extend(payload);
        }
        Value::Object(members)
    }
}

/// Bounded ring of [`TimedEvent`]s plus lifetime tallies per kind.
#[derive(Debug)]
pub struct TraceBuffer {
    cap: usize,
    ring: VecDeque<TimedEvent>,
    counts: BTreeMap<&'static str, u64>,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty buffer keeping at most `cap` events (cap 0 keeps tallies only).
    pub fn new(cap: usize) -> Self {
        TraceBuffer {
            cap,
            ring: VecDeque::with_capacity(cap.min(4096)),
            counts: BTreeMap::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TimedEvent) {
        *self.counts.entry(ev.event.kind()).or_insert(0) += 1;
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.ring.iter()
    }

    /// Lifetime tallies per event kind (includes evicted events).
    pub fn counts(&self) -> BTreeMap<String, u64> {
        self.counts
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Events evicted (or never retained) because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Cheap-when-off handle to a shared [`TraceBuffer`].
#[derive(Debug, Clone, Default)]
pub struct Trace {
    sink: Option<Arc<Mutex<TraceBuffer>>>,
}

impl Trace {
    /// A disabled trace; [`Trace::emit`] is a no-op branch.
    pub fn off() -> Self {
        Trace { sink: None }
    }

    /// An enabled trace retaining the most recent `cap` events.
    pub fn ring(cap: usize) -> Self {
        Trace {
            sink: Some(Arc::new(Mutex::new(TraceBuffer::new(cap)))),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Record an event. `make` runs only when the trace is on, so payload
    /// construction (allocations included) costs nothing when off.
    #[inline]
    pub fn emit(&self, t_sim_ns: u64, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            let ev = TimedEvent {
                t_sim_ns,
                event: make(),
            };
            sink.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
        }
    }

    /// Lifetime per-kind tallies; empty when the trace is off.
    pub fn counts(&self) -> BTreeMap<String, u64> {
        match &self.sink {
            Some(sink) => sink.lock().unwrap_or_else(|e| e.into_inner()).counts(),
            None => BTreeMap::new(),
        }
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        match &self.sink {
            Some(sink) => sink.lock().unwrap_or_else(|e| e.into_inner()).dropped(),
            None => 0,
        }
    }

    /// Retained events as JSONL text (one event per line, oldest first).
    pub fn to_jsonl(&self) -> String {
        let Some(sink) = &self.sink else {
            return String::new();
        };
        let buf = sink.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for ev in buf.events() {
            out.push_str(&ev.to_json().to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_trace_records_nothing_and_skips_payload() {
        let t = Trace::off();
        let mut built = false;
        t.emit(0, || {
            built = true;
            TraceEvent::Giveup { write: true }
        });
        assert!(!built, "payload closure must not run when off");
        assert!(t.counts().is_empty());
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_tallies() {
        let t = Trace::ring(2);
        for i in 0..5u64 {
            t.emit(i, || TraceEvent::Checkpoint {
                seq: i,
                region: (i % 2) as u8,
            });
        }
        assert_eq!(t.counts().get("checkpoint"), Some(&5));
        assert_eq!(t.dropped(), 3);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"t\":3"));
        assert!(lines[1].contains("\"t\":4"));
    }

    #[test]
    fn jsonl_lines_parse_and_tag_kind() {
        let t = Trace::ring(8);
        t.emit(10, || TraceEvent::CleanerPass {
            segments: 2,
            empty: 1,
            utilizations: vec![0.0, 0.5],
        });
        t.emit(11, || TraceEvent::SegmentWrite {
            seg: 7,
            blocks: 32,
            by_cleaner: false,
        });
        for line in t.to_jsonl().lines() {
            let v = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.get("kind").and_then(Value::as_str).is_some());
            assert!(v.get("t").and_then(Value::as_u64).is_some());
        }
    }
}
