//! Property tests for the log2 latency histogram (ISSUE 3 satellite):
//! merge associativity, bucket monotonicity, and count preservation.

use lfs_obs::{bucket_ceil, bucket_floor, bucket_of, HistSnapshot, Histogram, NUM_BUCKETS};
use proptest::prelude::*;

fn snap_of(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Merging is associative: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..50),
        b in proptest::collection::vec(any::<u64>(), 0..50),
        c in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging is commutative and preserves the total sample count and sum.
    #[test]
    fn merge_preserves_counts(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..80),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..80),
    ) {
        let (sa, sb) = (snap_of(&a), snap_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count, (a.len() + b.len()) as u64);
        let direct: u64 = a.iter().chain(&b).sum();
        prop_assert_eq!(ab.sum, direct);
        prop_assert_eq!(ab.buckets.iter().sum::<u64>(), ab.count);
    }

    /// Bucket assignment is monotone in the sample value, and every value
    /// lands inside its bucket's [floor, ceil] range.
    #[test]
    fn buckets_are_monotone(v in any::<u64>(), w in any::<u64>()) {
        let (lo, hi) = if v <= w { (v, w) } else { (w, v) };
        prop_assert!(bucket_of(lo) <= bucket_of(hi));
        let i = bucket_of(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_floor(i) <= v && v <= bucket_ceil(i));
    }

    /// Recording preserves count/sum exactly and quantiles stay within
    /// the observed range.
    #[test]
    fn record_preserves_totals(values in proptest::collection::vec(any::<u64>(), 1..100)) {
        let snap = snap_of(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        let sum = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(snap.sum, sum);
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        prop_assert_eq!(snap.min, min);
        prop_assert_eq!(snap.max, max);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let est = snap.quantile(q).expect("non-empty");
            prop_assert!(est <= max);
            // The estimate is a bucket upper bound, so it is never below
            // the true minimum's bucket floor.
            prop_assert!(est >= bucket_floor(bucket_of(min)));
        }
    }

    /// Bucket floors are strictly increasing (after the zero bucket) and
    /// ceil(i) + 1 == floor(i + 1): the buckets tile the u64 range.
    #[test]
    fn buckets_tile_the_range(i in 1usize..NUM_BUCKETS - 1) {
        prop_assert!(bucket_floor(i) < bucket_floor(i + 1));
        prop_assert_eq!(bucket_ceil(i) + 1, bucket_floor(i + 1));
        prop_assert!(bucket_floor(i) <= bucket_ceil(i));
    }

    /// JSON round-trip is lossless for arbitrary recorded data.
    #[test]
    fn json_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..60)) {
        let snap = snap_of(&values);
        let text = snap.to_json().to_string();
        let v = serde_json::from_str(&text).expect("snapshot JSON parses");
        let back = HistSnapshot::from_json(&v).expect("schema");
        prop_assert_eq!(back, snap);
    }
}
