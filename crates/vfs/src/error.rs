//! The shared file-system error type.

use core::fmt;

/// Result alias for file-system operations.
pub type FsResult<T> = core::result::Result<T, FsError>;

/// Errors shared by all [`crate::FileSystem`] implementations.
#[derive(Debug)]
pub enum FsError {
    /// A path component does not exist.
    NotFound,
    /// The target name already exists.
    AlreadyExists,
    /// A non-final path component, or the target of a directory operation,
    /// is not a directory.
    NotADirectory,
    /// A file operation was applied to a directory.
    IsADirectory,
    /// `rmdir`/`rename` target directory is not empty.
    DirectoryNotEmpty,
    /// The device is out of usable space.
    NoSpace,
    /// All inodes are in use.
    NoInodes,
    /// A path component exceeds [`crate::MAX_NAME_LEN`] bytes.
    NameTooLong,
    /// A path is syntactically invalid (empty component, empty path, …).
    InvalidPath,
    /// The file would exceed the maximum size addressable by the inode.
    FileTooLarge,
    /// An invalid argument (bad inode number, offset, …).
    InvalidArgument(&'static str),
    /// On-disk state failed a consistency check; the string says what.
    Corrupt(String),
    /// An error from the underlying block device.
    Device(blockdev_error::BlockErrorString),
}

/// A tiny indirection so `vfs` does not depend on `blockdev` directly:
/// device errors are carried as strings. Implementations convert with
/// [`FsError::device`].
pub mod blockdev_error {
    /// Stringified block-device error.
    #[derive(Debug)]
    pub struct BlockErrorString(pub String);
}

impl FsError {
    /// Wraps a device-layer error.
    pub fn device<E: fmt::Display>(e: E) -> FsError {
        FsError::Device(blockdev_error::BlockErrorString(e.to_string()))
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::AlreadyExists => write!(f, "file exists"),
            FsError::NotADirectory => write!(f, "not a directory"),
            FsError::IsADirectory => write!(f, "is a directory"),
            FsError::DirectoryNotEmpty => write!(f, "directory not empty"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoInodes => write!(f, "no free inodes"),
            FsError::NameTooLong => write!(f, "file name too long"),
            FsError::InvalidPath => write!(f, "invalid path"),
            FsError::FileTooLarge => write!(f, "file too large"),
            FsError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            FsError::Corrupt(s) => write!(f, "file system corrupt: {s}"),
            FsError::Device(e) => write!(f, "device error: {}", e.0),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        assert!(FsError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(FsError::device("boom").to_string().contains("boom"));
    }
}
