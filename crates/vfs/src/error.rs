//! The shared file-system error type.

use core::fmt;

/// Result alias for file-system operations.
pub type FsResult<T> = core::result::Result<T, FsError>;

/// Errors shared by all [`crate::FileSystem`] implementations.
#[derive(Debug)]
pub enum FsError {
    /// A path component does not exist.
    NotFound,
    /// The target name already exists.
    AlreadyExists,
    /// A non-final path component, or the target of a directory operation,
    /// is not a directory.
    NotADirectory,
    /// A file operation was applied to a directory.
    IsADirectory,
    /// `rmdir`/`rename` target directory is not empty.
    DirectoryNotEmpty,
    /// The device is out of usable space.
    NoSpace,
    /// All inodes are in use.
    NoInodes,
    /// A path component exceeds [`crate::MAX_NAME_LEN`] bytes.
    NameTooLong,
    /// A path is syntactically invalid (empty component, empty path, …).
    InvalidPath,
    /// The file would exceed the maximum size addressable by the inode.
    FileTooLarge,
    /// An invalid argument (bad inode number, offset, …).
    InvalidArgument(&'static str),
    /// On-disk state failed a consistency check; the string says what.
    Corrupt(String),
    /// An error from the underlying block device.
    Device(blockdev_error::BlockErrorString),
}

/// A tiny indirection so `vfs` does not depend on `blockdev` directly:
/// device errors are carried as strings. Implementations convert with
/// [`FsError::device`].
pub mod blockdev_error {
    /// Stringified block-device error.
    #[derive(Debug)]
    pub struct BlockErrorString(pub String);
}

impl FsError {
    /// Wraps a device-layer error.
    pub fn device<E: fmt::Display>(e: E) -> FsError {
        FsError::Device(blockdev_error::BlockErrorString(e.to_string()))
    }

    /// Stable numeric code for the framed server protocol. Codes are part
    /// of the wire format: existing values never change, new variants
    /// append. `0` is reserved for "ok" on the wire.
    pub fn wire_code(&self) -> u8 {
        match self {
            FsError::NotFound => 1,
            FsError::AlreadyExists => 2,
            FsError::NotADirectory => 3,
            FsError::IsADirectory => 4,
            FsError::DirectoryNotEmpty => 5,
            FsError::NoSpace => 6,
            FsError::NoInodes => 7,
            FsError::NameTooLong => 8,
            FsError::InvalidPath => 9,
            FsError::FileTooLarge => 10,
            FsError::InvalidArgument(_) => 11,
            FsError::Corrupt(_) => 12,
            FsError::Device(_) => 13,
        }
    }

    /// Reconstructs an error from its wire code and detail message; the
    /// client side of the protocol uses this. Unknown codes map to
    /// [`FsError::Corrupt`] so they stay visible rather than vanishing.
    pub fn from_wire(code: u8, detail: &str) -> FsError {
        match code {
            1 => FsError::NotFound,
            2 => FsError::AlreadyExists,
            3 => FsError::NotADirectory,
            4 => FsError::IsADirectory,
            5 => FsError::DirectoryNotEmpty,
            6 => FsError::NoSpace,
            7 => FsError::NoInodes,
            8 => FsError::NameTooLong,
            9 => FsError::InvalidPath,
            10 => FsError::FileTooLarge,
            11 => FsError::InvalidArgument("remote"),
            12 => FsError::Corrupt(detail.to_string()),
            13 => FsError::Device(blockdev_error::BlockErrorString(detail.to_string())),
            _ => FsError::Corrupt(format!("unknown wire error code {code}: {detail}")),
        }
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::AlreadyExists => write!(f, "file exists"),
            FsError::NotADirectory => write!(f, "not a directory"),
            FsError::IsADirectory => write!(f, "is a directory"),
            FsError::DirectoryNotEmpty => write!(f, "directory not empty"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoInodes => write!(f, "no free inodes"),
            FsError::NameTooLong => write!(f, "file name too long"),
            FsError::InvalidPath => write!(f, "invalid path"),
            FsError::FileTooLarge => write!(f, "file too large"),
            FsError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            FsError::Corrupt(s) => write!(f, "file system corrupt: {s}"),
            FsError::Device(e) => write!(f, "device error: {}", e.0),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_codes_roundtrip() {
        let all = [
            FsError::NotFound,
            FsError::AlreadyExists,
            FsError::NotADirectory,
            FsError::IsADirectory,
            FsError::DirectoryNotEmpty,
            FsError::NoSpace,
            FsError::NoInodes,
            FsError::NameTooLong,
            FsError::InvalidPath,
            FsError::FileTooLarge,
            FsError::InvalidArgument("x"),
            FsError::Corrupt("bad".into()),
            FsError::device("boom"),
        ];
        let mut seen = std::collections::HashSet::new();
        for e in &all {
            let code = e.wire_code();
            assert_ne!(code, 0, "0 is reserved for ok");
            assert!(seen.insert(code), "duplicate wire code {code}");
            let back = FsError::from_wire(code, &e.to_string());
            assert_eq!(back.wire_code(), code);
        }
        assert!(matches!(FsError::from_wire(200, "?"), FsError::Corrupt(_)));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        assert!(FsError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(FsError::device("boom").to_string().contains("boom"));
    }
}
