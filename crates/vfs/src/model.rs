//! An in-memory reference file system used as a property-test oracle.

use std::collections::{BTreeMap, HashMap};

use crate::error::{FsError, FsResult};
use crate::path;
use crate::types::{DirEntry, FileType, Metadata, StatFs};
use crate::{FileSystem, Ino, ROOT_INO};

enum Node {
    File {
        data: Vec<u8>,
        nlink: u32,
        mtime: u64,
        ctime: u64,
    },
    Dir {
        entries: BTreeMap<String, Ino>,
        mtime: u64,
        ctime: u64,
    },
}

/// A deliberately simple in-memory file system.
///
/// `ModelFs` exists so that property-based tests can run the same random
/// operation sequence against a real file system (LFS or FFS) and this
/// model, then compare every observable: lookups, metadata, directory
/// listings, and file contents. It has no blocks, no cache, and no crash
/// states — it is the specification, not an implementation.
///
/// # Examples
///
/// ```
/// use vfs::{FileSystem, model::ModelFs};
///
/// let mut fs = ModelFs::new();
/// fs.mkdir("/dir1").unwrap();
/// let ino = fs.write_file("/dir1/file1", b"hello").unwrap();
/// assert_eq!(fs.read_to_vec(ino).unwrap(), b"hello");
/// ```
pub struct ModelFs {
    nodes: HashMap<Ino, Node>,
    next_ino: Ino,
    clock: u64,
}

impl Default for ModelFs {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelFs {
    /// Creates an empty file system containing only the root directory.
    pub fn new() -> ModelFs {
        let mut nodes = HashMap::new();
        nodes.insert(
            ROOT_INO,
            Node::Dir {
                entries: BTreeMap::new(),
                mtime: 0,
                ctime: 0,
            },
        );
        ModelFs {
            nodes,
            next_ino: ROOT_INO + 1,
            clock: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn resolve(&self, parts: &[&str]) -> FsResult<Ino> {
        let mut cur = ROOT_INO;
        for part in parts {
            match self.nodes.get(&cur) {
                Some(Node::Dir { entries, .. }) => {
                    cur = *entries.get(*part).ok_or(FsError::NotFound)?;
                }
                Some(Node::File { .. }) => return Err(FsError::NotADirectory),
                None => return Err(FsError::Corrupt("dangling inode".into())),
            }
        }
        Ok(cur)
    }

    fn resolve_parent<'a>(&self, path_str: &'a str) -> FsResult<(Ino, &'a str)> {
        let (parent_parts, name) = path::split_parent(path_str)?;
        let parent = self.resolve(&parent_parts)?;
        match self.nodes.get(&parent) {
            Some(Node::Dir { .. }) => Ok((parent, name)),
            Some(_) => Err(FsError::NotADirectory),
            None => Err(FsError::Corrupt("dangling parent".into())),
        }
    }

    fn dir_entries_mut(&mut self, ino: Ino) -> &mut BTreeMap<String, Ino> {
        match self.nodes.get_mut(&ino) {
            Some(Node::Dir { entries, .. }) => entries,
            _ => unreachable!("caller checked ino is a directory"),
        }
    }

    fn insert_entry(&mut self, parent: Ino, name: &str, child: Ino) -> FsResult<()> {
        let now = self.tick();
        match self.nodes.get_mut(&parent) {
            Some(Node::Dir { entries, mtime, .. }) => {
                if entries.contains_key(name) {
                    return Err(FsError::AlreadyExists);
                }
                entries.insert(name.to_string(), child);
                *mtime = now;
                Ok(())
            }
            _ => Err(FsError::NotADirectory),
        }
    }

    /// Drops a file's link count by one, deleting it at zero.
    fn unref_file(&mut self, ino: Ino) {
        if let Some(Node::File { nlink, .. }) = self.nodes.get_mut(&ino) {
            *nlink -= 1;
            if *nlink == 0 {
                self.nodes.remove(&ino);
            }
        }
    }
}

impl FileSystem for ModelFs {
    fn create(&mut self, path_str: &str) -> FsResult<Ino> {
        let (parent, name) = self.resolve_parent(path_str)?;
        let now = self.tick();
        let ino = self.next_ino;
        self.nodes.insert(
            ino,
            Node::File {
                data: Vec::new(),
                nlink: 1,
                mtime: now,
                ctime: now,
            },
        );
        if let Err(e) = self.insert_entry(parent, name, ino) {
            self.nodes.remove(&ino);
            return Err(e);
        }
        self.next_ino += 1;
        Ok(ino)
    }

    fn mkdir(&mut self, path_str: &str) -> FsResult<Ino> {
        let (parent, name) = self.resolve_parent(path_str)?;
        let now = self.tick();
        let ino = self.next_ino;
        self.nodes.insert(
            ino,
            Node::Dir {
                entries: BTreeMap::new(),
                mtime: now,
                ctime: now,
            },
        );
        if let Err(e) = self.insert_entry(parent, name, ino) {
            self.nodes.remove(&ino);
            return Err(e);
        }
        self.next_ino += 1;
        Ok(ino)
    }

    fn lookup(&mut self, path_str: &str) -> FsResult<Ino> {
        let parts = path::components(path_str)?;
        self.resolve(&parts)
    }

    fn write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<()> {
        let now = self.tick();
        match self.nodes.get_mut(&ino) {
            Some(Node::File {
                data: file, mtime, ..
            }) => {
                let end = offset as usize + data.len();
                if file.len() < end {
                    file.resize(end, 0);
                }
                file[offset as usize..end].copy_from_slice(data);
                *mtime = now;
                Ok(())
            }
            Some(Node::Dir { .. }) => Err(FsError::IsADirectory),
            None => Err(FsError::InvalidArgument("no such inode")),
        }
    }

    fn read(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        match self.nodes.get(&ino) {
            Some(Node::File { data, .. }) => {
                let start = (offset as usize).min(data.len());
                let n = buf.len().min(data.len() - start);
                buf[..n].copy_from_slice(&data[start..start + n]);
                Ok(n)
            }
            Some(Node::Dir { .. }) => Err(FsError::IsADirectory),
            None => Err(FsError::InvalidArgument("no such inode")),
        }
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        let now = self.tick();
        match self.nodes.get_mut(&ino) {
            Some(Node::File { data, mtime, .. }) => {
                data.resize(size as usize, 0);
                *mtime = now;
                Ok(())
            }
            Some(Node::Dir { .. }) => Err(FsError::IsADirectory),
            None => Err(FsError::InvalidArgument("no such inode")),
        }
    }

    fn unlink(&mut self, path_str: &str) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(path_str)?;
        let target = *self
            .dir_entries_mut(parent)
            .get(name)
            .ok_or(FsError::NotFound)?;
        if matches!(self.nodes.get(&target), Some(Node::Dir { .. })) {
            return Err(FsError::IsADirectory);
        }
        let now = self.tick();
        self.dir_entries_mut(parent).remove(name);
        if let Some(Node::Dir { mtime, .. }) = self.nodes.get_mut(&parent) {
            *mtime = now;
        }
        self.unref_file(target);
        Ok(())
    }

    fn rmdir(&mut self, path_str: &str) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(path_str)?;
        let target = *self
            .dir_entries_mut(parent)
            .get(name)
            .ok_or(FsError::NotFound)?;
        match self.nodes.get(&target) {
            Some(Node::Dir { entries, .. }) => {
                if !entries.is_empty() {
                    return Err(FsError::DirectoryNotEmpty);
                }
            }
            Some(Node::File { .. }) => return Err(FsError::NotADirectory),
            None => return Err(FsError::Corrupt("dangling entry".into())),
        }
        let now = self.tick();
        self.dir_entries_mut(parent).remove(name);
        if let Some(Node::Dir { mtime, .. }) = self.nodes.get_mut(&parent) {
            *mtime = now;
        }
        self.nodes.remove(&target);
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        let (from_parent, from_name) = self.resolve_parent(from)?;
        let (to_parent, to_name) = self.resolve_parent(to)?;
        let src = *self
            .dir_entries_mut(from_parent)
            .get(from_name)
            .ok_or(FsError::NotFound)?;
        // Renaming a directory into itself or its descendants is out of
        // scope (as in the paper's workloads); reject directory sources
        // whose destination already exists, and file-over-dir replacements.
        if let Some(&dst) = self.dir_entries_mut(to_parent).get(to_name) {
            if dst == src {
                return Ok(());
            }
            let src_is_dir = matches!(self.nodes.get(&src), Some(Node::Dir { .. }));
            let dst_is_dir = matches!(self.nodes.get(&dst), Some(Node::Dir { .. }));
            if src_is_dir || dst_is_dir {
                return Err(FsError::AlreadyExists);
            }
            self.unref_file(dst);
        }
        let now = self.tick();
        self.dir_entries_mut(from_parent).remove(from_name);
        self.dir_entries_mut(to_parent)
            .insert(to_name.to_string(), src);
        for dir in [from_parent, to_parent] {
            if let Some(Node::Dir { mtime, .. }) = self.nodes.get_mut(&dir) {
                *mtime = now;
            }
        }
        Ok(())
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        let src = self.lookup(existing)?;
        if matches!(self.nodes.get(&src), Some(Node::Dir { .. })) {
            return Err(FsError::IsADirectory);
        }
        let (parent, name) = self.resolve_parent(new)?;
        self.insert_entry(parent, name, src)?;
        if let Some(Node::File { nlink, ctime, .. }) = self.nodes.get_mut(&src) {
            *nlink += 1;
            *ctime = self.clock;
        }
        Ok(())
    }

    fn metadata(&mut self, ino: Ino) -> FsResult<Metadata> {
        match self.nodes.get(&ino) {
            Some(Node::File {
                data,
                nlink,
                mtime,
                ctime,
            }) => Ok(Metadata {
                ino,
                ftype: FileType::Regular,
                size: data.len() as u64,
                nlink: *nlink,
                mode: 0o644,
                mtime: *mtime,
                atime: 0,
                ctime: *ctime,
            }),
            Some(Node::Dir {
                entries,
                mtime,
                ctime,
            }) => Ok(Metadata {
                ino,
                ftype: FileType::Directory,
                size: entries.len() as u64,
                nlink: 1,
                mode: 0o755,
                mtime: *mtime,
                atime: 0,
                ctime: *ctime,
            }),
            None => Err(FsError::InvalidArgument("no such inode")),
        }
    }

    fn readdir(&mut self, path_str: &str) -> FsResult<Vec<DirEntry>> {
        let ino = self.lookup(path_str)?;
        match self.nodes.get(&ino) {
            Some(Node::Dir { entries, .. }) => {
                let mut out = Vec::with_capacity(entries.len());
                for (name, &child) in entries {
                    let ftype = match self.nodes.get(&child) {
                        Some(Node::Dir { .. }) => FileType::Directory,
                        _ => FileType::Regular,
                    };
                    out.push(DirEntry {
                        name: name.clone(),
                        ino: child,
                        ftype,
                    });
                }
                Ok(out)
            }
            Some(Node::File { .. }) => Err(FsError::NotADirectory),
            None => Err(FsError::Corrupt("dangling inode".into())),
        }
    }

    fn sync(&mut self) -> FsResult<()> {
        Ok(())
    }

    fn statfs(&mut self) -> FsResult<StatFs> {
        let mut live = 0u64;
        let mut files = 0u64;
        for (ino, node) in &self.nodes {
            if let Node::File { data, .. } = node {
                live += data.len() as u64;
                files += 1;
            } else if *ino != ROOT_INO {
                files += 1;
            }
        }
        Ok(StatFs {
            total_bytes: u64::MAX,
            live_bytes: live,
            num_files: files,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_read_write_roundtrip() {
        let mut fs = ModelFs::new();
        let ino = fs.write_file("/f", b"hello world").unwrap();
        assert_eq!(fs.read_to_vec(ino).unwrap(), b"hello world");
    }

    #[test]
    fn create_in_missing_dir_fails() {
        let mut fs = ModelFs::new();
        assert!(matches!(fs.create("/no/f"), Err(FsError::NotFound)));
    }

    #[test]
    fn duplicate_create_fails() {
        let mut fs = ModelFs::new();
        fs.create("/f").unwrap();
        assert!(matches!(fs.create("/f"), Err(FsError::AlreadyExists)));
    }

    #[test]
    fn write_at_offset_creates_hole() {
        let mut fs = ModelFs::new();
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 10, b"x").unwrap();
        let data = fs.read_to_vec(ino).unwrap();
        assert_eq!(data.len(), 11);
        assert!(data[..10].iter().all(|&b| b == 0));
        assert_eq!(data[10], b'x');
    }

    #[test]
    fn unlink_deletes_when_last_link_drops() {
        let mut fs = ModelFs::new();
        let ino = fs.write_file("/f", b"data").unwrap();
        fs.link("/f", "/g").unwrap();
        assert_eq!(fs.metadata(ino).unwrap().nlink, 2);
        fs.unlink("/f").unwrap();
        assert_eq!(fs.metadata(ino).unwrap().nlink, 1);
        assert_eq!(fs.read_to_vec(ino).unwrap(), b"data");
        fs.unlink("/g").unwrap();
        assert!(fs.metadata(ino).is_err());
    }

    #[test]
    fn rmdir_requires_empty() {
        let mut fs = ModelFs::new();
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        assert!(matches!(fs.rmdir("/d"), Err(FsError::DirectoryNotEmpty)));
        fs.unlink("/d/f").unwrap();
        fs.rmdir("/d").unwrap();
        assert!(fs.lookup("/d").is_err());
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut fs = ModelFs::new();
        fs.mkdir("/a").unwrap();
        fs.mkdir("/b").unwrap();
        let ino = fs.write_file("/a/f", b"1").unwrap();
        fs.write_file("/b/g", b"2").unwrap();
        fs.rename("/a/f", "/b/g").unwrap();
        assert!(fs.lookup("/a/f").is_err());
        assert_eq!(fs.lookup("/b/g").unwrap(), ino);
        assert_eq!(fs.read_to_vec(ino).unwrap(), b"1");
    }

    #[test]
    fn readdir_is_sorted_and_typed() {
        let mut fs = ModelFs::new();
        fs.mkdir("/z").unwrap();
        fs.create("/a").unwrap();
        let list = fs.readdir("/").unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].name, "a");
        assert_eq!(list[0].ftype, FileType::Regular);
        assert_eq!(list[1].name, "z");
        assert_eq!(list[1].ftype, FileType::Directory);
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let mut fs = ModelFs::new();
        let ino = fs.write_file("/f", b"abcdef").unwrap();
        fs.truncate(ino, 3).unwrap();
        assert_eq!(fs.read_to_vec(ino).unwrap(), b"abc");
        fs.truncate(ino, 5).unwrap();
        assert_eq!(fs.read_to_vec(ino).unwrap(), b"abc\0\0");
    }

    #[test]
    fn statfs_counts_live_bytes_and_files() {
        let mut fs = ModelFs::new();
        fs.write_file("/f", &[0u8; 100]).unwrap();
        fs.mkdir("/d").unwrap();
        let s = fs.statfs().unwrap();
        assert_eq!(s.live_bytes, 100);
        assert_eq!(s.num_files, 2);
    }

    #[test]
    fn read_past_eof_returns_short() {
        let mut fs = ModelFs::new();
        let ino = fs.write_file("/f", b"abc").unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(fs.read(ino, 1, &mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"bc");
        assert_eq!(fs.read(ino, 100, &mut buf).unwrap(), 0);
    }
}
