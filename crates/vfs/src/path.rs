//! Path parsing shared by all file systems.

use crate::error::{FsError, FsResult};
use crate::MAX_NAME_LEN;

/// Splits a path into validated components.
///
/// Leading and trailing slashes are ignored; empty paths or paths
/// containing empty components (`a//b`) are rejected. `.` and `..` are
/// rejected — the workloads never generate them and supporting them would
/// only complicate the directory code without touching anything the paper
/// evaluates.
///
/// # Examples
///
/// ```
/// let parts = vfs::path::components("/usr/local/bin").unwrap();
/// assert_eq!(parts, vec!["usr", "local", "bin"]);
/// assert_eq!(vfs::path::components("/").unwrap(), Vec::<&str>::new());
/// ```
pub fn components(path: &str) -> FsResult<Vec<&str>> {
    let trimmed = path.trim_matches('/');
    if trimmed.is_empty() {
        // "/" or "" — the root itself.
        if path.is_empty() {
            return Err(FsError::InvalidPath);
        }
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for part in trimmed.split('/') {
        if part.is_empty() || part == "." || part == ".." {
            return Err(FsError::InvalidPath);
        }
        if part.len() > MAX_NAME_LEN {
            return Err(FsError::NameTooLong);
        }
        out.push(part);
    }
    Ok(out)
}

/// Splits a path into (parent components, final name).
///
/// Fails with [`FsError::InvalidPath`] if the path names the root.
pub fn split_parent(path: &str) -> FsResult<(Vec<&str>, &str)> {
    let mut parts = components(path)?;
    match parts.pop() {
        Some(name) => Ok((parts, name)),
        None => Err(FsError::InvalidPath),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_absolute_and_relative_identically() {
        assert_eq!(components("/a/b").unwrap(), components("a/b").unwrap());
    }

    #[test]
    fn root_is_empty_component_list() {
        assert!(components("/").unwrap().is_empty());
    }

    #[test]
    fn empty_path_is_invalid() {
        assert!(matches!(components(""), Err(FsError::InvalidPath)));
    }

    #[test]
    fn double_slash_inside_is_invalid() {
        assert!(matches!(components("a//b"), Err(FsError::InvalidPath)));
    }

    #[test]
    fn dot_components_are_rejected() {
        assert!(matches!(components("a/./b"), Err(FsError::InvalidPath)));
        assert!(matches!(components("a/../b"), Err(FsError::InvalidPath)));
    }

    #[test]
    fn long_names_are_rejected() {
        let long = "x".repeat(MAX_NAME_LEN + 1);
        assert!(matches!(components(&long), Err(FsError::NameTooLong)));
        let ok = "x".repeat(MAX_NAME_LEN);
        assert_eq!(components(&ok).unwrap().len(), 1);
    }

    #[test]
    fn split_parent_returns_dir_and_name() {
        let (parent, name) = split_parent("/a/b/c").unwrap();
        assert_eq!(parent, vec!["a", "b"]);
        assert_eq!(name, "c");
    }

    #[test]
    fn split_parent_of_root_fails() {
        assert!(split_parent("/").is_err());
    }

    #[test]
    fn trailing_slash_is_tolerated() {
        assert_eq!(components("a/b/").unwrap(), vec!["a", "b"]);
    }
}
