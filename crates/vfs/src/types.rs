//! Common metadata types.

use crate::Ino;

/// The type of a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FileType {
    /// A regular file.
    Regular,
    /// A directory.
    Directory,
}

/// Attributes of a file, as returned by [`crate::FileSystem::metadata`].
///
/// This corresponds to the contents of an inode in the paper's Table 1
/// ("holds protection bits, modify time, etc.").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Metadata {
    /// Inode number.
    pub ino: Ino,
    /// Regular file or directory.
    pub ftype: FileType,
    /// Size in bytes.
    pub size: u64,
    /// Number of directory entries referring to this inode.
    pub nlink: u32,
    /// Protection bits (kept for fidelity; not enforced).
    pub mode: u16,
    /// Last modification time (logical nanoseconds).
    pub mtime: u64,
    /// Last access time (logical nanoseconds).
    pub atime: u64,
    /// Inode change time (logical nanoseconds).
    pub ctime: u64,
}

impl Metadata {
    /// Returns true if this is a directory.
    pub fn is_dir(&self) -> bool {
        self.ftype == FileType::Directory
    }
}

/// One entry of a directory listing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// Name of the entry within its directory.
    pub name: String,
    /// Inode the entry refers to.
    pub ino: Ino,
    /// Type of the file the entry refers to.
    pub ftype: FileType,
}

/// File-system-wide statistics, as returned by
/// [`crate::FileSystem::statfs`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatFs {
    /// Total data capacity in bytes.
    pub total_bytes: u64,
    /// Bytes currently occupied by live data.
    pub live_bytes: u64,
    /// Number of live files (excluding the root directory).
    pub num_files: u64,
}

impl StatFs {
    /// Overall disk capacity utilization — the x-axis of Figures 4 and 7.
    pub fn utilization(&self) -> f64 {
        if self.total_bytes == 0 {
            return 0.0;
        }
        self.live_bytes as f64 / self.total_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_live_over_total() {
        let s = StatFs {
            total_bytes: 1000,
            live_bytes: 250,
            num_files: 3,
        };
        assert!((s.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_empty_statfs_is_zero() {
        assert_eq!(StatFs::default().utilization(), 0.0);
    }

    #[test]
    fn metadata_is_dir() {
        let mut m = Metadata {
            ino: 1,
            ftype: FileType::Directory,
            size: 0,
            nlink: 2,
            mode: 0o755,
            mtime: 0,
            atime: 0,
            ctime: 0,
        };
        assert!(m.is_dir());
        m.ftype = FileType::Regular;
        assert!(!m.is_dir());
    }
}
