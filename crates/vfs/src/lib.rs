#![warn(missing_docs)]

//! File-system interface shared by the LFS and FFS implementations.
//!
//! The benchmark harness, examples, and integration tests are written
//! against the [`FileSystem`] trait so that the log-structured file system
//! (`lfs-core`) and the Unix-FFS baseline (`ffs-baseline`) can be driven by
//! exactly the same workload code — the comparison methodology of Section 5
//! of the paper.
//!
//! The crate also ships [`model::ModelFs`], a deliberately simple in-memory
//! reference implementation used as an oracle by the property-based tests:
//! any sequence of operations must leave a real file system and the model
//! in observably identical states.

mod error;
pub mod model;
pub mod path;
mod types;

pub use error::{FsError, FsResult};
pub use types::{DirEntry, FileType, Metadata, StatFs};

/// Inode number. Inode 1 is always the root directory; 0 is never a valid
/// inode.
pub type Ino = u32;

/// The root directory's inode number.
pub const ROOT_INO: Ino = 1;

/// Maximum length of a single path component, in bytes.
pub const MAX_NAME_LEN: usize = 255;

/// A hierarchical file system.
///
/// Paths are `/`-separated UTF-8 strings; all paths are interpreted as
/// absolute (a leading `/` is optional). Operations that name a file can
/// also be performed directly on an [`Ino`] obtained from
/// [`FileSystem::lookup`], which is what the workload generators do to
/// avoid re-resolving paths in inner loops.
pub trait FileSystem {
    /// Creates a regular file, returning its inode number.
    ///
    /// Fails with [`FsError::AlreadyExists`] if the name is taken and with
    /// [`FsError::NotFound`] if the parent directory does not exist.
    fn create(&mut self, path: &str) -> FsResult<Ino>;

    /// Creates a directory, returning its inode number.
    fn mkdir(&mut self, path: &str) -> FsResult<Ino>;

    /// Resolves a path to an inode number.
    fn lookup(&mut self, path: &str) -> FsResult<Ino>;

    /// Writes `data` at byte `offset` of the file `ino`, extending it as
    /// needed. Writing past the current end creates a hole that reads back
    /// as zeros (used by the sparse swap-file workload).
    fn write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<()>;

    /// Reads up to `buf.len()` bytes at `offset`; returns the number of
    /// bytes read (short only at end of file).
    fn read(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize>;

    /// Truncates or extends the file to exactly `size` bytes.
    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()>;

    /// Removes a directory entry; the file itself is deleted when its link
    /// count reaches zero.
    fn unlink(&mut self, path: &str) -> FsResult<()>;

    /// Removes an empty directory.
    fn rmdir(&mut self, path: &str) -> FsResult<()>;

    /// Atomically renames `from` to `to`, replacing a regular-file target.
    fn rename(&mut self, from: &str, to: &str) -> FsResult<()>;

    /// Creates a hard link `new` referring to the same inode as `existing`.
    fn link(&mut self, existing: &str, new: &str) -> FsResult<()>;

    /// Returns the attributes of `ino`.
    fn metadata(&mut self, ino: Ino) -> FsResult<Metadata>;

    /// Lists a directory.
    fn readdir(&mut self, path: &str) -> FsResult<Vec<DirEntry>>;

    /// Forces all buffered modifications to stable storage.
    fn sync(&mut self) -> FsResult<()>;

    /// Returns file-system-wide statistics.
    fn statfs(&mut self) -> FsResult<StatFs>;

    /// Reads a whole file into a vector (convenience wrapper).
    fn read_to_vec(&mut self, ino: Ino) -> FsResult<Vec<u8>> {
        let size = self.metadata(ino)?.size;
        let mut buf = vec![0u8; size as usize];
        let n = self.read(ino, 0, &mut buf)?;
        buf.truncate(n);
        Ok(buf)
    }

    /// Creates a file at `path` and writes `data` to it (convenience).
    fn write_file(&mut self, path: &str, data: &[u8]) -> FsResult<Ino> {
        let ino = self.create(path)?;
        self.write(ino, 0, data)?;
        Ok(ino)
    }
}
