//! Property tests for path handling and the model file system.

use proptest::prelude::*;
use vfs::{model::ModelFs, path, FileSystem};

proptest! {
    /// Leading/trailing slashes never change the parsed components.
    #[test]
    fn slashes_are_normalised(parts in proptest::collection::vec("[a-z]{1,8}", 1..6)) {
        let plain = parts.join("/");
        let slashed = format!("/{}/", parts.join("/"));
        prop_assert_eq!(
            path::components(&plain).unwrap(),
            path::components(&slashed).unwrap()
        );
    }

    /// split_parent + join is the identity.
    #[test]
    fn split_parent_roundtrip(parts in proptest::collection::vec("[a-z]{1,8}", 1..6)) {
        let p = format!("/{}", parts.join("/"));
        let (parent, name) = path::split_parent(&p).unwrap();
        prop_assert_eq!(name, parts.last().unwrap().as_str());
        prop_assert_eq!(parent.len(), parts.len() - 1);
    }

    /// Whatever bytes we write at whatever offsets, the model reads back
    /// exactly the overlay.
    #[test]
    fn model_write_read_exact(
        writes in proptest::collection::vec((0u32..50_000, proptest::collection::vec(any::<u8>(), 1..500)), 1..20)
    ) {
        let mut fs = ModelFs::new();
        let ino = fs.create("/f").unwrap();
        let mut shadow: Vec<u8> = Vec::new();
        for (off, data) in &writes {
            fs.write(ino, *off as u64, data).unwrap();
            let end = *off as usize + data.len();
            if shadow.len() < end {
                shadow.resize(end, 0);
            }
            shadow[*off as usize..end].copy_from_slice(data);
        }
        prop_assert_eq!(fs.read_to_vec(ino).unwrap(), shadow);
    }

    /// Creating then deleting any set of names leaves the root empty.
    #[test]
    fn create_delete_is_clean(names in proptest::collection::btree_set("[a-z]{1,10}", 1..20)) {
        let mut fs = ModelFs::new();
        for n in &names {
            fs.create(&format!("/{n}")).unwrap();
        }
        prop_assert_eq!(fs.readdir("/").unwrap().len(), names.len());
        for n in &names {
            fs.unlink(&format!("/{n}")).unwrap();
        }
        prop_assert!(fs.readdir("/").unwrap().is_empty());
        prop_assert_eq!(fs.statfs().unwrap().num_files, 0);
    }
}
