//! End-to-end tests of the command-line tools on real image files.

use std::process::Command;

fn tmpdir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("lfs-tools-test-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn mklfs_dump_fsck_pipeline() {
    let dir = tmpdir();
    let img = dir.join("disk.img");
    let img_s = img.to_str().unwrap();

    // mklfs
    let out = Command::new(env!("CARGO_BIN_EXE_mklfs"))
        .args([img_s, "16"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "mklfs: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("formatted"), "{stdout}");

    // Populate the image through the library.
    {
        use vfs::FileSystem;
        let disk = blockdev::FileDisk::open(&img).unwrap();
        let mut fs = lfs_core::Lfs::mount(disk, lfs_core::LfsConfig::default()).unwrap();
        fs.mkdir("/docs").unwrap();
        fs.write_file("/docs/readme.txt", b"tool test").unwrap();
        fs.sync().unwrap();
    }

    // lfsdump
    let out = Command::new(env!("CARGO_BIN_EXE_lfsdump"))
        .args([img_s, "--segments", "--tree"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "lfsdump: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("superblock:"), "{stdout}");
    assert!(stdout.contains("checkpoint 0:"), "{stdout}");
    assert!(stdout.contains("readme.txt"), "{stdout}");
    assert!(stdout.contains("ACTIVE"), "{stdout}");

    // lfsck
    let out = Command::new(env!("CARGO_BIN_EXE_lfsck"))
        .arg(img_s)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "lfsck: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "{stdout}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mklfs_512kb_segments() {
    let dir = tmpdir();
    let img = dir.join("disk512.img");
    let out = Command::new(env!("CARGO_BIN_EXE_mklfs"))
        .args([img.to_str().unwrap(), "8", "--seg-kb", "512"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("512 KB"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lfsck_rejects_garbage() {
    let dir = tmpdir();
    let img = dir.join("junk.img");
    std::fs::write(&img, vec![0xa5u8; 64 * 4096]).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_lfsck"))
        .arg(img.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_image_is_diagnosed_with_exit_code_2() {
    let dir = tmpdir().join("corrupt-exit2");
    std::fs::create_dir_all(&dir).unwrap();
    let img = dir.join("junk.img");
    std::fs::write(&img, vec![0x5au8; 80 * 4096]).unwrap();
    for bin in [env!("CARGO_BIN_EXE_lfsck"), env!("CARGO_BIN_EXE_lfsdump")] {
        let out = Command::new(bin)
            .arg(img.to_str().unwrap())
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{bin} on garbage image: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !out.stderr.is_empty(),
            "{bin} must print a diagnostic for a corrupt image"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_checkpoints_are_corrupt_not_crash() {
    // A valid superblock with both checkpoint regions trashed must yield a
    // clean diagnostic and exit 2, not a panic (exit 101).
    let dir = tmpdir().join("torn-cp");
    std::fs::create_dir_all(&dir).unwrap();
    let img = dir.join("torn.img");
    let img_s = img.to_str().unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_mklfs"))
        .args([img_s, "16"])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Checkpoint regions live at blocks 1 and 33; overwrite their headers.
    let mut bytes = std::fs::read(&img).unwrap();
    for cr_block in [1usize, 33] {
        bytes[cr_block * 4096..(cr_block + 1) * 4096].fill(0xee);
    }
    std::fs::write(&img, bytes).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_lfsck"))
        .arg(img_s)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checkpoint"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tools_usage_errors() {
    for bin in [env!("CARGO_BIN_EXE_mklfs"), env!("CARGO_BIN_EXE_lfsck")] {
        let out = Command::new(bin).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{bin} without args");
    }
}
