//! `crash_explore` — exhaustive crash-state model checking of the LFS.
//!
//! Where `torture` *samples* crash states (random cuts, one seeded torn
//! subset each), this tool *enumerates* them. It records a canonical
//! short workload — creates, overwrites, renames, unlinks, an explicit
//! cleaner pass, flushes, and checkpoints — on a journaling
//! [`CrashDisk`], then walks [`ModelCheck`] over the journal:
//!
//! - every block-granular prefix cut (all of
//!   [`CrashDisk::num_block_cuts`], thousands of states for the default
//!   trace),
//! - at each intra-request cut, every torn block subset of the straddled
//!   request within budget (a seeded sample plus an explicit skip count
//!   beyond it),
//! - and, with `--queue N`, the fence-epoch reorderings a submission
//!   ring plus a reordering drive could produce between barriers.
//!
//! Every unique surviving image is remounted and run through the shared
//! [`InvariantSuite`]: recoverability (checkpoint checksum gating and
//! older-region fallback), structural consistency (the full offline
//! checker), and namespace/content atomicity (base files byte-exact, hot
//! files a prefix of a version they legally held). A violation is
//! minimized by greedy [`CrashSpec`] shrinking into the smallest recipe
//! that still fails, then printed as a self-contained repro.
//!
//! The trace is fully deterministic: two runs enumerate bit-identical
//! state spaces, so a printed [`CrashSpec`] replays forever.
//!
//! Usage: `crash_explore [--ops N] [--queue N] [--bounded] [--max-states N]
//!          [--min-states N] [--window W] [--subsets N] [--json PATH] [--verbose]`
//!
//! `--bounded` is the CI smoke configuration: it trims the per-cut torn
//! subset budget and caps the walk at 25k states so the job is seconds
//! long, while still covering every block-granular cut and comfortably
//! clearing the 1k-state floor CI asserts via `--min-states`.

use std::time::Instant;

use blockdev::{
    CrashDisk, CrashSpec, MemDisk, ModelCheck, ModelCheckBudget, QueueDevice, QueuedDev,
};
use lfs_core::{InvariantSuite, Lfs, LfsConfig};
use vfs::{FileSystem, FsError};

const DISK_BLOCKS: u64 = 512;
const BASE_FILES: usize = 4;
const HOT_FILES: usize = 4;

struct Options {
    ops: usize,
    queue: usize,
    max_states: u64,
    min_states: u64,
    window: u32,
    subsets: u64,
    json: Option<String>,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: crash_explore [--ops N] [--queue N] [--bounded] [--max-states N] \
         [--min-states N] [--window W] [--subsets N] [--json PATH] [--verbose]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        ops: 100,
        queue: 1,
        max_states: 0,
        min_states: 0,
        window: 6,
        subsets: 2048,
        json: None,
        verbose: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> u64 {
            *i += 1;
            args.get(*i)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--ops" => opts.ops = take(&mut i) as usize,
            "--queue" => opts.queue = (take(&mut i) as usize).max(1),
            "--bounded" => {
                opts.max_states = 25_000;
                opts.subsets = 512;
            }
            "--max-states" => opts.max_states = take(&mut i),
            "--min-states" => opts.min_states = take(&mut i),
            "--window" => opts.window = take(&mut i) as u32,
            "--subsets" => opts.subsets = take(&mut i),
            "--json" => {
                i += 1;
                opts.json = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--verbose" => opts.verbose = true,
            _ => usage(),
        }
        i += 1;
    }
    opts
}

/// Deterministic version-tagged content (same scheme as `torture`).
fn version_content(version: u32, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    for (i, b) in v.iter_mut().enumerate() {
        *b = (version as u8).wrapping_add(i as u8).wrapping_mul(37);
    }
    if len >= 4 {
        v[..4].copy_from_slice(&version.to_le_bytes());
    }
    v
}

/// Access to the crash journal beneath an optional submission ring.
trait ExploreDev: QueueDevice {
    fn crash_mut(&mut self) -> &mut CrashDisk;
    fn into_crash(self) -> CrashDisk;
}

impl ExploreDev for CrashDisk {
    fn crash_mut(&mut self) -> &mut CrashDisk {
        self
    }
    fn into_crash(self) -> CrashDisk {
        self
    }
}

impl ExploreDev for QueuedDev<CrashDisk> {
    fn crash_mut(&mut self) -> &mut CrashDisk {
        self.inner_mut()
    }
    fn into_crash(self) -> CrashDisk {
        self.into_inner()
    }
}

/// Namespace races the scripted workload walks into on purpose
/// (renaming over an unlinked file, unlinking twice, ...).
fn tolerable(e: &FsError) -> bool {
    matches!(e, FsError::NotFound | FsError::AlreadyExists)
}

/// Records the canonical trace and returns the journaling disk plus the
/// invariant suite describing exactly what the trace promised.
///
/// The script is fixed, not random: op `i` always does the same thing, so
/// the journal — and therefore the entire enumerated state space — is
/// identical across runs and machines.
fn record_trace<D: ExploreDev>(
    ops: usize,
    make: impl FnOnce(CrashDisk) -> D,
) -> Result<(CrashDisk, InvariantSuite), String> {
    let cfg = LfsConfig::small();
    let disk = make(CrashDisk::new(DISK_BLOCKS));
    let mut fs = Lfs::format(disk, cfg).map_err(|e| format!("format: {e}"))?;
    let mut suite = InvariantSuite::new();

    // Base files: durable before the crash window opens, so every
    // enumerated state must hold them byte-exact.
    for i in 0..BASE_FILES {
        let content = version_content(i as u32, 1500 + 2500 * i);
        fs.write_file(&format!("/base{i}"), &content)
            .map_err(|e| format!("base write: {e}"))?;
        suite.expect_exact(format!("/base{i}"), content);
    }
    fs.sync().map_err(|e| format!("base sync: {e}"))?;
    fs.device_mut().crash_mut().checkpoint_baseline();

    // The crash window: every op from here on may be cut anywhere.
    let mut version = BASE_FILES as u32;
    let mut live: Vec<Option<Vec<u8>>> = vec![None; HOT_FILES];
    for opno in 0..ops {
        let target = opno % HOT_FILES;
        let path = format!("/hot{target}");
        let r = match opno % 8 {
            // Writes dominate, with lengths spanning sub-block to
            // multi-block so cuts land inside data, dirlog, and
            // metadata requests alike.
            0 | 1 | 4 | 6 => {
                version += 1;
                let len = 300 + 1900 * (opno % 5);
                let content = version_content(version, len);
                // Register the attempt before issuing it: a cut can
                // preserve a prefix of a write that "failed" later.
                suite.push_version(&path, content.clone());
                fs.write_file(&path, &content).map(|_| ()).map(|()| {
                    live[target] = Some(content);
                })
            }
            2 => {
                let src_i = (opno + 1) % HOT_FILES;
                let src = format!("/hot{src_i}");
                fs.rename(&src, &path).map(|()| {
                    if let Some(content) = live[src_i].take() {
                        suite.push_version(&path, content.clone());
                        live[target] = Some(content);
                    }
                })
            }
            3 => fs.unlink(&path).map(|()| {
                live[target] = None;
            }),
            5 => fs.flush(),
            // An explicit cleaner pass, so relocation chunks are part of
            // the enumerated journal too.
            7 => fs.clean_pass().map(|_| ()),
            _ => unreachable!(),
        };
        if let Err(e) = r {
            if !tolerable(&e) {
                return Err(format!("op {opno}: {e}"));
            }
        }
        // A mid-trace checkpoint roughly every 10 ops: cuts straddling
        // the region write are the states §4.1's alternation exists for.
        if opno % 10 == 9 {
            fs.sync().map_err(|e| format!("op {opno} sync: {e}"))?;
        }
    }
    fs.flush().map_err(|e| format!("final flush: {e}"))?;

    Ok((fs.into_device().into_crash(), suite))
}

/// Greedily shrinks a failing spec: keep dropping single elements while
/// the materialized image still violates the suite.
fn minimize(
    disk: &CrashDisk,
    suite: &InvariantSuite,
    cfg: LfsConfig,
    spec: &CrashSpec,
) -> (CrashSpec, usize) {
    let still_fails = |cand: &CrashSpec| -> bool {
        match cand.materialize(disk) {
            Ok(img) => !suite.verify_device(img, cfg).0.is_ok(),
            Err(_) => false,
        }
    };
    let mut cur = spec.clone();
    let mut tried = 0usize;
    loop {
        let mut improved = false;
        for step in 0..cur.shrink_steps() {
            if let Some(cand) = cur.shrink(step) {
                tried += 1;
                if still_fails(&cand) {
                    cur = cand;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return (cur, tried);
        }
    }
}

struct Failure {
    spec: CrashSpec,
    lines: Vec<String>,
}

fn main() {
    let opts = parse_args();
    let cfg = LfsConfig::small();

    let recorded = if opts.queue > 1 {
        record_trace(opts.ops, |d| QueuedDev::new(d, opts.queue))
    } else {
        record_trace(opts.ops, |d| d)
    };
    let (disk, suite) = match recorded {
        Ok(v) => v,
        Err(e) => {
            eprintln!("crash_explore: trace recording failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "crash_explore: trace recorded: {} ops, {} journaled writes, {} fences, {} block cuts{}",
        opts.ops,
        disk.num_writes(),
        disk.fence_points().len(),
        disk.num_block_cuts(),
        if opts.queue > 1 {
            format!(" (queue depth {})", opts.queue)
        } else {
            String::new()
        }
    );

    let budget = ModelCheckBudget {
        max_subsets_per_cut: opts.subsets,
        reorder_window: opts.window,
        max_states: opts.max_states,
        ..ModelCheckBudget::default()
    };
    let start = Instant::now();
    let mut failure: Option<Failure> = None;
    let checked = ModelCheck::new(&disk, budget).explore(|image: MemDisk, spec| {
        let (report, _) = suite.verify_device(image, cfg);
        if report.is_ok() {
            return true;
        }
        failure = Some(Failure {
            spec: spec.clone(),
            lines: report.failures(),
        });
        false // stop at the first violation; it will be minimized below
    });
    let stats = match checked {
        Ok(s) => s,
        Err(e) => {
            eprintln!("crash_explore: enumeration failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = start.elapsed().as_secs_f64();

    println!(
        "crash_explore: {} states ({} cut, {} torn-subset, {} reorder), {} unique, \
         {} duplicate ({:.1}% dedup), {} subsets beyond budget{}",
        stats.visited(),
        stats.cut_states,
        stats.subset_states,
        stats.reorder_states,
        stats.unique,
        stats.duplicates,
        stats.dedup_rate().unwrap_or(0.0) * 100.0,
        stats.subsets_skipped,
        if stats.truncated { " [truncated]" } else { "" }
    );
    println!(
        "crash_explore: {:.2}s, {:.0} states/s (mount + full check + content verify per state)",
        elapsed,
        stats.visited() as f64 / elapsed.max(1e-9)
    );
    if opts.verbose {
        println!(
            "crash_explore: budget: subsets/cut ≤ {}, reorder window {}, max states {}",
            opts.subsets, opts.window, opts.max_states
        );
    }

    if let Some(path) = &opts.json {
        let line = format!(
            "{{\"tool\":\"crash_explore\",\"ops\":{},\"queue\":{},\"journal_writes\":{},\"block_cuts\":{},\
             \"states\":{},\"cut_states\":{},\"subset_states\":{},\"reorder_states\":{},\
             \"unique\":{},\"duplicates\":{},\"subsets_skipped\":{},\"truncated\":{},\
             \"elapsed_s\":{:.3},\"states_per_s\":{:.0},\"violations\":{}}}",
            opts.ops,
            opts.queue,
            disk.num_writes(),
            disk.num_block_cuts(),
            stats.visited(),
            stats.cut_states,
            stats.subset_states,
            stats.reorder_states,
            stats.unique,
            stats.duplicates,
            stats.subsets_skipped,
            stats.truncated,
            elapsed,
            stats.visited() as f64 / elapsed.max(1e-9),
            u64::from(failure.is_some()),
        );
        // Append, like every other bench_results JSONL producer: one
        // row per run, so sweeps over ops/queue/budget accumulate.
        let res = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| std::io::Write::write_all(&mut f, (line + "\n").as_bytes()));
        if let Err(e) = res {
            eprintln!("crash_explore: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("crash_explore: stats appended to {path}");
    }

    if let Some(f) = failure {
        eprintln!("crash_explore: INVARIANT VIOLATION at state {}", f.spec);
        for line in &f.lines {
            eprintln!("  {line}");
        }
        let (min, tried) = minimize(&disk, &suite, cfg, &f.spec);
        let min_lines = min
            .materialize(&disk)
            .map(|img| suite.verify_device(img, cfg).0.failures())
            .unwrap_or_default();
        eprintln!(
            "crash_explore: minimized repro ({} shrink candidates tried): {min}",
            tried
        );
        for line in &min_lines {
            eprintln!("  {line}");
        }
        eprintln!(
            "crash_explore: replay: rerun with identical flags; the trace is deterministic \
             and the spec above re-materializes the failing image"
        );
        std::process::exit(1);
    }

    if opts.min_states > 0 && stats.unique < opts.min_states {
        eprintln!(
            "crash_explore: only {} unique states (< required {})",
            stats.unique, opts.min_states
        );
        std::process::exit(1);
    }
    println!("crash_explore: all invariants hold over every enumerated state");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The state space is only a proof if two runs enumerate the same
    /// thing: the scripted trace must journal bit-identical writes.
    #[test]
    fn trace_is_deterministic() {
        let (a, _) = record_trace(30, |d| d).unwrap();
        let (b, _) = record_trace(30, |d| d).unwrap();
        assert_eq!(a.num_writes(), b.num_writes());
        assert_eq!(a.num_block_cuts(), b.num_block_cuts());
        let ia = a.image_after(a.num_writes()).unwrap();
        let ib = b.image_after(b.num_writes()).unwrap();
        assert_eq!(ia.image(), ib.image());
    }

    /// The ring must not change what reaches the journal — the queued
    /// trace must enumerate the same final image as the direct one.
    #[test]
    fn queued_trace_matches_direct() {
        let (a, _) = record_trace(30, |d| d).unwrap();
        let (b, _) = record_trace(30, |d| QueuedDev::new(d, 4)).unwrap();
        let ia = a.image_after(a.num_writes()).unwrap();
        let ib = b.image_after(b.num_writes()).unwrap();
        assert_eq!(ia.image(), ib.image());
    }

    /// Greedy shrinking terminates and lands on a spec that still fails.
    /// A suite expecting a never-written file fails on *every* state, so
    /// the minimum is the empty spec.
    #[test]
    fn minimize_reaches_a_minimal_failing_spec() {
        let (disk, _) = record_trace(20, |d| d).unwrap();
        let mut suite = InvariantSuite::new();
        suite.expect_exact("/never-written", b"x".to_vec());
        let full = CrashSpec::prefix(disk.num_writes());
        let (min, tried) = minimize(&disk, &suite, LfsConfig::small(), &full);
        assert!(tried > 0);
        assert!(
            min.persisted.is_empty(),
            "minimal spec should be empty: {min}"
        );
        assert!(min.torn.is_none());
        let img = min.materialize(&disk).unwrap();
        assert!(!suite.verify_device(img, LfsConfig::small()).0.is_ok());
    }

    /// Every enumerated state of the canonical trace satisfies the
    /// recorded suite — the in-process version of the CI smoke.
    #[test]
    fn bounded_exploration_holds_invariants() {
        let (disk, suite) = record_trace(30, |d| d).unwrap();
        let budget = ModelCheckBudget {
            max_subsets_per_cut: 64,
            max_states: 2000,
            ..ModelCheckBudget::default()
        };
        let mut bad = 0u32;
        let stats = ModelCheck::new(&disk, budget)
            .explore(|img, _| {
                if !suite.verify_device(img, LfsConfig::small()).0.is_ok() {
                    bad += 1;
                }
                true
            })
            .unwrap();
        assert_eq!(bad, 0);
        assert!(stats.unique > 50, "too few states: {}", stats.unique);
    }
}
