//! `mklfs` — format a disk image file as a log-structured file system.
//!
//! Usage: `mklfs <image-path> <size-mb> [--seg-kb 512|1024]`

use blockdev::FileDisk;
use lfs_core::{Lfs, LfsConfig};
use vfs::FileSystem;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: mklfs <image-path> <size-mb> [--seg-kb 512|1024]");
        std::process::exit(2);
    }
    let path = &args[1];
    let size_mb: u64 = args[2].parse().unwrap_or_else(|_| {
        eprintln!("bad size: {}", args[2]);
        std::process::exit(2);
    });
    let mut cfg = LfsConfig::default();
    if let Some(i) = args.iter().position(|a| a == "--seg-kb") {
        match args.get(i + 1).map(String::as_str) {
            Some("512") => cfg = cfg.with_half_megabyte_segments(),
            Some("1024") => {}
            other => {
                eprintln!("bad --seg-kb value: {other:?} (use 512 or 1024)");
                std::process::exit(2);
            }
        }
    }
    let disk = FileDisk::create(path, size_mb * 256).unwrap_or_else(|e| {
        eprintln!("mklfs: cannot create {path}: {e}");
        std::process::exit(1);
    });
    let mut fs = Lfs::format(disk, cfg).unwrap_or_else(|e| {
        eprintln!("mklfs: format failed: {e}");
        std::process::exit(1);
    });
    if let Err(e) = fs.sync() {
        eprintln!("mklfs: sync failed: {e}");
        std::process::exit(1);
    }
    let sb = fs.superblock();
    println!(
        "formatted {path}: {} MB, {} segments of {} KB, {} max inodes",
        size_mb,
        sb.nsegments,
        sb.seg_blocks * 4,
        sb.max_inodes
    );
}
