//! `lfsdump` — inspect an LFS disk image: superblock, checkpoint regions,
//! segment states, and the directory tree.
//!
//! Usage: `lfsdump <image-path> [--segments] [--tree] [--histogram]`

use blockdev::{BlockDevice, FileDisk, BLOCK_SIZE};
use lfs_core::checkpoint::Checkpoint;
use lfs_core::superblock::Superblock;
use lfs_core::usage::SegState;
use lfs_core::{Lfs, LfsConfig};
use vfs::{FileSystem, FsError};

/// Exit code for a structurally corrupt image (vs. 1 for I/O errors).
const EXIT_CORRUPT: i32 = 2;

fn exit_for(e: &FsError) -> i32 {
    match e {
        FsError::Corrupt(_) => EXIT_CORRUPT,
        _ => 1,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 2 {
        eprintln!("usage: lfsdump <image-path> [--segments] [--tree] [--histogram]");
        std::process::exit(2);
    }
    let path = &args[1];
    let show_segments = args.iter().any(|a| a == "--segments");
    let show_tree = args.iter().any(|a| a == "--tree");
    let show_histogram = args.iter().any(|a| a == "--histogram");

    let mut disk = FileDisk::open(path).unwrap_or_else(|e| {
        eprintln!("lfsdump: cannot open {path}: {e}");
        std::process::exit(1);
    });

    // Superblock.
    let mut buf = [0u8; BLOCK_SIZE];
    if let Err(e) = disk.read_block(0, &mut buf) {
        eprintln!("lfsdump: cannot read superblock: {e}");
        std::process::exit(1);
    }
    let sb = match Superblock::decode(&buf) {
        Ok(sb) => sb,
        Err(e) => {
            eprintln!("lfsdump: {e}");
            std::process::exit(exit_for(&e));
        }
    };
    println!("superblock:");
    println!(
        "  segments:      {} x {} KB",
        sb.nsegments,
        sb.seg_blocks * 4
    );
    println!("  max inodes:    {}", sb.max_inodes);
    println!("  device blocks: {}", sb.device_blocks);

    // Checkpoint regions.
    for (i, addr) in sb.checkpoint_addrs().iter().enumerate() {
        match Checkpoint::read_from(&mut disk, *addr) {
            Ok(cp) => println!(
                "checkpoint {i}: seq {} epoch {} time {} log head seg {} off {} ({} imap blocks, {} usage blocks)",
                cp.seq, cp.epoch, cp.timestamp, cp.cur_seg, cp.cur_off,
                cp.imap_addrs.len(), cp.usage_addrs.len()
            ),
            Err(e) => println!("checkpoint {i}: INVALID ({e})"),
        }
    }

    // Mount (read-only interrogation).
    let mut fs = Lfs::mount(disk, LfsConfig::default()).unwrap_or_else(|e| {
        eprintln!("lfsdump: mount failed: {e}");
        std::process::exit(exit_for(&e));
    });
    let s = fs.statfs().unwrap_or_else(|e| {
        eprintln!("lfsdump: statfs failed: {e}");
        std::process::exit(exit_for(&e));
    });
    println!(
        "mounted: {} files, {:.1} MB live ({:.0}% of {:.0} MB)",
        s.num_files,
        s.live_bytes as f64 / (1 << 20) as f64,
        s.utilization() * 100.0,
        s.total_bytes as f64 / (1 << 20) as f64
    );

    if show_segments {
        println!("\nsegments:");
        for (i, (state, u)) in fs.segment_snapshot().into_iter().enumerate() {
            let tag = match state {
                SegState::Clean => "clean",
                SegState::Active => "ACTIVE",
                SegState::Dirty => "dirty",
                SegState::PendingFree => "pending-free",
            };
            println!("  seg {i:4}  {tag:12}  u={u:.3}");
        }
    }

    if show_histogram {
        // The Figure 10 view of this image: utilization distribution.
        let snap = fs.segment_snapshot();
        const BUCKETS: usize = 10;
        let mut counts = [0usize; BUCKETS];
        let mut clean = 0usize;
        for (state, u) in &snap {
            if matches!(state, SegState::Clean) {
                clean += 1;
            } else {
                counts[((u * (BUCKETS as f64 - 0.001)) as usize).min(BUCKETS - 1)] += 1;
            }
        }
        println!(
            "\nsegment utilization histogram ({} segments, {clean} clean):",
            snap.len()
        );
        let max = counts.iter().copied().max().unwrap_or(1).max(1);
        for (i, &c) in counts.iter().enumerate() {
            let bar = "#".repeat(c * 40 / max);
            println!(
                "  {:>4.0}-{:<3.0}% {c:5} {bar}",
                i as f64 * 100.0 / BUCKETS as f64,
                (i + 1) as f64 * 100.0 / BUCKETS as f64
            );
        }
    }

    if show_tree {
        println!("\ntree:");
        print_tree(&mut fs, "/", 1);
    }
}

fn print_tree(fs: &mut Lfs<FileDisk>, path: &str, depth: usize) {
    let Ok(entries) = fs.readdir(path) else {
        return;
    };
    for e in entries {
        let child = if path == "/" {
            format!("/{}", e.name)
        } else {
            format!("{path}/{}", e.name)
        };
        let meta = fs.metadata(e.ino).ok();
        let size = meta.map(|m| m.size).unwrap_or(0);
        println!(
            "{:indent$}{} ({} bytes)",
            "",
            e.name,
            size,
            indent = depth * 2
        );
        if e.ftype == vfs::FileType::Directory {
            print_tree(fs, &child, depth + 1);
        }
    }
}
