//! `torture` — randomized crash + fault-injection torture for the LFS.
//!
//! Each seed drives one independent round:
//!
//! 1. Format a small file system on a journaling [`CrashDisk`] wrapped in
//!    a [`FaultDisk`], write a set of *base* files, and checkpoint them.
//! 2. Arm transient read/write faults and write tearing, then run a
//!    randomized workload (writes, unlinks, renames, flushes, syncs) on a
//!    separate set of *hot* files, tracking every content version each
//!    path has ever held.
//! 3. Crash: cut the write journal at random *block* granularity — the
//!    straddling request persists an arbitrary subset of its blocks — and
//!    remount the surviving image on a plain [`MemDisk`].
//! 4. Verify with the shared [`InvariantSuite`] (the same predicate
//!    `lfsck` and the `crash_explore` model checker assert): the mount
//!    must succeed, the offline checker must report clean, the base
//!    files must be byte-exact, and every surviving hot file must hold a
//!    prefix of one of its historical contents (torn intermediate states
//!    are format bugs, not bad luck).
//!
//! With `--rot`, random bit flips are also applied to the crashed image;
//! in that mode a mount may legitimately fail with a corruption error, so
//! only panics and dirty-but-mounted states count as failures.
//!
//! Everything is deterministic in the seed: `torture --start S --seeds 1`
//! replays round S bit-for-bit.
//!
//! With `--metrics <path>` an observability registry is shared across all
//! rounds: operation/disk latency histograms and trace-event tallies
//! accumulate over every seed (counters mirror the final round's stats),
//! and the `lfs-metrics/1` snapshot is written to `<path>` at exit —
//! render it with `lfstop <path>`.
//!
//! With `--queue N` (N > 1) the faulty crash device runs behind an
//! N-deep submission queue, so the workload, the fault injection, and
//! the crash cuts all exercise the queued write path: parked
//! submissions that never reached the journal before the crash are
//! simply lost, which is a legal crash state the verifier already
//! accepts.
//!
//! With `--clients N` (N > 1) the hot-file churn in phase 2 is driven by
//! N client threads hammering one shared mount ([`SharedLfs`])
//! concurrently instead of a single sequential loop. Each client owns a
//! private slice of the hot namespace, so every path still has a
//! single-writer history the verifier can check prefix-of-history
//! against; what the mode exercises is the interleaving of concurrent
//! log appends, group-committed syncs, and lock-free reads with fault
//! injection and the crash cuts. Combine with `--queue 4` to run the
//! whole thing over the queued write path.
//!
//! With `--volumes N` (N > 1) the file system runs on a [`VolumeSet`] of
//! N independent crash+fault disks: each shard keeps its own write
//! journal and fault plan, and every crash cut truncates each shard's
//! journal *independently* — exactly the failure model of real multi-disk
//! arrays, where one spindle can be arbitrarily far ahead of another at
//! power loss. The surviving per-shard images are reassembled into a
//! volume set of plain [`MemDisk`]s and verified with the same invariant
//! suite. Combine with `--queue`/`--clients` to put the fan-out
//! submission path and the shared-mount writer lane under the same
//! torture.
//!
//! With `--streams N` (N > 1) the log runs N temperature-keyed write
//! streams (hot/warm/cold write points per shard), so fault injection
//! and crash cuts exercise the multi-cursor flush and recovery paths.
//!
//! Usage: `torture [--seeds N] [--start S] [--ops K] [--cuts C] [--queue N] [--clients N] [--volumes N] [--streams N] [--rot] [--verbose] [--metrics PATH]`

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{
    CrashDisk, FaultCounts, FaultDisk, FaultPlan, MemDisk, QueueDevice, QueuedDev, VolumeSet,
    BLOCK_SIZE,
};
use lfs_core::layout::SEGMENTS_START;
use lfs_core::{InvariantReport, InvariantSuite, Lfs, LfsConfig, SharedLfs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vfs::{FileSystem, FsError};

const DISK_BLOCKS: u64 = 512;
const HOT_FILES: usize = 8;
const BASE_FILES: usize = 6;
/// Private hot files per client in `--clients` mode.
const CLIENT_FILES: usize = 3;

struct Options {
    seeds: u64,
    start: u64,
    ops: usize,
    cuts: usize,
    queue: usize,
    clients: usize,
    volumes: usize,
    streams: u32,
    rot: bool,
    verbose: bool,
    metrics: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: torture [--seeds N] [--start S] [--ops K] [--cuts C] [--queue N] [--clients N] \
         [--volumes N] [--streams N] [--rot] [--verbose] [--metrics PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        seeds: 10,
        start: 0,
        ops: 500,
        cuts: 3,
        queue: 1,
        clients: 1,
        volumes: 1,
        streams: 1,
        rot: false,
        verbose: false,
        metrics: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> u64 {
            *i += 1;
            args.get(*i)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--seeds" => opts.seeds = take(&mut i),
            "--start" => opts.start = take(&mut i),
            "--ops" => opts.ops = take(&mut i) as usize,
            "--cuts" => opts.cuts = take(&mut i) as usize,
            "--queue" => opts.queue = (take(&mut i) as usize).max(1),
            "--clients" => opts.clients = (take(&mut i) as usize).max(1),
            "--volumes" => opts.volumes = (take(&mut i) as usize).max(1),
            "--streams" => opts.streams = (take(&mut i) as u32).max(1),
            "--rot" => opts.rot = true,
            "--metrics" => {
                i += 1;
                opts.metrics = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--verbose" => opts.verbose = true,
            _ => usage(),
        }
        i += 1;
    }
    opts
}

fn hot_path(n: usize) -> String {
    format!("/hot{n}")
}

fn client_path(cid: usize, n: usize) -> String {
    format!("/c{cid}h{n}")
}

fn base_path(n: usize) -> String {
    format!("/base{n}")
}

/// Version-tagged file content: unique enough that distinct versions never
/// collide, cheap enough to generate thousands of times.
fn version_content(seed: u64, version: u32, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    for (i, b) in v.iter_mut().enumerate() {
        *b = (seed as u8)
            .wrapping_add(version as u8)
            .wrapping_add(i as u8)
            .wrapping_mul(31);
    }
    if len >= 8 {
        v[..4].copy_from_slice(&version.to_le_bytes());
        v[4..8].copy_from_slice(&(seed as u32).to_le_bytes());
    }
    v
}

/// Tolerable workload-op outcomes: namespace races the generator walks
/// into on purpose. Anything else is a real failure.
fn tolerable(e: &FsError) -> bool {
    matches!(
        e,
        FsError::NotFound
            | FsError::AlreadyExists
            | FsError::NoSpace
            | FsError::DirectoryNotEmpty
            | FsError::IsADirectory
            | FsError::NotADirectory
    )
}

/// Access to the fault/crash layers of the torture device, whether it is
/// used directly, behind a submission queue, or sharded across a volume
/// set (one fault/journal layer per shard).
trait TortureDev: QueueDevice {
    /// Number of independent fault/journal layers (shards).
    fn nfaults(&self) -> usize {
        1
    }
    fn fault(&self, i: usize) -> &FaultDisk<CrashDisk>;
    fn fault_mut(&mut self, i: usize) -> &mut FaultDisk<CrashDisk>;
}

impl TortureDev for FaultDisk<CrashDisk> {
    fn fault(&self, _i: usize) -> &FaultDisk<CrashDisk> {
        self
    }
    fn fault_mut(&mut self, _i: usize) -> &mut FaultDisk<CrashDisk> {
        self
    }
}

impl TortureDev for QueuedDev<FaultDisk<CrashDisk>> {
    fn fault(&self, _i: usize) -> &FaultDisk<CrashDisk> {
        self.inner()
    }
    fn fault_mut(&mut self, _i: usize) -> &mut FaultDisk<CrashDisk> {
        self.inner_mut()
    }
}

impl<D: TortureDev> TortureDev for VolumeSet<D> {
    fn nfaults(&self) -> usize {
        self.num_shards()
    }
    fn fault(&self, i: usize) -> &FaultDisk<CrashDisk> {
        self.shard(i).fault(0)
    }
    fn fault_mut(&mut self, i: usize) -> &mut FaultDisk<CrashDisk> {
        self.shard_mut(i).fault_mut(0)
    }
}

/// Per-shard disk size: `--volumes 1` keeps the historical geometry;
/// sharded runs split roughly the same total across shards, rounded to
/// whole segments (the stripe unit).
fn shard_blocks(total: u64, volumes: usize, seg_blocks: u64) -> u64 {
    if volumes == 1 {
        return total;
    }
    let stripes = (total.saturating_sub(SEGMENTS_START)).div_ceil(seg_blocks);
    let per_shard = stripes.div_ceil(volumes as u64).max(6);
    SEGMENTS_START + per_shard * seg_blocks
}

/// The fresh per-shard fault/journal stack for one round.
fn fresh_shards(seed: u64, blocks: u64, volumes: usize) -> Vec<FaultDisk<CrashDisk>> {
    (0..volumes as u64)
        .map(|i| FaultDisk::new(CrashDisk::new(blocks), FaultPlan::new(seed ^ (i << 48) ^ i)))
        .collect()
}

/// Sums the injected-fault counters over every shard.
fn summed_fault_counts<D: TortureDev>(dev: &D) -> FaultCounts {
    let mut total = FaultCounts::default();
    for i in 0..dev.nfaults() {
        let c = dev.fault(i).counts();
        total.read_faults += c.read_faults;
        total.write_faults += c.write_faults;
        total.torn_writes += c.torn_writes;
    }
    total
}

/// Block-granular positions of a shard journal's fence barriers.
fn fence_block_positions(j: &CrashDisk) -> Vec<usize> {
    let mut prefix = Vec::with_capacity(j.num_writes() + 1);
    let mut acc = 0usize;
    prefix.push(0);
    for i in 0..j.num_writes() {
        acc += j.write_record(i).map(|w| w.nblocks).unwrap_or(0);
        prefix.push(acc);
    }
    j.fence_points().iter().map(|&p| prefix[p]).collect()
}

/// One crash: cut every shard's write journal at an independently drawn
/// block count (with per-shard tearing of the straddling request, and
/// `--rot` bit flips), returning the surviving per-shard images plus a
/// replay tag naming each shard's cut.
///
/// Cross-shard skew is bounded by the global fences: the file system
/// only issues a post-fence write (a checkpoint, say) after the fence
/// completed on *every* shard, so a crash can tear shards against each
/// other only within one fence window — a surviving checkpoint must
/// never reference pre-fence blocks some other spindle lost. A single
/// volume keeps the historical unconstrained draw (a one-journal prefix
/// respects its own fences by construction).
fn torn_shard_images<D: TortureDev>(
    dev: &D,
    rng: &mut StdRng,
    opts: &Options,
    seed: u64,
    c: usize,
) -> Result<(Vec<Vec<u8>>, String), String> {
    let n = dev.nfaults();
    let window = if n > 1 {
        let nwindows = (0..n)
            .map(|i| dev.fault(i).inner().fence_points().len())
            .min()
            .unwrap_or(0);
        Some(rng.gen_range(0usize..nwindows + 1))
    } else {
        None
    };
    let mut imgs = Vec::new();
    let mut cuts = Vec::new();
    for i in 0..n {
        let journal = dev.fault(i).inner();
        let max_cut = journal.num_block_cuts();
        let (lo, hi) = match window {
            None => (0, max_cut),
            Some(w) => {
                let fences = fence_block_positions(journal);
                let lo = if w == 0 { 0 } else { fences[w - 1] };
                let hi = fences.get(w).copied().unwrap_or(max_cut);
                (lo, hi)
            }
        };
        let cut = rng.gen_range(lo..hi + 1);
        let torn_seed = rng.gen_range(0u64..u64::MAX);
        let sync_atomic = rng.gen_bool(0.5);
        let image = journal
            .torn_image_after(cut, torn_seed, sync_atomic)
            .map_err(|e| format!("shard {i} cut {cut}/{max_cut}: {e}"))?;
        let mut img = image.into_image();
        if opts.rot {
            for _ in 0..rng.gen_range(1usize..4) {
                let block = rng.gen_range(0usize..img.len() / BLOCK_SIZE);
                let byte = rng.gen_range(0usize..BLOCK_SIZE);
                img[block * BLOCK_SIZE + byte] ^= 1 << rng.gen_range(0u32..8);
            }
        }
        cuts.push(format!("{cut}/{max_cut}"));
        imgs.push(img);
    }
    let tag = format!("seed {seed} cut {c} ([{}] blocks)", cuts.join(" "));
    Ok((imgs, tag))
}

/// Remounts the surviving images — bare [`MemDisk`] for one volume, a
/// reassembled [`VolumeSet`] for several — and asserts the full suite.
fn verify_images(
    suite: &InvariantSuite,
    mut imgs: Vec<Vec<u8>>,
    cfg: LfsConfig,
    obs: &lfs_obs::Obs,
) -> InvariantReport {
    let o = obs.is_on().then(|| obs.clone());
    if imgs.len() == 1 {
        suite
            .verify_device_obs(MemDisk::from_image(imgs.remove(0)), cfg, o)
            .0
    } else {
        let shards: Vec<MemDisk> = imgs.into_iter().map(MemDisk::from_image).collect();
        let set = VolumeSet::new(shards, SEGMENTS_START, cfg.seg_blocks as u64);
        suite.verify_device_obs(set, cfg, o).0
    }
}

/// One torture round. `Err` carries a human-readable diagnosis.
fn run_seed<D: TortureDev>(
    seed: u64,
    opts: &Options,
    obs: &lfs_obs::Obs,
    make: impl FnOnce(Vec<FaultDisk<CrashDisk>>) -> D,
) -> Result<(), String> {
    let cfg = LfsConfig::small().with_streams(opts.streams);
    let mut rng = StdRng::seed_from_u64(seed);

    // Phase 1: quiet device, base files, checkpoint, journal baseline.
    let blocks = shard_blocks(DISK_BLOCKS, opts.volumes, cfg.seg_blocks as u64);
    let disk = make(fresh_shards(seed, blocks, opts.volumes));
    let mut fs = Lfs::format(disk, cfg).map_err(|e| format!("format: {e}"))?;
    if obs.is_on() {
        fs.set_obs(obs.clone());
    }
    // Expectations accumulate into the shared invariant suite as the
    // workload runs; after each crash cut the whole suite is asserted.
    let mut suite = InvariantSuite::new();
    for i in 0..BASE_FILES {
        let content = version_content(seed, i as u32, 2000 + 3000 * i);
        fs.write_file(&base_path(i), &content)
            .map_err(|e| format!("base write: {e}"))?;
        suite.expect_exact(base_path(i), content);
    }
    fs.sync().map_err(|e| format!("base sync: {e}"))?;
    for i in 0..fs.device().nfaults() {
        fs.device_mut()
            .fault_mut(i)
            .inner_mut()
            .checkpoint_baseline();
    }

    // Phase 2: arm each shard's fault plan and churn the hot namespace.
    for i in 0..fs.device().nfaults() {
        let plan_seed = rng.gen_range(0u64..u64::MAX);
        let plan = fs.device_mut().fault_mut(i).plan_mut();
        plan.seed = plan_seed;
        plan.read_fault_rate = 0.1;
        plan.write_fault_rate = 0.15;
        plan.transient_failures = 2; // < the fs retry budget, so ops succeed
        plan.tear_writes = true;
    }
    // Every content version each hot path has ever held lives in the
    // suite; `live` additionally tracks what each path holds *now* so a
    // rename can propagate content to its destination's history.
    let mut live: HashMap<String, Vec<u8>> = HashMap::new();
    let mut version = BASE_FILES as u32;

    for opno in 0..opts.ops {
        let roll = rng.gen_range(0u32..100);
        let r = if roll < 55 {
            let path = hot_path(rng.gen_range(0usize..HOT_FILES));
            version += 1;
            let len = rng.gen_range(0usize..16_000);
            let content = version_content(seed, version, len);
            // Record the attempt *before* issuing it: even a write that
            // fails mid-way (NoSpace) may leave a prefix of this content
            // on disk after a crash.
            suite.push_version(&path, content.clone());
            match fs.write_file(&path, &content) {
                Ok(_) => {
                    live.insert(path, content);
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else if roll < 70 {
            let path = hot_path(rng.gen_range(0usize..HOT_FILES));
            match fs.unlink(&path) {
                Ok(()) => {
                    live.remove(&path);
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else if roll < 80 {
            let src = hot_path(rng.gen_range(0usize..HOT_FILES));
            let dst = hot_path(rng.gen_range(0usize..HOT_FILES));
            match fs.rename(&src, &dst) {
                Ok(()) => {
                    if let Some(content) = live.remove(&src) {
                        suite.push_version(&dst, content.clone());
                        live.insert(dst, content);
                    }
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else if roll < 90 {
            fs.flush()
        } else {
            fs.sync()
        };
        if let Err(e) = r {
            if !tolerable(&e) {
                return Err(format!("op {opno}: {e}"));
            }
        }
    }

    if fs.stats().degraded() {
        return Err("fs went degraded despite transient-only faults".into());
    }
    let fault_counts = summed_fault_counts(fs.device());

    // Phase 3 + 4: crash at random block cuts and verify the survivor.
    // Each shard's journal is cut independently — at power loss one
    // spindle may be arbitrarily far ahead of another.
    for c in 0..opts.cuts {
        let (imgs, tag) = torn_shard_images(fs.device(), &mut rng, opts, seed, c)?;
        // The shared suite runs the whole chain: mount (checkpoint
        // gating + roll-forward), structural check, base-file
        // byte-exactness, and hot-file prefix-of-history (crash
        // atomicity is per *flush*, not per operation: large writes
        // deliberately recover as a correct prefix, and a cut between a
        // create's dirlog chunk and its data chunk leaves the file
        // empty — see `InvariantSuite`).
        let report = verify_images(&suite, imgs, cfg, obs);
        if opts.rot {
            // Rot may corrupt anything, including live data the suite
            // expects: every outcome short of a panic is legal.
            continue;
        }
        if !report.is_ok() {
            return Err(format!("{tag}: {}", report.failures().join("; ")));
        }
    }

    // Counters mirror this (the most recent) round; histograms and trace
    // tallies accumulate across rounds because the sinks are shared.
    fs.publish_metrics();

    if opts.verbose {
        println!(
            "seed {seed}: ok ({} write faults, {} read faults, {} torn, {} retries, {} segs cleaned)",
            fault_counts.write_faults,
            fault_counts.read_faults,
            fault_counts.torn_writes,
            fs.stats().io_retries,
            fs.stats().cleaner.segments_cleaned,
        );
    }
    Ok(())
}

/// One concurrent-clients torture round: the same format → fault-arm →
/// crash-cut → verify pipeline as [`run_seed`], except phase 2 runs
/// `--clients` threads over one [`SharedLfs`] mount. Per-client version
/// logs are merged into the invariant suite after the threads join, so
/// the verifier sees every content version any path ever held no matter
/// how the writer lane interleaved the appends.
fn run_seed_clients<D: TortureDev + Send>(
    seed: u64,
    opts: &Options,
    obs: &lfs_obs::Obs,
    make: impl FnOnce(Vec<FaultDisk<CrashDisk>>) -> D,
) -> Result<(), String> {
    let cfg = LfsConfig::small().with_streams(opts.streams);
    let clients = opts.clients;
    // Scale the disk so N clients' private hot sets (plus cleaner slack)
    // fit; NoSpace under churn is still tolerable, like in classic mode.
    let disk_blocks = DISK_BLOCKS.max(192 * clients as u64);
    let mut rng = StdRng::seed_from_u64(seed);

    // Phase 1: quiet device, base files, checkpoint, journal baseline.
    let blocks = shard_blocks(disk_blocks, opts.volumes, cfg.seg_blocks as u64);
    let disk = make(fresh_shards(seed, blocks, opts.volumes));
    let mut fs = Lfs::format(disk, cfg).map_err(|e| format!("format: {e}"))?;
    if obs.is_on() {
        fs.set_obs(obs.clone());
    }
    let mut suite = InvariantSuite::new();
    for i in 0..BASE_FILES {
        let content = version_content(seed, i as u32, 2000 + 3000 * i);
        fs.write_file(&base_path(i), &content)
            .map_err(|e| format!("base write: {e}"))?;
        suite.expect_exact(base_path(i), content);
    }
    fs.sync().map_err(|e| format!("base sync: {e}"))?;
    for i in 0..fs.device().nfaults() {
        fs.device_mut()
            .fault_mut(i)
            .inner_mut()
            .checkpoint_baseline();
    }

    // Phase 2: arm each shard's fault plan, then let the clients loose on
    // one shared mount.
    for i in 0..fs.device().nfaults() {
        let plan_seed = rng.gen_range(0u64..u64::MAX);
        let plan = fs.device_mut().fault_mut(i).plan_mut();
        plan.seed = plan_seed;
        plan.read_fault_rate = 0.1;
        plan.write_fault_rate = 0.15;
        plan.transient_failures = 2; // < the fs retry budget, so ops succeed
        plan.tear_writes = true;
    }
    let shared = SharedLfs::new(fs);
    let ops_per_client = opts.ops.div_ceil(clients);
    let results: Vec<Result<ClientHistory, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|cid| {
                let mut h = shared.clone();
                s.spawn(move || client_worker(cid, seed, ops_per_client, &mut h))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client thread panicked".into()))
            })
            .collect()
    });
    for r in results {
        for (path, content) in r? {
            suite.push_version(&path, content);
        }
    }

    let fs = shared
        .into_inner()
        .map_err(|_| "shared handle still referenced after join".to_string())?;
    if fs.stats().degraded() {
        return Err("fs went degraded despite transient-only faults".into());
    }
    let fault_counts = summed_fault_counts(fs.device());

    // Phase 3 + 4: crash at random block cuts and verify the survivor —
    // identical to classic mode; concurrency only changed how the log
    // got written, not what a legal crash state looks like.
    for c in 0..opts.cuts {
        let (imgs, tag) = torn_shard_images(fs.device(), &mut rng, opts, seed, c)?;
        let report = verify_images(&suite, imgs, cfg, obs);
        if opts.rot {
            continue;
        }
        if !report.is_ok() {
            return Err(format!(
                "{tag} ({clients} clients): {}",
                report.failures().join("; ")
            ));
        }
    }

    fs.publish_metrics();

    if opts.verbose {
        println!(
            "seed {seed}: ok ({} clients, {} write faults, {} read faults, {} torn, {} retries, {} segs cleaned)",
            clients,
            fault_counts.write_faults,
            fault_counts.read_faults,
            fault_counts.torn_writes,
            fs.stats().io_retries,
            fs.stats().cleaner.segments_cleaned,
        );
    }
    Ok(())
}

/// Version history one client accumulates for the invariant suite:
/// every content any of its paths was ever *asked* to hold.
type ClientHistory = Vec<(String, Vec<u8>)>;

/// One client thread's randomized churn over its private hot files.
/// Returns the version history to merge into the invariant suite
/// (a write that fails mid-way may still leave a prefix on disk after
/// a crash, so attempts are recorded before they are issued).
fn client_worker<D: TortureDev>(
    cid: usize,
    seed: u64,
    ops: usize,
    fs: &mut SharedLfs<D>,
) -> Result<ClientHistory, String> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (cid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC11E);
    let mut history: ClientHistory = Vec::new();
    let mut live: HashMap<String, Vec<u8>> = HashMap::new();
    // Version numbers are disjoint across clients so contents never
    // collide between namespaces.
    let mut version = (cid as u32 + 1) * 100_000;
    for opno in 0..ops {
        let roll = rng.gen_range(0u32..100);
        let r = if roll < 55 {
            let path = client_path(cid, rng.gen_range(0usize..CLIENT_FILES));
            version += 1;
            let len = rng.gen_range(0usize..8_000);
            let content = version_content(seed ^ ((cid as u64) << 32), version, len);
            history.push((path.clone(), content.clone()));
            match fs.write_file(&path, &content) {
                Ok(_) => {
                    live.insert(path, content);
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else if roll < 70 {
            let path = client_path(cid, rng.gen_range(0usize..CLIENT_FILES));
            match fs.unlink(&path) {
                Ok(()) => {
                    live.remove(&path);
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else if roll < 78 {
            let src = client_path(cid, rng.gen_range(0usize..CLIENT_FILES));
            let dst = client_path(cid, rng.gen_range(0usize..CLIENT_FILES));
            match fs.rename(&src, &dst) {
                Ok(()) => {
                    if let Some(content) = live.remove(&src) {
                        history.push((dst.clone(), content.clone()));
                        live.insert(dst, content);
                    }
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else if roll < 88 {
            // Lock-free read path: verify a file this client believes is
            // live still reads back as the content it last wrote.
            let path = client_path(cid, rng.gen_range(0usize..CLIENT_FILES));
            match (live.get(&path), fs.lookup(&path)) {
                (Some(want), Ok(ino)) => match fs.read_to_vec(ino) {
                    Ok(got) if &got == want => Ok(()),
                    Ok(got) => {
                        return Err(format!(
                            "client {cid} op {opno}: {path} read back {} bytes, wanted {}",
                            got.len(),
                            want.len()
                        ));
                    }
                    Err(e) => Err(e),
                },
                (_, Err(e)) => Err(e),
                (None, Ok(_)) => Ok(()),
            }
        } else if roll < 94 {
            fs.flush()
        } else {
            fs.sync()
        };
        if let Err(e) = r {
            if !tolerable(&e) {
                return Err(format!("client {cid} op {opno}: {e}"));
            }
        }
    }
    Ok(history)
}

fn main() {
    let opts = parse_args();
    let obs = if opts.metrics.is_some() {
        lfs_obs::Obs::recording(16_384)
    } else {
        lfs_obs::Obs::off()
    };
    let mut failures = 0u64;
    // Stripe unit for multi-volume runs: one segment, like `Lfs::format`
    // requires.
    let stripe = LfsConfig::small().seg_blocks as u64;
    for seed in opts.start..opts.start + opts.seeds {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let q = opts.queue;
            match (opts.clients > 1, opts.queue > 1, opts.volumes > 1) {
                (false, false, false) => run_seed(seed, &opts, &obs, |mut d| d.remove(0)),
                (false, true, false) => {
                    run_seed(seed, &opts, &obs, |mut d| QueuedDev::new(d.remove(0), q))
                }
                (false, false, true) => run_seed(seed, &opts, &obs, |d| {
                    VolumeSet::new(d, SEGMENTS_START, stripe)
                }),
                (false, true, true) => run_seed(seed, &opts, &obs, |d| {
                    let qd: Vec<_> = d.into_iter().map(|s| QueuedDev::new(s, q)).collect();
                    VolumeSet::new(qd, SEGMENTS_START, stripe)
                }),
                (true, false, false) => run_seed_clients(seed, &opts, &obs, |mut d| d.remove(0)),
                (true, true, false) => {
                    run_seed_clients(seed, &opts, &obs, |mut d| QueuedDev::new(d.remove(0), q))
                }
                (true, false, true) => run_seed_clients(seed, &opts, &obs, |d| {
                    VolumeSet::new(d, SEGMENTS_START, stripe)
                }),
                (true, true, true) => run_seed_clients(seed, &opts, &obs, |d| {
                    let qd: Vec<_> = d.into_iter().map(|s| QueuedDev::new(s, q)).collect();
                    VolumeSet::new(qd, SEGMENTS_START, stripe)
                }),
            }
        }));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => {
                failures += 1;
                eprintln!("torture: seed {seed} FAILED: {msg}");
            }
            Err(_) => {
                failures += 1;
                eprintln!("torture: seed {seed} PANICKED (replay with --start {seed} --seeds 1)");
            }
        }
    }
    println!(
        "torture: {}/{} seeds passed{}{}{}{}",
        opts.seeds - failures,
        opts.seeds,
        if opts.queue > 1 {
            format!(" (queue depth {})", opts.queue)
        } else {
            String::new()
        },
        if opts.clients > 1 {
            format!(" ({} clients)", opts.clients)
        } else {
            String::new()
        },
        if opts.volumes > 1 {
            format!(" ({} volumes)", opts.volumes)
        } else {
            String::new()
        },
        if opts.rot { " (rot mode)" } else { "" }
    );
    if let Some(path) = &opts.metrics {
        if let Some(reg) = obs.registry.as_deref() {
            reg.counter("torture.seeds_run").store(opts.seeds);
            reg.counter("torture.seeds_failed").store(failures);
        }
        let snap = obs.snapshot().expect("metrics mode always has a registry");
        if let Err(e) = snap.save(std::path::Path::new(path)) {
            eprintln!("torture: cannot write metrics snapshot {path}: {e}");
            std::process::exit(1);
        }
        println!("torture: metrics snapshot saved to {path}");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
