//! `lfsck` — offline consistency check of an LFS disk image.
//!
//! Mounts the image (running roll-forward recovery if the log extends
//! past the last checkpoint) and runs the shared [`InvariantSuite`] —
//! the same predicate the `torture` sampler and the `crash_explore`
//! model checker assert on every enumerated crash state: inode map ↔
//! inodes ↔ block pointers ↔ segment usage table, directory-tree
//! connectivity, and link counts. `lfsck` has no content expectations to
//! register, so its suite checks recoverability and structure only.
//!
//! Usage: `lfsck <image-path>`

use blockdev::FileDisk;
use lfs_core::{InvariantSuite, LfsConfig};

/// Exit code for an image whose on-disk structures are corrupt — distinct
/// from exit 1 (inconsistent-but-parseable, or an I/O error) so scripts
/// can triage.
const EXIT_CORRUPT: i32 = 2;

fn exit_for(msg: &str) -> i32 {
    // `FsError::Corrupt` renders as "corrupt: ..." — keep triage working
    // across the report's string boundary.
    if msg.contains("corrupt") {
        EXIT_CORRUPT
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 2 {
        eprintln!("usage: lfsck <image-path>");
        std::process::exit(2);
    }
    let path = &args[1];
    let disk = FileDisk::open(path).unwrap_or_else(|e| {
        eprintln!("lfsck: cannot open {path}: {e}");
        std::process::exit(1);
    });
    let (report, _fs) = InvariantSuite::new().verify_device(disk, LfsConfig::default());
    if let Some(e) = &report.mount_error {
        eprintln!("lfsck: mount failed: {e}");
        std::process::exit(exit_for(e));
    }
    if let Some(e) = &report.check_error {
        eprintln!("lfsck: check aborted: {e}");
        std::process::exit(exit_for(e));
    }
    if let Some(check) = &report.check {
        println!(
            "lfsck: {} files, {} directories, {} data blocks",
            check.files, check.dirs, check.data_blocks
        );
    }
    if report.is_ok() {
        println!("lfsck: clean");
    } else {
        let failures = report.failures();
        println!("lfsck: {} error(s):", failures.len());
        for e in &failures {
            println!("  {e}");
        }
        std::process::exit(1);
    }
}
