//! `lfsck` — offline consistency check of an LFS disk image.
//!
//! Mounts the image (running roll-forward recovery if the log extends
//! past the last checkpoint) and verifies every cross-structure
//! invariant: inode map ↔ inodes ↔ block pointers ↔ segment usage table,
//! plus directory-tree connectivity and link counts.
//!
//! Usage: `lfsck <image-path>`

use blockdev::FileDisk;
use lfs_core::{Lfs, LfsConfig};
use vfs::FsError;

/// Exit code for an image whose on-disk structures are corrupt — distinct
/// from exit 1 (inconsistent-but-parseable, or an I/O error) so scripts
/// can triage.
const EXIT_CORRUPT: i32 = 2;

fn exit_for(e: &FsError) -> i32 {
    match e {
        FsError::Corrupt(_) => EXIT_CORRUPT,
        _ => 1,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 2 {
        eprintln!("usage: lfsck <image-path>");
        std::process::exit(2);
    }
    let path = &args[1];
    let disk = FileDisk::open(path).unwrap_or_else(|e| {
        eprintln!("lfsck: cannot open {path}: {e}");
        std::process::exit(1);
    });
    let mut fs = Lfs::mount(disk, LfsConfig::default()).unwrap_or_else(|e| {
        eprintln!("lfsck: mount failed: {e}");
        std::process::exit(exit_for(&e));
    });
    let report = fs.check().unwrap_or_else(|e| {
        eprintln!("lfsck: check aborted: {e}");
        std::process::exit(exit_for(&e));
    });
    println!(
        "lfsck: {} files, {} directories, {} data blocks",
        report.files, report.dirs, report.data_blocks
    );
    if report.is_clean() {
        println!("lfsck: clean");
    } else {
        println!("lfsck: {} error(s):", report.errors.len());
        for e in &report.errors {
            println!("  {e}");
        }
        std::process::exit(1);
    }
}
