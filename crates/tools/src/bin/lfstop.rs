//! `lfstop` — render an `lfs-metrics/1` snapshot as human-readable tables.
//!
//! The snapshot comes from `run_all --metrics out.json` or
//! `torture --metrics out.json` (see the "Metrics snapshot schema" section
//! of EXPERIMENTS.md). Shows counters, gauges, latency histograms with
//! p50/p90/p99, and trace-event tallies.
//!
//! Usage: `lfstop <snapshot.json>`

use lfs_obs::MetricsSnapshot;

/// Minimal two-space-separated aligned table.
fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: &[String]| -> String {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}", c, w = widths[i]));
            if i + 1 < cells.len() {
                out.push_str("  ");
            }
        }
        out.trim_end().to_string() + "\n"
    };
    let mut out = line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the per-shard table of a multi-volume snapshot: one row per
/// `shard.<i>.*` metric family, next to (not instead of) the aggregate
/// counters. Busy% is relative to the busiest shard, so a skewed or
/// starved disk stands out as a low row. Returns `false` when the
/// snapshot has no shard metrics (single-volume runs).
fn print_shards(snap: &MetricsSnapshot) -> bool {
    let counter = |i: usize, f: &str| snap.counters.get(&format!("shard.{i}.{f}")).copied();
    let gauge = |i: usize, f: &str| snap.gauges.get(&format!("shard.{i}.{f}")).copied();
    let mut n = 0;
    while counter(n, "busy_ns").is_some() {
        n += 1;
    }
    if n == 0 {
        return false;
    }
    let max_busy = (0..n)
        .filter_map(|i| counter(i, "busy_ns"))
        .max()
        .unwrap_or(0)
        .max(1);
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let c = |f: &str| counter(i, f).map_or("-".into(), |v| v.to_string());
            vec![
                i.to_string(),
                format!(
                    "{:.1}%",
                    counter(i, "busy_ns").unwrap_or(0) as f64 * 100.0 / max_busy as f64
                ),
                c("writes"),
                c("reads"),
                counter(i, "bytes_written")
                    .map_or("-".into(), |v| format!("{:.1}", v as f64 / 1e6)),
                c("queue.submitted"),
                gauge(i, "queue.mean_in_flight_depth").map_or("-".into(), |v| format!("{v:.2}")),
                gauge(i, "clean_segs").map_or("-".into(), |v| format!("{v:.0}")),
                c("cleaner.segments_cleaned"),
            ]
        })
        .collect();
    println!("Shards (busy% of busiest):");
    println!(
        "{}",
        render(
            &["shard", "busy", "writes", "reads", "MBw", "subs", "qdepth", "clean", "cleaned"],
            &rows
        )
    );
    true
}

/// Renders the cleaner panel: active policy, volume cleaned, overall
/// write cost, the utilization-at-clean histogram (`Figure 6`'s
/// distribution as deciles), and per-temperature-stream fill rates.
/// Returns `false` when the snapshot carries no cleaner metrics.
fn print_cleaner(snap: &MetricsSnapshot) -> bool {
    let c = |name: &str| snap.counters.get(name).copied();
    let Some(cleaned) = c("lfs.cleaner.segments_cleaned") else {
        return false;
    };
    let policy = ["greedy", "cost-benefit", "adaptive"]
        .iter()
        .find(|p| c(&format!("lfs.cleaner.policy.{p}")).is_some())
        .copied()
        .unwrap_or("?");
    // Paper write cost: (new + cleaner reads + cleaner writes) / new,
    // with "new" the non-cleaner log traffic.
    let new_bytes: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("lfs.log_bytes."))
        .map(|(_, &v)| v)
        .sum();
    let cr = c("lfs.cleaner.bytes_read").unwrap_or(0);
    let cw = c("lfs.cleaner.bytes_written").unwrap_or(0);
    let wc = if new_bytes > 0 {
        format!("{:.2}", (new_bytes + cr + cw) as f64 / new_bytes as f64)
    } else {
        "-".into()
    };
    println!(
        "Cleaner ({policy}): {cleaned} cleaned ({} empty), {} passes, write cost {wc}",
        c("lfs.cleaner.segments_empty").unwrap_or(0),
        c("lfs.cleaner.passes").unwrap_or(0),
    );

    // Utilization-at-clean histogram: the victim-fullness distribution
    // the bimodal argument is about. A good policy shows mass at both
    // ends and little in the middle.
    let deciles: Vec<u64> = (0..10)
        .map(|i| c(&format!("lfs.cleaner.util_decile.{i}")).unwrap_or(0))
        .collect();
    let total: u64 = deciles.iter().sum();
    if total > 0 {
        let peak = deciles.iter().copied().max().unwrap_or(1).max(1);
        println!("Utilization at clean:");
        for (i, &n) in deciles.iter().enumerate() {
            let bar = "#".repeat((n * 40).div_ceil(peak) as usize);
            println!(
                "  {:.1}-{:.1}  {:>6}  {bar}",
                i as f64 / 10.0,
                (i + 1) as f64 / 10.0,
                n
            );
        }
    }

    // Per-temperature-stream fill rates (stream 0 is the hottest).
    let stream = |i: usize| c(&format!("lfs.stream.{i}.bytes_written"));
    let mut per_stream = Vec::new();
    while let Some(b) = stream(per_stream.len()) {
        per_stream.push(b);
    }
    if per_stream.len() > 1 {
        let total: u64 = per_stream.iter().sum::<u64>().max(1);
        let rows: Vec<Vec<String>> = per_stream
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let label = match i {
                    0 => "hot",
                    _ if i == per_stream.len() - 1 => "cold",
                    _ => "warm",
                };
                vec![
                    i.to_string(),
                    label.to_string(),
                    format!("{:.1}", b as f64 / 1e6),
                    format!("{:.1}%", b as f64 * 100.0 / total as f64),
                ]
            })
            .collect();
        println!("Write streams:");
        println!("{}", render(&["stream", "class", "MBw", "share"], &rows));
    }
    println!();
    true
}

fn print_snapshot(snap: &MetricsSnapshot) {
    print_shards(snap);
    let cleaner_shown = print_cleaner(snap);
    // Keys already rendered in a dedicated panel stay out of the generic
    // dump.
    let in_panel = |k: &str| {
        k.starts_with("shard.")
            || (cleaner_shown && (k.starts_with("lfs.cleaner.") || k.starts_with("lfs.stream.")))
    };
    if !snap.counters.is_empty() {
        println!("Counters:");
        let rows: Vec<Vec<String>> = snap
            .counters
            .iter()
            .filter(|(k, _)| !in_panel(k))
            .map(|(k, v)| vec![k.clone(), v.to_string()])
            .collect();
        println!("{}", render(&["name", "value"], &rows));
    }
    if !snap.gauges.is_empty() {
        println!("Gauges:");
        let rows: Vec<Vec<String>> = snap
            .gauges
            .iter()
            .filter(|(k, _)| !k.starts_with("shard."))
            .map(|(k, v)| vec![k.clone(), format!("{v:.4}")])
            .collect();
        println!("{}", render(&["name", "value"], &rows));
    }
    if !snap.hists.is_empty() {
        println!("Latency histograms (log2 buckets, simulated ns):");
        let rows: Vec<Vec<String>> = snap
            .hists
            .iter()
            .map(|(k, h)| {
                let q = |q: f64| h.quantile(q).map_or("-".into(), fmt_ns);
                vec![
                    k.clone(),
                    h.count.to_string(),
                    h.mean().map_or("-".into(), |m| fmt_ns(m as u64)),
                    q(0.50),
                    q(0.90),
                    q(0.99),
                    fmt_ns(h.max),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &["name", "count", "mean", "p50", "p90", "p99", "max"],
                &rows
            )
        );
    }
    if !snap.trace_counts.is_empty() {
        println!("Trace events:");
        let rows: Vec<Vec<String>> = snap
            .trace_counts
            .iter()
            .map(|(k, v)| vec![k.clone(), v.to_string()])
            .collect();
        println!("{}", render(&["kind", "count"], &rows));
        if snap.trace_dropped > 0 {
            println!(
                "({} events evicted from the trace ring)",
                snap.trace_dropped
            );
        }
    }
}

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: lfstop <snapshot.json>");
        std::process::exit(2);
    };
    let snap = match MetricsSnapshot::load(std::path::Path::new(&path)) {
        Ok(snap) => snap,
        Err(e) => {
            eprintln!("lfstop: cannot load {path}: {e}");
            std::process::exit(1);
        }
    };
    println!("lfs-metrics/1 snapshot: {path}\n");
    print_snapshot(&snap);
}
