//! The "FFS improved" variant: write clustering must reduce I/O requests
//! without changing semantics.

use blockdev::{BlockDevice, DiskModel, SimDisk};
use ffs_baseline::{Ffs, FfsConfig};
use vfs::FileSystem;

fn run(clustered: bool) -> (blockdev::IoStats, Vec<u8>) {
    let cfg = if clustered {
        FfsConfig::small().improved()
    } else {
        FfsConfig::small()
    };
    let mut fs = Ffs::format(SimDisk::new(4096, DiskModel::wren_iv()), cfg).unwrap();
    let ino = fs.create("/big").unwrap();
    let data: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    let before = fs.device().stats();
    fs.write(ino, 0, &data).unwrap();
    fs.sync().unwrap();
    let delta = fs.device().stats().since(&before);
    let back = fs.read_to_vec(ino).unwrap();
    (delta, back)
}

#[test]
fn clustering_reduces_write_requests_same_contents() {
    let (classic, classic_data) = run(false);
    let (improved, improved_data) = run(true);
    assert_eq!(classic_data, improved_data);
    assert!(
        improved.writes < classic.writes,
        "clustered {} vs classic {} write requests",
        improved.writes,
        classic.writes
    );
    // Clustering means fewer positioning events on the simulated disk.
    assert!(improved.positioning_ns <= classic.positioning_ns);
}

#[test]
fn improved_variant_passes_fsck() {
    let mut fs = Ffs::format(
        SimDisk::new(4096, DiskModel::wren_iv()),
        FfsConfig::small().improved(),
    )
    .unwrap();
    fs.mkdir("/d").unwrap();
    for i in 0..50 {
        fs.write_file(&format!("/d/f{i}"), &vec![i as u8; 3000])
            .unwrap();
    }
    for i in (0..50).step_by(3) {
        fs.unlink(&format!("/d/f{i}")).unwrap();
    }
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "{:#?}", report.errors);
}
