//! `fsck` must detect injected corruption — the paper's point about FFS
//! recovery is that *everything* rests on this full-disk scan.

use blockdev::{BlockDevice, MemDisk, WriteKind, BLOCK_SIZE};
use ffs_baseline::{fsck, Ffs, FfsConfig};
use vfs::FileSystem;

/// Builds a populated, synced FFS image.
fn image() -> MemDisk {
    let mut fs = Ffs::format(MemDisk::new(2048), FfsConfig::small()).unwrap();
    fs.mkdir("/d").unwrap();
    for i in 0..20 {
        fs.write_file(&format!("/d/f{i}"), &vec![i as u8; 5000])
            .unwrap();
    }
    fs.link("/d/f0", "/alias").unwrap();
    fs.sync().unwrap();
    fs.into_device()
}

#[test]
fn clean_image_passes() {
    let mut dev = image();
    let report = fsck(&mut dev, &FfsConfig::small()).unwrap();
    assert!(report.is_clean(), "{:#?}", report.errors);
    assert_eq!(report.inodes, 22); // root + dir + 20 files.
}

#[test]
fn corrupt_inode_bitmap_detected() {
    let mut dev = image();
    // Flip a bit in cg 0's inode bitmap (claim a free inode).
    let mut buf = [0u8; BLOCK_SIZE];
    dev.read_block(1, &mut buf).unwrap(); // cg0 inode bitmap.
    buf[5] ^= 0x10;
    dev.write_block(1, &buf, WriteKind::Sync).unwrap();
    let report = fsck(&mut dev, &FfsConfig::small()).unwrap();
    assert!(!report.is_clean());
    assert!(
        report.errors.iter().any(|e| e.contains("inode bitmap")),
        "{:#?}",
        report.errors
    );
}

#[test]
fn corrupt_block_bitmap_detected() {
    let mut dev = image();
    let mut buf = [0u8; BLOCK_SIZE];
    dev.read_block(2, &mut buf).unwrap(); // cg0 block bitmap.
    buf[20] ^= 0xff; // Bits 160-167: inside the data-block range.
    dev.write_block(2, &buf, WriteKind::Sync).unwrap();
    let report = fsck(&mut dev, &FfsConfig::small()).unwrap();
    assert!(!report.is_clean());
    assert!(
        report.errors.iter().any(|e| e.contains("block bitmap")),
        "{:#?}",
        report.errors
    );
}

#[test]
fn zeroed_inode_detected_via_dangling_entry() {
    let mut dev = image();
    // Zero an occupied inode-table slot that a directory entry points at
    // (search all groups: the allocator spreads directories around).
    let cfg = FfsConfig::small();
    let mut zeroed = false;
    'outer: for cg in 0..7u64 {
        let itab0 = 1 + cg * cfg.cg_blocks as u64 + 2;
        for tb in 0..cfg.itab_blocks() as u64 {
            let mut buf = [0u8; BLOCK_SIZE];
            if dev.read_block(itab0 + tb, &mut buf).is_err() {
                continue 'outer;
            }
            for slot in 0..(BLOCK_SIZE / 256) {
                let off = slot * 256;
                let ino = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
                // Skip root (ino 1) — zeroing it changes the failure mode.
                if ino > 2 {
                    buf[off..off + 256].fill(0);
                    dev.write_block(itab0 + tb, &buf, WriteKind::Sync).unwrap();
                    zeroed = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(zeroed, "no inode slot found to zero");
    let report = fsck(&mut dev, &FfsConfig::small()).unwrap();
    assert!(!report.is_clean());
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.contains("missing inode") || e.contains("bitmap")),
        "{:#?}",
        report.errors
    );
}

#[test]
fn wrong_nlink_detected() {
    // Corrupt the nlink of the hard-linked file (offset 8..12 in its
    // inode slot).
    let mut dev = image();
    let mut found = false;
    // Scan every group's inode table for an inode with nlink == 2 (the
    // allocator may have placed /d in any cylinder group).
    let cfg = FfsConfig::small();
    'outer: for cg in 0..7u64 {
        let itab0 = 1 + cg * cfg.cg_blocks as u64 + 2;
        for tb in 0..cfg.itab_blocks() as u64 {
            let mut buf = [0u8; BLOCK_SIZE];
            if dev.read_block(itab0 + tb, &mut buf).is_err() {
                continue 'outer;
            }
            for slot in 0..(BLOCK_SIZE / 256) {
                let off = slot * 256;
                let ino = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
                let nlink = u32::from_le_bytes(buf[off + 8..off + 12].try_into().unwrap());
                if ino != 0 && nlink == 2 {
                    buf[off + 8..off + 12].copy_from_slice(&7u32.to_le_bytes());
                    dev.write_block(itab0 + tb, &buf, WriteKind::Sync).unwrap();
                    found = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(found, "no hard-linked inode found to corrupt");
    let report = fsck(&mut dev, &FfsConfig::small()).unwrap();
    assert!(!report.is_clean());
    assert!(
        report.errors.iter().any(|e| e.contains("nlink")),
        "{:#?}",
        report.errors
    );
}

#[test]
fn fsck_cost_scales_with_disk_size() {
    // The §4 point: FFS consistency checking must scan all metadata, so
    // its cost grows with the disk, not with the damage.
    let small_scan = {
        let mut fs = Ffs::format(MemDisk::new(1024), FfsConfig::small()).unwrap();
        fs.write_file("/one", b"x").unwrap();
        fs.sync().unwrap();
        let mut dev = fs.into_device();
        fsck(&mut dev, &FfsConfig::small()).unwrap().blocks_scanned
    };
    let big_scan = {
        let mut fs = Ffs::format(MemDisk::new(8192), FfsConfig::small()).unwrap();
        fs.write_file("/one", b"x").unwrap();
        fs.sync().unwrap();
        let mut dev = fs.into_device();
        fsck(&mut dev, &FfsConfig::small()).unwrap().blocks_scanned
    };
    assert!(
        big_scan > 6 * small_scan,
        "fsck scanned {small_scan} vs {big_scan} blocks"
    );
}
