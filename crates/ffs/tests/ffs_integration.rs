//! End-to-end tests for the FFS baseline.

use blockdev::{BlockDevice, DiskModel, MemDisk, SimDisk};
use ffs_baseline::{Ffs, FfsConfig};
use proptest::prelude::*;
use vfs::{model::ModelFs, FileSystem, FsError};

fn small_fs() -> Ffs<MemDisk> {
    Ffs::format(MemDisk::new(2048), FfsConfig::small()).unwrap()
}

fn fsck_clean(fs: &mut Ffs<MemDisk>) {
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "fsck: {:#?}", report.errors);
}

#[test]
fn create_write_read_delete() {
    let mut fs = small_fs();
    fs.mkdir("/d").unwrap();
    let ino = fs.write_file("/d/f", b"hello ffs").unwrap();
    assert_eq!(fs.read_to_vec(ino).unwrap(), b"hello ffs");
    fs.unlink("/d/f").unwrap();
    assert!(fs.lookup("/d/f").is_err());
    fsck_clean(&mut fs);
}

#[test]
fn many_small_files() {
    let mut fs = small_fs();
    for i in 0..100 {
        fs.write_file(&format!("/f{i}"), &vec![i as u8; 1024])
            .unwrap();
    }
    for i in 0..100 {
        let ino = fs.lookup(&format!("/f{i}")).unwrap();
        assert_eq!(fs.read_to_vec(ino).unwrap(), vec![i as u8; 1024]);
    }
    fsck_clean(&mut fs);
}

#[test]
fn large_file_spans_indirect() {
    let mut fs = Ffs::format(MemDisk::new(8192), FfsConfig::small()).unwrap();
    let ino = fs.create("/big").unwrap();
    let nblocks = 560u64;
    for b in 0..nblocks {
        fs.write(ino, b * 4096, &vec![(b % 251) as u8; 4096])
            .unwrap();
    }
    fs.sync().unwrap();
    for b in (0..nblocks).step_by(37) {
        let mut buf = vec![0u8; 4096];
        fs.read(ino, b * 4096, &mut buf).unwrap();
        assert_eq!(buf, vec![(b % 251) as u8; 4096], "block {b}");
    }
    fsck_clean(&mut fs);
}

#[test]
fn remount_preserves_data() {
    let mut fs = small_fs();
    fs.mkdir("/dir").unwrap();
    let ino = fs.write_file("/dir/file", &[0x77; 10000]).unwrap();
    fs.sync().unwrap();
    let dev = fs.into_device();
    let mut fs2 = Ffs::mount(dev, FfsConfig::small()).unwrap();
    assert_eq!(fs2.lookup("/dir/file").unwrap(), ino);
    assert_eq!(fs2.read_to_vec(ino).unwrap(), vec![0x77; 10000]);
    fsck_clean(&mut fs2);
}

#[test]
fn sync_metadata_writes_are_counted() {
    let mut fs = small_fs();
    let before = fs.stats().sync_metadata_writes;
    fs.create("/newfile").unwrap();
    let per_create = fs.stats().sync_metadata_writes - before;
    // Two inode writes + directory data + directory inode = at least 4
    // synchronous metadata I/Os per create (§2.3 / Figure 1).
    assert!(per_create >= 4, "only {per_create} sync writes per create");
}

#[test]
fn data_blocks_allocated_contiguously() {
    // Sequential writes should allocate mostly-contiguous blocks so
    // sequential reads are fast (FFS's logical locality).
    let mut fs = small_fs();
    let ino = fs.create("/seq").unwrap();
    fs.write(ino, 0, &vec![1u8; 10 * 4096]).unwrap();
    fs.sync().unwrap();
    // Reading the file back on a SimDisk should show few seeks; here we
    // check allocation directly through read behaviour: byte-identical.
    assert_eq!(fs.read_to_vec(ino).unwrap(), vec![1u8; 10 * 4096]);
    fsck_clean(&mut fs);
}

#[test]
fn no_space_when_reserve_hit() {
    let mut fs = Ffs::format(MemDisk::new(600), FfsConfig::small()).unwrap();
    let mut got_nospace = false;
    for i in 0..200 {
        match fs.write_file(&format!("/f{i}"), &vec![0u8; 16384]) {
            Ok(_) => {}
            Err(FsError::NoSpace) => {
                got_nospace = true;
                break;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(got_nospace);
    // The reserve keeps ~10% free.
    let s = fs.statfs().unwrap();
    assert!(s.live_bytes as f64 / s.total_bytes as f64 <= 0.95);
}

#[test]
fn rename_link_rmdir_semantics() {
    let mut fs = small_fs();
    fs.mkdir("/a").unwrap();
    let ino = fs.write_file("/a/x", b"data").unwrap();
    fs.link("/a/x", "/y").unwrap();
    assert_eq!(fs.metadata(ino).unwrap().nlink, 2);
    fs.rename("/a/x", "/z").unwrap();
    fs.unlink("/z").unwrap();
    assert_eq!(fs.metadata(ino).unwrap().nlink, 1);
    fs.unlink("/y").unwrap();
    assert!(fs.metadata(ino).is_err());
    fs.rmdir("/a").unwrap();
    fsck_clean(&mut fs);
}

#[test]
fn works_on_simdisk() {
    // The benchmarks run FFS over the simulated Wren IV; sanity-check the
    // pairing and that synchronous creates accrue sync busy time.
    let mut fs = Ffs::format(SimDisk::new(4096, DiskModel::wren_iv()), FfsConfig::small()).unwrap();
    let s0 = fs.device().stats();
    fs.write_file("/f", &[1u8; 1024]).unwrap();
    let s1 = fs.device().stats().since(&s0);
    assert!(s1.sync_busy_ns > 0, "create must block on the disk");
    assert!(s1.seeks > 0);
}

fn path_for(n: u8) -> String {
    match n % 10 {
        0 => "/a".into(),
        1 => "/b".into(),
        2 => "/dir1".into(),
        3 => "/dir2".into(),
        4 => "/dir1/x".into(),
        5 => "/dir1/y".into(),
        6 => "/dir2/x".into(),
        7 => "/dir2/sub".into(),
        8 => "/dir2/sub/z".into(),
        _ => "/c".into(),
    }
}

#[derive(Clone, Debug)]
enum Op {
    Create(u8),
    Mkdir(u8),
    Write(u8, u16, u16, u8),
    Truncate(u8, u16),
    Unlink(u8),
    Rmdir(u8),
    Rename(u8, u8),
    Link(u8, u8),
    Remount,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Create),
        any::<u8>().prop_map(Op::Mkdir),
        (any::<u8>(), any::<u16>(), 0u16..5000, any::<u8>())
            .prop_map(|(f, o, l, v)| Op::Write(f, o, l, v)),
        (any::<u8>(), any::<u16>()).prop_map(|(f, s)| Op::Truncate(f, s)),
        any::<u8>().prop_map(Op::Unlink),
        any::<u8>().prop_map(Op::Rmdir),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Rename(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Link(a, b)),
        Just(Op::Remount),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn ffs_matches_model(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let fs = Ffs::format(MemDisk::new(4096), FfsConfig::small()).unwrap();
        let mut model = ModelFs::new();
        let mut fs_opt = Some(fs);
        for (step, op) in ops.iter().enumerate() {
            let fs = fs_opt.as_mut().unwrap();
            match op {
                Op::Create(n) => {
                    let p = path_for(*n);
                    prop_assert_eq!(fs.create(&p).is_ok(), model.create(&p).is_ok(), "step {} create {}", step, p);
                }
                Op::Mkdir(n) => {
                    let p = path_for(*n);
                    prop_assert_eq!(fs.mkdir(&p).is_ok(), model.mkdir(&p).is_ok(), "step {} mkdir {}", step, p);
                }
                Op::Write(f, o, l, v) => {
                    let p = path_for(*f);
                    if let (Ok(a), Ok(b)) = (fs.lookup(&p), model.lookup(&p)) {
                        let data = vec![*v; *l as usize];
                        let ra = fs.write(a, *o as u64, &data);
                        let rb = model.write(b, *o as u64, &data);
                        prop_assert_eq!(ra.is_ok(), rb.is_ok(), "step {} write {}", step, p);
                    }
                }
                Op::Truncate(f, s) => {
                    let p = path_for(*f);
                    if let (Ok(a), Ok(b)) = (fs.lookup(&p), model.lookup(&p)) {
                        let ra = fs.truncate(a, *s as u64);
                        let rb = model.truncate(b, *s as u64);
                        prop_assert_eq!(ra.is_ok(), rb.is_ok(), "step {} truncate {}", step, p);
                    }
                }
                Op::Unlink(n) => {
                    let p = path_for(*n);
                    prop_assert_eq!(fs.unlink(&p).is_ok(), model.unlink(&p).is_ok(), "step {} unlink {}", step, p);
                }
                Op::Rmdir(n) => {
                    let p = path_for(*n);
                    prop_assert_eq!(fs.rmdir(&p).is_ok(), model.rmdir(&p).is_ok(), "step {} rmdir {}", step, p);
                }
                Op::Rename(a, b) => {
                    let from = path_for(*a);
                    let to = path_for(*b);
                    if to.starts_with(&format!("{from}/")) || from == to {
                        continue;
                    }
                    prop_assert_eq!(
                        fs.rename(&from, &to).is_ok(),
                        model.rename(&from, &to).is_ok(),
                        "step {} rename {} {}", step, from, to
                    );
                }
                Op::Link(a, b) => {
                    let ex = path_for(*a);
                    let nw = path_for(*b);
                    prop_assert_eq!(
                        fs.link(&ex, &nw).is_ok(),
                        model.link(&ex, &nw).is_ok(),
                        "step {} link {} {}", step, ex, nw
                    );
                }
                Op::Remount => {
                    let mut f = fs_opt.take().unwrap();
                    f.sync().unwrap();
                    fs_opt = Some(Ffs::mount(f.into_device(), FfsConfig::small()).unwrap());
                }
            }
        }
        // Compare final state.
        let fs = fs_opt.as_mut().unwrap();
        compare(fs, &mut model, "/")?;
        let report = fs.fsck().unwrap();
        prop_assert!(report.is_clean(), "fsck: {:#?}", report.errors);
    }
}

fn compare(fs: &mut Ffs<MemDisk>, model: &mut ModelFs, path: &str) -> Result<(), TestCaseError> {
    let a = fs.readdir(path).unwrap();
    let b = model.readdir(path).unwrap();
    let na: Vec<&str> = a.iter().map(|e| e.name.as_str()).collect();
    let nb: Vec<&str> = b.iter().map(|e| e.name.as_str()).collect();
    prop_assert_eq!(na, nb, "dir {} differs", path);
    for e in &a {
        let child = if path == "/" {
            format!("/{}", e.name)
        } else {
            format!("{path}/{}", e.name)
        };
        match e.ftype {
            vfs::FileType::Directory => compare(fs, model, &child)?,
            vfs::FileType::Regular => {
                let ia = fs.lookup(&child).unwrap();
                let ib = model.lookup(&child).unwrap();
                prop_assert_eq!(
                    fs.read_to_vec(ia).unwrap(),
                    model.read_to_vec(ib).unwrap(),
                    "{} contents",
                    child
                );
                prop_assert_eq!(
                    fs.metadata(ia).unwrap().nlink,
                    model.metadata(ib).unwrap().nlink,
                    "{} nlink",
                    child
                );
            }
        }
    }
    Ok(())
}
