//! Geometry: superblock and cylinder groups.
//!
//! Disk layout:
//!
//! ```text
//! block 0                  superblock
//! then, per cylinder group:
//!   +0                     inode bitmap
//!   +1                     block bitmap
//!   +2 .. +2+itab          inode table
//!   +2+itab .. cg_blocks   data blocks
//! ```

use blockdev::BLOCK_SIZE;
use vfs::{FsError, FsResult};

/// A disk block address.
pub type DiskAddr = u64;

/// The "no address" sentinel.
pub const NIL_ADDR: DiskAddr = u64::MAX;

/// Bytes one on-disk inode occupies.
pub const INODE_DISK_SIZE: usize = 256;

/// Inodes per inode-table block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_DISK_SIZE;

/// Direct pointers per inode.
pub const NUM_DIRECT: usize = 10;

/// Pointers per indirect block.
pub const PTRS_PER_BLOCK: usize = BLOCK_SIZE / 8;

const MAGIC: u64 = 0x4646_5342_4153_4531; // "FFSBASE1"

/// Configuration for [`crate::Ffs`].
#[derive(Clone, Copy, Debug)]
pub struct FfsConfig {
    /// Blocks per cylinder group.
    pub cg_blocks: u32,
    /// Inodes per cylinder group.
    pub inodes_per_cg: u32,
    /// Cluster contiguous dirty data into single large writes — the
    /// "FFS improved" variant (McVoy & Kleiman); without it every data
    /// block is its own I/O, as in the SunOS the paper measured.
    pub clustered: bool,
    /// Write each new file's inode twice, as Unix FFS does "to ease
    /// recovery from crashes" (Figure 1 caption).
    pub double_inode_write: bool,
    /// Flush the write-behind cache after this many dirty bytes.
    pub flush_threshold_bytes: u64,
    /// Keep this fraction of data blocks free (FFS reserves 10% so the
    /// allocator keeps working well; §3.4).
    pub reserve_fraction: f64,
}

impl FfsConfig {
    /// Production-like defaults: 8 MB groups, classic behaviour.
    pub fn default_config() -> FfsConfig {
        FfsConfig {
            cg_blocks: 2048,
            inodes_per_cg: 1024,
            clustered: false,
            double_inode_write: true,
            flush_threshold_bytes: 1 << 20,
            reserve_fraction: 0.10,
        }
    }

    /// Small groups for tests.
    pub fn small() -> FfsConfig {
        FfsConfig {
            cg_blocks: 256,
            inodes_per_cg: 128,
            clustered: false,
            double_inode_write: true,
            flush_threshold_bytes: 256 << 10,
            reserve_fraction: 0.10,
        }
    }

    /// The "FFS improved" variant: clustered writes.
    pub fn improved(mut self) -> FfsConfig {
        self.clustered = true;
        self
    }

    /// Inode-table blocks per group.
    pub fn itab_blocks(&self) -> u32 {
        self.inodes_per_cg.div_ceil(INODES_PER_BLOCK as u32)
    }

    /// Data blocks per group.
    pub fn data_blocks_per_cg(&self) -> u32 {
        self.cg_blocks - 2 - self.itab_blocks()
    }
}

impl Default for FfsConfig {
    fn default() -> Self {
        FfsConfig::default_config()
    }
}

/// The on-disk superblock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Blocks per cylinder group.
    pub cg_blocks: u32,
    /// Number of cylinder groups.
    pub cg_count: u32,
    /// Inodes per group.
    pub inodes_per_cg: u32,
    /// Device size (sanity check).
    pub device_blocks: u64,
}

impl Superblock {
    /// Computes the geometry, or `None` if the device can't hold one group.
    pub fn compute(device_blocks: u64, cfg: &FfsConfig) -> Option<Superblock> {
        let usable = device_blocks.checked_sub(1)?;
        let cg_count = usable / cfg.cg_blocks as u64;
        if cg_count == 0 {
            return None;
        }
        Some(Superblock {
            cg_blocks: cfg.cg_blocks,
            cg_count: u32::try_from(cg_count).ok()?,
            inodes_per_cg: cfg.inodes_per_cg,
            device_blocks,
        })
    }

    /// Total inodes.
    pub fn max_inodes(&self) -> u32 {
        self.cg_count * self.inodes_per_cg
    }

    /// First block of cylinder group `cg`.
    pub fn cg_start(&self, cg: u32) -> DiskAddr {
        1 + cg as u64 * self.cg_blocks as u64
    }

    /// Address of the inode bitmap of group `cg`.
    pub fn inode_bitmap_addr(&self, cg: u32) -> DiskAddr {
        self.cg_start(cg)
    }

    /// Address of the block bitmap of group `cg`.
    pub fn block_bitmap_addr(&self, cg: u32) -> DiskAddr {
        self.cg_start(cg) + 1
    }

    /// Address of the inode-table block holding `ino`, plus its slot.
    pub fn inode_location(&self, ino: vfs::Ino) -> (DiskAddr, usize) {
        let idx = (ino - 1) as u64;
        let cg = (idx / self.inodes_per_cg as u64) as u32;
        let within = idx % self.inodes_per_cg as u64;
        let blk = self.cg_start(cg) + 2 + within / INODES_PER_BLOCK as u64;
        (blk, (within % INODES_PER_BLOCK as u64) as usize)
    }

    /// Cylinder group of an inode.
    pub fn cg_of_ino(&self, ino: vfs::Ino) -> u32 {
        ((ino - 1) as u64 / self.inodes_per_cg as u64) as u32
    }

    /// Cylinder group containing disk address `addr`, if it is a data
    /// block.
    pub fn cg_of_addr(&self, addr: DiskAddr) -> Option<u32> {
        if addr == 0 {
            return None;
        }
        let cg = (addr - 1) / self.cg_blocks as u64;
        (cg < self.cg_count as u64).then_some(cg as u32)
    }

    /// First data block of group `cg` given the inode-table size.
    pub fn data_start(&self, cg: u32, itab_blocks: u32) -> DiskAddr {
        self.cg_start(cg) + 2 + itab_blocks as u64
    }

    /// Serializes into one block.
    pub fn encode(&self) -> [u8; BLOCK_SIZE] {
        let mut buf = [0u8; BLOCK_SIZE];
        buf[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        buf[8..12].copy_from_slice(&self.cg_blocks.to_le_bytes());
        buf[12..16].copy_from_slice(&self.cg_count.to_le_bytes());
        buf[16..20].copy_from_slice(&self.inodes_per_cg.to_le_bytes());
        buf[20..28].copy_from_slice(&self.device_blocks.to_le_bytes());
        buf
    }

    /// Parses a superblock.
    pub fn decode(buf: &[u8; BLOCK_SIZE]) -> FsResult<Superblock> {
        let magic = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        if magic != MAGIC {
            return Err(FsError::Corrupt("ffs superblock: bad magic".into()));
        }
        Ok(Superblock {
            cg_blocks: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            cg_count: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            inodes_per_cg: u32::from_le_bytes(buf[16..20].try_into().unwrap()),
            device_blocks: u64::from_le_bytes(buf[20..28].try_into().unwrap()),
        })
    }
}

/// Where a file block's pointer lives (same tree shape as the LFS inode —
/// both mimic Unix FFS, §3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockClass {
    /// `direct[i]`.
    Direct(usize),
    /// Slot `i` of the single-indirect block.
    Indirect1(usize),
    /// Slot `j` of single-indirect block `i` under the double-indirect.
    Indirect2(usize, usize),
}

/// First file block covered by the double-indirect tree.
pub const IND2_START: u64 = NUM_DIRECT as u64 + PTRS_PER_BLOCK as u64;

/// One past the largest addressable file block.
pub const MAX_FILE_BLOCKS: u64 = IND2_START + (PTRS_PER_BLOCK * PTRS_PER_BLOCK) as u64;

/// Maximum file size in bytes.
pub const MAX_FILE_SIZE: u64 = MAX_FILE_BLOCKS * BLOCK_SIZE as u64;

/// Maps a file block number to its pointer location.
pub fn classify_block(bno: u64) -> Option<BlockClass> {
    if bno < NUM_DIRECT as u64 {
        Some(BlockClass::Direct(bno as usize))
    } else if bno < IND2_START {
        Some(BlockClass::Indirect1((bno - NUM_DIRECT as u64) as usize))
    } else if bno < MAX_FILE_BLOCKS {
        let off = bno - IND2_START;
        Some(BlockClass::Indirect2(
            (off / PTRS_PER_BLOCK as u64) as usize,
            (off % PTRS_PER_BLOCK as u64) as usize,
        ))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock::compute(100_000, &FfsConfig::default_config()).unwrap();
        let buf = sb.encode();
        assert_eq!(Superblock::decode(&buf).unwrap(), sb);
    }

    #[test]
    fn geometry_math() {
        let cfg = FfsConfig::small();
        let sb = Superblock::compute(1 + 3 * 256, &cfg).unwrap();
        assert_eq!(sb.cg_count, 3);
        assert_eq!(sb.cg_start(0), 1);
        assert_eq!(sb.cg_start(1), 257);
        assert_eq!(sb.inode_bitmap_addr(2), 513);
        assert_eq!(sb.block_bitmap_addr(2), 514);
    }

    #[test]
    fn inode_location_roundtrip() {
        let cfg = FfsConfig::small();
        let sb = Superblock::compute(1 + 4 * 256, &cfg).unwrap();
        // Root (ino 1) is slot 0 of the first itab block of cg 0.
        assert_eq!(sb.inode_location(1), (3, 0));
        assert_eq!(sb.cg_of_ino(1), 0);
        // First inode of cg 1.
        let ino = cfg.inodes_per_cg + 1;
        let (blk, slot) = sb.inode_location(ino);
        assert_eq!(blk, sb.cg_start(1) + 2);
        assert_eq!(slot, 0);
        assert_eq!(sb.cg_of_ino(ino), 1);
    }

    #[test]
    fn too_small_device_rejected() {
        assert!(Superblock::compute(100, &FfsConfig::default_config()).is_none());
    }

    #[test]
    fn classify_matches_lfs_scheme() {
        assert_eq!(classify_block(0), Some(BlockClass::Direct(0)));
        assert_eq!(classify_block(10), Some(BlockClass::Indirect1(0)));
        assert_eq!(
            classify_block(IND2_START),
            Some(BlockClass::Indirect2(0, 0))
        );
        assert_eq!(classify_block(MAX_FILE_BLOCKS), None);
    }

    #[test]
    fn itab_sizing() {
        let cfg = FfsConfig::small();
        assert_eq!(cfg.itab_blocks(), 8);
        assert_eq!(cfg.data_blocks_per_cg(), 256 - 2 - 8);
    }
}
