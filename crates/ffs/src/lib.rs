#![warn(missing_docs)]

//! A Unix FFS-style baseline file system.
//!
//! This crate reimplements the disk behaviour of the Berkeley Unix fast
//! file system as the paper describes it (§2.3), to serve as the
//! comparison baseline for the evaluation:
//!
//! - the disk is divided into **cylinder groups**, each with an inode
//!   bitmap, a block bitmap, a fixed **inode table**, and data blocks;
//! - allocation policy spreads directories across groups and keeps a
//!   file's inode, its data, and its directory together ("logical
//!   locality");
//! - **metadata is written synchronously**: creating a file costs separate
//!   small I/Os for the file's inode (written twice, "to ease recovery
//!   from crashes"), the directory's data, and the directory's inode, each
//!   typically preceded by a seek;
//! - file data is written back asynchronously from the cache, one block
//!   per I/O — or, with [`FfsConfig::clustered`], in contiguous runs,
//!   modelling the McVoy–Kleiman "FFS improved" variant the paper uses as
//!   its stronger reference point;
//! - consistency after a crash requires [`Ffs::fsck`], a full metadata
//!   scan.
//!
//! The public surface is the same [`vfs::FileSystem`] trait the LFS
//! implements, so every benchmark drives both systems identically.

mod alloc;
mod dir;
mod fs;
mod fsck;
mod inode;
mod layout;

pub use fs::Ffs;
pub use fsck::{fsck, FsckReport};
pub use layout::FfsConfig;
