//! Bitmap allocation: the structures Sprite LFS proudly does without.

use blockdev::BLOCK_SIZE;

/// A block-sized bitmap managing up to `BLOCK_SIZE * 8` items.
#[derive(Clone)]
pub struct Bitmap {
    bits: Vec<u8>,
    capacity: u32,
    free: u32,
    dirty: bool,
}

impl Bitmap {
    /// An all-free bitmap for `capacity` items.
    pub fn new(capacity: u32) -> Bitmap {
        assert!(capacity as usize <= BLOCK_SIZE * 8);
        Bitmap {
            bits: vec![0u8; BLOCK_SIZE],
            capacity,
            free: capacity,
            dirty: false,
        }
    }

    /// Loads a bitmap from a raw block.
    pub fn from_block(buf: &[u8], capacity: u32) -> Bitmap {
        let mut b = Bitmap::new(capacity);
        b.bits.copy_from_slice(buf);
        b.free = (0..capacity).filter(|&i| !b.is_set(i)).count() as u32;
        b.dirty = false;
        b
    }

    /// Serializes into a block buffer.
    pub fn as_block(&self) -> &[u8] {
        &self.bits
    }

    /// Items still free.
    pub fn free_count(&self) -> u32 {
        self.free
    }

    /// True if the bitmap changed since the last [`Bitmap::clear_dirty`].
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Acknowledges a write-back.
    pub fn clear_dirty(&mut self) {
        self.dirty = false;
    }

    /// Tests bit `i`.
    pub fn is_set(&self, i: u32) -> bool {
        self.bits[(i / 8) as usize] & (1 << (i % 8)) != 0
    }

    /// Marks item `i` allocated; returns false if it already was.
    pub fn set(&mut self, i: u32) -> bool {
        if self.is_set(i) {
            return false;
        }
        self.bits[(i / 8) as usize] |= 1 << (i % 8);
        self.free -= 1;
        self.dirty = true;
        true
    }

    /// Frees item `i`; returns false if it wasn't allocated.
    pub fn clear(&mut self, i: u32) -> bool {
        if !self.is_set(i) {
            return false;
        }
        self.bits[(i / 8) as usize] &= !(1 << (i % 8));
        self.free += 1;
        self.dirty = true;
        true
    }

    /// Allocates the free item nearest at or after `hint` (wrapping),
    /// or `None` when full.
    pub fn alloc_near(&mut self, hint: u32) -> Option<u32> {
        if self.free == 0 {
            return None;
        }
        let n = self.capacity;
        let start = hint % n.max(1);
        for d in 0..n {
            let i = (start + d) % n;
            if !self.is_set(i) {
                self.set(i);
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut b = Bitmap::new(100);
        assert_eq!(b.free_count(), 100);
        let i = b.alloc_near(0).unwrap();
        assert_eq!(i, 0);
        assert!(b.is_set(0));
        assert_eq!(b.free_count(), 99);
        assert!(b.clear(0));
        assert_eq!(b.free_count(), 100);
        assert!(!b.clear(0));
    }

    #[test]
    fn alloc_near_prefers_hint_and_wraps() {
        let mut b = Bitmap::new(10);
        assert_eq!(b.alloc_near(7), Some(7));
        assert_eq!(b.alloc_near(7), Some(8));
        assert_eq!(b.alloc_near(9), Some(9));
        assert_eq!(b.alloc_near(9), Some(0)); // Wraps.
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut b = Bitmap::new(3);
        for _ in 0..3 {
            assert!(b.alloc_near(0).is_some());
        }
        assert_eq!(b.alloc_near(0), None);
    }

    #[test]
    fn block_roundtrip_preserves_state() {
        let mut b = Bitmap::new(50);
        b.set(3);
        b.set(49);
        let b2 = Bitmap::from_block(b.as_block(), 50);
        assert!(b2.is_set(3));
        assert!(b2.is_set(49));
        assert_eq!(b2.free_count(), 48);
        assert!(!b2.is_dirty());
    }

    #[test]
    fn dirty_tracking() {
        let mut b = Bitmap::new(8);
        assert!(!b.is_dirty());
        b.set(1);
        assert!(b.is_dirty());
        b.clear_dirty();
        assert!(!b.is_dirty());
    }
}
