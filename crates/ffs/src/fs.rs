//! The FFS implementation: fixed-location metadata, synchronous metadata
//! writes, write-behind file data.

use std::collections::{BTreeSet, HashMap};

use blockdev::{BlockDevice, WriteKind, BLOCK_SIZE};
use vfs::{DirEntry, FileSystem, FileType, FsError, FsResult, Ino, Metadata, StatFs, ROOT_INO};

use crate::alloc::Bitmap;
use crate::dir::{self, DirRecord};
use crate::inode::{IndirectBlock, Inode};
use crate::layout::{
    classify_block, BlockClass, DiskAddr, FfsConfig, Superblock, INODE_DISK_SIZE, MAX_FILE_SIZE,
    NIL_ADDR,
};

struct CachedBlock {
    data: Box<[u8]>,
    dirty: bool,
    lru: u64,
}

struct CachedInode {
    inode: Inode,
    dirty: bool,
}

#[derive(Clone, Copy)]
struct DirSlot {
    ino: Ino,
    ftype: FileType,
    blk: u64,
}

#[derive(Default)]
struct DirCache {
    map: HashMap<String, DirSlot>,
    space_hint: u64,
}

/// Operation counters for the baseline (how many synchronous metadata
/// writes the workload caused — the quantity Figure 1 and §2.3 blame for
/// FFS's 5% bandwidth utilization).
#[derive(Clone, Copy, Debug, Default)]
pub struct FfsStats {
    /// Synchronous metadata writes issued.
    pub sync_metadata_writes: u64,
    /// Asynchronous data-block writes issued.
    pub data_writes: u64,
    /// Bytes of new file data accepted from applications.
    pub app_bytes_written: u64,
}

/// The Unix FFS-style baseline file system.
///
/// # Examples
///
/// ```
/// use blockdev::MemDisk;
/// use ffs_baseline::{Ffs, FfsConfig};
/// use vfs::FileSystem;
///
/// let mut fs = Ffs::format(MemDisk::new(2048), FfsConfig::small()).unwrap();
/// fs.mkdir("/dir1").unwrap();
/// let ino = fs.write_file("/dir1/file1", b"hello").unwrap();
/// fs.sync().unwrap();
/// assert_eq!(fs.read_to_vec(ino).unwrap(), b"hello");
/// ```
pub struct Ffs<D: BlockDevice> {
    dev: D,
    sb: Superblock,
    cfg: FfsConfig,
    inode_bitmaps: Vec<Bitmap>,
    block_bitmaps: Vec<Bitmap>,
    inodes: HashMap<Ino, CachedInode>,
    blocks: HashMap<(Ino, u64), CachedBlock>,
    dirty_blocks: BTreeSet<(Ino, u64)>,
    /// Indirect blocks cached by their (fixed) disk address.
    inds: HashMap<DiskAddr, IndirectBlock>,
    dirty_inds: BTreeSet<DiskAddr>,
    /// Cached inode-table blocks, by address.
    itab_cache: HashMap<DiskAddr, Box<[u8]>>,
    dcache: HashMap<Ino, DirCache>,
    clock: u64,
    lru_tick: u64,
    dirty_bytes: u64,
    nfiles: u64,
    stats: FfsStats,
    /// Observability handle (off by default).
    obs: lfs_obs::Obs,
}

impl<D: BlockDevice> Ffs<D> {
    /// Formats `dev` with an empty root directory.
    pub fn format(dev: D, cfg: FfsConfig) -> FsResult<Ffs<D>> {
        let sb = Superblock::compute(dev.num_blocks(), &cfg)
            .ok_or(FsError::InvalidArgument("device too small for geometry"))?;
        let mut fs = Ffs {
            dev,
            inode_bitmaps: (0..sb.cg_count)
                .map(|_| Bitmap::new(cfg.inodes_per_cg))
                .collect(),
            block_bitmaps: (0..sb.cg_count)
                .map(|_| Bitmap::new(cfg.data_blocks_per_cg()))
                .collect(),
            sb,
            cfg,
            inodes: HashMap::new(),
            blocks: HashMap::new(),
            dirty_blocks: BTreeSet::new(),
            inds: HashMap::new(),
            dirty_inds: BTreeSet::new(),
            itab_cache: HashMap::new(),
            dcache: HashMap::new(),
            clock: 0,
            lru_tick: 0,
            dirty_bytes: 0,
            nfiles: 0,
            stats: FfsStats::default(),
            obs: lfs_obs::Obs::off(),
        };
        let sb_block = fs.sb.encode();
        fs.dev
            .write_block(0, &sb_block, WriteKind::Sync)
            .map_err(FsError::device)?;
        // Zero the bitmap and inode-table blocks of every group.
        let zeros = vec![0u8; BLOCK_SIZE];
        for cg in 0..fs.sb.cg_count {
            let start = fs.sb.cg_start(cg);
            for b in 0..(2 + fs.cfg.itab_blocks() as u64) {
                fs.dev
                    .write_blocks(start + b, &zeros, WriteKind::Async)
                    .map_err(FsError::device)?;
            }
        }
        // Root directory: inode 1, slot 0 of cg 0.
        fs.inode_bitmaps[0].set(0);
        let root = Inode::new(ROOT_INO, FileType::Directory, 0);
        fs.inodes.insert(
            ROOT_INO,
            CachedInode {
                inode: root,
                dirty: true,
            },
        );
        fs.write_inode_sync(ROOT_INO)?;
        fs.sync()?;
        Ok(fs)
    }

    /// Mounts an existing FFS. (No journal: a crashed FFS needs
    /// [`Ffs::fsck`] first, which is the paper's point.)
    pub fn mount(mut dev: D, cfg: FfsConfig) -> FsResult<Ffs<D>> {
        let mut buf = [0u8; BLOCK_SIZE];
        dev.read_block(0, &mut buf).map_err(FsError::device)?;
        let sb = Superblock::decode(&buf)?;
        let mut inode_bitmaps = Vec::new();
        let mut block_bitmaps = Vec::new();
        let mut bm = vec![0u8; BLOCK_SIZE];
        for cg in 0..sb.cg_count {
            dev.read_blocks(sb.inode_bitmap_addr(cg), &mut bm)
                .map_err(FsError::device)?;
            inode_bitmaps.push(Bitmap::from_block(&bm, sb.inodes_per_cg));
            dev.read_blocks(sb.block_bitmap_addr(cg), &mut bm)
                .map_err(FsError::device)?;
            block_bitmaps.push(Bitmap::from_block(&bm, cfg.data_blocks_per_cg()));
        }
        let mut fs = Ffs {
            dev,
            sb,
            cfg,
            inode_bitmaps,
            block_bitmaps,
            inodes: HashMap::new(),
            blocks: HashMap::new(),
            dirty_blocks: BTreeSet::new(),
            inds: HashMap::new(),
            dirty_inds: BTreeSet::new(),
            itab_cache: HashMap::new(),
            dcache: HashMap::new(),
            clock: 0,
            lru_tick: 0,
            dirty_bytes: 0,
            nfiles: 0,
            stats: FfsStats::default(),
            obs: lfs_obs::Obs::off(),
        };
        fs.nfiles = fs.count_files()?;
        Ok(fs)
    }

    fn count_files(&mut self) -> FsResult<u64> {
        let mut n = 0u64;
        for cg in 0..self.sb.cg_count {
            for i in 0..self.sb.inodes_per_cg {
                if self.inode_bitmaps[cg as usize].is_set(i) {
                    n += 1;
                }
            }
        }
        Ok(n.saturating_sub(1)) // Exclude the root.
    }

    /// Attaches an observability handle: the device's per-request service
    /// times feed `disk.read_ns` / `disk.write_ns` histograms when `obs`
    /// carries a registry. The baseline has no trace events of its own.
    pub fn set_obs(&mut self, obs: lfs_obs::Obs) {
        if let Some(reg) = &obs.registry {
            self.dev
                .attach_obs(blockdev::DeviceObs::register(reg, "disk"));
        }
        self.obs = obs;
    }

    /// Publishes [`FfsStats`] and device counters into the attached
    /// registry and returns a snapshot (`None` without a registry).
    pub fn metrics_snapshot(&self) -> Option<lfs_obs::MetricsSnapshot> {
        let reg = self.obs.registry.as_deref()?;
        reg.counter("ffs.sync_metadata_writes")
            .store(self.stats.sync_metadata_writes);
        reg.counter("ffs.data_writes").store(self.stats.data_writes);
        reg.counter("ffs.app_bytes_written")
            .store(self.stats.app_bytes_written);
        let d = self.dev.stats();
        reg.counter("disk.reads").store(d.reads);
        reg.counter("disk.writes").store(d.writes);
        reg.counter("disk.bytes_read").store(d.bytes_read);
        reg.counter("disk.bytes_written").store(d.bytes_written);
        reg.counter("disk.busy_ns").store(d.busy_ns);
        reg.counter("disk.sync_busy_ns").store(d.sync_busy_ns);
        reg.counter("disk.positioning_ns").store(d.positioning_ns);
        if let Some(eff) = d.transfer_efficiency() {
            reg.gauge("disk.transfer_efficiency").set(eff);
        }
        self.obs.snapshot()
    }

    /// Device access (for stats).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutable device access.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Consumes the file system and returns the device.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Baseline operation counters.
    pub fn stats(&self) -> &FfsStats {
        &self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &FfsConfig {
        &self.cfg
    }

    /// The superblock.
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    fn now(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Drops all clean cached state so subsequent reads hit the disk;
    /// used by benchmarks between phases (cold-cache reads).
    pub fn drop_caches(&mut self) {
        self.blocks.retain(|_, b| b.dirty);
        if self.dirty_inds.is_empty() {
            self.inds.clear();
        }
        self.itab_cache.clear();
        self.dcache.clear();
        self.inodes.retain(|_, c| c.dirty);
    }

    // ----- inode I/O -----------------------------------------------------

    fn ensure_inode(&mut self, ino: Ino) -> FsResult<()> {
        if self.inodes.contains_key(&ino) {
            return Ok(());
        }
        if ino == 0 || ino > self.sb.max_inodes() {
            return Err(FsError::InvalidArgument("inode number out of range"));
        }
        let cg = self.sb.cg_of_ino(ino);
        let idx = (ino - 1) % self.sb.inodes_per_cg;
        if !self.inode_bitmaps[cg as usize].is_set(idx) {
            return Err(FsError::InvalidArgument("no such inode"));
        }
        let (blk, slot) = self.sb.inode_location(ino);
        let buf = self.itab_block(blk)?;
        let inode = Inode::decode(&buf[slot * INODE_DISK_SIZE..(slot + 1) * INODE_DISK_SIZE])?
            .ok_or_else(|| FsError::Corrupt(format!("ffs inode {ino}: empty slot")))?;
        self.inodes.insert(
            ino,
            CachedInode {
                inode,
                dirty: false,
            },
        );
        Ok(())
    }

    fn itab_block(&mut self, addr: DiskAddr) -> FsResult<Box<[u8]>> {
        if let Some(b) = self.itab_cache.get(&addr) {
            return Ok(b.clone());
        }
        let mut buf = vec![0u8; BLOCK_SIZE].into_boxed_slice();
        self.dev
            .read_blocks(addr, &mut buf)
            .map_err(FsError::device)?;
        self.itab_cache.insert(addr, buf.clone());
        Ok(buf)
    }

    fn inode_clone(&mut self, ino: Ino) -> FsResult<Inode> {
        self.ensure_inode(ino)?;
        Ok(self.inodes[&ino].inode.clone())
    }

    /// Borrows the cached inode. Read-only paths use this instead of
    /// [`Ffs::inode_clone`] so the hot loops never copy the pointer arrays.
    fn inode_ref(&mut self, ino: Ino) -> FsResult<&Inode> {
        self.ensure_inode(ino)?;
        Ok(&self.inodes[&ino].inode)
    }

    fn put_inode(&mut self, inode: Inode) {
        self.inodes
            .insert(inode.ino, CachedInode { inode, dirty: true });
    }

    /// Writes an inode's table block synchronously — the operation whose
    /// latency dominates small-file workloads on FFS (§2.3).
    fn write_inode_sync(&mut self, ino: Ino) -> FsResult<()> {
        let (blk, slot) = self.sb.inode_location(ino);
        let mut buf = self.itab_block(blk)?;
        {
            let c = self.inodes.get_mut(&ino).expect("inode cached");
            c.inode
                .encode_into(&mut buf[slot * INODE_DISK_SIZE..(slot + 1) * INODE_DISK_SIZE]);
            c.dirty = false;
        }
        self.itab_cache.insert(blk, buf.clone());
        self.dev
            .write_blocks(blk, &buf, WriteKind::Sync)
            .map_err(FsError::device)?;
        self.stats.sync_metadata_writes += 1;
        Ok(())
    }

    fn clear_inode_slot_sync(&mut self, ino: Ino) -> FsResult<()> {
        let (blk, slot) = self.sb.inode_location(ino);
        let mut buf = self.itab_block(blk)?;
        buf[slot * INODE_DISK_SIZE..(slot + 1) * INODE_DISK_SIZE].fill(0);
        self.itab_cache.insert(blk, buf.clone());
        self.dev
            .write_blocks(blk, &buf, WriteKind::Sync)
            .map_err(FsError::device)?;
        self.stats.sync_metadata_writes += 1;
        Ok(())
    }

    // ----- allocation -----------------------------------------------------

    fn alloc_inode(&mut self, parent: Ino, is_dir: bool) -> FsResult<Ino> {
        let preferred = if is_dir {
            // New directories go to the group with the most free inodes.
            (0..self.sb.cg_count)
                .max_by_key(|&cg| self.inode_bitmaps[cg as usize].free_count())
                .unwrap_or(0)
        } else {
            self.sb.cg_of_ino(parent)
        };
        let order = (0..self.sb.cg_count).map(|d| (preferred + d) % self.sb.cg_count);
        for cg in order {
            if let Some(idx) = self.inode_bitmaps[cg as usize].alloc_near(0) {
                return Ok(cg * self.sb.inodes_per_cg + idx + 1);
            }
        }
        Err(FsError::NoInodes)
    }

    fn free_inode(&mut self, ino: Ino) {
        let cg = self.sb.cg_of_ino(ino);
        let idx = (ino - 1) % self.sb.inodes_per_cg;
        self.inode_bitmaps[cg as usize].clear(idx);
    }

    fn total_free_blocks(&self) -> u64 {
        self.block_bitmaps
            .iter()
            .map(|b| b.free_count() as u64)
            .sum()
    }

    fn total_data_blocks(&self) -> u64 {
        self.sb.cg_count as u64 * self.cfg.data_blocks_per_cg() as u64
    }

    /// Allocates a data block near the file's other blocks.
    fn alloc_block(&mut self, ino: Ino, prev: DiskAddr) -> FsResult<DiskAddr> {
        // Enforce the 10% reserve that keeps the allocator effective.
        let reserve = (self.total_data_blocks() as f64 * self.cfg.reserve_fraction) as u64;
        if self.total_free_blocks() <= reserve {
            return Err(FsError::NoSpace);
        }
        let itab = self.cfg.itab_blocks();
        let home_cg = self.sb.cg_of_ino(ino);
        // Contiguity first: the block right after the previous one.
        if prev != NIL_ADDR {
            if let Some(cg) = self.sb.cg_of_addr(prev) {
                let data_start = self.sb.data_start(cg, itab);
                let next = prev + 1;
                if next >= data_start && next < self.sb.cg_start(cg) + self.sb.cg_blocks as u64 {
                    let idx = (next - data_start) as u32;
                    if !self.block_bitmaps[cg as usize].is_set(idx) {
                        self.block_bitmaps[cg as usize].set(idx);
                        return Ok(next);
                    }
                }
            }
        }
        // Otherwise: the file's home group, then the rest.
        let order = (0..self.sb.cg_count).map(|d| (home_cg + d) % self.sb.cg_count);
        for cg in order {
            if let Some(idx) = self.block_bitmaps[cg as usize].alloc_near(0) {
                return Ok(self.sb.data_start(cg, itab) + idx as u64);
            }
        }
        Err(FsError::NoSpace)
    }

    fn free_block(&mut self, addr: DiskAddr) {
        if let Some(cg) = self.sb.cg_of_addr(addr) {
            let data_start = self.sb.data_start(cg, self.cfg.itab_blocks());
            if addr >= data_start {
                self.block_bitmaps[cg as usize].clear((addr - data_start) as u32);
            }
        }
    }

    // ----- block pointers --------------------------------------------------

    fn load_ind(&mut self, addr: DiskAddr) -> FsResult<()> {
        if self.inds.contains_key(&addr) {
            return Ok(());
        }
        let mut buf = vec![0u8; BLOCK_SIZE];
        self.dev
            .read_blocks(addr, &mut buf)
            .map_err(FsError::device)?;
        self.inds.insert(addr, IndirectBlock::decode(&buf));
        Ok(())
    }

    fn block_ptr(&mut self, ino: Ino, bno: u64) -> FsResult<DiskAddr> {
        match classify_block(bno).ok_or(FsError::FileTooLarge)? {
            BlockClass::Direct(i) => Ok(self.inode_ref(ino)?.direct[i]),
            BlockClass::Indirect1(i) => {
                let ind = self.inode_ref(ino)?.indirect;
                if ind == NIL_ADDR {
                    return Ok(NIL_ADDR);
                }
                self.load_ind(ind)?;
                Ok(self.inds[&ind].ptrs[i])
            }
            BlockClass::Indirect2(i, j) => {
                let dind = self.inode_ref(ino)?.dindirect;
                if dind == NIL_ADDR {
                    return Ok(NIL_ADDR);
                }
                self.load_ind(dind)?;
                let single = self.inds[&dind].ptrs[i];
                if single == NIL_ADDR {
                    return Ok(NIL_ADDR);
                }
                self.load_ind(single)?;
                Ok(self.inds[&single].ptrs[j])
            }
        }
    }

    /// Resolves a block's address using only in-memory state. `None` means
    /// an indirect block would have to be read from the device first; the
    /// caller must fall back to [`Ffs::block_ptr`] (after flushing any
    /// pending coalesced run, to keep device request order identical to the
    /// per-block path).
    fn block_ptr_cached(&mut self, ino: Ino, bno: u64) -> FsResult<Option<DiskAddr>> {
        match classify_block(bno).ok_or(FsError::FileTooLarge)? {
            BlockClass::Direct(i) => Ok(Some(self.inode_ref(ino)?.direct[i])),
            BlockClass::Indirect1(i) => {
                let ind = self.inode_ref(ino)?.indirect;
                if ind == NIL_ADDR {
                    return Ok(Some(NIL_ADDR));
                }
                Ok(self.inds.get(&ind).map(|b| b.ptrs[i]))
            }
            BlockClass::Indirect2(i, j) => {
                let dind = self.inode_ref(ino)?.dindirect;
                if dind == NIL_ADDR {
                    return Ok(Some(NIL_ADDR));
                }
                let Some(d) = self.inds.get(&dind) else {
                    return Ok(None);
                };
                let single = d.ptrs[i];
                if single == NIL_ADDR {
                    return Ok(Some(NIL_ADDR));
                }
                Ok(self.inds.get(&single).map(|b| b.ptrs[j]))
            }
        }
    }

    /// Returns the block's address, allocating one (and any needed
    /// indirect blocks) if absent.
    fn block_ptr_alloc(&mut self, ino: Ino, bno: u64) -> FsResult<DiskAddr> {
        let existing = self.block_ptr(ino, bno)?;
        if existing != NIL_ADDR {
            return Ok(existing);
        }
        let prev = if bno > 0 {
            self.block_ptr(ino, bno - 1)?
        } else {
            NIL_ADDR
        };
        let addr = self.alloc_block(ino, prev)?;
        match classify_block(bno).ok_or(FsError::FileTooLarge)? {
            BlockClass::Direct(i) => {
                let mut inode = self.inode_clone(ino)?;
                inode.direct[i] = addr;
                self.put_inode(inode);
            }
            BlockClass::Indirect1(i) => {
                let mut inode = self.inode_clone(ino)?;
                if inode.indirect == NIL_ADDR {
                    inode.indirect = self.alloc_block(ino, NIL_ADDR)?;
                    self.inds.insert(inode.indirect, IndirectBlock::new());
                    self.put_inode(inode.clone());
                }
                let ind_addr = inode.indirect;
                self.load_ind(ind_addr)?;
                self.inds.get_mut(&ind_addr).unwrap().ptrs[i] = addr;
                self.dirty_inds.insert(ind_addr);
            }
            BlockClass::Indirect2(i, j) => {
                let mut inode = self.inode_clone(ino)?;
                if inode.dindirect == NIL_ADDR {
                    inode.dindirect = self.alloc_block(ino, NIL_ADDR)?;
                    self.inds.insert(inode.dindirect, IndirectBlock::new());
                    self.put_inode(inode.clone());
                }
                let dind = inode.dindirect;
                self.load_ind(dind)?;
                let mut single = self.inds[&dind].ptrs[i];
                if single == NIL_ADDR {
                    single = self.alloc_block(ino, NIL_ADDR)?;
                    self.inds.insert(single, IndirectBlock::new());
                    self.inds.get_mut(&dind).unwrap().ptrs[i] = single;
                    self.dirty_inds.insert(dind);
                }
                self.load_ind(single)?;
                self.inds.get_mut(&single).unwrap().ptrs[j] = addr;
                self.dirty_inds.insert(single);
            }
        }
        Ok(addr)
    }

    // ----- data cache -----------------------------------------------------

    fn ensure_block(&mut self, ino: Ino, bno: u64) -> FsResult<()> {
        if self.blocks.contains_key(&(ino, bno)) {
            return Ok(());
        }
        let addr = self.block_ptr(ino, bno)?;
        let mut data = vec![0u8; BLOCK_SIZE].into_boxed_slice();
        if addr != NIL_ADDR {
            self.dev
                .read_blocks(addr, &mut data)
                .map_err(FsError::device)?;
        }
        self.insert_fetched(ino, bno, data);
        Ok(())
    }

    fn insert_fetched(&mut self, ino: Ino, bno: u64, data: Box<[u8]>) {
        self.lru_tick += 1;
        let lru = self.lru_tick;
        self.blocks.insert(
            (ino, bno),
            CachedBlock {
                data,
                dirty: false,
                lru,
            },
        );
    }

    /// Issues the pending coalesced run (if any) as one device request and
    /// caches its blocks in file order.
    fn fetch_run(&mut self, ino: Ino, run: &mut Option<(DiskAddr, u64, usize)>) -> FsResult<()> {
        let Some((start, first_bno, count)) = run.take() else {
            return Ok(());
        };
        let mut buf = vec![0u8; count * BLOCK_SIZE];
        self.dev
            .read_run(start, &mut buf)
            .map_err(FsError::device)?;
        for k in 0..count {
            let data = buf[k * BLOCK_SIZE..(k + 1) * BLOCK_SIZE]
                .to_vec()
                .into_boxed_slice();
            self.insert_fetched(ino, first_bno + k as u64, data);
        }
        Ok(())
    }

    /// Fetches the uncached blocks of `first..=last`, merging blocks with
    /// contiguous disk addresses into single [`BlockDevice::read_run`]
    /// requests. A run breaks at cached blocks, holes, address
    /// discontinuities, and pointer resolutions that need device I/O, so
    /// the device sees requests for the same addresses in the same order
    /// as the per-block path — `read_run` then charges exactly what the
    /// individual reads would have cost.
    fn fetch_blocks(&mut self, ino: Ino, first: u64, last: u64) -> FsResult<()> {
        let mut run: Option<(DiskAddr, u64, usize)> = None;
        for bno in first..=last {
            if self.blocks.contains_key(&(ino, bno)) {
                self.fetch_run(ino, &mut run)?;
                continue;
            }
            let addr = match self.block_ptr_cached(ino, bno)? {
                Some(a) => a,
                None => {
                    self.fetch_run(ino, &mut run)?;
                    self.block_ptr(ino, bno)?
                }
            };
            if addr == NIL_ADDR {
                self.fetch_run(ino, &mut run)?;
                self.insert_fetched(ino, bno, vec![0u8; BLOCK_SIZE].into_boxed_slice());
                continue;
            }
            let extends = matches!(run, Some((start, _, count)) if addr == start + count as u64);
            if extends {
                if let Some((_, _, count)) = &mut run {
                    *count += 1;
                }
            } else {
                self.fetch_run(ino, &mut run)?;
                run = Some((addr, bno, 1));
            }
        }
        self.fetch_run(ino, &mut run)
    }

    fn mark_block_dirty(&mut self, ino: Ino, bno: u64) {
        let b = self.blocks.get_mut(&(ino, bno)).expect("cached");
        if !b.dirty {
            b.dirty = true;
            self.dirty_bytes += BLOCK_SIZE as u64;
            self.dirty_blocks.insert((ino, bno));
        }
    }

    /// Writes back dirty data and indirect blocks.
    ///
    /// Classic mode issues one I/O per block ("SunOS performs individual
    /// disk operations for each block", Figure 9 discussion); clustered
    /// mode merges contiguous runs, modelling the improved SunOS.
    fn flush_data(&mut self) -> FsResult<()> {
        // Resolve addresses first, then write in address order (FFS
        // drivers sort the queue).
        let mut writes: Vec<(DiskAddr, Ino, u64)> = Vec::new();
        for &(ino, bno) in &self.dirty_blocks.clone() {
            let addr = self.block_ptr_alloc(ino, bno)?;
            writes.push((addr, ino, bno));
        }
        writes.sort_unstable();
        if self.cfg.clustered {
            let mut i = 0;
            while i < writes.len() {
                let mut j = i + 1;
                while j < writes.len() && writes[j].0 == writes[j - 1].0 + 1 {
                    j += 1;
                }
                // The run goes out as one gather request of borrowed
                // cache slices — same bytes, same device accounting as
                // the old assemble-then-write, without the copy.
                let bufs: Vec<&[u8]> = writes[i..j]
                    .iter()
                    .map(|&(_, ino, bno)| &self.blocks[&(ino, bno)].data[..])
                    .collect();
                self.dev
                    .write_run_gather(writes[i].0, &bufs, WriteKind::Async)
                    .map_err(FsError::device)?;
                self.stats.data_writes += 1;
                i = j;
            }
        } else {
            for &(addr, ino, bno) in &writes {
                let data = &self.blocks[&(ino, bno)].data;
                self.dev
                    .write_blocks(addr, data, WriteKind::Async)
                    .map_err(FsError::device)?;
                self.stats.data_writes += 1;
            }
        }
        for (ino, bno) in std::mem::take(&mut self.dirty_blocks) {
            if let Some(b) = self.blocks.get_mut(&(ino, bno)) {
                b.dirty = false;
            }
        }
        self.dirty_bytes = 0;
        // Indirect blocks.
        for addr in std::mem::take(&mut self.dirty_inds) {
            if let Some(ind) = self.inds.get(&addr) {
                let buf = ind.encode();
                self.dev
                    .write_blocks(addr, &buf, WriteKind::Async)
                    .map_err(FsError::device)?;
            }
        }
        // Inodes dirtied by data writes (size/mtime) go back lazily too.
        // Sorted: iterating the HashMap directly would write the inode
        // table in a different order each run, and on a simulated disk
        // that perturbs seek costs run to run.
        let mut dirty_inos: Vec<Ino> = self
            .inodes
            .iter()
            .filter(|(_, c)| c.dirty)
            .map(|(&i, _)| i)
            .collect();
        dirty_inos.sort_unstable();
        for ino in dirty_inos {
            let (blk, slot) = self.sb.inode_location(ino);
            let mut buf = self.itab_block(blk)?;
            {
                let c = self.inodes.get_mut(&ino).unwrap();
                c.inode
                    .encode_into(&mut buf[slot * INODE_DISK_SIZE..(slot + 1) * INODE_DISK_SIZE]);
                c.dirty = false;
            }
            self.itab_cache.insert(blk, buf.clone());
            self.dev
                .write_blocks(blk, &buf, WriteKind::Async)
                .map_err(FsError::device)?;
        }
        self.evict();
        Ok(())
    }

    fn evict(&mut self) {
        let limit = (256u64 << 20) / BLOCK_SIZE as u64;
        if (self.blocks.len() as u64) <= limit {
            return;
        }
        let mut clean: Vec<((Ino, u64), u64)> = self
            .blocks
            .iter()
            .filter(|(_, b)| !b.dirty)
            .map(|(&k, b)| (k, b.lru))
            .collect();
        // Partition out the `excess` least-recently-used clean blocks in
        // O(n) rather than sorting the whole clean set.
        let excess = (self.blocks.len() as u64 - limit) as usize;
        if clean.len() > excess {
            clean.select_nth_unstable_by_key(excess - 1, |&(_, l)| l);
            clean.truncate(excess);
        }
        for (k, _) in clean {
            self.blocks.remove(&k);
        }
    }

    fn write_bitmaps(&mut self) -> FsResult<()> {
        for cg in 0..self.sb.cg_count {
            if self.inode_bitmaps[cg as usize].is_dirty() {
                let addr = self.sb.inode_bitmap_addr(cg);
                let buf = self.inode_bitmaps[cg as usize].as_block().to_vec();
                self.dev
                    .write_blocks(addr, &buf, WriteKind::Async)
                    .map_err(FsError::device)?;
                self.inode_bitmaps[cg as usize].clear_dirty();
            }
            if self.block_bitmaps[cg as usize].is_dirty() {
                let addr = self.sb.block_bitmap_addr(cg);
                let buf = self.block_bitmaps[cg as usize].as_block().to_vec();
                self.dev
                    .write_blocks(addr, &buf, WriteKind::Async)
                    .map_err(FsError::device)?;
                self.block_bitmaps[cg as usize].clear_dirty();
            }
        }
        Ok(())
    }

    // ----- directories -----------------------------------------------------

    fn ensure_dcache(&mut self, dirino: Ino) -> FsResult<()> {
        if self.dcache.contains_key(&dirino) {
            return Ok(());
        }
        let inode = self.inode_ref(dirino)?;
        if inode.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        let nblocks = inode.size.div_ceil(BLOCK_SIZE as u64);
        let mut cache = DirCache::default();
        for blk in 0..nblocks {
            self.ensure_block(dirino, blk)?;
            for rec in dir::decode_block(&self.blocks[&(dirino, blk)].data)? {
                cache.map.insert(
                    rec.name,
                    DirSlot {
                        ino: rec.ino,
                        ftype: rec.ftype,
                        blk,
                    },
                );
            }
        }
        self.dcache.insert(dirino, cache);
        Ok(())
    }

    fn dir_lookup(&mut self, dirino: Ino, name: &str) -> FsResult<Option<DirSlot>> {
        self.ensure_dcache(dirino)?;
        Ok(self.dcache[&dirino].map.get(name).copied())
    }

    /// Writes one directory block *synchronously* at its fixed address —
    /// the behaviour that couples FFS application latency to the disk.
    fn dir_block_write_sync(
        &mut self,
        dirino: Ino,
        blk: u64,
        records: &[DirRecord],
    ) -> FsResult<()> {
        let addr = self.block_ptr_alloc(dirino, blk)?;
        let buf = dir::encode_block(records);
        // Keep the cache coherent.
        self.lru_tick += 1;
        let lru = self.lru_tick;
        self.blocks.insert(
            (dirino, blk),
            CachedBlock {
                data: buf.clone(),
                dirty: false,
                lru,
            },
        );
        self.dirty_blocks.remove(&(dirino, blk));
        self.dev
            .write_blocks(addr, &buf, WriteKind::Sync)
            .map_err(FsError::device)?;
        self.stats.sync_metadata_writes += 1;
        // Grow the directory if needed, and write its inode synchronously.
        let mut inode = self.inode_clone(dirino)?;
        let needed = (blk + 1) * BLOCK_SIZE as u64;
        let now = self.now();
        if inode.size < needed {
            inode.size = needed;
        }
        inode.mtime = now;
        self.put_inode(inode);
        self.write_inode_sync(dirino)?;
        Ok(())
    }

    fn dir_insert(&mut self, dirino: Ino, name: &str, ino: Ino, ftype: FileType) -> FsResult<()> {
        self.ensure_dcache(dirino)?;
        let nblocks = self.inode_ref(dirino)?.size.div_ceil(BLOCK_SIZE as u64);
        let new_rec = DirRecord {
            ino,
            ftype,
            name: name.to_string(),
        };
        let hint = self.dcache[&dirino]
            .space_hint
            .min(nblocks.saturating_sub(1));
        let candidates: Vec<u64> = if nblocks == 0 {
            vec![]
        } else {
            std::iter::once(hint)
                .chain((0..nblocks).filter(|&b| b != hint))
                .collect()
        };
        let mut target = None;
        for blk in candidates {
            self.ensure_block(dirino, blk)?;
            let mut records = dir::decode_block(&self.blocks[&(dirino, blk)].data)?;
            records.push(new_rec.clone());
            if dir::fits(&records) {
                target = Some((blk, records));
                break;
            }
        }
        let (blk, records) = match target {
            Some(t) => t,
            None => (nblocks, vec![new_rec]),
        };
        self.dir_block_write_sync(dirino, blk, &records)?;
        let cache = self.dcache.get_mut(&dirino).unwrap();
        cache
            .map
            .insert(name.to_string(), DirSlot { ino, ftype, blk });
        cache.space_hint = blk;
        Ok(())
    }

    fn dir_remove(&mut self, dirino: Ino, name: &str) -> FsResult<DirSlot> {
        self.ensure_dcache(dirino)?;
        let slot = self.dcache[&dirino]
            .map
            .get(name)
            .copied()
            .ok_or(FsError::NotFound)?;
        self.ensure_block(dirino, slot.blk)?;
        let mut records = dir::decode_block(&self.blocks[&(dirino, slot.blk)].data)?;
        records.retain(|r| r.name != name);
        self.dir_block_write_sync(dirino, slot.blk, &records)?;
        let cache = self.dcache.get_mut(&dirino).unwrap();
        cache.map.remove(name);
        cache.space_hint = slot.blk;
        Ok(slot)
    }

    fn dir_entries(&mut self, dirino: Ino) -> FsResult<Vec<(String, DirSlot)>> {
        self.ensure_dcache(dirino)?;
        let mut out: Vec<(String, DirSlot)> = self.dcache[&dirino]
            .map
            .iter()
            .map(|(n, s)| (n.clone(), *s))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    // ----- paths ------------------------------------------------------------

    fn resolve(&mut self, path: &str) -> FsResult<Ino> {
        let parts = vfs::path::components(path)?;
        let mut cur = ROOT_INO;
        for part in parts {
            if self.inode_ref(cur)?.ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            cur = self.dir_lookup(cur, part)?.ok_or(FsError::NotFound)?.ino;
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&mut self, path: &'p str) -> FsResult<(Ino, &'p str)> {
        let (parent_parts, name) = vfs::path::split_parent(path)?;
        let mut cur = ROOT_INO;
        for part in parent_parts {
            if self.inode_ref(cur)?.ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            cur = self.dir_lookup(cur, part)?.ok_or(FsError::NotFound)?.ino;
        }
        if self.inode_ref(cur)?.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        Ok((cur, name))
    }

    // ----- file deletion ------------------------------------------------------

    fn free_file_blocks(&mut self, ino: Ino, from_block: u64) -> FsResult<()> {
        let old_blocks = self.inode_ref(ino)?.size.div_ceil(BLOCK_SIZE as u64);
        for bno in from_block..old_blocks {
            if let Some(b) = self.blocks.remove(&(ino, bno)) {
                if b.dirty {
                    self.dirty_bytes -= BLOCK_SIZE as u64;
                }
            }
            self.dirty_blocks.remove(&(ino, bno));
            let addr = self.block_ptr(ino, bno)?;
            if addr != NIL_ADDR {
                self.free_block(addr);
                // Clear the pointer.
                match classify_block(bno).unwrap() {
                    BlockClass::Direct(i) => {
                        let mut inode = self.inode_clone(ino)?;
                        inode.direct[i] = NIL_ADDR;
                        self.put_inode(inode);
                    }
                    BlockClass::Indirect1(i) => {
                        let ind = self.inode_ref(ino)?.indirect;
                        self.inds.get_mut(&ind).unwrap().ptrs[i] = NIL_ADDR;
                        self.dirty_inds.insert(ind);
                    }
                    BlockClass::Indirect2(i, j) => {
                        let dind = self.inode_ref(ino)?.dindirect;
                        let single = self.inds[&dind].ptrs[i];
                        self.inds.get_mut(&single).unwrap().ptrs[j] = NIL_ADDR;
                        self.dirty_inds.insert(single);
                    }
                }
            }
        }
        // Release emptied indirect blocks.
        let mut inode = self.inode_clone(ino)?;
        if inode.indirect != NIL_ADDR {
            self.load_ind(inode.indirect)?;
            if self.inds[&inode.indirect].is_empty() {
                self.free_block(inode.indirect);
                self.inds.remove(&inode.indirect);
                self.dirty_inds.remove(&inode.indirect);
                inode.indirect = NIL_ADDR;
                self.put_inode(inode.clone());
            }
        }
        if inode.dindirect != NIL_ADDR {
            self.load_ind(inode.dindirect)?;
            let singles: Vec<(usize, DiskAddr)> = self.inds[&inode.dindirect]
                .ptrs
                .iter()
                .enumerate()
                .filter(|(_, &p)| p != NIL_ADDR)
                .map(|(i, &p)| (i, p))
                .collect();
            for (i, single) in singles {
                self.load_ind(single)?;
                if self.inds[&single].is_empty() {
                    self.free_block(single);
                    self.inds.remove(&single);
                    self.dirty_inds.remove(&single);
                    self.inds.get_mut(&inode.dindirect).unwrap().ptrs[i] = NIL_ADDR;
                    self.dirty_inds.insert(inode.dindirect);
                }
            }
            if self.inds[&inode.dindirect].is_empty() {
                self.free_block(inode.dindirect);
                self.inds.remove(&inode.dindirect);
                self.dirty_inds.remove(&inode.dindirect);
                inode.dindirect = NIL_ADDR;
                self.put_inode(inode);
            }
        }
        Ok(())
    }

    fn delete_file(&mut self, ino: Ino) -> FsResult<()> {
        self.free_file_blocks(ino, 0)?;
        self.clear_inode_slot_sync(ino)?;
        self.free_inode(ino);
        self.inodes.remove(&ino);
        self.dcache.remove(&ino);
        let keys: Vec<(Ino, u64)> = self
            .blocks
            .keys()
            .filter(|&&(i, _)| i == ino)
            .copied()
            .collect();
        for k in keys {
            self.blocks.remove(&k);
        }
        self.nfiles -= 1;
        Ok(())
    }

    fn maybe_flush(&mut self) -> FsResult<()> {
        if self.dirty_bytes >= self.cfg.flush_threshold_bytes {
            self.flush_data()?;
        }
        Ok(())
    }
}

impl<D: BlockDevice> FileSystem for Ffs<D> {
    fn create(&mut self, path: &str) -> FsResult<Ino> {
        let (parent, name) = self.resolve_parent(path)?;
        if self.dir_lookup(parent, name)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        let ino = self.alloc_inode(parent, false)?;
        let now = self.now();
        self.put_inode(Inode::new(ino, FileType::Regular, now));
        // "The inodes for the new files are each written twice to ease
        // recovery from crashes" (Figure 1).
        self.write_inode_sync(ino)?;
        if self.cfg.double_inode_write {
            self.write_inode_sync(ino)?;
        }
        self.dir_insert(parent, name, ino, FileType::Regular)?;
        self.nfiles += 1;
        Ok(ino)
    }

    fn mkdir(&mut self, path: &str) -> FsResult<Ino> {
        let (parent, name) = self.resolve_parent(path)?;
        if self.dir_lookup(parent, name)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        let ino = self.alloc_inode(parent, true)?;
        let now = self.now();
        self.put_inode(Inode::new(ino, FileType::Directory, now));
        self.write_inode_sync(ino)?;
        if self.cfg.double_inode_write {
            self.write_inode_sync(ino)?;
        }
        self.dir_insert(parent, name, ino, FileType::Directory)?;
        self.dcache.insert(ino, DirCache::default());
        self.nfiles += 1;
        Ok(ino)
    }

    fn lookup(&mut self, path: &str) -> FsResult<Ino> {
        self.resolve(path)
    }

    fn write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<()> {
        if data.is_empty() {
            return Ok(());
        }
        if self.inode_ref(ino)?.ftype == FileType::Directory {
            return Err(FsError::IsADirectory);
        }
        let end = offset
            .checked_add(data.len() as u64)
            .ok_or(FsError::FileTooLarge)?;
        if end > MAX_FILE_SIZE {
            return Err(FsError::FileTooLarge);
        }
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let bno = abs / BLOCK_SIZE as u64;
            let off_in = (abs % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - off_in).min(data.len() - pos);
            if off_in == 0 && n == BLOCK_SIZE {
                self.lru_tick += 1;
                let lru = self.lru_tick;
                let entry = self
                    .blocks
                    .entry((ino, bno))
                    .or_insert_with(|| CachedBlock {
                        data: vec![0u8; BLOCK_SIZE].into_boxed_slice(),
                        dirty: false,
                        lru,
                    });
                entry.data.copy_from_slice(&data[pos..pos + n]);
            } else {
                self.ensure_block(ino, bno)?;
                let b = self.blocks.get_mut(&(ino, bno)).unwrap();
                b.data[off_in..off_in + n].copy_from_slice(&data[pos..pos + n]);
            }
            self.mark_block_dirty(ino, bno);
            pos += n;
        }
        let now = self.now();
        let mut inode = self.inode_clone(ino)?;
        inode.size = inode.size.max(end);
        inode.mtime = now;
        self.put_inode(inode);
        self.stats.app_bytes_written += data.len() as u64;
        self.maybe_flush()?;
        Ok(())
    }

    fn read(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        let inode = self.inode_ref(ino)?;
        if inode.ftype == FileType::Directory {
            return Err(FsError::IsADirectory);
        }
        let size = inode.size;
        if offset >= size {
            return Ok(0);
        }
        let n = buf.len().min((size - offset) as usize);
        let first = offset / BLOCK_SIZE as u64;
        let last = (offset + n as u64 - 1) / BLOCK_SIZE as u64;
        self.fetch_blocks(ino, first, last)?;
        let mut pos = 0usize;
        while pos < n {
            let abs = offset + pos as u64;
            let bno = abs / BLOCK_SIZE as u64;
            let off_in = (abs % BLOCK_SIZE as u64) as usize;
            let len = (BLOCK_SIZE - off_in).min(n - pos);
            if let Some(b) = self.blocks.get(&(ino, bno)) {
                buf[pos..pos + len].copy_from_slice(&b.data[off_in..off_in + len]);
                pos += len;
            } else {
                self.ensure_block(ino, bno)?;
            }
        }
        Ok(n)
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        let inode = self.inode_ref(ino)?;
        if inode.ftype == FileType::Directory {
            return Err(FsError::IsADirectory);
        }
        let old_size = inode.size;
        if size > MAX_FILE_SIZE {
            return Err(FsError::FileTooLarge);
        }
        if size < old_size {
            self.free_file_blocks(ino, size.div_ceil(BLOCK_SIZE as u64))?;
            if !size.is_multiple_of(BLOCK_SIZE as u64) {
                let bno = size / BLOCK_SIZE as u64;
                if self.block_ptr(ino, bno)? != NIL_ADDR || self.blocks.contains_key(&(ino, bno)) {
                    self.ensure_block(ino, bno)?;
                    let off = (size % BLOCK_SIZE as u64) as usize;
                    let b = self.blocks.get_mut(&(ino, bno)).unwrap();
                    b.data[off..].fill(0);
                    self.mark_block_dirty(ino, bno);
                }
            }
        }
        let now = self.now();
        let mut inode = self.inode_clone(ino)?;
        inode.size = size;
        inode.mtime = now;
        self.put_inode(inode);
        self.maybe_flush()?;
        Ok(())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let slot = self.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
        if slot.ftype == FileType::Directory {
            return Err(FsError::IsADirectory);
        }
        let mut inode = self.inode_clone(slot.ino)?;
        inode.nlink -= 1;
        let nlink = inode.nlink;
        self.dir_remove(parent, name)?;
        if nlink == 0 {
            self.delete_file(slot.ino)?;
        } else {
            self.put_inode(inode);
            self.write_inode_sync(slot.ino)?;
        }
        Ok(())
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let slot = self.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
        if slot.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        if !self.dir_entries(slot.ino)?.is_empty() {
            return Err(FsError::DirectoryNotEmpty);
        }
        self.dir_remove(parent, name)?;
        self.delete_file(slot.ino)?;
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        let (from_parent, from_name) = self.resolve_parent(from)?;
        let src = self
            .dir_lookup(from_parent, from_name)?
            .ok_or(FsError::NotFound)?;
        let (to_parent, to_name) = self.resolve_parent(to)?;
        if let Some(dst) = self.dir_lookup(to_parent, to_name)? {
            if dst.ino == src.ino {
                return Ok(());
            }
            if src.ftype == FileType::Directory || dst.ftype == FileType::Directory {
                return Err(FsError::AlreadyExists);
            }
            let mut dst_inode = self.inode_clone(dst.ino)?;
            dst_inode.nlink -= 1;
            let nlink = dst_inode.nlink;
            self.dir_remove(to_parent, to_name)?;
            if nlink == 0 {
                self.delete_file(dst.ino)?;
            } else {
                self.put_inode(dst_inode);
                self.write_inode_sync(dst.ino)?;
            }
        }
        self.dir_remove(from_parent, from_name)?;
        self.dir_insert(to_parent, to_name, src.ino, src.ftype)?;
        Ok(())
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        let src_ino = self.resolve(existing)?;
        let mut inode = self.inode_clone(src_ino)?;
        if inode.ftype == FileType::Directory {
            return Err(FsError::IsADirectory);
        }
        let (parent, name) = self.resolve_parent(new)?;
        if self.dir_lookup(parent, name)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        inode.nlink += 1;
        self.put_inode(inode);
        self.write_inode_sync(src_ino)?;
        self.dir_insert(parent, name, src_ino, FileType::Regular)?;
        Ok(())
    }

    fn metadata(&mut self, ino: Ino) -> FsResult<Metadata> {
        Ok(self.inode_ref(ino)?.metadata())
    }

    fn readdir(&mut self, path: &str) -> FsResult<Vec<DirEntry>> {
        let dirino = self.resolve(path)?;
        Ok(self
            .dir_entries(dirino)?
            .into_iter()
            .map(|(name, slot)| DirEntry {
                name,
                ino: slot.ino,
                ftype: slot.ftype,
            })
            .collect())
    }

    fn sync(&mut self) -> FsResult<()> {
        self.flush_data()?;
        self.write_bitmaps()?;
        self.dev.sync().map_err(FsError::device)
    }

    fn statfs(&mut self) -> FsResult<StatFs> {
        let total = self.total_data_blocks() * BLOCK_SIZE as u64;
        let free = self.total_free_blocks() * BLOCK_SIZE as u64;
        Ok(StatFs {
            total_bytes: total,
            live_bytes: total - free,
            num_files: self.nfiles,
        })
    }
}
