//! FFS directory block format (a simplified BSD dirent layout).
//!
//! Each 4 KB block packs records `{ino: u32, ftype: u8, name_len: u8,
//! name}` terminated by an all-zero header; records never span blocks.

use blockdev::BLOCK_SIZE;
use vfs::{FileType, FsError, FsResult, Ino};

const RECORD_HEADER: usize = 6;

/// One directory entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirRecord {
    /// Target inode.
    pub ino: Ino,
    /// Target type.
    pub ftype: FileType,
    /// Entry name.
    pub name: String,
}

impl DirRecord {
    /// Bytes this record occupies.
    pub fn encoded_len(&self) -> usize {
        RECORD_HEADER + self.name.len()
    }
}

/// True if `records` fit in one block (with terminator space unless
/// exactly full).
pub fn fits(records: &[DirRecord]) -> bool {
    let len: usize = records.iter().map(DirRecord::encoded_len).sum();
    len <= BLOCK_SIZE - RECORD_HEADER || len == BLOCK_SIZE
}

/// Encodes records into one block.
///
/// # Panics
///
/// Panics if they don't fit.
pub fn encode_block(records: &[DirRecord]) -> Box<[u8]> {
    assert!(fits(records));
    let mut buf = vec![0u8; BLOCK_SIZE].into_boxed_slice();
    let mut pos = 0;
    for r in records {
        buf[pos..pos + 4].copy_from_slice(&r.ino.to_le_bytes());
        buf[pos + 4] = match r.ftype {
            FileType::Regular => 1,
            FileType::Directory => 2,
        };
        buf[pos + 5] = r.name.len() as u8;
        buf[pos + 6..pos + 6 + r.name.len()].copy_from_slice(r.name.as_bytes());
        pos += r.encoded_len();
    }
    buf
}

/// Decodes all records in a block.
pub fn decode_block(buf: &[u8]) -> FsResult<Vec<DirRecord>> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos + RECORD_HEADER <= BLOCK_SIZE {
        let ino = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let tbyte = buf[pos + 4];
        let nlen = buf[pos + 5] as usize;
        if ino == 0 && nlen == 0 {
            break;
        }
        if ino == 0 || pos + RECORD_HEADER + nlen > BLOCK_SIZE {
            return Err(FsError::Corrupt("ffs dir block: bad record".into()));
        }
        let ftype = match tbyte {
            1 => FileType::Regular,
            2 => FileType::Directory,
            t => return Err(FsError::Corrupt(format!("ffs dir block: bad type {t}"))),
        };
        let name = String::from_utf8(buf[pos + 6..pos + 6 + nlen].to_vec())
            .map_err(|_| FsError::Corrupt("ffs dir block: non-UTF-8 name".into()))?;
        out.push(DirRecord { ino, ftype, name });
        pos += RECORD_HEADER + nlen;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let recs = vec![
            DirRecord {
                ino: 1,
                ftype: FileType::Directory,
                name: "subdir".into(),
            },
            DirRecord {
                ino: 2,
                ftype: FileType::Regular,
                name: "file.txt".into(),
            },
        ];
        assert_eq!(decode_block(&encode_block(&recs)).unwrap(), recs);
    }

    #[test]
    fn empty_block() {
        assert!(decode_block(&vec![0u8; BLOCK_SIZE]).unwrap().is_empty());
    }

    #[test]
    fn overflow_detected_by_fits() {
        let recs: Vec<DirRecord> = (0..1000)
            .map(|i| DirRecord {
                ino: i + 1,
                ftype: FileType::Regular,
                name: format!("{i:06}"),
            })
            .collect();
        assert!(!fits(&recs));
    }
}
