//! FFS inodes (fixed locations in per-group inode tables).

use vfs::{FileType, FsError, FsResult, Ino};

use crate::layout::{DiskAddr, INODE_DISK_SIZE, NIL_ADDR, NUM_DIRECT, PTRS_PER_BLOCK};

/// The on-disk inode. Structurally identical to the LFS inode (§3.1:
/// "the basic structures used by Sprite LFS are identical to those used in
/// Unix FFS"), but it lives at a *fixed* disk address computed from its
/// number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inode {
    /// Inode number (0 = free slot).
    pub ino: Ino,
    /// Regular file or directory.
    pub ftype: FileType,
    /// Protection bits.
    pub mode: u16,
    /// Directory entries referring to this inode.
    pub nlink: u32,
    /// Size in bytes.
    pub size: u64,
    /// Modification time.
    pub mtime: u64,
    /// Direct block pointers.
    pub direct: [DiskAddr; NUM_DIRECT],
    /// Single-indirect block.
    pub indirect: DiskAddr,
    /// Double-indirect block.
    pub dindirect: DiskAddr,
}

impl Inode {
    /// A fresh inode.
    pub fn new(ino: Ino, ftype: FileType, now: u64) -> Inode {
        Inode {
            ino,
            ftype,
            mode: match ftype {
                FileType::Regular => 0o644,
                FileType::Directory => 0o755,
            },
            nlink: 1,
            size: 0,
            mtime: now,
            direct: [NIL_ADDR; NUM_DIRECT],
            indirect: NIL_ADDR,
            dindirect: NIL_ADDR,
        }
    }

    /// Serializes into an inode-table slot.
    pub fn encode_into(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), INODE_DISK_SIZE);
        buf.fill(0);
        buf[0..4].copy_from_slice(&self.ino.to_le_bytes());
        buf[4] = match self.ftype {
            FileType::Regular => 1,
            FileType::Directory => 2,
        };
        buf[6..8].copy_from_slice(&self.mode.to_le_bytes());
        buf[8..12].copy_from_slice(&self.nlink.to_le_bytes());
        buf[16..24].copy_from_slice(&self.size.to_le_bytes());
        buf[24..32].copy_from_slice(&self.mtime.to_le_bytes());
        let mut off = 32;
        for a in self.direct {
            buf[off..off + 8].copy_from_slice(&a.to_le_bytes());
            off += 8;
        }
        buf[off..off + 8].copy_from_slice(&self.indirect.to_le_bytes());
        buf[off + 8..off + 16].copy_from_slice(&self.dindirect.to_le_bytes());
    }

    /// Parses an inode slot; `None` for a free slot.
    pub fn decode(buf: &[u8]) -> FsResult<Option<Inode>> {
        debug_assert_eq!(buf.len(), INODE_DISK_SIZE);
        let ino = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if ino == 0 {
            return Ok(None);
        }
        let ftype = match buf[4] {
            1 => FileType::Regular,
            2 => FileType::Directory,
            t => return Err(FsError::Corrupt(format!("ffs inode {ino}: bad type {t}"))),
        };
        let mode = u16::from_le_bytes(buf[6..8].try_into().unwrap());
        let nlink = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        let size = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        let mtime = u64::from_le_bytes(buf[24..32].try_into().unwrap());
        let mut direct = [NIL_ADDR; NUM_DIRECT];
        let mut off = 32;
        for d in &mut direct {
            *d = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
            off += 8;
        }
        let indirect = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
        let dindirect = u64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap());
        Ok(Some(Inode {
            ino,
            ftype,
            mode,
            nlink,
            size,
            mtime,
            direct,
            indirect,
            dindirect,
        }))
    }

    /// VFS metadata view.
    pub fn metadata(&self) -> vfs::Metadata {
        vfs::Metadata {
            ino: self.ino,
            ftype: self.ftype,
            size: self.size,
            nlink: self.nlink,
            mode: self.mode,
            mtime: self.mtime,
            atime: self.mtime,
            ctime: self.mtime,
        }
    }
}

/// An indirect block of pointers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndirectBlock {
    /// The pointer slots.
    pub ptrs: Box<[DiskAddr; PTRS_PER_BLOCK]>,
}

impl Default for IndirectBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl IndirectBlock {
    /// All-empty indirect block.
    pub fn new() -> IndirectBlock {
        IndirectBlock {
            ptrs: Box::new([NIL_ADDR; PTRS_PER_BLOCK]),
        }
    }

    /// Serializes into a block.
    pub fn encode(&self) -> Box<[u8]> {
        let mut buf = vec![0u8; blockdev::BLOCK_SIZE].into_boxed_slice();
        for (i, p) in self.ptrs.iter().enumerate() {
            buf[i * 8..i * 8 + 8].copy_from_slice(&p.to_le_bytes());
        }
        buf
    }

    /// Parses from a raw block.
    pub fn decode(buf: &[u8]) -> IndirectBlock {
        let mut b = IndirectBlock::new();
        for (i, p) in b.ptrs.iter_mut().enumerate() {
            *p = u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
        }
        b
    }

    /// True if no pointer is set.
    pub fn is_empty(&self) -> bool {
        self.ptrs.iter().all(|&p| p == NIL_ADDR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inode_roundtrip() {
        let mut i = Inode::new(42, FileType::Regular, 99);
        i.size = 123456;
        i.nlink = 3;
        i.direct[2] = 777;
        i.indirect = 888;
        let mut buf = [0u8; INODE_DISK_SIZE];
        i.encode_into(&mut buf);
        assert_eq!(Inode::decode(&buf).unwrap().unwrap(), i);
    }

    #[test]
    fn free_slot_is_none() {
        assert!(Inode::decode(&[0u8; INODE_DISK_SIZE]).unwrap().is_none());
    }

    #[test]
    fn indirect_roundtrip() {
        let mut b = IndirectBlock::new();
        b.ptrs[7] = 7777;
        assert_eq!(IndirectBlock::decode(&b.encode()), b);
        assert!(!b.is_empty());
    }
}
