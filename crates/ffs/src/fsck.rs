//! `fsck`: the full-disk consistency scan FFS needs after a crash.
//!
//! "In traditional Unix file systems without logs, the system cannot
//! determine where the last changes were made, so it must scan all of the
//! metadata structures on disk to restore consistency. The cost of these
//! scans is already high (tens of minutes in typical configurations)"
//! (§4). This module reproduces that cost profile: it reads every inode
//! table block and every directory, rebuilds both bitmaps, and reports
//! discrepancies. Contrast with LFS recovery, which reads only the
//! checkpoint region and the log tail.

use std::collections::HashMap;

use blockdev::{BlockDevice, BLOCK_SIZE};
use vfs::{FileType, FsError, FsResult, Ino, ROOT_INO};

use crate::alloc::Bitmap;
use crate::dir;
use crate::inode::{IndirectBlock, Inode};
use crate::layout::{FfsConfig, Superblock, INODE_DISK_SIZE, NIL_ADDR};

/// The result of a full consistency scan.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Violations found.
    pub errors: Vec<String>,
    /// Live inodes scanned.
    pub inodes: u64,
    /// Metadata blocks read during the scan.
    pub blocks_scanned: u64,
}

impl FsckReport {
    /// True if the scan found no inconsistencies.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Runs `fsck` directly against a device (the file system need not be —
/// and after a crash cannot be — mounted).
pub fn fsck<D: BlockDevice>(dev: &mut D, cfg: &FfsConfig) -> FsResult<FsckReport> {
    let mut report = FsckReport::default();
    let mut buf = vec![0u8; BLOCK_SIZE];
    dev.read_blocks(0, &mut buf).map_err(FsError::device)?;
    let sb = Superblock::decode(buf.as_slice().try_into().unwrap())?;
    report.blocks_scanned += 1;

    // Pass 1: read every inode table block; collect live inodes and the
    // blocks they claim.
    let mut inodes: HashMap<Ino, Inode> = HashMap::new();
    let mut want_inode_bm: Vec<Bitmap> = (0..sb.cg_count)
        .map(|_| Bitmap::new(sb.inodes_per_cg))
        .collect();
    let mut want_block_bm: Vec<Bitmap> = (0..sb.cg_count)
        .map(|_| Bitmap::new(cfg.data_blocks_per_cg()))
        .collect();
    let itab = cfg.itab_blocks();
    let claim = |addr: u64,
                 what: &str,
                 sb: &Superblock,
                 want_block_bm: &mut Vec<Bitmap>,
                 report: &mut FsckReport| {
        match sb.cg_of_addr(addr) {
            Some(cg) => {
                let data_start = sb.data_start(cg, itab);
                if addr < data_start {
                    report
                        .errors
                        .push(format!("{what}: address {addr} in metadata area"));
                    return;
                }
                let idx = (addr - data_start) as u32;
                if !want_block_bm[cg as usize].set(idx) {
                    report
                        .errors
                        .push(format!("{what}: block {addr} doubly claimed"));
                }
            }
            None => report
                .errors
                .push(format!("{what}: address {addr} out of range")),
        }
    };

    for cg in 0..sb.cg_count {
        for tb in 0..itab as u64 {
            let addr = sb.cg_start(cg) + 2 + tb;
            dev.read_blocks(addr, &mut buf).map_err(FsError::device)?;
            report.blocks_scanned += 1;
            for slot in 0..(BLOCK_SIZE / INODE_DISK_SIZE) {
                let chunk = &buf[slot * INODE_DISK_SIZE..(slot + 1) * INODE_DISK_SIZE];
                if let Some(inode) = Inode::decode(chunk)? {
                    let expect = cg * sb.inodes_per_cg
                        + (tb as u32) * (BLOCK_SIZE / INODE_DISK_SIZE) as u32
                        + slot as u32
                        + 1;
                    if inode.ino != expect {
                        report
                            .errors
                            .push(format!("inode slot for {expect} holds inode {}", inode.ino));
                        continue;
                    }
                    want_inode_bm[cg as usize].set((inode.ino - 1) % sb.inodes_per_cg);
                    report.inodes += 1;
                    inodes.insert(inode.ino, inode);
                }
            }
        }
    }

    // Pass 2: walk every inode's block pointers.
    let mut ind_buf = vec![0u8; BLOCK_SIZE];
    for (ino, inode) in &inodes {
        for &a in &inode.direct {
            if a != NIL_ADDR {
                claim(
                    a,
                    &format!("inode {ino}"),
                    &sb,
                    &mut want_block_bm,
                    &mut report,
                );
            }
        }
        let mut singles = Vec::new();
        if inode.indirect != NIL_ADDR {
            claim(
                inode.indirect,
                &format!("inode {ino} ind1"),
                &sb,
                &mut want_block_bm,
                &mut report,
            );
            singles.push(inode.indirect);
        }
        if inode.dindirect != NIL_ADDR {
            claim(
                inode.dindirect,
                &format!("inode {ino} ind2"),
                &sb,
                &mut want_block_bm,
                &mut report,
            );
            dev.read_blocks(inode.dindirect, &mut ind_buf)
                .map_err(FsError::device)?;
            report.blocks_scanned += 1;
            let dind = IndirectBlock::decode(&ind_buf);
            for &p in dind.ptrs.iter() {
                if p != NIL_ADDR {
                    claim(
                        p,
                        &format!("inode {ino} ind1(child)"),
                        &sb,
                        &mut want_block_bm,
                        &mut report,
                    );
                    singles.push(p);
                }
            }
        }
        for s in singles {
            dev.read_blocks(s, &mut ind_buf).map_err(FsError::device)?;
            report.blocks_scanned += 1;
            let ind = IndirectBlock::decode(&ind_buf);
            for &p in ind.ptrs.iter() {
                if p != NIL_ADDR {
                    claim(
                        p,
                        &format!("inode {ino} data"),
                        &sb,
                        &mut want_block_bm,
                        &mut report,
                    );
                }
            }
        }
    }

    // Pass 3: directory structure and link counts.
    if !inodes.contains_key(&ROOT_INO) {
        report.errors.push("root inode missing".into());
        return Ok(report);
    }
    let mut refcount: HashMap<Ino, u32> = HashMap::new();
    let mut stack = vec![ROOT_INO];
    let mut visited: HashMap<Ino, bool> = HashMap::new();
    visited.insert(ROOT_INO, true);
    while let Some(dirino) = stack.pop() {
        let inode = &inodes[&dirino];
        let nblocks = inode.size.div_ceil(BLOCK_SIZE as u64);
        for bno in 0..nblocks {
            // Directories are small; only direct blocks occur in our
            // workloads, but follow indirect pointers anyway.
            let addr = resolve_block(dev, inode, bno)?;
            if addr == NIL_ADDR {
                continue;
            }
            dev.read_blocks(addr, &mut buf).map_err(FsError::device)?;
            report.blocks_scanned += 1;
            for rec in dir::decode_block(&buf)? {
                match inodes.get(&rec.ino) {
                    None => report.errors.push(format!(
                        "entry {dirino}:{} points at missing inode {}",
                        rec.name, rec.ino
                    )),
                    Some(child) => {
                        if child.ftype != rec.ftype {
                            report
                                .errors
                                .push(format!("entry {dirino}:{} type mismatch", rec.name));
                        }
                        *refcount.entry(rec.ino).or_insert(0) += 1;
                        if child.ftype == FileType::Directory
                            && visited.insert(rec.ino, true).is_none()
                        {
                            stack.push(rec.ino);
                        }
                    }
                }
            }
        }
    }
    for (ino, inode) in &inodes {
        if *ino == ROOT_INO {
            continue;
        }
        let refs = refcount.get(ino).copied().unwrap_or(0);
        if inode.nlink != refs {
            report.errors.push(format!(
                "inode {ino}: nlink {} but {refs} refs",
                inode.nlink
            ));
        }
        if inode.ftype == FileType::Directory && !visited.contains_key(ino) {
            report.errors.push(format!("directory {ino} unreachable"));
        }
    }

    // Pass 4: compare stored bitmaps with the rebuilt ones.
    let mut bm = vec![0u8; BLOCK_SIZE];
    for cg in 0..sb.cg_count {
        dev.read_blocks(sb.inode_bitmap_addr(cg), &mut bm)
            .map_err(FsError::device)?;
        report.blocks_scanned += 1;
        let stored = Bitmap::from_block(&bm, sb.inodes_per_cg);
        for i in 0..sb.inodes_per_cg {
            if stored.is_set(i) != want_inode_bm[cg as usize].is_set(i) {
                report
                    .errors
                    .push(format!("cg {cg}: inode bitmap bit {i} wrong"));
            }
        }
        dev.read_blocks(sb.block_bitmap_addr(cg), &mut bm)
            .map_err(FsError::device)?;
        report.blocks_scanned += 1;
        let stored = Bitmap::from_block(&bm, cfg.data_blocks_per_cg());
        for i in 0..cfg.data_blocks_per_cg() {
            if stored.is_set(i) != want_block_bm[cg as usize].is_set(i) {
                report
                    .errors
                    .push(format!("cg {cg}: block bitmap bit {i} wrong"));
            }
        }
    }

    Ok(report)
}

fn resolve_block<D: BlockDevice>(dev: &mut D, inode: &Inode, bno: u64) -> FsResult<u64> {
    use crate::layout::{classify_block, BlockClass};
    let mut buf = vec![0u8; BLOCK_SIZE];
    match classify_block(bno).ok_or(FsError::FileTooLarge)? {
        BlockClass::Direct(i) => Ok(inode.direct[i]),
        BlockClass::Indirect1(i) => {
            if inode.indirect == NIL_ADDR {
                return Ok(NIL_ADDR);
            }
            dev.read_blocks(inode.indirect, &mut buf)
                .map_err(FsError::device)?;
            Ok(IndirectBlock::decode(&buf).ptrs[i])
        }
        BlockClass::Indirect2(i, j) => {
            if inode.dindirect == NIL_ADDR {
                return Ok(NIL_ADDR);
            }
            dev.read_blocks(inode.dindirect, &mut buf)
                .map_err(FsError::device)?;
            let single = IndirectBlock::decode(&buf).ptrs[i];
            if single == NIL_ADDR {
                return Ok(NIL_ADDR);
            }
            dev.read_blocks(single, &mut buf).map_err(FsError::device)?;
            Ok(IndirectBlock::decode(&buf).ptrs[j])
        }
    }
}

impl<D: BlockDevice> crate::Ffs<D> {
    /// Runs the full scan against this (synced) file system.
    pub fn fsck(&mut self) -> FsResult<FsckReport> {
        use vfs::FileSystem;
        self.sync()?;
        let cfg = *self.config();
        fsck(self.device_mut(), &cfg)
    }
}
