//! Utilization histograms (Figures 5, 6, and 10).

/// A histogram over segment utilizations in `[0, 1]`.
///
/// Accumulates counts and reports each bucket as a *fraction of segments*,
/// matching the y-axis of the paper's distribution figures.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram with `nbuckets` equal-width buckets.
    pub fn new(nbuckets: usize) -> Histogram {
        Histogram {
            buckets: vec![0; nbuckets],
            total: 0,
        }
    }

    /// Records one segment utilization.
    pub fn add(&mut self, u: f64) {
        let n = self.buckets.len();
        let idx = ((u * n as f64) as usize).min(n - 1);
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(bucket midpoint, fraction of samples)` pairs.
    pub fn fractions(&self) -> Vec<(f64, f64)> {
        let n = self.buckets.len() as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let mid = (i as f64 + 0.5) / n;
                let frac = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                };
                (mid, frac)
            })
            .collect()
    }

    /// Fraction of samples whose utilization fell in `[lo, hi)`.
    pub fn mass_in(&self, lo: f64, hi: f64) -> f64 {
        self.fractions()
            .iter()
            .filter(|(mid, _)| *mid >= lo && *mid < hi)
            .map(|(_, f)| f)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_unit_interval() {
        let mut h = Histogram::new(10);
        h.add(0.0);
        h.add(0.05);
        h.add(0.95);
        h.add(1.0); // Clamped into the last bucket.
        let f = h.fractions();
        assert_eq!(f.len(), 10);
        assert!((f[0].1 - 0.5).abs() < 1e-12);
        assert!((f[9].1 - 0.5).abs() < 1e-12);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn mass_in_sums_buckets() {
        let mut h = Histogram::new(4);
        for _ in 0..3 {
            h.add(0.1);
        }
        h.add(0.9);
        assert!((h.mass_in(0.0, 0.5) - 0.75).abs() < 1e-12);
        assert!((h.mass_in(0.5, 1.01) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new(5);
        assert!(h.fractions().iter().all(|(_, f)| *f == 0.0));
    }
}
