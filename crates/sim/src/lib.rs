#![warn(missing_docs)]

//! The file-system simulator of Section 3.5.
//!
//! "We built a simple file system simulator so that we could analyze
//! different cleaning policies under controlled conditions. The simulator
//! models a file system as a fixed number of 4-kbyte files, with the
//! number chosen to produce a particular overall disk capacity
//! utilization. At each step, the simulator overwrites one of the files
//! with new data, using one of two pseudo-random access patterns"
//! (uniform, or hot-and-cold with 90% of accesses to 10% of the files).
//!
//! The simulator runs until the write cost stabilises, exactly as in the
//! paper, and can snapshot the segment-utilization distribution "at the
//! points during the simulation when segment cleaning was initiated"
//! (Figures 5 and 6). It reproduces:
//!
//! - Figure 3 — the analytic write-cost formula ([`write_cost_formula`]);
//! - Figure 4 — greedy cleaning under uniform and hot-and-cold access;
//! - Figure 5 — utilization distributions for the greedy policy;
//! - Figure 6 — the bimodal distribution under cost-benefit cleaning;
//! - Figure 7 — write cost of cost-benefit vs greedy.

mod histogram;
mod simulator;
pub mod sweep;

pub use histogram::Histogram;
pub use simulator::{SimResult, Simulator};

/// How files are chosen for overwriting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AccessPattern {
    /// Every file equally likely.
    Uniform,
    /// `hot_fraction` of the files receive `hot_access_fraction` of the
    /// accesses; the paper's hot-and-cold uses 0.1 / 0.9.
    HotCold {
        /// Fraction of files in the hot group.
        hot_fraction: f64,
        /// Fraction of accesses that go to the hot group.
        hot_access_fraction: f64,
    },
    /// Zipfian access: file of rank `r` is chosen with probability
    /// proportional to `1 / (r+1)^theta`. Unlike `HotCold`'s two flat
    /// groups this produces a continuous popularity gradient — the
    /// key-value-store shape the skew parameter `theta` (0 < theta < 1,
    /// commonly 0.99-like skews use 0.9) comes from.
    Zipf {
        /// Skew exponent in `(0, 1)`; higher is more skewed.
        theta: f64,
    },
}

impl AccessPattern {
    /// The paper's hot-and-cold pattern: 10% of files get 90% of writes.
    pub fn hot_cold_default() -> AccessPattern {
        AccessPattern::HotCold {
            hot_fraction: 0.1,
            hot_access_fraction: 0.9,
        }
    }

    /// A key-value-store-like Zipfian skew.
    pub fn zipf_default() -> AccessPattern {
        AccessPattern::Zipf { theta: 0.9 }
    }
}

/// Which policy selects segments for cleaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Always the least-utilized segments.
    Greedy,
    /// Highest `(1-u)*age/(1+u)` first (§3.5).
    CostBenefit,
    /// Population-normalized scoring mirroring `lfs_core`'s adaptive
    /// policy: `(1-u)/(1+u) * (1 + (age/mean_age) * mean_util)` over the
    /// candidate population, with pacing scaled by the clean-segment
    /// deficit. On an emptyish disk it behaves like greedy; on a full
    /// one it leans on age like cost-benefit.
    Adaptive,
}

/// Simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Number of segments on the simulated disk.
    pub nsegments: u32,
    /// Blocks (= files) per segment.
    pub blocks_per_segment: u32,
    /// Overall disk capacity utilization the file population produces.
    pub disk_utilization: f64,
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Cleaning policy.
    pub policy: Policy,
    /// Sort live blocks by age before writing them out (§3.4 policy 4).
    pub age_sort: bool,
    /// Cleaning runs until this many clean segments exist.
    pub clean_target: u32,
    /// Segments cleaned per pass ("a few tens at a time").
    pub segs_per_pass: u32,
    /// Number of temperature-keyed write streams (log heads). `1` is the
    /// classic single-head log; with more, new writes are routed by a
    /// per-file heat estimate (hottest stream first) and cleaner
    /// relocations go to the coldest stream — mirroring `lfs_core`'s
    /// write-stream machinery.
    pub streams: u32,
    /// PRNG seed (the simulator is fully deterministic).
    pub seed: u64,
}

impl SimConfig {
    /// The calibrated default configuration.
    ///
    /// The paper does not give the simulator's disk size or cleaning
    /// thresholds; these values are calibrated (see DESIGN.md) so that the
    /// simulator operates in the regime the paper's results imply: the
    /// clean-segment pool is *small* relative to the hot working set, so
    /// hot segments are cleaned before they decay fully and the dead-space
    /// budget accumulates in the slowly-decaying cold segments. In this
    /// regime all four qualitative results of §3.5 reproduce: greedy is
    /// worse under locality than under uniform access, and cost-benefit
    /// beats greedy with a bimodal segment distribution.
    pub fn default_at(utilization: f64) -> SimConfig {
        SimConfig {
            nsegments: 300,
            blocks_per_segment: 64,
            disk_utilization: utilization,
            pattern: AccessPattern::Uniform,
            policy: Policy::Greedy,
            age_sort: false,
            clean_target: 4,
            segs_per_pass: 4,
            streams: 1,
            seed: 0x5eed,
        }
    }

    /// Number of files this configuration simulates.
    pub fn num_files(&self) -> u32 {
        let total = self.nsegments as u64 * self.blocks_per_segment as u64;
        ((total as f64 * self.disk_utilization) as u64).max(1) as u32
    }
}

/// The analytic write cost of formula (1):
/// `write cost = 2 / (1 - u)` for `0 < u < 1`, and 1.0 at `u = 0`
/// (an empty segment need not be read at all).
pub fn write_cost_formula(u: f64) -> f64 {
    assert!((0.0..1.0).contains(&u), "u must be in [0, 1)");
    if u == 0.0 {
        1.0
    } else {
        2.0 / (1.0 - u)
    }
}

/// The paper's reference point for Unix FFS on small-file workloads:
/// 5–10% of disk bandwidth → write cost 10–20. We plot the optimistic end.
pub const FFS_TODAY_WRITE_COST: f64 = 10.0;

/// The paper's estimate for an improved Unix FFS (logging, delayed
/// writes, disk request sorting): ~25% of bandwidth → write cost 4.
pub const FFS_IMPROVED_WRITE_COST: f64 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_paper_anchor_points() {
        assert_eq!(write_cost_formula(0.0), 1.0);
        assert!((write_cost_formula(0.5) - 4.0).abs() < 1e-12);
        assert!((write_cost_formula(0.8) - 10.0).abs() < 1e-9);
        // u = 0.8 is where LFS crosses FFS-today; u = 0.5 crosses
        // FFS-improved (§3.4).
        assert!((write_cost_formula(0.8) - FFS_TODAY_WRITE_COST).abs() < 1e-9);
        assert!((write_cost_formula(0.5) - FFS_IMPROVED_WRITE_COST).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn formula_rejects_full_segments() {
        write_cost_formula(1.0);
    }

    #[test]
    fn num_files_scales_with_utilization() {
        let lo = SimConfig::default_at(0.25).num_files();
        let hi = SimConfig::default_at(0.75).num_files();
        assert_eq!(hi, 3 * lo);
    }
}
