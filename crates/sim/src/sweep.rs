//! Parallel sweeps over independent simulator points.
//!
//! Regenerating the paper's Figures 4–7 means running the §3.5 simulator
//! to stabilisation at many independent `(utilization, pattern, policy)`
//! points. Each point owns its own [`SimConfig`] — including its own PRNG
//! seed — so the points share no state whatsoever and the sweep is
//! embarrassingly parallel.
//!
//! Determinism is unaffected by parallelism: every point's RNG stream is
//! derived only from its own config's seed, never from thread scheduling,
//! so [`run_parallel`] returns bit-identical results to [`run_serial`] in
//! the same (input) order. The determinism regression test below pins
//! this.
//!
//! Thread count defaults to the host's available parallelism and can be
//! overridden with the `LFS_SWEEP_THREADS` environment variable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::{SimConfig, SimResult, Simulator};

/// Worker-thread count for [`run`]: `LFS_SWEEP_THREADS` if set, else the
/// host's available parallelism.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("LFS_SWEEP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs every point to stabilisation on the calling thread, in order.
pub fn run_serial(points: &[SimConfig]) -> Vec<SimResult> {
    points
        .iter()
        .map(|&cfg| Simulator::new(cfg).run_until_stable())
        .collect()
}

/// Runs every point to stabilisation across `threads` worker threads.
///
/// Results come back indexed exactly like `points`: workers pull the next
/// unclaimed index from a shared counter and deposit the result in that
/// point's slot, so scheduling affects only wall-clock, never content or
/// order.
pub fn run_parallel(points: &[SimConfig], threads: usize) -> Vec<SimResult> {
    let n = points.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return run_serial(points);
    }
    let slots: Vec<Mutex<Option<SimResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = Simulator::new(points[i]).run_until_stable();
                *slots[i].lock().expect("sweep slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("sweep worker skipped a point")
        })
        .collect()
}

/// Runs every point with [`default_threads`] workers.
pub fn run(points: &[SimConfig]) -> Vec<SimResult> {
    run_parallel(points, default_threads())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessPattern, Policy};

    fn point(util: f64) -> SimConfig {
        SimConfig {
            nsegments: 60,
            blocks_per_segment: 32,
            clean_target: 3,
            segs_per_pass: 3,
            pattern: AccessPattern::hot_cold_default(),
            policy: Policy::CostBenefit,
            age_sort: true,
            ..SimConfig::default_at(util)
        }
    }

    /// The satellite regression test: a parallel sweep must be
    /// bit-identical to the serial loop at every point, regardless of
    /// how many workers raced over the work queue.
    #[test]
    fn parallel_sweep_matches_serial_bitwise() {
        let points: Vec<SimConfig> = [0.3, 0.5, 0.75].into_iter().map(point).collect();
        let serial = run_serial(&points);
        let parallel = run_parallel(&points, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            // Bit-identical, not approximately equal.
            assert_eq!(s.write_cost.to_bits(), p.write_cost.to_bits());
            assert_eq!(s.steps, p.steps);
            assert_eq!(
                s.avg_cleaned_utilization.to_bits(),
                p.avg_cleaned_utilization.to_bits()
            );
            assert_eq!(
                s.cleaning_histogram.fractions(),
                p.cleaning_histogram.fractions()
            );
            assert_eq!(
                s.cleaned_histogram.fractions(),
                p.cleaned_histogram.fractions()
            );
        }
    }

    #[test]
    fn thread_override_parses() {
        // Results must not depend on the worker count either.
        let points: Vec<SimConfig> = [0.4, 0.6].into_iter().map(point).collect();
        let two = run_parallel(&points, 2);
        let eight = run_parallel(&points, 8);
        for (a, b) in two.iter().zip(&eight) {
            assert_eq!(a.write_cost.to_bits(), b.write_cost.to_bits());
        }
    }
}
