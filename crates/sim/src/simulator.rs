//! The simulator core.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::histogram::Histogram;
use crate::{AccessPattern, Policy, SimConfig};

const NO_SEG: u32 = u32::MAX;

/// Q16 fixed-point heat unit (mirrors `lfs_core`'s estimator).
const HEAT_ONE: u32 = 1 << 16;
/// At or above this a file routes to the hottest stream.
const HEAT_HOT: u32 = 3 * HEAT_ONE;
/// At or above this a file routes to the warm stream.
const HEAT_WARM: u32 = HEAT_ONE;

/// Precomputed Zipfian sampler (Gray et al.'s quick method): one uniform
/// draw per sample after an O(n) harmonic precomputation.
#[derive(Clone, Copy)]
struct Zipf {
    n: u32,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    fn new(n: u32, theta: f64) -> Zipf {
        assert!(
            (0.0..1.0).contains(&theta) && theta > 0.0,
            "Zipf theta must be in (0, 1)"
        );
        let zetan: f64 = (1..=n as u64).map(|i| (i as f64).powf(-theta)).sum();
        let zeta2 = 1.0 + 2f64.powf(-theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Maps a uniform draw in `[0, 1)` to a rank in `[0, n)` (rank 0 is
    /// the most popular).
    fn sample(&self, u: f64) -> u32 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 2f64.powf(-self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u32;
        r.min(self.n - 1)
    }
}

/// Where a file's single block currently lives.
#[derive(Clone, Copy)]
struct FileLoc {
    seg: u32,
    pos: u32,
}

/// One simulated segment.
#[derive(Clone)]
struct Segment {
    /// Blocks appended, in order: `(file id, write time of the block)`.
    entries: Vec<(u32, u64)>,
    live: u32,
    /// Most recent modified time of any block in the segment (§3.6).
    youngest: u64,
    clean: bool,
}

impl Segment {
    fn fresh() -> Segment {
        Segment {
            entries: Vec::new(),
            live: 0,
            youngest: 0,
            clean: true,
        }
    }
}

/// Result of running the simulator to convergence.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The stabilised write cost.
    pub write_cost: f64,
    /// Utilization distribution of segments available to the cleaner,
    /// sampled whenever cleaning started (Figures 5 and 6).
    pub cleaning_histogram: Histogram,
    /// Utilization distribution of the segments actually *cleaned* —
    /// bimodal under cost-benefit ("most of the segments cleaned had
    /// utilizations around 15%", Figure 6 caption).
    pub cleaned_histogram: Histogram,
    /// Average utilization of the segments actually cleaned.
    pub avg_cleaned_utilization: f64,
    /// Steps executed.
    pub steps: u64,
}

/// The Section 3.5 simulator.
pub struct Simulator {
    cfg: SimConfig,
    rng: StdRng,
    files: Vec<FileLoc>,
    segs: Vec<Segment>,
    /// Ring of clean segment ids. Invariant: a segment id is in the ring
    /// iff its `clean` flag is set, so `free_list.len()` is the clean
    /// count and both the space check in `step()` and the advance in
    /// `append_block()` are O(1) instead of scans over every segment.
    free_list: VecDeque<u32>,
    /// One log head per temperature stream: `cur_segs[0]` is the hottest
    /// (and with `streams = 1` the only, historical head), the last the
    /// coldest — where the cleaner writes its relocations.
    cur_segs: Vec<u32>,
    /// Per-file exponential-decay heat `(q16, last touch)`; empty with a
    /// single stream (nothing reads it).
    heat: Vec<(u32, u64)>,
    /// Heat half-life in steps: every file is written about once per
    /// `nfiles` steps under uniform access, so hot files (written much
    /// more often) accumulate heat while cold ones decay to zero.
    heat_half_life: u64,
    zipf: Option<Zipf>,
    clock: u64,
    // Write-cost accounting (current measurement window).
    new_blocks: u64,
    cleaner_read_blocks: u64,
    cleaner_written_blocks: u64,
    cleaning_histogram: Histogram,
    cleaned_histogram: Histogram,
    cleaned_util_sum: f64,
    cleaned_count: u64,
    /// Trace sink for cleaner-pass events. Off by default; `step()` never
    /// touches it (the only emit site is inside `run_cleaner`), so the
    /// hot loop pays nothing for the instrumentation.
    trace: lfs_obs::Trace,
}

impl Simulator {
    /// Builds the simulator and performs the initial sequential layout of
    /// all files (the "initially all the free space is in a single extent"
    /// state of §3.2).
    pub fn new(cfg: SimConfig) -> Simulator {
        let nfiles = cfg.num_files();
        assert!(
            (nfiles as u64) < cfg.nsegments as u64 * cfg.blocks_per_segment as u64,
            "disk utilization must be below 1.0"
        );
        let nstreams = cfg.streams.clamp(1, 4);
        assert!(
            nstreams < cfg.nsegments,
            "stream count must leave segments to write into"
        );
        let zipf = match cfg.pattern {
            AccessPattern::Zipf { theta } => Some(Zipf::new(nfiles, theta)),
            _ => None,
        };
        let mut sim = Simulator {
            rng: StdRng::seed_from_u64(cfg.seed),
            files: vec![
                FileLoc {
                    seg: NO_SEG,
                    pos: 0
                };
                nfiles as usize
            ],
            segs: vec![Segment::fresh(); cfg.nsegments as usize],
            // Segments 0..streams become the initial log heads below;
            // the rest are the clean pool.
            free_list: (nstreams..cfg.nsegments).collect(),
            cur_segs: (0..nstreams).collect(),
            heat: if nstreams > 1 {
                vec![(0, 0); nfiles as usize]
            } else {
                Vec::new()
            },
            heat_half_life: (nfiles as u64 / 2).max(1),
            zipf,
            clock: 0,
            new_blocks: 0,
            cleaner_read_blocks: 0,
            cleaner_written_blocks: 0,
            cleaning_histogram: Histogram::new(50),
            cleaned_histogram: Histogram::new(50),
            cleaned_util_sum: 0.0,
            cleaned_count: 0,
            trace: lfs_obs::Trace::off(),
            cfg,
        };
        for s in 0..nstreams {
            sim.segs[s as usize].clean = false;
        }
        // The initial population has no heat yet, so with several
        // streams it lays out on the coldest — the right prior: a file
        // proves itself hot by being overwritten.
        let t = nstreams as usize - 1;
        for f in 0..nfiles {
            sim.append_block(f, 0, t, false);
        }
        sim
    }

    fn nstreams(&self) -> usize {
        self.cur_segs.len()
    }

    /// Decayed heat of file `f` at the current clock.
    fn file_heat(&self, f: u32) -> u32 {
        let (q, last) = self.heat[f as usize];
        let shifts = (self.clock.saturating_sub(last) / self.heat_half_life).min(31);
        q >> shifts
    }

    /// Records a write to `f` in the heat estimator (several streams
    /// only; a single-stream simulator never calls this).
    fn touch_file(&mut self, f: u32) {
        let q = self.file_heat(f);
        self.heat[f as usize] = (q.saturating_add(HEAT_ONE), self.clock);
    }

    /// The stream a new write of `f` routes to: hottest first, mirroring
    /// `lfs_core::heat`'s class thresholds.
    fn stream_of(&self, f: u32) -> usize {
        let n = self.nstreams();
        if n == 1 {
            return 0;
        }
        let q = self.file_heat(f);
        if q >= HEAT_HOT {
            0
        } else if q >= HEAT_WARM {
            1.min(n - 1)
        } else {
            n - 1
        }
    }

    /// Routes cleaner-pass trace events (picked-segment utilizations,
    /// empty counts) into `trace`, timestamped with the simulation clock.
    pub fn set_trace(&mut self, trace: lfs_obs::Trace) {
        self.trace = trace;
    }

    /// The attached trace handle (off by default).
    pub fn trace(&self) -> &lfs_obs::Trace {
        &self.trace
    }

    fn pick_file(&mut self) -> u32 {
        let n = self.files.len() as u32;
        match self.cfg.pattern {
            AccessPattern::Uniform => self.rng.gen_range(0..n),
            AccessPattern::HotCold {
                hot_fraction,
                hot_access_fraction,
            } => {
                let hot_files = ((n as f64 * hot_fraction) as u32).max(1).min(n);
                if hot_files == n || self.rng.gen_bool(hot_access_fraction) {
                    self.rng.gen_range(0..hot_files)
                } else {
                    self.rng.gen_range(hot_files..n)
                }
            }
            AccessPattern::Zipf { .. } => {
                let u: f64 = self.rng.gen_range(0.0..1.0);
                self.zipf
                    .expect("Zipf sampler precomputed in new()")
                    .sample(u)
            }
        }
    }

    /// Appends one block for file `f` to stream `t`'s log head,
    /// invalidating its old copy. `mtime` is the block's modification
    /// time carried along by the cleaner; new writes use the current
    /// clock.
    fn append_block(&mut self, f: u32, mtime: u64, t: usize, by_cleaner: bool) {
        // Advance to a clean segment if the stream's segment is full.
        if self.segs[self.cur_segs[t] as usize].entries.len()
            >= self.cfg.blocks_per_segment as usize
        {
            let next = self
                .free_list
                .pop_front()
                .expect("out of clean segments — cleaner invariant broken");
            self.cur_segs[t] = next;
            let seg = &mut self.segs[next as usize];
            seg.clean = false;
            seg.entries.clear();
            seg.live = 0;
            seg.youngest = 0;
        }
        // Invalidate the old copy.
        let old = self.files[f as usize];
        if old.seg != NO_SEG {
            self.segs[old.seg as usize].live -= 1;
        }
        let cur = self.cur_segs[t];
        let seg = &mut self.segs[cur as usize];
        let pos = seg.entries.len() as u32;
        seg.entries.push((f, mtime));
        seg.live += 1;
        seg.youngest = seg.youngest.max(mtime);
        self.files[f as usize] = FileLoc { seg: cur, pos };
        if by_cleaner {
            self.cleaner_written_blocks += 1;
        }
    }

    fn clean_segments_available(&self) -> u32 {
        self.free_list.len() as u32
    }

    /// One simulation step: overwrite one file; clean if out of space.
    pub fn step(&mut self) {
        self.clock += 1;
        let full = |sim: &Simulator, t: usize| {
            sim.segs[sim.cur_segs[t] as usize].entries.len() >= sim.cfg.blocks_per_segment as usize
        };
        if self.nstreams() == 1 {
            // Ensure space exists before writing (the cleaner needs the
            // segments it fills to already be clean). The check comes
            // before the pick, preserving the historical single-stream
            // RNG draw sequence exactly.
            if self.free_list.is_empty() && full(self, 0) {
                self.run_cleaner(0);
            }
            let f = self.pick_file();
            let now = self.clock;
            self.append_block(f, now, 0, false);
        } else {
            // The target stream depends on the file, so pick first. The
            // stream is judged on the heat *before* this write: one
            // write does not make a cold file warm.
            let f = self.pick_file();
            let t = self.stream_of(f);
            self.touch_file(f);
            if self.free_list.is_empty() && full(self, t) {
                self.run_cleaner(t);
            }
            let now = self.clock;
            self.append_block(f, now, t, false);
        }
        self.new_blocks += 1;
    }

    /// Runs the cleaner until enough clean segments exist — "the simulator
    /// runs until all clean segments are exhausted, then simulates the
    /// actions of a cleaner until a threshold number of clean segments is
    /// available again."
    ///
    /// The target is capped at what the live data physically allows:
    /// at high disk utilizations, `clean_target` clean segments may not be
    /// achievable, and cleaning fully-live segments (`u = 1`) would move
    /// bytes without reclaiming anything — the cleaner skips those and
    /// stops when no candidate can make progress.
    fn run_cleaner(&mut self, need: usize) {
        // One reciprocal for every utilization computed below: the
        // snapshot loop alone divides once per segment per cleaning.
        let inv_spb = 1.0 / self.cfg.blocks_per_segment as f64;
        let is_head = |sim: &Simulator, i: usize| sim.cur_segs.contains(&(i as u32));
        // Snapshot the distribution the cleaner sees (Figures 5/6),
        // skipping clean segments (nothing for the cleaner to look at).
        for (i, s) in self.segs.iter().enumerate() {
            if !s.clean && !is_head(self, i) {
                self.cleaning_histogram.add(s.live as f64 * inv_spb);
            }
        }
        let spb = self.cfg.blocks_per_segment;
        let min_live_segs = (self.files.len() as u32).div_ceil(spb);
        let max_clean = self
            .cfg
            .nsegments
            .saturating_sub(min_live_segs)
            .saturating_sub(1 + self.nstreams() as u32);
        let target = self.cfg.clean_target.min(max_clean).max(1);
        let mut stalled = 0;
        while self.clean_segments_available() < target {
            let before = self.clean_segments_available();
            // The adaptive policy scores against the candidate
            // population: mean utilization, mean age, and the
            // clean-segment fraction (see `lfs_core::cleaner::Adaptive`).
            let (mean_util, mean_age) = if self.cfg.policy == Policy::Adaptive {
                let mut n = 0u64;
                let (mut us, mut ages) = (0.0f64, 0.0f64);
                for (i, s) in self.segs.iter().enumerate() {
                    if !s.clean && !is_head(self, i) && s.live < spb {
                        n += 1;
                        us += s.live as f64 * inv_spb;
                        ages += (self.clock.saturating_sub(s.youngest) + 1) as f64;
                    }
                }
                if n == 0 {
                    (0.5, 1.0)
                } else {
                    (us / n as f64, ages / n as f64)
                }
            } else {
                (0.5, 1.0)
            };
            let mut ranked: Vec<(f64, u32)> = self
                .segs
                .iter()
                .enumerate()
                .filter(|&(i, s)| !s.clean && !is_head(self, i) && s.live < spb)
                .map(|(i, s)| {
                    let u = s.live as f64 * inv_spb;
                    let age = (self.clock.saturating_sub(s.youngest) + 1) as f64;
                    let score = match self.cfg.policy {
                        Policy::Greedy => 1.0 - u,
                        Policy::CostBenefit => (1.0 - u) * age / (1.0 + u),
                        Policy::Adaptive => {
                            let age_norm = age / mean_age.max(1.0);
                            (1.0 - u) / (1.0 + u) * (1.0 + age_norm * mean_util)
                        }
                    };
                    (score, i as u32)
                })
                .collect();
            if ranked.is_empty() {
                break; // Only fully-live segments remain.
            }
            // Only the pace's worth of top scores matter: a linear-time
            // selection beats sorting the whole candidate list, and the
            // (small) selected prefix is then ordered best-first. The
            // adaptive policy paces by the clean-segment deficit —
            // bigger installments the closer the disk is to wedging.
            let pace = if self.cfg.policy == Policy::Adaptive {
                let fill = self.clean_segments_available() as f64 / target as f64;
                let deficit = (1.0 - fill).clamp(0.0, 1.0);
                ((self.cfg.segs_per_pass as f64 * (0.25 + 0.75 * deficit)).round() as usize).max(1)
            } else {
                self.cfg.segs_per_pass as usize
            };
            let k = pace.min(ranked.len());
            let desc = |a: &(f64, u32), b: &(f64, u32)| b.0.partial_cmp(&a.0).unwrap();
            if k < ranked.len() {
                ranked.select_nth_unstable_by(k - 1, desc);
                ranked.truncate(k);
            }
            ranked.sort_by(desc);
            let picked: Vec<u32> = ranked.iter().map(|&(_, i)| i).collect();

            if self.trace.is_on() {
                let mut empty = 0u32;
                let mut utilizations = Vec::with_capacity(picked.len());
                for &si in &picked {
                    let seg = &self.segs[si as usize];
                    if seg.live == 0 {
                        empty += 1;
                    } else {
                        utilizations.push(seg.live as f64 * inv_spb);
                    }
                }
                self.trace
                    .emit(self.clock, || lfs_obs::TraceEvent::CleanerPass {
                        segments: picked.len() as u32,
                        empty,
                        utilizations,
                    });
            }

            // Gather live blocks of the picked segments.
            let mut live: Vec<(u32, u64)> = Vec::new();
            for &si in &picked {
                let seg = &self.segs[si as usize];
                let u = seg.live as f64 * inv_spb;
                self.cleaned_util_sum += u;
                self.cleaned_histogram.add(u);
                self.cleaned_count += 1;
                if seg.live > 0 {
                    // "If a segment to be cleaned has no live blocks then
                    // it need not be read at all."
                    self.cleaner_read_blocks += self.cfg.blocks_per_segment as u64;
                    // Take the entries out instead of cloning them; the
                    // drained (empty, capacity kept) vector goes back so
                    // the segment's buffer is reused across cleanings.
                    let mut entries = std::mem::take(&mut self.segs[si as usize].entries);
                    for (pos, (f, t)) in entries.drain(..).enumerate() {
                        let loc = self.files[f as usize];
                        if loc.seg == si && loc.pos == pos as u32 {
                            live.push((f, t));
                            // Detach the file from its (about to be
                            // recycled) source so the re-append below does
                            // not decrement the zeroed segment.
                            self.files[f as usize].seg = NO_SEG;
                        }
                    }
                    self.segs[si as usize].entries = entries;
                }
            }
            if self.cfg.age_sort {
                // Oldest first, so cold data segregates together.
                live.sort_by_key(|&(_, t)| t);
            }
            // Mark sources clean, then write the live blocks back to the
            // head of the log.
            for &si in &picked {
                let seg = &mut self.segs[si as usize];
                seg.entries.clear();
                seg.live = 0;
                seg.youngest = 0;
                seg.clean = true;
                self.free_list.push_back(si);
            }
            // Relocations route by the surviving file's own heat, with
            // the coldest stream as the unheated default. Blanket
            // cold-routing would be wrong for the live blocks salvaged
            // out of a *hot* segment: they survived because they are
            // recent, and burying them in cold segments seeds those
            // segments with soon-to-die bytes (the exact mixing the
            // streams exist to prevent).
            for (f, t) in live {
                let mut dst = self.stream_of(f);
                // Near the packing limit the preferred head may be full
                // with no clean segment left to extend it. Some head
                // always has room — a pass frees at least as much space
                // as it rewrites — so spill there rather than wedge.
                // (Mixing temperatures when the disk is this full is the
                // lesser evil.)
                let full = |sim: &Simulator, s: usize| {
                    sim.segs[sim.cur_segs[s] as usize].entries.len() >= spb as usize
                };
                if self.free_list.is_empty() && full(self, dst) {
                    if let Some(alt) = (0..self.nstreams()).find(|&s| !full(self, s)) {
                        dst = alt;
                    }
                }
                self.append_block(f, t, dst, true);
            }
            // Guard against zero-net oscillation near the packing limit.
            if self.clean_segments_available() <= before {
                stalled += 1;
                if stalled >= 3 {
                    break;
                }
            } else {
                stalled = 0;
            }
        }
        assert!(
            self.clean_segments_available() > 0
                || self.segs[self.cur_segs[need] as usize].entries.len()
                    < self.cfg.blocks_per_segment as usize,
            "cleaner could not reclaim any space — disk utilization too high"
        );
    }

    /// Write cost accumulated in the current measurement window.
    fn window_write_cost(&self) -> f64 {
        if self.new_blocks == 0 {
            return 1.0;
        }
        (self.new_blocks + self.cleaner_read_blocks + self.cleaner_written_blocks) as f64
            / self.new_blocks as f64
    }

    fn reset_window(&mut self) {
        self.new_blocks = 0;
        self.cleaner_read_blocks = 0;
        self.cleaner_written_blocks = 0;
    }

    /// Runs until the write cost stabilises ("in each run the simulator
    /// was allowed to run until the write cost stabilized and all
    /// cold-start variance had been removed").
    pub fn run_until_stable(&mut self) -> SimResult {
        let n = self.files.len() as u64;
        let window = (n * 8).max(50_000);
        // Warm-up must remove *all* cold-start variance (the paper's
        // phrase): under hot-and-cold access a cold file is overwritten
        // only once per `0.9 n / 0.1` steps, and the standing population
        // of slowly-decaying cold segments is exactly what the greedy
        // pathology of Figure 5 depends on. Run long enough for every
        // cold file to have been rewritten several times.
        let warmup = match self.cfg.pattern {
            AccessPattern::Uniform => n * 20,
            // Skewed patterns: the coldest files are rewritten orders of
            // magnitude less often, and the standing cold-segment
            // population is what the policy comparisons depend on.
            AccessPattern::HotCold { .. } | AccessPattern::Zipf { .. } => n * 60,
        }
        .max(100_000);
        for _ in 0..warmup {
            self.step();
        }
        self.reset_window();
        // Drop the cold-start histogram too.
        self.cleaning_histogram = Histogram::new(50);
        self.cleaned_histogram = Histogram::new(50);
        self.cleaned_util_sum = 0.0;
        self.cleaned_count = 0;

        let mut prev = f64::INFINITY;
        let mut steps = window;
        for _round in 0..40 {
            for _ in 0..window {
                self.step();
            }
            steps += window;
            let wc = self.window_write_cost();
            if (wc - prev).abs() / wc < 0.01 {
                prev = wc;
                break;
            }
            prev = wc;
            self.reset_window();
        }
        SimResult {
            write_cost: prev,
            cleaning_histogram: self.cleaning_histogram.clone(),
            cleaned_histogram: self.cleaned_histogram.clone(),
            avg_cleaned_utilization: if self.cleaned_count == 0 {
                0.0
            } else {
                self.cleaned_util_sum / self.cleaned_count as f64
            },
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write_cost_formula;

    fn quick(cfg: SimConfig) -> SimResult {
        Simulator::new(cfg).run_until_stable()
    }

    /// A scaled-down version of the calibrated default regime: the clean
    /// pool stays small relative to the hot working set (see
    /// `SimConfig::default_at`).
    fn small(util: f64) -> SimConfig {
        SimConfig {
            nsegments: 150,
            blocks_per_segment: 32,
            disk_utilization: util,
            clean_target: 3,
            segs_per_pass: 3,
            ..SimConfig::default_at(util)
        }
    }

    #[test]
    fn trace_records_cleaner_passes_with_utilizations() {
        let mut sim = Simulator::new(small(0.75));
        sim.set_trace(lfs_obs::Trace::ring(1024));
        for _ in 0..50_000 {
            sim.step();
        }
        let counts = sim.trace().counts();
        assert!(
            counts.get("cleaner_pass").copied().unwrap_or(0) > 0,
            "no cleaner passes traced: {counts:?}"
        );
        // Utilizations in the events must be valid fractions.
        for line in sim.trace().to_jsonl().lines() {
            let v = serde_json::from_str(line).expect("trace line parses");
            if let Some(us) = v.get("utilizations").and_then(|u| u.as_array()) {
                for u in us {
                    let u = u.as_f64().unwrap();
                    assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
                }
            }
        }
    }

    #[test]
    fn low_utilization_write_cost_near_one() {
        let r = quick(small(0.10));
        assert!(
            r.write_cost < 2.0,
            "write cost {} at 10% utilization",
            r.write_cost
        );
    }

    #[test]
    fn write_cost_grows_with_utilization() {
        let lo = quick(small(0.3)).write_cost;
        let hi = quick(small(0.8)).write_cost;
        assert!(hi > lo * 1.5, "lo={lo} hi={hi}");
    }

    #[test]
    fn greedy_uniform_beats_no_variance_formula() {
        // "Even with uniform random access patterns, the variance in
        // segment utilization allows a substantially lower write cost
        // than would be predicted from the overall disk capacity
        // utilization and formula (1)."
        let util = 0.75;
        let r = quick(small(util));
        assert!(
            r.write_cost < write_cost_formula(util),
            "measured {} vs formula {}",
            r.write_cost,
            write_cost_formula(util)
        );
        // And the segments cleaned have lower utilization than the disk
        // average (~0.55 at 75% in the paper).
        assert!(
            r.avg_cleaned_utilization < util,
            "cleaned at u={}",
            r.avg_cleaned_utilization
        );
    }

    #[test]
    fn hot_cold_greedy_worse_than_uniform_greedy() {
        // The surprising Figure 4 result: locality + greedy is WORSE.
        let mut u = small(0.75);
        u.seed = 7;
        let uniform = quick(u).write_cost;
        let mut hc = small(0.75);
        hc.pattern = AccessPattern::hot_cold_default();
        hc.age_sort = true;
        hc.seed = 7;
        let hotcold = quick(hc).write_cost;
        assert!(
            hotcold > uniform,
            "hot-and-cold {hotcold} should exceed uniform {uniform}"
        );
    }

    #[test]
    fn cost_benefit_beats_greedy_on_hot_cold() {
        // Figure 7: cost-benefit reduces write cost substantially under
        // locality.
        let mut g = small(0.75);
        g.pattern = AccessPattern::hot_cold_default();
        g.policy = Policy::Greedy;
        g.age_sort = true;
        let greedy = quick(g).write_cost;
        let mut cb = g;
        cb.policy = Policy::CostBenefit;
        let cost_benefit = quick(cb).write_cost;
        assert!(
            cost_benefit < greedy,
            "cost-benefit {cost_benefit} vs greedy {greedy}"
        );
    }

    #[test]
    fn cost_benefit_distribution_is_bimodal() {
        // Figure 6: cold segments cleaned around high utilization, hot
        // around low — mass at both ends of the cleaned distribution.
        let mut cfg = small(0.75);
        cfg.pattern = AccessPattern::hot_cold_default();
        cfg.policy = Policy::CostBenefit;
        cfg.age_sort = true;
        let r = quick(cfg);
        let h = &r.cleaned_histogram;
        assert!(h.total() > 0);
        let low = h.mass_in(0.0, 0.35);
        let high = h.mass_in(0.6, 1.01);
        assert!(
            low > 0.1 && high > 0.1,
            "expected bimodal cleaned distribution: low {low}, high {high}"
        );
    }

    #[test]
    fn locality_with_greedy_never_beats_uniform() {
        // The paper also reports that greedy got "worse and worse as the
        // locality increased" (§3.5). In our simulator the *direction*
        // (locality hurts greedy relative to uniform) reproduces, but the
        // monotonic sharpening does not: a very small hot set decays fully
        // between cleanings and gets cheap again. EXPERIMENTS.md records
        // this divergence. Here we pin the part that does hold: both
        // locality settings stay at or above the uniform cost.
        let uniform_wc = quick(SimConfig::default_at(0.75)).write_cost;
        for (hf, ha) in [(0.1, 0.9), (0.05, 0.95)] {
            let mut cfg = SimConfig::default_at(0.75);
            cfg.pattern = AccessPattern::HotCold {
                hot_fraction: hf,
                hot_access_fraction: ha,
            };
            cfg.age_sort = true;
            let wc = quick(cfg).write_cost;
            assert!(
                wc > uniform_wc * 0.9,
                "hot/cold {hf}/{ha}: {wc} collapsed below uniform {uniform_wc}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(small(0.5)).write_cost;
        let b = quick(small(0.5)).write_cost;
        assert_eq!(a, b);
    }
}
