//! Prints the steady-state cleaning dynamics (write cost, average
//! cleaned utilization, distribution masses) for the four §3.5
//! configurations. Useful for exploring the regime calibration discussed
//! in DESIGN.md.

use cleaner_sim::*;

fn run(label: &str, pattern: AccessPattern, policy: Policy, age_sort: bool) {
    let cfg = SimConfig {
        nsegments: 300,
        blocks_per_segment: 64,
        disk_utilization: 0.75,
        pattern,
        policy,
        age_sort,
        clean_target: 4,
        segs_per_pass: 4,
        streams: 1,
        seed: 7,
    };
    let mut s = Simulator::new(cfg);
    // Extra-long manual warmup: several full transits of the cold ladder.
    for _ in 0..cfg.num_files() as u64 * 60 {
        s.step();
    }
    let r = s.run_until_stable();
    let h = &r.cleaning_histogram;
    println!(
        "{label:28} wc={:.2} cleaned_u={:.2} dist: lo[0-0.3]={:.2} mid[0.3-0.7]={:.2} hi[0.7-1]={:.2}",
        r.write_cost,
        r.avg_cleaned_utilization,
        h.mass_in(0.0, 0.3),
        h.mass_in(0.3, 0.7),
        h.mass_in(0.7, 1.01)
    );
}

fn main() {
    run(
        "uniform greedy",
        AccessPattern::Uniform,
        Policy::Greedy,
        false,
    );
    run(
        "hotcold greedy+agesort",
        AccessPattern::hot_cold_default(),
        Policy::Greedy,
        true,
    );
    run(
        "hotcold greedy no-sort",
        AccessPattern::hot_cold_default(),
        Policy::Greedy,
        false,
    );
    run(
        "hotcold costbenefit+agesort",
        AccessPattern::hot_cold_default(),
        Policy::CostBenefit,
        true,
    );
}
