//! Overhead guard for the observability hooks.
//!
//! `Simulator::step` never touches the trace handle — the only emit site
//! is inside the cleaner pass, behind an `is_on` check — so stepping with
//! tracing disabled must cost the same as before the hooks existed, and
//! even *recording* must stay within the 2% budget. The guard measures
//! both configurations interleaved (so frequency scaling and cache state
//! hit them equally) and compares medians.
//!
//! Timing-sensitive, so ignored by default; CI runs it explicitly with
//! `cargo test -p cleaner-sim --release -- --ignored`.

use cleaner_sim::{AccessPattern, Policy, SimConfig, Simulator};
use lfs_obs::Trace;
use std::time::Instant;

const WARMUP_STEPS: usize = 50_000;
const MEASURED_STEPS: usize = 200_000;
const ROUNDS: usize = 7;

fn cfg() -> SimConfig {
    let mut cfg = SimConfig::default_at(0.75);
    cfg.nsegments = 150;
    cfg.pattern = AccessPattern::hot_cold_default();
    cfg.policy = Policy::CostBenefit;
    cfg.age_sort = true;
    cfg
}

fn steady_sim(trace: Trace) -> Simulator {
    let mut sim = Simulator::new(cfg());
    sim.set_trace(trace);
    for _ in 0..WARMUP_STEPS {
        sim.step();
    }
    sim
}

/// Seconds for `MEASURED_STEPS` steps.
fn time_steps(sim: &mut Simulator) -> f64 {
    let t0 = Instant::now();
    for _ in 0..MEASURED_STEPS {
        sim.step();
    }
    t0.elapsed().as_secs_f64()
}

/// Minimum over rounds: the stable estimator for per-step cost under
/// frequency scaling and scheduler noise (all interference is additive).
fn min_of(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

#[test]
#[ignore = "timing-sensitive; run with `cargo test --release -- --ignored`"]
fn tracing_overhead_under_two_percent() {
    let mut off = steady_sim(Trace::off());
    let mut on = steady_sim(Trace::ring(1024));

    let mut t_off = Vec::with_capacity(ROUNDS);
    let mut t_on = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        t_off.push(time_steps(&mut off));
        t_on.push(time_steps(&mut on));
    }
    let off_min = min_of(&t_off);
    let on_min = min_of(&t_on);
    let ratio = on_min / off_min;
    eprintln!(
        "sim_step overhead guard: off {:.1} ns/step, recording {:.1} ns/step, ratio {ratio:.4}",
        off_min * 1e9 / MEASURED_STEPS as f64,
        on_min * 1e9 / MEASURED_STEPS as f64,
    );
    // Recording bounds disabled-tracing overhead from above: the off
    // configuration does strictly less work per step.
    assert!(
        ratio < 1.02,
        "tracing overhead {:.2}% exceeds the 2% budget",
        (ratio - 1.0) * 100.0
    );

    // The trace actually recorded cleaner passes while we measured.
    assert!(
        on.trace()
            .counts()
            .get("cleaner_pass")
            .copied()
            .unwrap_or(0)
            > 0
    );
}
