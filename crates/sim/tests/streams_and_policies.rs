//! Tests for the Cleaner 2.0 simulator features: Zipfian access, the
//! adaptive policy, and temperature-keyed write streams.
//!
//! Thresholds are set from measured values at this exact configuration
//! (the simulator is fully deterministic for a fixed seed) with wide
//! safety margins, so they document the qualitative result — not the
//! third decimal.

use cleaner_sim::{AccessPattern, Policy, SimConfig, Simulator};

fn tiny(util: f64) -> SimConfig {
    SimConfig {
        nsegments: 120,
        blocks_per_segment: 32,
        disk_utilization: util,
        clean_target: 3,
        segs_per_pass: 3,
        ..SimConfig::default_at(util)
    }
}

fn wc(cfg: SimConfig) -> f64 {
    Simulator::new(cfg).run_until_stable().write_cost
}

#[test]
fn zipf_is_deterministic_and_converges() {
    let mut cfg = tiny(0.7);
    cfg.pattern = AccessPattern::zipf_default();
    cfg.policy = Policy::CostBenefit;
    cfg.age_sort = true;
    let a = wc(cfg);
    let b = wc(cfg);
    assert_eq!(a, b, "same seed must reproduce bit-identically");
    assert!(a >= 1.0, "write cost below the physical floor: {a}");
}

#[test]
fn zipf_skew_is_at_least_as_hard_as_uniform_for_greedy() {
    // Skewed access concentrates dead space unevenly, which greedy
    // cannot exploit — the paper's locality paradox (§3.5) holds for a
    // continuous popularity gradient too.
    let mut cfg = tiny(0.75);
    cfg.policy = Policy::Greedy;
    let uniform = wc(cfg);
    cfg.pattern = AccessPattern::zipf_default();
    let zipf = wc(cfg);
    // Measured: uniform 4.39, zipf 4.66.
    assert!(
        zipf > uniform * 0.98,
        "zipf {zipf} unexpectedly far below uniform {uniform}"
    );
}

#[test]
fn streams_reduce_write_cost_under_cost_benefit() {
    // Temperature segregation at *placement* time helps even with the
    // classic policy: hot segments decay to near-empty before cleaning.
    let mut one = tiny(0.8);
    one.pattern = AccessPattern::hot_cold_default();
    one.policy = Policy::CostBenefit;
    one.age_sort = true;
    let mut three = one;
    three.streams = 3;
    let wc1 = wc(one);
    let wc3 = wc(three);
    // Measured: 4.23 vs 3.43.
    assert!(
        wc3 < wc1 * 0.95,
        "3 streams ({wc3}) should beat 1 stream ({wc1})"
    );
}

#[test]
fn adaptive_with_streams_beats_cost_benefit_on_skewed_mixes() {
    // The PR's headline claim at test scale: adaptive + 3 streams cuts
    // cleaning overhead well below classic cost-benefit + age-sort on
    // both skewed mixes. The full-scale gate lives in the
    // `cleaner_scaling` bench; this is the fast regression tripwire.
    for pattern in [
        AccessPattern::hot_cold_default(),
        AccessPattern::zipf_default(),
    ] {
        let mut base = tiny(0.8);
        base.pattern = pattern;
        base.policy = Policy::CostBenefit;
        base.age_sort = true;
        let mut cand = base;
        cand.policy = Policy::Adaptive;
        cand.age_sort = false;
        cand.streams = 3;
        let wc_base = wc(base);
        let wc_cand = wc(cand);
        // Measured: hotcold 4.23 vs 3.37, zipf 6.12 vs 4.53.
        assert!(
            wc_cand < wc_base * 0.9,
            "{pattern:?}: adaptive+streams {wc_cand} vs cost-benefit {wc_base}"
        );
    }
}

#[test]
fn single_stream_config_field_matches_default() {
    // streams = 1 is the classic simulator; the field's default must not
    // silently change behaviour.
    let cfg = tiny(0.6);
    assert_eq!(cfg.streams, 1);
    let mut explicit = cfg;
    explicit.streams = 1;
    assert_eq!(wc(cfg), wc(explicit));
}
