//! Public-API tests for the §3.5 simulator.

use cleaner_sim::{
    write_cost_formula, AccessPattern, Policy, SimConfig, Simulator, FFS_IMPROVED_WRITE_COST,
    FFS_TODAY_WRITE_COST,
};

fn tiny(util: f64) -> SimConfig {
    SimConfig {
        nsegments: 100,
        blocks_per_segment: 32,
        disk_utilization: util,
        clean_target: 3,
        segs_per_pass: 3,
        ..SimConfig::default_at(util)
    }
}

#[test]
fn histogram_fractions_sum_to_one() {
    let r = Simulator::new(tiny(0.6)).run_until_stable();
    let total: f64 = r
        .cleaning_histogram
        .fractions()
        .iter()
        .map(|(_, f)| f)
        .sum();
    assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
    let total: f64 = r.cleaned_histogram.fractions().iter().map(|(_, f)| f).sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn avg_cleaned_utilization_is_a_fraction() {
    let r = Simulator::new(tiny(0.7)).run_until_stable();
    assert!((0.0..1.0).contains(&r.avg_cleaned_utilization));
    assert!(r.steps > 0);
}

#[test]
fn write_cost_bounded_by_formula_at_cleaned_utilization() {
    // Internal consistency: measured write cost can never exceed the
    // formula applied at the *average cleaned* utilization by much
    // (empty segments make it cheaper, never more expensive).
    let r = Simulator::new(tiny(0.7)).run_until_stable();
    let bound = write_cost_formula(r.avg_cleaned_utilization.min(0.99)) * 1.5;
    assert!(
        r.write_cost <= bound,
        "wc {} vs bound {bound} (cleaned u {})",
        r.write_cost,
        r.avg_cleaned_utilization
    );
}

#[test]
fn different_seeds_agree_qualitatively() {
    let mut a = tiny(0.75);
    a.seed = 1;
    let mut b = tiny(0.75);
    b.seed = 999;
    let ra = Simulator::new(a).run_until_stable();
    let rb = Simulator::new(b).run_until_stable();
    let rel = (ra.write_cost - rb.write_cost).abs() / ra.write_cost;
    assert!(
        rel < 0.25,
        "seeds diverge: {} vs {}",
        ra.write_cost,
        rb.write_cost
    );
}

#[test]
fn cost_benefit_with_patterns_all_converge() {
    for pattern in [AccessPattern::Uniform, AccessPattern::hot_cold_default()] {
        for policy in [Policy::Greedy, Policy::CostBenefit] {
            let mut cfg = tiny(0.5);
            cfg.pattern = pattern;
            cfg.policy = policy;
            cfg.age_sort = policy == Policy::CostBenefit;
            let r = Simulator::new(cfg).run_until_stable();
            assert!(
                r.write_cost >= 1.0 && r.write_cost < FFS_TODAY_WRITE_COST,
                "{pattern:?}/{policy:?}: wc {}",
                r.write_cost
            );
        }
    }
}

#[test]
fn low_utilization_beats_ffs_improved_easily() {
    let r = Simulator::new(tiny(0.3)).run_until_stable();
    assert!(r.write_cost < FFS_IMPROVED_WRITE_COST);
}

#[test]
fn step_api_is_usable_directly() {
    let mut s = Simulator::new(tiny(0.4));
    for _ in 0..50_000 {
        s.step();
    }
    // No panic, and a subsequent convergence run still works.
    let r = s.run_until_stable();
    assert!(r.write_cost >= 1.0);
}
