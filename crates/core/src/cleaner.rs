//! The segment cleaner: mechanism (§3.3) and policies (§3.4–3.6).
//!
//! The mechanism is the paper's three-step process: "read a number of
//! segments into memory, identify the live data, and write the live data
//! back to a smaller number of clean segments." Liveness is established
//! from the segment summary: the uid (inode number + version) check
//! discards blocks of deleted or truncated files without touching the
//! inode; surviving candidates are confirmed against the actual block
//! pointers.
//!
//! Policy: segments are selected either greedily (least utilized first) or
//! by the cost-benefit ratio
//!
//! ```text
//! benefit   (1 - u) * age
//! ------- = -------------
//!   cost        1 + u
//! ```
//!
//! which "allows cold segments to be cleaned at a much higher utilization
//! than hot segments" (§3.5). With age-sorting enabled, live blocks are
//! written back grouped by age so cold data segregates into its own
//! segments — the source of the bimodal distribution in Figure 6.

use blockdev::{QueueDevice, BLOCK_SIZE};
use vfs::{FsError, FsResult};

use crate::config::CleaningPolicy;
use crate::fs::{CachedBlock, IndKey, Lfs};
use crate::inode::{Inode, INODE_DISK_SIZE};
use crate::layout::DiskAddr;
use crate::summary::{EntryKind, Summary};
use crate::usage::SegState;

/// What a policy may observe about the candidate population before
/// scoring individual segments: the live segment-utilization
/// distribution, summarized. Greedy and cost-benefit ignore it (their
/// scores are per-segment functions, which keeps them bit-identical to
/// the pre-trait cleaner); the adaptive policy reads it to blend between
/// the two regimes and to pace itself.
#[derive(Clone, Copy, Debug)]
pub struct PolicyCtx {
    /// Mean utilization of the dirty (cleanable) segments.
    pub mean_util: f64,
    /// Mean age of the dirty segments, in logical clock ticks.
    pub mean_age: f64,
    /// Clean segments as a fraction of all segments.
    pub clean_frac: f64,
}

impl Default for PolicyCtx {
    fn default() -> Self {
        PolicyCtx {
            mean_util: 0.5,
            mean_age: 1.0,
            clean_frac: 0.5,
        }
    }
}

/// A victim-selection and pacing policy (§3.4–3.6 generalized): scores
/// candidate segments and decides how many to take per pass.
pub trait CleanPolicy {
    /// Short name for traces and benches.
    fn name(&self) -> &'static str;
    /// Ranks a segment for cleaning: higher is better. `u` is the
    /// segment's utilization and `age` the time since its youngest block
    /// was written.
    fn rank(&self, u: f64, age: u64, ctx: &PolicyCtx) -> f64;
    /// How many segments to pick this pass, given the configured base.
    fn pace(&self, base: u32, _ctx: &PolicyCtx) -> u32 {
        base
    }
}

/// Always clean the least-utilized segments (§3.4).
pub struct Greedy;

impl CleanPolicy for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }
    fn rank(&self, u: f64, _age: u64, _ctx: &PolicyCtx) -> f64 {
        1.0 - u
    }
}

/// The paper's cost-benefit policy `(1-u)*age/(1+u)` (§3.5).
pub struct CostBenefit;

impl CleanPolicy for CostBenefit {
    fn name(&self) -> &'static str {
        "cost-benefit"
    }
    fn rank(&self, u: f64, age: u64, _ctx: &PolicyCtx) -> f64 {
        (1.0 - u) * age as f64 / (1.0 + u)
    }
}

/// Utilization-distribution-adaptive policy (Lomet & Luo).
///
/// Cost-benefit's fixed `age` weighting has two failure modes: when the
/// disk is mostly empty it passes over nearly-free segments in favour of
/// old half-full ones (copying for no reason), and its age term has
/// dimensions of raw clock ticks, so its strength varies with geometry
/// and workload rate. `Adaptive` fixes both by reading the candidate
/// population: ages are normalized by the population mean (scale-free),
/// and the age term is weighted by the population's mean utilization —
/// on an emptyish disk (low mean utilization) it scores almost purely on
/// free space like greedy, while on a full disk it leans on age like
/// cost-benefit, where hot/cold segregation matters most. Pacing scales
/// with the clean-segment deficit so a nearly-wedged disk cleans in
/// bigger installments and an idle one in smaller.
pub struct Adaptive;

impl CleanPolicy for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }
    fn rank(&self, u: f64, age: u64, ctx: &PolicyCtx) -> f64 {
        let age_norm = age as f64 / ctx.mean_age.max(1.0);
        (1.0 - u) / (1.0 + u) * (1.0 + age_norm * ctx.mean_util)
    }
    fn pace(&self, base: u32, ctx: &PolicyCtx) -> u32 {
        let deficit = (1.0 - ctx.clean_frac).clamp(0.0, 1.0);
        ((base as f64 * (0.5 + 1.5 * deficit)).round() as u32).max(1)
    }
}

impl CleaningPolicy {
    /// The policy implementation this configuration value selects.
    pub fn as_policy(self) -> &'static dyn CleanPolicy {
        match self {
            CleaningPolicy::Greedy => &Greedy,
            CleaningPolicy::CostBenefit => &CostBenefit,
            CleaningPolicy::Adaptive => &Adaptive,
        }
    }
}

/// Ranks a segment for cleaning under `policy` with a neutral
/// population context: higher is better. The single place the real
/// cleaner, the simulator comparisons, and external analysis share for
/// the fixed (non-adaptive) policies.
pub fn rank(policy: CleaningPolicy, u: f64, age: u64) -> f64 {
    policy.as_policy().rank(u, age, &PolicyCtx::default())
}

/// Max-heap entry for candidate selection: `(score, seg, live_bytes)`
/// ordered by score descending with ties to the lower segment id — the
/// same order the previous full stable sort produced.
struct HeapCand((f64, u32, u64));

impl PartialEq for HeapCand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapCand {}

impl PartialOrd for HeapCand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapCand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
             .0
            .partial_cmp(&other.0 .0)
            .unwrap_or(std::cmp::Ordering::Equal)
            // Lower segment id wins ties, so it must compare greater.
            .then(other.0 .1.cmp(&self.0 .1))
    }
}

impl<D: QueueDevice> Lfs<D> {
    /// Runs the cleaner if the number of clean segments has fallen below
    /// the low-water mark, continuing until the high-water mark is
    /// reached or nothing more can be cleaned.
    pub(crate) fn maybe_clean(&mut self) -> FsResult<()> {
        if self.cleaning {
            return Ok(());
        }
        if self.usage.clean_count() >= self.cfg.clean_low_water {
            return Ok(());
        }
        self.cleaning = true;
        let res = if self.cfg.clean_pace_segs > 0 {
            self.clean_increment()
        } else {
            self.clean_until_high_water()
        };
        self.cleaning = false;
        res
    }

    /// One paced installment of background cleaning: at most
    /// `clean_pace_segs` segments are relocated, then control returns
    /// to the foreground. The next mutation that still finds the file
    /// system below the low-water mark runs the next installment, so
    /// cleaning interleaves with foreground traffic instead of holding
    /// the write point for a full low-to-high-water burst. An
    /// installment is deferred while queued foreground writes are still
    /// in flight — the cleaner spends device idle time first.
    fn clean_increment(&mut self) -> FsResult<()> {
        if self.nsop_depth > 0 {
            // See `clean_until_high_water`: checkpoints are deferred
            // mid-namespace-operation, so copying now would only burn
            // log space.
            return Ok(());
        }
        let q = self.dev.queue_stats();
        let in_flight = q.submitted.saturating_sub(q.completed);
        if in_flight as usize * 2 > self.dev.queue_capacity() {
            // Foreground submissions fill more than half the ring; let
            // them drain rather than queueing cleaner traffic behind
            // them. The mutation stream (or the next checkpoint fence)
            // will trigger the next installment — and if it never
            // comes, allocation failure falls back to the unpaced
            // emergency path.
            return Ok(());
        }
        let mut cands = self.select_candidates();
        if cands.is_empty() {
            // A checkpoint may still promote pending-free segments.
            if self
                .usage
                .iter()
                .any(|(_, u)| u.state == SegState::PendingFree)
            {
                self.checkpoint()?;
            }
            return Ok(());
        }
        cands.truncate(self.cfg.clean_pace_segs as usize);
        self.clean_segments(&cands)?;
        self.checkpoint()?;
        Ok(())
    }

    /// Forces one cleaning pass regardless of the watermarks; returns the
    /// number of segments cleaned. Useful for experiments that study the
    /// cleaner directly.
    pub fn clean_pass(&mut self) -> FsResult<u32> {
        let was_cleaning = self.cleaning;
        self.cleaning = true;
        let res = (|| {
            let cands = self.select_candidates();
            if cands.is_empty() {
                return Ok(0);
            }
            let n = cands.len() as u32;
            self.clean_segments(&cands)?;
            self.checkpoint()?;
            Ok(n)
        })();
        self.cleaning = was_cleaning;
        res
    }

    /// Emergency cleaning invoked by `flush` when segment allocation
    /// fails: regenerate whatever clean segments the policy can, using
    /// the cleaner's reserved pool for the relocations.
    pub(crate) fn clean_for_space(&mut self) -> FsResult<()> {
        self.clean_until_high_water()
    }

    fn clean_until_high_water(&mut self) -> FsResult<()> {
        if self.nsop_depth > 0 {
            // Checkpoints are deferred while a namespace operation is
            // mid-flight (see `Lfs::checkpoint`), and without them cleaned
            // segments cannot be promoted to reusable — so copying now
            // would only burn log space. Cleaning resumes at the
            // operation's end-of-mutation policy.
            return Ok(());
        }
        let mut stalled = 0;
        loop {
            if self.usage.clean_count() >= self.cfg.clean_high_water {
                return Ok(());
            }
            let cands = self.select_candidates();
            if cands.is_empty() {
                // A checkpoint may still promote pending-free segments.
                let pending = self
                    .usage
                    .iter()
                    .any(|(_, u)| u.state == SegState::PendingFree);
                if pending {
                    self.checkpoint()?;
                    continue;
                }
                return Ok(());
            }
            let before = self.usage.clean_count();
            self.clean_segments(&cands)?;
            // The checkpoint makes the relocations durable and promotes
            // the sources to clean.
            self.checkpoint()?;
            // Guard against zero-net oscillation: when the best available
            // candidates are so full that relocating them consumes as much
            // space as it frees, stop — more free space must come from
            // future deletions, not from copying.
            if self.usage.clean_count() <= before {
                stalled += 1;
                if stalled >= 8 {
                    return Ok(());
                }
            } else {
                stalled = 0;
            }
        }
    }

    /// Chooses segments to clean under the configured policy, bounded by
    /// `segs_per_clean` and by the free space available to absorb the
    /// live data.
    fn select_candidates(&self) -> Vec<u32> {
        let seg_bytes = self.cfg.seg_bytes();
        let now = self.clock;
        let pol = self.cfg.policy.as_policy();
        // Summarize the candidate population for the policy: the live
        // utilization distribution of the dirty segments plus the free
        // fraction. The fixed policies ignore it, so computing it does
        // not perturb their selections.
        let ctx = {
            let mut nsegs = 0u64;
            let mut ndirty = 0u64;
            let mut util_sum = 0.0f64;
            let mut age_sum = 0.0f64;
            for (seg, u) in self.usage.iter() {
                nsegs += 1;
                if u.state == SegState::Dirty && !self.is_write_point_seg(seg) {
                    ndirty += 1;
                    util_sum += u.utilization(seg_bytes);
                    age_sum += (now.saturating_sub(u.last_write) + 1) as f64;
                }
            }
            PolicyCtx {
                mean_util: if ndirty == 0 {
                    0.0
                } else {
                    util_sum / ndirty as f64
                },
                mean_age: if ndirty == 0 {
                    1.0
                } else {
                    age_sum / ndirty as f64
                },
                clean_frac: if nsegs == 0 {
                    0.0
                } else {
                    self.usage.clean_count() as f64 / nsegs as f64
                },
            }
        };
        let per_pass = pol.pace(self.cfg.segs_per_clean, &ctx);
        // Split candidates as they stream out of the usage table: empty
        // segments go to their own (small, capped) list, the rest into a
        // max-heap popped lazily below. Only the handful of segments a
        // pass actually picks pay ordering cost, instead of a full sort
        // of every dirty segment on each pass. Ties break toward the
        // lower segment id, matching what the previous stable sort (over
        // the id-ordered usage iterator) produced.
        let desc = |a: &(f64, u32, u64), b: &(f64, u32, u64)| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        };
        let mut empties: Vec<(f64, u32, u64)> = Vec::new();
        let mut heap: std::collections::BinaryHeap<HeapCand> = self
            .usage
            .iter()
            .filter(|&(seg, u)| {
                !self.is_write_point_seg(seg)
                    && u.state == SegState::Dirty
                    && u.seal_seq <= self.checkpoint_seq
                    && (u.live_bytes as u64) < seg_bytes
            })
            .filter_map(|(seg, u)| {
                let util = u.utilization(seg_bytes);
                let age = now.saturating_sub(u.last_write) + 1;
                let cand = (pol.rank(util, age, &ctx), seg, u.live_bytes as u64);
                if u.live_bytes == 0 {
                    empties.push(cand);
                    None
                } else {
                    Some(HeapCand(cand))
                }
            })
            .collect();
        let empty_cap = 2 * self.cfg.clean_high_water as usize;
        if empties.len() > empty_cap {
            // Top-k selection: only the best `empty_cap` empties matter.
            empties.select_nth_unstable_by(empty_cap - 1, desc);
            empties.truncate(empty_cap);
        }
        empties.sort_by(desc);

        // Don't pick more live data than we can write back into the free
        // space we currently have — otherwise the relocation itself runs
        // out of room. The cleaner may use its reserved segments, so the
        // full clean count stands; keep one segment of headroom for the
        // metadata and summaries that ride along with relocations.
        let head_room: u64 = self
            .write_points
            .iter()
            .map(|&(_, off)| (self.sb.seg_blocks.saturating_sub(off)) as u64 * BLOCK_SIZE as u64)
            .sum();
        let free_budget = self.usage.clean_count() as u64 * seg_bytes + head_room;
        // The relocation flush also carries whatever dirty application
        // data waits in the cache, plus metadata (inode blocks, map/table
        // blocks, summaries); the covering checkpoint then writes its own
        // settle batch, whose worst case scales with the inode map size.
        // Picked live data is rewritten alongside whatever dirty
        // application data is waiting, plus metadata whose fixed part can
        // be substantial: a relocation touching scattered files can dirty
        // every inode-map block, and the covering checkpoint settles the
        // map and usage table again. Budget half of what remains after
        // those, so a pass can never outgrow the space it runs in.
        let meta_fixed = (self.imap.num_blocks() as u64 + self.usage.num_blocks() as u64 + 8)
            * BLOCK_SIZE as u64;
        let budget = free_budget.saturating_sub(self.dirty_bytes + meta_fixed) / 2;
        let mut picked = Vec::new();
        let mut live_total = 0u64;
        let mut reclaim_total = 0u64;
        // Empty segments first, unconditionally: they cost nothing to
        // reclaim ("need not be read at all") but, under cost-benefit
        // ranking, young empty segments can paradoxically rank below old
        // half-full ones and starve the free pool.
        for &(_, seg, _) in &empties {
            reclaim_total += seg_bytes;
            picked.push(seg);
        }
        let nempties = picked.len();
        // Lazy best-first pop: most passes examine only a few segments
        // beyond the `segs_per_clean` they pick (budget skips excepted).
        while picked.len() - nempties < per_pass as usize {
            let Some(HeapCand((_, seg, live))) = heap.pop() else {
                break;
            };
            if live_total + live > budget {
                continue; // An emptier segment later may still fit.
            }
            live_total += live;
            reclaim_total += seg_bytes - live;
            picked.push(seg);
        }
        // On a multi-volume set, make sure no shard starves: the layout
        // can only place chunks for shard `s` in segments with
        // `seg % n == s`, so a shard with zero clean segments and no pick
        // in this pass would stall even while the aggregate clean count
        // looks healthy. Keep popping the heap for the best candidate on
        // each starved shard (still subject to the live-data budget).
        let n = self.nshards;
        if n > 1 {
            let mut clean_per_shard = vec![0u32; n];
            for (seg, u) in self.usage.iter() {
                if u.state == SegState::Clean {
                    clean_per_shard[self.shard_of_seg(seg)] += 1;
                }
            }
            let mut has_pick = vec![false; n];
            for &seg in &picked {
                has_pick[self.shard_of_seg(seg)] = true;
            }
            let starved = |sh: usize, has_pick: &[bool]| clean_per_shard[sh] == 0 && !has_pick[sh];
            if (0..n).any(|sh| starved(sh, &has_pick)) {
                while let Some(HeapCand((_, seg, live))) = heap.pop() {
                    let sh = self.shard_of_seg(seg);
                    if !starved(sh, &has_pick) {
                        continue;
                    }
                    if live_total + live > budget {
                        continue;
                    }
                    live_total += live;
                    reclaim_total += seg_bytes - live;
                    picked.push(seg);
                    has_pick[sh] = true;
                    if !(0..n).any(|s| starved(s, &has_pick)) {
                        break;
                    }
                }
            }
        }
        // Only clean when the pass reclaims meaningfully more than its
        // own overhead — otherwise copying nearly-full segments burns
        // bandwidth (and, near capacity, the very space it is trying to
        // regenerate) without making progress.
        let overhead = 8 * BLOCK_SIZE as u64 + live_total / 8;
        if reclaim_total <= overhead {
            return Vec::new();
        }
        picked
    }

    /// The cleaning mechanism: read segments, identify live blocks, stage
    /// them for rewriting, flush, and retire the sources.
    pub(crate) fn clean_segments(&mut self, segs: &[u32]) -> FsResult<()> {
        self.timed(|o| &o.clean, |fs| fs.clean_segments_inner(segs))
    }

    fn clean_segments_inner(&mut self, segs: &[u32]) -> FsResult<()> {
        self.stats.cleaner.passes += 1;
        let seg_bytes = self.cfg.seg_bytes();
        // Gathered before scavenging mutates the usage table, so the
        // trace shows the utilizations the pick policy actually saw.
        let mut empty = 0u32;
        let mut utilizations = Vec::new();
        if self.obs.obs.trace.is_on() {
            for &seg in segs {
                let u = self.usage.get(seg);
                if u.live_bytes == 0 {
                    empty += 1;
                } else {
                    utilizations.push(u.live_bytes as f64 / seg_bytes as f64);
                }
            }
        }
        self.emit(|| lfs_obs::TraceEvent::CleanerPass {
            segments: segs.len() as u32,
            empty,
            utilizations,
        });
        // One segment's worth of staged copy data is the per-installment
        // bound: the old code scavenged *every* candidate before flushing
        // once, so a pass over tens of segments held the write point — and
        // any foreground flush behind it — for the whole multi-segment
        // burst. Flushing whenever the staged bytes reach one segment
        // bounds the delay a background pass can impose on a foreground
        // flush to roughly one segment write.
        let stage_bound = (self.sb.seg_blocks.saturating_sub(1)) as u64 * BLOCK_SIZE as u64;
        for &seg in segs {
            let usage = *self.usage.get(seg);
            self.stats.cleaner.segments_cleaned += 1;
            let shard = self.shard_of_seg(seg);
            self.cleaned_per_shard[shard] += 1;
            if usage.live_bytes == 0 {
                // "If a segment to be cleaned has no live blocks then it
                // need not be read at all" (§3.4).
                self.stats.cleaner.segments_empty += 1;
                self.usage.set_seal_seq(seg, self.write_seq);
                self.usage.set_state(seg, SegState::PendingFree);
                continue;
            }
            if self.dirty_bytes >= stage_bound {
                self.flush()?;
            }
            let u = usage.live_bytes as f64 / seg_bytes as f64;
            self.stats.cleaner.utilization_sum += u;
            self.stats.cleaner.record_clean_utilization(u);
            self.scavenge_segment(seg)?;
        }
        // Write the remaining staged live data back to the head of the
        // log (with age-sorting if configured — see `flush`).
        self.flush()?;
        for &seg in segs {
            let live = self.usage.get(seg).live_bytes;
            if live != 0 {
                let detail = self.debug_scavenge_report(seg);
                return Err(FsError::Corrupt(format!(
                    "segment {seg} still has {live} live bytes after cleaning: {detail}"
                )));
            }
            // Record the relocation sequence: the segment becomes
            // reusable once a checkpoint covers it.
            self.usage.set_seal_seq(seg, self.write_seq);
            self.usage.set_state(seg, SegState::PendingFree);
        }
        Ok(())
    }

    /// Diagnostic: re-scavenges a segment and describes anything still
    /// live (used only in the corruption error path).
    fn debug_scavenge_report(&mut self, seg: u32) -> String {
        let seg_blocks = self.sb.seg_blocks as usize;
        let mut buf = vec![0u8; seg_blocks * BLOCK_SIZE];
        let start = self.sb.seg_start(seg);
        if self.dev.read_blocks(start, &mut buf).is_err() {
            return "unreadable".into();
        }
        let mut out = String::new();
        let mut off = 0usize;
        let mut prev_seq = 0u64;
        while off + 1 < seg_blocks {
            let Ok(summary) = Summary::decode(&buf[off * BLOCK_SIZE..(off + 1) * BLOCK_SIZE])
            else {
                break;
            };
            if summary.seq <= prev_seq || off + 1 + summary.entries.len() > seg_blocks {
                break;
            }
            prev_seq = summary.seq;
            for (j, entry) in summary.entries.iter().enumerate() {
                let addr = start + (off + 1 + j) as u64;
                let live = match entry.kind {
                    EntryKind::Data => {
                        self.imap
                            .get(entry.ino)
                            .map(|e| e.is_live() && e.version == entry.version)
                            .unwrap_or(false)
                            && self.block_ptr(entry.ino, entry.offset as u64).unwrap_or(0) == addr
                    }
                    EntryKind::ImapBlock => {
                        (entry.offset as usize) < self.imap.num_blocks()
                            && self.imap.block_addr(entry.offset as usize) == addr
                    }
                    EntryKind::UsageBlock => {
                        (entry.offset as usize) < self.usage.num_blocks()
                            && self.usage.block_addr(entry.offset as usize) == addr
                    }
                    _ => false,
                };
                if live {
                    out.push_str(&format!(
                        " {:?}(ino {} off {})",
                        entry.kind, entry.ino, entry.offset
                    ));
                }
            }
            off += 1 + summary.entries.len();
        }
        if out.is_empty() {
            out = " nothing verifiably live (accounting drift)".into();
        }
        out
    }

    /// Reads one segment, walks its summaries, and stages every live block
    /// as dirty cache state so the next flush relocates it.
    fn scavenge_segment(&mut self, seg: u32) -> FsResult<()> {
        let seg_bytes = self.cfg.seg_bytes();
        let u = self.usage.get(seg).utilization(seg_bytes);
        if self.cfg.read_live_threshold > 0.0 && u < self.cfg.read_live_threshold {
            return self.scavenge_segment_sparse(seg);
        }
        let seg_blocks = self.sb.seg_blocks as usize;
        let mut buf = vec![0u8; seg_blocks * BLOCK_SIZE];
        let start = self.sb.seg_start(seg);
        self.read_retry(start, &mut buf)?;
        self.stats.cleaner.bytes_read += buf.len() as u64;

        let mut off = 0usize;
        let mut prev_seq = 0u64;
        while off + 1 < seg_blocks {
            let sblock = &buf[off * BLOCK_SIZE..(off + 1) * BLOCK_SIZE];
            let summary = match Summary::decode(sblock) {
                Ok(s) => s,
                Err(_) => break, // End of this segment's valid chain.
            };
            // Stale summaries left over from the segment's previous life
            // have smaller sequence numbers; the live chain is strictly
            // increasing.
            if summary.seq <= prev_seq || off + 1 + summary.entries.len() > seg_blocks {
                break;
            }
            prev_seq = summary.seq;
            for (j, entry) in summary.entries.iter().enumerate() {
                let blk_off = off + 1 + j;
                let addr = start + blk_off as u64;
                let content = &buf[blk_off * BLOCK_SIZE..(blk_off + 1) * BLOCK_SIZE];
                self.stage_if_live(entry, addr, content)?;
            }
            off += 1 + summary.entries.len();
        }
        Ok(())
    }

    /// The "read just the live blocks" variant the paper proposes but
    /// never implemented (§3.4): walk the summaries block by block and
    /// fetch only the blocks that are actually live. For very sparse
    /// segments this reads a small fraction of the segment at the cost of
    /// discontiguous (seeking) reads — the ablation bench quantifies the
    /// trade.
    fn scavenge_segment_sparse(&mut self, seg: u32) -> FsResult<()> {
        let seg_blocks = self.sb.seg_blocks as usize;
        let start = self.sb.seg_start(seg);
        let mut sbuf = vec![0u8; BLOCK_SIZE];
        let mut off = 0usize;
        let mut prev_seq = 0u64;
        while off + 1 < seg_blocks {
            self.read_retry(start + off as u64, &mut sbuf)?;
            self.stats.cleaner.bytes_read += BLOCK_SIZE as u64;
            let summary = match Summary::decode(&sbuf) {
                Ok(s) => s,
                Err(_) => break,
            };
            if summary.seq <= prev_seq || off + 1 + summary.entries.len() > seg_blocks {
                break;
            }
            prev_seq = summary.seq;
            // Pass 1: the fast liveness pre-checks, which need no block
            // contents (confirming a data pointer may load an indirect
            // block, but never the data itself).
            let mut worth: Vec<(usize, DiskAddr)> = Vec::new();
            for (j, entry) in summary.entries.iter().enumerate() {
                let addr = start + (off + 1 + j) as u64;
                let worth_reading = match entry.kind {
                    EntryKind::Data => {
                        let e = match self.imap.get(entry.ino) {
                            Ok(e) => *e,
                            Err(_) => continue,
                        };
                        e.is_live()
                            && e.version == entry.version
                            && self.block_ptr(entry.ino, entry.offset as u64)? == addr
                    }
                    EntryKind::Indirect1 | EntryKind::Indirect2 => true,
                    EntryKind::InodeBlock => true,
                    EntryKind::ImapBlock => {
                        (entry.offset as usize) < self.imap.num_blocks()
                            && self.imap.block_addr(entry.offset as usize) == addr
                    }
                    EntryKind::UsageBlock => {
                        (entry.offset as usize) < self.usage.num_blocks()
                            && self.usage.block_addr(entry.offset as usize) == addr
                    }
                    EntryKind::DirLog => false,
                };
                if worth_reading {
                    worth.push((j, addr));
                }
            }
            // Pass 2: fetch the survivors. Entries adjacent in the chunk
            // occupy adjacent disk blocks, so every maximal stretch of
            // consecutive addresses is one contiguous run — read it as a
            // single device request instead of block by block. Staging
            // re-verifies liveness per block, so batching never relocates
            // anything the per-block order would not have.
            let mut i = 0usize;
            while i < worth.len() {
                let mut end = i + 1;
                while end < worth.len() && worth[end].1 == worth[end - 1].1 + 1 {
                    end += 1;
                }
                let count = end - i;
                let mut content = vec![0u8; count * BLOCK_SIZE];
                self.read_run_retry(worth[i].1, &mut content)?;
                self.stats.cleaner.bytes_read += content.len() as u64;
                for (k, &(j, addr)) in worth[i..end].iter().enumerate() {
                    self.stage_if_live(
                        &summary.entries[j],
                        addr,
                        &content[k * BLOCK_SIZE..(k + 1) * BLOCK_SIZE],
                    )?;
                }
                i = end;
            }
            off += 1 + summary.entries.len();
        }
        Ok(())
    }

    /// Checks one summarised block for liveness and stages it if live.
    fn stage_if_live(
        &mut self,
        entry: &crate::summary::SummaryEntry,
        addr: DiskAddr,
        content: &[u8],
    ) -> FsResult<()> {
        match entry.kind {
            EntryKind::Data => {
                let ino = entry.ino;
                let e = match self.imap.get(ino) {
                    Ok(e) => *e,
                    Err(_) => return Ok(()),
                };
                // The uid fast path: a version mismatch means the file was
                // deleted or truncated — "the block can be discarded
                // immediately without examining the file's inode" (§3.3).
                if !e.is_live() || e.version != entry.version {
                    return Ok(());
                }
                let bno = entry.offset as u64;
                if self.block_ptr(ino, bno)? != addr {
                    return Ok(());
                }
                // The block is confirmed live; refuse to relocate it if
                // the media rotted it (silent propagation of bad data is
                // worse than a loud failure). Dead blocks are never
                // checked — a torn chunk in a crashed segment legally
                // holds garbage behind a valid summary.
                if crate::codec::block_checksum(content) != entry.csum
                    && !self.blocks.contains_key(&(ino, bno))
                {
                    return Err(FsError::Corrupt(format!(
                        "cleaner: live block (ino {ino} blk {bno}) at addr {addr} \
                         failed its summary checksum (media rot?)"
                    )));
                }
                // Stage the block: dirty cache state relocates on flush.
                // Crucially, keep the block's ORIGINAL modification time
                // (from the summary entry): relocation does not make data
                // young, and the cost-benefit policy depends on that.
                if !self.blocks.contains_key(&(ino, bno)) {
                    let lru = {
                        self.lru_tick += 1;
                        self.lru_tick
                    };
                    self.blocks.insert(
                        (ino, bno),
                        CachedBlock {
                            data: std::sync::Arc::new(content.to_vec()),
                            dirty: false,
                            lru,
                            mtime: entry.mtime,
                        },
                    );
                }
                let original_mtime = self
                    .blocks
                    .get(&(ino, bno))
                    .map(|b| if b.dirty { b.mtime } else { entry.mtime })
                    .unwrap_or(entry.mtime);
                self.mark_block_dirty(ino, bno);
                if let Some(b) = self.blocks.get_mut(&(ino, bno)) {
                    b.mtime = original_mtime;
                }
            }
            EntryKind::Indirect1 | EntryKind::Indirect2 => {
                let ino = entry.ino;
                let e = match self.imap.get(ino) {
                    Ok(e) => *e,
                    Err(_) => return Ok(()),
                };
                if !e.is_live() || e.version != entry.version {
                    return Ok(());
                }
                let key = match entry.kind {
                    EntryKind::Indirect1 => IndKey::Single(entry.offset),
                    _ => IndKey::Double,
                };
                if let Some(cached) = self.inds.get_mut(&(ino, key)) {
                    if cached.disk_addr == addr {
                        crate::fs::set_dirty(&mut cached.dirty, &mut self.dirty_ind_count);
                        self.dirty_files.insert(ino);
                    }
                    return Ok(());
                }
                // Not cached: confirm via the parent pointer, then load.
                if self.ensure_ind(ino, key, false)? {
                    let cached = self.inds.get_mut(&(ino, key)).unwrap();
                    if cached.disk_addr == addr {
                        crate::fs::set_dirty(&mut cached.dirty, &mut self.dirty_ind_count);
                        self.dirty_files.insert(ino);
                    }
                }
            }
            EntryKind::InodeBlock => {
                for slot in 0..crate::layout::INODES_PER_BLOCK {
                    let b = &content[slot * INODE_DISK_SIZE..(slot + 1) * INODE_DISK_SIZE];
                    // An undecodable slot in a dead chunk is legal (torn
                    // write behind a valid summary); skip it rather than
                    // abort the pass. Live-but-rotted inodes surface in
                    // `clean_segments`' live-bytes audit instead.
                    let Ok(decoded) = Inode::decode(b) else {
                        continue;
                    };
                    let Some(inode) = decoded else {
                        continue;
                    };
                    let ino = inode.ino;
                    let e = match self.imap.get(ino) {
                        Ok(e) => *e,
                        Err(_) => continue,
                    };
                    if e.is_live() && e.addr == addr && e.slot == slot as u8 {
                        self.ensure_inode(ino)?;
                        let c = self.inodes.get_mut(&ino).unwrap();
                        crate::fs::set_dirty(&mut c.dirty, &mut self.dirty_inode_count);
                        self.dirty_files.insert(ino);
                    }
                }
            }
            EntryKind::ImapBlock => {
                let idx = entry.offset as usize;
                if idx < self.imap.num_blocks() && self.imap.block_addr(idx) == addr {
                    self.imap.mark_block_dirty(idx);
                }
            }
            EntryKind::UsageBlock => {
                let idx = entry.offset as usize;
                if idx < self.usage.num_blocks() && self.usage.block_addr(idx) == addr {
                    self.usage.mark_block_dirty(idx);
                }
            }
            EntryKind::DirLog => {
                // Directory-log records matter only between a checkpoint
                // and a crash; segments eligible for cleaning are older
                // than the last checkpoint, so these are dead.
            }
        }
        Ok(())
    }
}
