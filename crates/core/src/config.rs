//! Run-time configuration of the file system.

use blockdev::BLOCK_SIZE;

/// Which cleaning policy the cleaner uses to select segments (Section 3.4,
/// policy question 3) and whether live blocks are age-sorted on the way out
/// (policy question 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CleaningPolicy {
    /// Always clean the least-utilized segments.
    Greedy,
    /// Clean the segments with the highest benefit-to-cost ratio
    /// `(1-u)*age/(1+u)` — the paper's cost-benefit policy (Section 3.5).
    CostBenefit,
    /// Adapt victim selection and pacing to the measured utilization
    /// distribution of the candidate set (Lomet & Luo): greedy-like when
    /// segments are mostly empty, cost-benefit-like as the disk fills,
    /// with scale-free ages so the blend is geometry-independent. See
    /// [`crate::cleaner::Adaptive`].
    Adaptive,
}

/// Configuration for [`crate::Lfs`].
///
/// The defaults mirror the production Sprite LFS settings reported in the
/// paper: one-megabyte segments, cost-benefit cleaning with age-sorting,
/// cleaning triggered when clean segments drop below a low-water mark and
/// continuing until a high-water mark is reached.
#[derive(Clone, Copy, Debug)]
pub struct LfsConfig {
    /// Segment size in blocks. The paper uses 512 KB or 1 MB segments
    /// (128 or 256 four-kilobyte blocks).
    pub seg_blocks: u32,
    /// Maximum number of inodes (sizes the inode map).
    pub max_inodes: u32,
    /// Start cleaning when the number of clean segments drops below this
    /// ("a threshold value (typically a few tens of segments)").
    pub clean_low_water: u32,
    /// Stop cleaning once this many clean segments exist
    /// ("typically 50-100 clean segments").
    pub clean_high_water: u32,
    /// How many segments the cleaner reads per pass ("a few tens of
    /// segments at a time").
    pub segs_per_clean: u32,
    /// When non-zero, background cleaning runs as bounded installments
    /// of at most this many segments per trigger instead of one burst
    /// from the low-water mark all the way to the high-water mark. Each
    /// mutation that finds the file system below the low-water mark
    /// contributes one installment, so cleaning interleaves with
    /// foreground traffic; an installment is skipped while queued
    /// foreground writes are still in flight, so the cleaner spends
    /// idle device time first. 0 (the default) keeps the burst
    /// behaviour. Emergency cleaning on allocation failure always runs
    /// unpaced regardless of this setting.
    pub clean_pace_segs: u32,
    /// Segment-selection policy.
    pub policy: CleaningPolicy,
    /// Sort live blocks by age before rewriting them (the age-sort of
    /// Section 3.4; always beneficial with cost-benefit selection).
    pub age_sort: bool,
    /// Flush the write buffer once this many dirty bytes accumulate.
    /// Defaults to one segment's payload so that most flushes fill a whole
    /// segment, as the paper assumes.
    pub flush_threshold_bytes: u64,
    /// Run roll-forward at mount (Section 4.2). The production Sprite
    /// system had this disabled and discarded the log tail; both modes are
    /// supported and tested.
    pub roll_forward: bool,
    /// Write a checkpoint automatically after this many bytes of new log
    /// data (0 disables; checkpoints then happen only on `sync` and when
    /// the cleaner needs to recycle segments). This is the paper's
    /// suggested alternative to the fixed 30-second interval: "perform
    /// checkpoints after a given amount of new data has been written"
    /// (§4.1).
    pub checkpoint_every_bytes: u64,
    /// Maximum bytes of clean blocks cached in memory (the "file cache").
    pub cache_limit_bytes: u64,
    /// When a segment's utilization is below this threshold, the cleaner
    /// reads only its summary blocks and live blocks instead of the whole
    /// segment. The paper suggests this but never tried it: "in practice
    /// it may be faster to read just the live blocks, particularly if the
    /// utilization is very low (we haven't tried this in Sprite LFS)"
    /// (§3.4). 0.0 disables it, matching Sprite; see the ablation bench.
    pub read_live_threshold: f64,
    /// Fetch runs of file blocks with contiguous disk addresses as one
    /// device request instead of one request per block. The coalesced path
    /// is exactly equivalent — same bytes, same simulated service time
    /// (see [`blockdev::BlockDevice::read_run`]), same cache/eviction
    /// behaviour — so this exists only to keep the legacy per-block path
    /// testable against it.
    pub coalesced_reads: bool,
    /// Extend a coalesced read run by up to this many blocks past the
    /// requested range, as long as the addresses stay contiguous and the
    /// blocks are not already cached. 0 disables read-ahead, which keeps
    /// the set of blocks fetched — and therefore the figure benchmarks —
    /// bit-identical to the per-block path.
    pub read_ahead_blocks: u32,
    /// Number of temperature-keyed write streams per shard (hot → cold).
    /// 1 (the default) keeps the single write point per shard and is
    /// bit-identical to the pre-stream image; 2 splits hot/cold; 3 adds a
    /// warm class. Live blocks salvaged by the cleaner always go to the
    /// coldest stream ("cold by definition" — the age-sort insight of
    /// §3.4 applied at placement time). Capped at
    /// [`crate::stats::MAX_STREAMS`].
    pub streams: u32,
    /// Hand data blocks to the device as borrowed slices (one gather
    /// request per partial write) instead of assembling a fresh
    /// contiguous buffer first. The gather path is exactly equivalent —
    /// same bytes on disk, same simulated service time (see
    /// [`blockdev::BlockDevice::write_run_gather`]) — it only removes
    /// host-side copies, so this flag exists to keep the legacy
    /// assemble-and-write path testable against it.
    pub gather_writes: bool,
}

impl LfsConfig {
    /// Production-like defaults: 1 MB segments, cost-benefit cleaning.
    pub fn default_config() -> LfsConfig {
        LfsConfig {
            seg_blocks: 256,
            max_inodes: 65_536,
            clean_low_water: 16,
            clean_high_water: 40,
            segs_per_clean: 16,
            clean_pace_segs: 0,
            policy: CleaningPolicy::CostBenefit,
            age_sort: true,
            flush_threshold_bytes: 255 * BLOCK_SIZE as u64,
            roll_forward: true,
            checkpoint_every_bytes: 8 << 20,
            cache_limit_bytes: 64 << 20,
            read_live_threshold: 0.0,
            coalesced_reads: true,
            read_ahead_blocks: 0,
            streams: 1,
            gather_writes: true,
        }
    }

    /// A small configuration for unit tests and doctests: 64 KB segments
    /// and a few thousand inodes, so that interesting cleaning behaviour
    /// happens on disks of a few megabytes.
    pub fn small() -> LfsConfig {
        LfsConfig {
            seg_blocks: 16,
            max_inodes: 2048,
            clean_low_water: 6,
            clean_high_water: 12,
            segs_per_clean: 4,
            clean_pace_segs: 0,
            policy: CleaningPolicy::CostBenefit,
            age_sort: true,
            flush_threshold_bytes: 15 * BLOCK_SIZE as u64,
            roll_forward: true,
            checkpoint_every_bytes: 1 << 20,
            cache_limit_bytes: 8 << 20,
            read_live_threshold: 0.0,
            coalesced_reads: true,
            read_ahead_blocks: 0,
            streams: 1,
            gather_writes: true,
        }
    }

    /// The paper's alternative segment size: 512 KB.
    pub fn with_half_megabyte_segments(mut self) -> LfsConfig {
        self.seg_blocks = 128;
        self.flush_threshold_bytes = 127 * BLOCK_SIZE as u64;
        self
    }

    /// Caps each background-cleaning trigger at `segs` relocated
    /// segments (see [`LfsConfig::clean_pace_segs`]).
    pub fn paced(mut self, segs: u32) -> LfsConfig {
        self.clean_pace_segs = segs;
        self
    }

    /// Switches the cleaner to the greedy policy without age-sort — the
    /// "LFS Greedy" configuration of Figures 5 and 7.
    pub fn greedy(mut self) -> LfsConfig {
        self.policy = CleaningPolicy::Greedy;
        self.age_sort = false;
        self
    }

    /// Splits each shard's log head into `n` temperature-keyed write
    /// streams (see [`LfsConfig::streams`]).
    pub fn with_streams(mut self, n: u32) -> LfsConfig {
        self.streams = n.clamp(1, crate::stats::MAX_STREAMS as u32);
        self
    }

    /// Switches the cleaner to the adaptive policy (with age-sort, which
    /// it subsumes but never hurts).
    pub fn adaptive(mut self) -> LfsConfig {
        self.policy = CleaningPolicy::Adaptive;
        self
    }

    /// Segment payload capacity in bytes (excluding nothing — summaries are
    /// carved out of the same blocks as they are written).
    pub fn seg_bytes(&self) -> u64 {
        self.seg_blocks as u64 * BLOCK_SIZE as u64
    }
}

impl Default for LfsConfig {
    fn default() -> Self {
        LfsConfig::default_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_segment_size() {
        let c = LfsConfig::default();
        assert_eq!(c.seg_bytes(), 1 << 20);
        assert_eq!(c.policy, CleaningPolicy::CostBenefit);
        assert!(c.age_sort);
    }

    #[test]
    fn half_megabyte_variant() {
        let c = LfsConfig::default().with_half_megabyte_segments();
        assert_eq!(c.seg_bytes(), 512 << 10);
    }

    #[test]
    fn greedy_variant_disables_age_sort() {
        let c = LfsConfig::default().greedy();
        assert_eq!(c.policy, CleaningPolicy::Greedy);
        assert!(!c.age_sort);
    }

    #[test]
    fn watermarks_are_sane() {
        let c = LfsConfig::default();
        assert!(c.clean_low_water < c.clean_high_water);
        assert!(c.segs_per_clean > 0);
    }
}
