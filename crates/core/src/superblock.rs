//! The superblock: static configuration at a fixed disk location.
//!
//! As in the paper's Table 1, the superblock "holds static configuration
//! information such as number of segments and segment size" and never
//! changes after `format`. Note what it does *not* hold: no bitmap, no
//! free list — free space is managed entirely by the segment structure.

use blockdev::BLOCK_SIZE;
use vfs::{FsError, FsResult};

use crate::codec::{checksum, Reader, Writer};
use crate::layout::{DiskAddr, CR0_ADDR, CR1_ADDR, SEGMENTS_START};

const MAGIC: u64 = 0x4c46_5353_5052_3931; // "LFSSPR91"
const VERSION: u32 = 1;

/// The on-disk superblock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Segment size in blocks.
    pub seg_blocks: u32,
    /// Number of segments on the disk.
    pub nsegments: u32,
    /// Maximum number of inodes (sizes the inode map).
    pub max_inodes: u32,
    /// Total number of blocks on the device (sanity check at mount).
    pub device_blocks: u64,
}

impl Superblock {
    /// Computes the segment geometry for a device of `device_blocks`
    /// blocks, returning `None` if the device is too small to hold the
    /// fixed regions plus at least four segments.
    pub fn compute(device_blocks: u64, seg_blocks: u32, max_inodes: u32) -> Option<Superblock> {
        let usable = device_blocks.checked_sub(SEGMENTS_START)?;
        let nsegments = usable / seg_blocks as u64;
        if nsegments < 4 {
            return None;
        }
        Some(Superblock {
            seg_blocks,
            nsegments: u32::try_from(nsegments).ok()?,
            max_inodes,
            device_blocks,
        })
    }

    /// First disk block of segment `seg`.
    pub fn seg_start(&self, seg: u32) -> DiskAddr {
        SEGMENTS_START + seg as u64 * self.seg_blocks as u64
    }

    /// Maps a disk address to the segment containing it, or `None` for the
    /// fixed (non-log) region.
    pub fn seg_of(&self, addr: DiskAddr) -> Option<u32> {
        if addr < SEGMENTS_START {
            return None;
        }
        let seg = (addr - SEGMENTS_START) / self.seg_blocks as u64;
        (seg < self.nsegments as u64).then_some(seg as u32)
    }

    /// Disk addresses of the two checkpoint regions.
    pub fn checkpoint_addrs(&self) -> [DiskAddr; 2] {
        [CR0_ADDR, CR1_ADDR]
    }

    /// Serializes into a block-sized buffer.
    pub fn encode(&self) -> [u8; BLOCK_SIZE] {
        let mut buf = [0u8; BLOCK_SIZE];
        let mut w = Writer::new(&mut buf);
        w.put_u64(MAGIC);
        w.put_u32(VERSION);
        w.put_u32(self.seg_blocks);
        w.put_u32(self.nsegments);
        w.put_u32(self.max_inodes);
        w.put_u64(self.device_blocks);
        let end = w.pos();
        let sum = checksum(&buf[..end]);
        let mut w = Writer::new(&mut buf[end..]);
        w.put_u64(sum);
        buf
    }

    /// Parses and validates a superblock from a raw block.
    pub fn decode(buf: &[u8; BLOCK_SIZE]) -> FsResult<Superblock> {
        let mut r = Reader::new(buf);
        if r.get_u64() != MAGIC {
            return Err(FsError::Corrupt("superblock: bad magic".into()));
        }
        if r.get_u32() != VERSION {
            return Err(FsError::Corrupt("superblock: bad version".into()));
        }
        let seg_blocks = r.get_u32();
        let nsegments = r.get_u32();
        let max_inodes = r.get_u32();
        let device_blocks = r.get_u64();
        let end = r.pos();
        let stored = r.get_u64();
        if checksum(&buf[..end]) != stored {
            return Err(FsError::Corrupt("superblock: bad checksum".into()));
        }
        if seg_blocks < 4 || nsegments == 0 || max_inodes < 2 {
            return Err(FsError::Corrupt("superblock: implausible geometry".into()));
        }
        Ok(Superblock {
            seg_blocks,
            nsegments,
            max_inodes,
            device_blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Superblock {
        Superblock::compute(10_000, 16, 1024).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let sb = sample();
        let buf = sb.encode();
        assert_eq!(Superblock::decode(&buf).unwrap(), sb);
    }

    #[test]
    fn corrupting_any_byte_is_detected() {
        let sb = sample();
        let buf = sb.encode();
        for i in [0usize, 8, 12, 16, 20, 24] {
            let mut bad = buf;
            bad[i] ^= 0xff;
            assert!(Superblock::decode(&bad).is_err(), "byte {i} undetected");
        }
    }

    #[test]
    fn compute_rejects_tiny_devices() {
        assert!(Superblock::compute(SEGMENTS_START + 3 * 16, 16, 64).is_none());
        assert!(Superblock::compute(10, 16, 64).is_none());
    }

    #[test]
    fn segment_address_math_roundtrips() {
        let sb = sample();
        for seg in [0u32, 1, 5, sb.nsegments - 1] {
            let start = sb.seg_start(seg);
            assert_eq!(sb.seg_of(start), Some(seg));
            assert_eq!(sb.seg_of(start + sb.seg_blocks as u64 - 1), Some(seg));
        }
        assert_eq!(sb.seg_of(0), None);
        assert_eq!(sb.seg_of(SEGMENTS_START - 1), None);
    }

    #[test]
    fn seg_of_past_last_segment_is_none() {
        let sb = sample();
        let past = sb.seg_start(sb.nsegments - 1) + sb.seg_blocks as u64;
        assert_eq!(sb.seg_of(past), None);
    }
}
