//! The segment usage table.
//!
//! "For each segment, the table records the number of live bytes in the
//! segment and the most recent modified time of any block in the segment.
//! These two values are used by the segment cleaner when choosing segments
//! to clean" (§3.6). The blocks of the table are written to the log and
//! their addresses are stored in the checkpoint regions.
//!
//! The live-byte counts are *advisory*: the cleaning mechanism re-verifies
//! every block's liveness against the inode map and inode pointers before
//! copying it (§3.3), so a count that is one flush stale can never corrupt
//! data — it can only make the policy slightly suboptimal. This is what
//! lets Sprite LFS do without a bitmap or free list.

use std::collections::BTreeSet;

use blockdev::BLOCK_SIZE;

use crate::codec::{Reader, Writer};
use crate::layout::{DiskAddr, NIL_ADDR};

/// Bytes per on-disk usage-table entry.
pub const USAGE_ENTRY_SIZE: usize = 24;

/// Usage-table entries per disk block.
pub const USAGE_ENTRIES_PER_BLOCK: usize = BLOCK_SIZE / USAGE_ENTRY_SIZE;

/// Life-cycle state of a segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegState {
    /// Contains no live data and may be allocated for writing.
    Clean,
    /// The segment currently being filled by the log.
    Active,
    /// Sealed and holding (possibly stale) data.
    Dirty,
    /// Cleaned, but its old contents must survive until the next
    /// checkpoint makes the relocation durable — only then does it become
    /// [`SegState::Clean`]. Without this, a crash after cleaning could
    /// leave the last checkpoint's inode map pointing into a reused
    /// segment.
    PendingFree,
}

impl SegState {
    fn encode(self) -> u8 {
        match self {
            SegState::Clean => 0,
            SegState::Active => 1,
            SegState::Dirty => 2,
            SegState::PendingFree => 3,
        }
    }

    fn decode(v: u8) -> SegState {
        match v {
            1 => SegState::Active,
            2 => SegState::Dirty,
            3 => SegState::PendingFree,
            _ => SegState::Clean,
        }
    }
}

/// Per-segment bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegUsage {
    /// Live bytes still in the segment.
    pub live_bytes: u32,
    /// Most recent modified time of any block written to the segment —
    /// the age input to the cost-benefit policy.
    pub last_write: u64,
    /// Life-cycle state.
    pub state: SegState,
    /// Log sequence number at which the segment was sealed (used to keep
    /// the cleaner away from segments the roll-forward still needs).
    pub seal_seq: u64,
}

impl SegUsage {
    const CLEAN: SegUsage = SegUsage {
        live_bytes: 0,
        last_write: 0,
        state: SegState::Clean,
        seal_seq: 0,
    };

    /// Utilization `u` of this segment given its capacity in bytes.
    pub fn utilization(&self, seg_bytes: u64) -> f64 {
        self.live_bytes as f64 / seg_bytes as f64
    }
}

/// The in-memory segment usage table with dirty-block tracking.
pub struct UsageTable {
    entries: Vec<SegUsage>,
    block_addrs: Vec<DiskAddr>,
    dirty: Vec<bool>,
    /// Segments currently in [`SegState::Clean`], maintained at every
    /// state transition so allocation and `clean_count` never rescan the
    /// whole table. Ordered, so low indices are still preferred.
    clean_set: BTreeSet<u32>,
}

impl UsageTable {
    /// A table for `nsegments` segments, all clean.
    pub fn new(nsegments: u32) -> UsageTable {
        let nblocks = (nsegments as usize).div_ceil(USAGE_ENTRIES_PER_BLOCK);
        UsageTable {
            entries: vec![SegUsage::CLEAN; nsegments as usize],
            block_addrs: vec![NIL_ADDR; nblocks],
            dirty: vec![false; nblocks],
            clean_set: (0..nsegments).collect(),
        }
    }

    /// Keeps [`UsageTable::clean_set`] in step with one entry's state.
    fn note_state(&mut self, seg: u32, state: SegState) {
        if state == SegState::Clean {
            self.clean_set.insert(seg);
        } else {
            self.clean_set.remove(&seg);
        }
    }

    /// Number of table blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_addrs.len()
    }

    /// Number of segments tracked.
    pub fn nsegments(&self) -> u32 {
        self.entries.len() as u32
    }

    /// The table block holding segment `seg`.
    pub fn block_of(seg: u32) -> usize {
        seg as usize / USAGE_ENTRIES_PER_BLOCK
    }

    /// Reads a segment's entry.
    pub fn get(&self, seg: u32) -> &SegUsage {
        &self.entries[seg as usize]
    }

    /// Adds live bytes to a segment (a block was appended) and refreshes
    /// its age with the block's modification time. Saturates: counts
    /// seeded from a hostile checkpoint image must not overflow-panic.
    pub fn add_live(&mut self, seg: u32, bytes: u32, block_mtime: u64) {
        let e = &mut self.entries[seg as usize];
        e.live_bytes = e.live_bytes.saturating_add(bytes);
        e.last_write = e.last_write.max(block_mtime);
        self.dirty[Self::block_of(seg)] = true;
    }

    /// Removes live bytes from a segment (a block there was superseded or
    /// deleted). Saturates rather than panicking: during roll-forward the
    /// counts are rebuilt from scratch and transient underflow is
    /// harmless.
    pub fn sub_live(&mut self, seg: u32, bytes: u32) {
        let e = &mut self.entries[seg as usize];
        e.live_bytes = e.live_bytes.saturating_sub(bytes);
        self.dirty[Self::block_of(seg)] = true;
    }

    /// Like [`UsageTable::add_live`] but without dirtying the table block.
    ///
    /// Used for the table's (and inode map's) *own* block relocations:
    /// accounting them loudly would re-dirty the table on every metadata
    /// flush and the checkpoint stabilisation loop would never terminate.
    /// The in-memory counts stay exact; the on-disk copy of the affected
    /// entry is at most one flush stale, which is safe because liveness is
    /// always re-verified by the cleaning mechanism (§3.3).
    pub fn add_live_quiet(&mut self, seg: u32, bytes: u32, block_mtime: u64) {
        let e = &mut self.entries[seg as usize];
        e.live_bytes = e.live_bytes.saturating_add(bytes);
        e.last_write = e.last_write.max(block_mtime);
    }

    /// Quiet counterpart of [`UsageTable::sub_live`]; see
    /// [`UsageTable::add_live_quiet`].
    pub fn sub_live_quiet(&mut self, seg: u32, bytes: u32) {
        let e = &mut self.entries[seg as usize];
        e.live_bytes = e.live_bytes.saturating_sub(bytes);
    }

    /// Exact live counts for all segments (persisted by the checkpoint).
    pub fn live_vec(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.live_bytes).collect()
    }

    /// Restores exact live counts (from a checkpoint) without touching
    /// states, ages, or dirty bits.
    pub fn overlay_live(&mut self, live: &[u32]) {
        for (e, &l) in self.entries.iter_mut().zip(live) {
            e.live_bytes = l;
        }
    }

    /// Like [`UsageTable::load_block`] but keeps the in-memory live-byte
    /// counts (used by roll-forward, which tracks liveness incrementally
    /// from the checkpoint's exact counts).
    pub fn load_block_preserving_live(&mut self, idx: usize, buf: &[u8], addr: DiskAddr) {
        let start = idx * USAGE_ENTRIES_PER_BLOCK;
        let end = (start + USAGE_ENTRIES_PER_BLOCK).min(self.entries.len());
        let saved: Vec<u32> = self.entries[start..end]
            .iter()
            .map(|e| e.live_bytes)
            .collect();
        self.load_block(idx, buf, addr);
        for (e, live) in self.entries[start..end].iter_mut().zip(saved) {
            e.live_bytes = live;
        }
    }

    /// Overwrites a segment's live-byte count (recovery's recompute).
    pub fn set_live(&mut self, seg: u32, bytes: u32) {
        self.entries[seg as usize].live_bytes = bytes;
        self.dirty[Self::block_of(seg)] = true;
    }

    /// Sets a segment's state.
    pub fn set_state(&mut self, seg: u32, state: SegState) {
        self.entries[seg as usize].state = state;
        self.note_state(seg, state);
        self.dirty[Self::block_of(seg)] = true;
    }

    /// Records the sequence number at which a segment was sealed.
    pub fn set_seal_seq(&mut self, seg: u32, seq: u64) {
        self.entries[seg as usize].seal_seq = seq;
        self.dirty[Self::block_of(seg)] = true;
    }

    /// Number of segments in [`SegState::Clean`]. O(1): the clean set is
    /// maintained incrementally at every state transition.
    pub fn clean_count(&self) -> u32 {
        debug_assert_eq!(
            self.clean_set.len(),
            self.entries
                .iter()
                .filter(|e| e.state == SegState::Clean)
                .count()
        );
        self.clean_set.len() as u32
    }

    /// Finds a clean segment to allocate, preferring low indices.
    pub fn find_clean(&self) -> Option<u32> {
        self.clean_set.iter().next().copied()
    }

    /// Clean segments in ascending index order, without scanning the
    /// whole table (the allocation order [`crate::Lfs`]'s layout wants).
    pub fn clean_segs(&self) -> impl Iterator<Item = u32> + '_ {
        self.clean_set.iter().copied()
    }

    /// Promotes [`SegState::PendingFree`] segments whose relocations are
    /// covered by a durable checkpoint (their `seal_seq` — set to the log
    /// sequence of the relocation — is ≤ `covered_seq`).
    pub fn promote_pending(&mut self, covered_seq: u64) -> u32 {
        let mut n = 0;
        for i in 0..self.entries.len() {
            if self.entries[i].state == SegState::PendingFree
                && self.entries[i].seal_seq <= covered_seq
            {
                self.entries[i] = SegUsage::CLEAN;
                self.clean_set.insert(i as u32);
                self.dirty[Self::block_of(i as u32)] = true;
                n += 1;
            }
        }
        n
    }

    /// Iterates `(seg, usage)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &SegUsage)> + '_ {
        self.entries.iter().enumerate().map(|(i, e)| (i as u32, e))
    }

    /// Indices of dirty table blocks.
    pub fn dirty_blocks(&self) -> Vec<usize> {
        (0..self.dirty.len()).filter(|&i| self.dirty[i]).collect()
    }

    /// True if any table block is dirty.
    pub fn has_dirty(&self) -> bool {
        self.dirty.iter().any(|&d| d)
    }

    /// Serializes table block `idx`.
    pub fn encode_block(&self, idx: usize) -> Box<[u8]> {
        let mut buf = vec![0u8; BLOCK_SIZE].into_boxed_slice();
        self.encode_block_into(idx, &mut buf);
        buf
    }

    /// Serializes table block `idx` into a caller-provided block-sized
    /// buffer (zero-filled first); see [`crate::summary::Summary::encode_into`].
    pub fn encode_block_into(&self, idx: usize, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), BLOCK_SIZE);
        buf.fill(0);
        let start = idx * USAGE_ENTRIES_PER_BLOCK;
        let end = (start + USAGE_ENTRIES_PER_BLOCK).min(self.entries.len());
        let mut w = Writer::new(buf);
        for e in &self.entries[start..end] {
            w.put_u32(e.live_bytes);
            w.put_u8(e.state.encode());
            w.pad(3);
            w.put_u64(e.last_write);
            w.put_u64(e.seal_seq);
        }
    }

    /// Loads table block `idx` from a raw disk block.
    pub fn load_block(&mut self, idx: usize, buf: &[u8], addr: DiskAddr) {
        let start = idx * USAGE_ENTRIES_PER_BLOCK;
        let end = (start + USAGE_ENTRIES_PER_BLOCK).min(self.entries.len());
        let mut r = Reader::new(buf);
        for i in start..end {
            let live_bytes = r.get_u32();
            let state = SegState::decode(r.get_u8());
            r.skip(3);
            let last_write = r.get_u64();
            let seal_seq = r.get_u64();
            self.entries[i] = SegUsage {
                live_bytes,
                last_write,
                state,
                seal_seq,
            };
            self.note_state(i as u32, state);
        }
        self.block_addrs[idx] = addr;
        self.dirty[idx] = false;
    }

    /// Marks block `idx` as written at `addr` and clears its dirty bit.
    pub fn block_written(&mut self, idx: usize, addr: DiskAddr) {
        self.block_addrs[idx] = addr;
        self.dirty[idx] = false;
    }

    /// Current on-disk address of table block `idx`.
    pub fn block_addr(&self, idx: usize) -> DiskAddr {
        self.block_addrs[idx]
    }

    /// The full on-disk address vector (persisted by the checkpoint).
    pub fn block_addr_vec(&self) -> &[DiskAddr] {
        &self.block_addrs
    }

    /// Marks a table block dirty (used by the cleaner to relocate it).
    pub fn mark_block_dirty(&mut self, idx: usize) {
        self.dirty[idx] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_is_all_clean() {
        let t = UsageTable::new(10);
        assert_eq!(t.clean_count(), 10);
        assert_eq!(t.find_clean(), Some(0));
    }

    #[test]
    fn add_and_sub_live_track_bytes_and_age() {
        let mut t = UsageTable::new(4);
        t.add_live(1, 4096, 100);
        t.add_live(1, 4096, 50); // Older block must not lower last_write.
        assert_eq!(t.get(1).live_bytes, 8192);
        assert_eq!(t.get(1).last_write, 100);
        t.sub_live(1, 4096);
        assert_eq!(t.get(1).live_bytes, 4096);
    }

    #[test]
    fn sub_live_saturates() {
        let mut t = UsageTable::new(2);
        t.sub_live(0, 4096);
        assert_eq!(t.get(0).live_bytes, 0);
    }

    #[test]
    fn state_transitions_and_promotion() {
        let mut t = UsageTable::new(3);
        t.set_state(0, SegState::Active);
        t.set_state(1, SegState::Dirty);
        t.set_state(2, SegState::PendingFree);
        t.set_seal_seq(2, 5);
        assert_eq!(t.clean_count(), 0);
        // Not yet covered by a checkpoint at seq 4.
        assert_eq!(t.promote_pending(4), 0);
        assert_eq!(t.promote_pending(5), 1);
        assert_eq!(t.get(2).state, SegState::Clean);
        assert_eq!(t.clean_count(), 1);
        assert_eq!(t.find_clean(), Some(2));
    }

    #[test]
    fn encode_load_roundtrip() {
        let mut t = UsageTable::new(300);
        t.add_live(0, 123, 9);
        t.set_state(0, SegState::Dirty);
        t.set_seal_seq(0, 77);
        t.add_live(299, 456, 8);
        let b0 = t.encode_block(0);
        let b1 = t.encode_block(1);

        let mut t2 = UsageTable::new(300);
        t2.load_block(0, &b0, 11);
        t2.load_block(1, &b1, 12);
        assert_eq!(t2.get(0), t.get(0));
        assert_eq!(t2.get(299), t.get(299));
        assert_eq!(t2.block_addr(0), 11);
        assert!(!t2.has_dirty());
    }

    #[test]
    fn clean_set_tracks_states_through_load_and_promotion() {
        let mut t = UsageTable::new(6);
        assert_eq!(t.clean_segs().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
        t.set_state(0, SegState::Active);
        t.set_state(3, SegState::Dirty);
        t.set_state(4, SegState::PendingFree);
        t.set_seal_seq(4, 2);
        assert_eq!(t.clean_segs().collect::<Vec<_>>(), vec![1, 2, 5]);
        assert_eq!(t.clean_count(), 3);
        assert_eq!(t.find_clean(), Some(1));
        t.promote_pending(2);
        assert_eq!(t.clean_segs().collect::<Vec<_>>(), vec![1, 2, 4, 5]);
        // Loading a block from disk resyncs the set with decoded states.
        let img = t.encode_block(0);
        let mut t2 = UsageTable::new(6);
        t2.load_block(0, &img, 9);
        assert_eq!(t2.clean_segs().collect::<Vec<_>>(), vec![1, 2, 4, 5]);
        assert_eq!(t2.clean_count(), 4);
    }

    #[test]
    fn utilization_is_fraction_of_capacity() {
        let mut t = UsageTable::new(1);
        t.add_live(0, 512 * 1024, 1);
        assert!((t.get(0).utilization(1 << 20) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dirty_blocks_reflect_touched_segments() {
        let mut t = UsageTable::new(USAGE_ENTRIES_PER_BLOCK as u32 + 5);
        t.add_live(0, 1, 1);
        t.add_live(USAGE_ENTRIES_PER_BLOCK as u32, 1, 1);
        assert_eq!(t.dirty_blocks(), vec![0, 1]);
        t.block_written(0, 5);
        assert_eq!(t.dirty_blocks(), vec![1]);
    }
}
