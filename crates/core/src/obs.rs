//! Observability wiring for the file system: per-operation simulated
//! latency histograms, trace-event emission, and metrics publication.
//!
//! Everything here is cheap when observability is off (the default):
//! [`Lfs::timed`] is one `Option` check and [`Lfs::emit`] one branch, so
//! the hot paths pay nothing for the instrumentation.

use std::sync::Arc;

use blockdev::{DeviceObs, QueueDevice};
use lfs_obs::{Histogram, MetricsSnapshot, Obs, Registry, TraceEvent};
use vfs::FsResult;

use crate::fs::Lfs;
use crate::stats::{BlockKind, LfsStats};

/// Pre-registered per-operation latency histograms. Samples are the
/// simulated disk time (`busy_ns` delta) each operation consumed,
/// including any flush or cleaning it triggered.
#[derive(Clone, Debug)]
pub(crate) struct OpHists {
    pub create: Arc<Histogram>,
    pub write: Arc<Histogram>,
    pub read: Arc<Histogram>,
    pub unlink: Arc<Histogram>,
    pub flush: Arc<Histogram>,
    pub checkpoint: Arc<Histogram>,
    pub clean: Arc<Histogram>,
}

impl OpHists {
    fn register(reg: &Registry) -> OpHists {
        OpHists {
            create: reg.histogram("op.create_ns"),
            write: reg.histogram("op.write_ns"),
            read: reg.histogram("op.read_ns"),
            unlink: reg.histogram("op.unlink_ns"),
            flush: reg.histogram("op.flush_ns"),
            checkpoint: reg.histogram("op.checkpoint_ns"),
            clean: reg.histogram("op.clean_ns"),
        }
    }
}

/// The file system's observability state: the shared [`Obs`] handle plus
/// handles registered against it. Default is fully off.
#[derive(Clone, Debug, Default)]
pub(crate) struct FsObs {
    pub obs: Obs,
    pub ops: Option<OpHists>,
}

impl<D: QueueDevice> Lfs<D> {
    /// Attaches an observability handle: registers per-operation and
    /// device histograms (when `obs` carries a registry) and routes trace
    /// events into `obs.trace`. Call any time after `format`/`mount`; use
    /// [`Lfs::mount_with_obs`](crate::Lfs) to also capture recovery
    /// events.
    pub fn set_obs(&mut self, obs: Obs) {
        if let Some(reg) = &obs.registry {
            self.obs.ops = Some(OpHists::register(reg));
            self.dev.attach_obs(DeviceObs::register(reg, "disk"));
        } else {
            self.obs.ops = None;
        }
        self.obs.obs = obs;
    }

    /// The attached observability handle (off by default).
    pub fn obs(&self) -> &Obs {
        &self.obs.obs
    }

    /// Runs `f`, recording its simulated disk time (`busy_ns` delta) into
    /// the histogram `pick` selects. One `Option` check when metrics are
    /// off. Nested timings (a write that triggers a flush that triggers a
    /// clean) each record their own inclusive sample.
    #[inline]
    pub(crate) fn timed<T>(
        &mut self,
        pick: impl FnOnce(&OpHists) -> &Arc<Histogram>,
        f: impl FnOnce(&mut Self) -> FsResult<T>,
    ) -> FsResult<T> {
        let Some(hist) = self.obs.ops.as_ref().map(|ops| pick(ops).clone()) else {
            return f(self);
        };
        let t0 = self.dev.stats().busy_ns;
        let r = f(self);
        hist.record(self.dev.stats().busy_ns.saturating_sub(t0));
        r
    }

    /// Emits a trace event stamped with the device's simulated clock.
    /// One branch when tracing is off; `make` never runs then.
    #[inline]
    pub(crate) fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        let trace = &self.obs.obs.trace;
        if trace.is_on() {
            trace.emit(self.dev.stats().busy_ns, make);
        }
    }

    /// Publishes the current [`LfsStats`] and device [`blockdev::IoStats`]
    /// into the attached registry (no-op without one). Counters are
    /// *stored*, not re-accumulated, so the registry mirrors the single
    /// authoritative accumulation in `LfsStats` — a snapshot therefore
    /// reproduces Table 2 / Table 4 figures exactly.
    pub fn publish_metrics(&self) {
        let Some(reg) = self.obs.obs.registry.as_deref() else {
            return;
        };
        self.stats().publish(reg);
        let d = self.dev.stats();
        reg.counter("disk.reads").store(d.reads);
        reg.counter("disk.writes").store(d.writes);
        reg.counter("disk.bytes_read").store(d.bytes_read);
        reg.counter("disk.bytes_written").store(d.bytes_written);
        reg.counter("disk.seeks").store(d.seeks);
        reg.counter("disk.busy_ns").store(d.busy_ns);
        reg.counter("disk.sync_busy_ns").store(d.sync_busy_ns);
        reg.counter("disk.positioning_ns").store(d.positioning_ns);
        reg.counter("disk.service_ns").store(d.service_ns);
        if let Some(eff) = d.transfer_efficiency() {
            reg.gauge("disk.transfer_efficiency").set(eff);
        }
        // How far the cleaner is from its high-water target — the
        // backlog a paced cleaner works down one installment at a time.
        reg.gauge("lfs.cleaner.backlog_segs").set(
            self.cfg
                .clean_high_water
                .saturating_sub(self.usage.clean_count()) as f64,
        );
        // Active selection policy, as a presence marker (`lfstop` probes
        // the known names): counters carry no string labels.
        reg.counter(&format!(
            "lfs.cleaner.policy.{}",
            self.cfg.policy.as_policy().name()
        ))
        .store(1);
        let q = self.dev.queue_stats();
        if q.submitted > 0 {
            reg.counter("queue.submitted").store(q.submitted);
            reg.counter("queue.fences").store(q.fences);
            if let Some(mean) = q.mean_in_flight_depth() {
                reg.gauge("queue.mean_in_flight_depth").set(mean);
            }
        }
        // Per-temperature-stream fill rates (stream 0 is the hottest;
        // a single-stream system publishes only stream 0) and the heat
        // estimator's coverage.
        for t in 0..self.stream_count() {
            reg.counter(&format!("lfs.stream.{t}.bytes_written"))
                .store(self.stats().stream_bytes(t));
        }
        if !self.heat.is_empty() {
            reg.gauge("lfs.heat.tracked").set(self.heat.len() as f64);
        }
        // On a multi-volume set, publish per-shard counters next to the
        // aggregates so an operator can spot a skewed or starved disk.
        let shards = self.dev.shard_count();
        if shards > 1 {
            let mut clean_per_shard = vec![0u64; shards];
            for (seg, u) in self.usage.iter() {
                if u.state == crate::usage::SegState::Clean {
                    clean_per_shard[self.shard_of_seg(seg)] += 1;
                }
            }
            for i in 0..shards {
                let pfx = format!("shard.{i}");
                if let Some(s) = self.dev.shard_stats(i) {
                    reg.counter(&format!("{pfx}.reads")).store(s.reads);
                    reg.counter(&format!("{pfx}.writes")).store(s.writes);
                    reg.counter(&format!("{pfx}.bytes_read"))
                        .store(s.bytes_read);
                    reg.counter(&format!("{pfx}.bytes_written"))
                        .store(s.bytes_written);
                    reg.counter(&format!("{pfx}.busy_ns")).store(s.busy_ns);
                    reg.counter(&format!("{pfx}.seeks")).store(s.seeks);
                }
                if let Some(qs) = self.dev.shard_queue_stats(i) {
                    reg.counter(&format!("{pfx}.queue.submitted"))
                        .store(qs.submitted);
                    if let Some(mean) = qs.mean_in_flight_depth() {
                        reg.gauge(&format!("{pfx}.queue.mean_in_flight_depth"))
                            .set(mean);
                    }
                }
                if let (Some(&clean), Some(&cleaned)) =
                    (clean_per_shard.get(i), self.cleaned_per_shard.get(i))
                {
                    reg.gauge(&format!("{pfx}.clean_segs")).set(clean as f64);
                    reg.counter(&format!("{pfx}.cleaner.segments_cleaned"))
                        .store(cleaned);
                }
            }
        }
    }

    /// Publishes current statistics and returns a metrics snapshot, or
    /// `None` when no registry is attached.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.publish_metrics();
        self.obs.obs.snapshot()
    }
}

impl BlockKind {
    /// Stable metric-name slug (`lfs.log_bytes.<slug>`).
    pub fn slug(self) -> &'static str {
        match self {
            BlockKind::Data => "data",
            BlockKind::Indirect => "indirect",
            BlockKind::Inode => "inode",
            BlockKind::Imap => "imap",
            BlockKind::Usage => "usage",
            BlockKind::Summary => "summary",
            BlockKind::DirLog => "dirlog",
        }
    }
}

impl LfsStats {
    /// Stores every statistic into `reg` under the `lfs.` prefix. See
    /// EXPERIMENTS.md ("Metrics snapshot schema") for the name list.
    pub fn publish(&self, reg: &Registry) {
        for kind in BlockKind::ALL {
            reg.counter(&format!("lfs.log_bytes.{}", kind.slug()))
                .store(self.log_bytes_new(kind));
            reg.counter(&format!("lfs.cleaner_log_bytes.{}", kind.slug()))
                .store(self.log_bytes_cleaner(kind));
        }
        reg.counter("lfs.checkpoints").store(self.checkpoints);
        reg.counter("lfs.group_commits").store(self.group_commits);
        reg.counter("lfs.partial_writes").store(self.partial_writes);
        reg.counter("lfs.app_bytes_written")
            .store(self.app_bytes_written);
        reg.counter("lfs.flush_copy_bytes")
            .store(self.flush_copy_bytes);
        reg.counter("lfs.io_retries").store(self.io_retries);
        reg.counter("lfs.io_giveups").store(self.io_giveups);
        let c = &self.cleaner;
        reg.counter("lfs.cleaner.segments_cleaned")
            .store(c.segments_cleaned);
        reg.counter("lfs.cleaner.segments_empty")
            .store(c.segments_empty);
        reg.counter("lfs.cleaner.bytes_read").store(c.bytes_read);
        reg.counter("lfs.cleaner.bytes_written")
            .store(c.bytes_written);
        reg.counter("lfs.cleaner.passes").store(c.passes);
        reg.gauge("lfs.cleaner.utilization_sum")
            .set(c.utilization_sum);
        // Utilization-at-clean histogram: how full victims were when
        // chosen, the distribution Figure 6's bimodal argument is about.
        for (i, &n) in c.util_deciles.iter().enumerate() {
            reg.counter(&format!("lfs.cleaner.util_decile.{i}"))
                .store(n);
        }
    }
}
