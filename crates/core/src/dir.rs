//! Directory block format.
//!
//! Directories are ordinary files whose data blocks hold packed entries;
//! they flow through the same cache, log, and cleaner as any other file —
//! this is what collapses the "five separate disk I/Os, each preceded by a
//! seek" of a Unix FFS file create into one sequential log write (Figure 1).
//!
//! Each 4 KB block holds records `{ino: u32, ftype: u8, name_len: u8,
//! name}`, terminated by a record with `ino == 0 && name_len == 0`.
//! Records never span blocks. Blocks are kept compact: inserting into or
//! removing from a block rewrites that block — which costs nothing extra in
//! a log-structured file system, because the block is rewritten
//! out-of-place anyway.

use blockdev::BLOCK_SIZE;
use vfs::{FileType, FsError, FsResult, Ino};

use crate::codec::{Reader, Writer};

/// Fixed overhead of one record, excluding the name bytes.
const RECORD_HEADER: usize = 6;

/// One directory entry as stored in a block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirRecord {
    /// Target inode.
    pub ino: Ino,
    /// Target file type (cached in the entry so `readdir` needs no inode
    /// reads).
    pub ftype: FileType,
    /// Entry name.
    pub name: String,
}

impl DirRecord {
    /// Bytes this record occupies in a block.
    pub fn encoded_len(&self) -> usize {
        RECORD_HEADER + self.name.len()
    }
}

/// Serialized size of a set of records (without terminator).
pub fn records_len(records: &[DirRecord]) -> usize {
    records.iter().map(DirRecord::encoded_len).sum()
}

/// True if `records` fit in one directory block (leaving room for the
/// terminator when not exactly full).
pub fn fits(records: &[DirRecord]) -> bool {
    let len = records_len(records);
    len <= BLOCK_SIZE - RECORD_HEADER || len == BLOCK_SIZE
}

/// Encodes records into one block.
///
/// # Panics
///
/// Panics if the records do not fit (callers check with [`fits`]).
pub fn encode_block(records: &[DirRecord]) -> Box<[u8]> {
    assert!(fits(records), "directory records overflow a block");
    let mut buf = vec![0u8; BLOCK_SIZE].into_boxed_slice();
    let mut w = Writer::new(&mut buf);
    for rec in records {
        w.put_u32(rec.ino);
        w.put_u8(match rec.ftype {
            FileType::Regular => 1,
            FileType::Directory => 2,
        });
        w.put_u8(rec.name.len() as u8);
        w.put_bytes(rec.name.as_bytes());
    }
    // The terminator is all zeros, already present in the fresh buffer.
    buf
}

/// Decodes all records from a directory block.
pub fn decode_block(buf: &[u8]) -> FsResult<Vec<DirRecord>> {
    debug_assert_eq!(buf.len(), BLOCK_SIZE);
    let mut out = Vec::new();
    let mut r = Reader::new(buf);
    while r.pos() + RECORD_HEADER <= BLOCK_SIZE {
        let ino = r.get_u32();
        let ftype_byte = r.get_u8();
        let name_len = r.get_u8() as usize;
        if ino == 0 && name_len == 0 {
            break;
        }
        if ino == 0 || r.pos() + name_len > BLOCK_SIZE {
            return Err(FsError::Corrupt("directory block: bad record".into()));
        }
        let ftype = match ftype_byte {
            1 => FileType::Regular,
            2 => FileType::Directory,
            t => {
                return Err(FsError::Corrupt(format!(
                    "directory block: bad file type {t}"
                )))
            }
        };
        let name = String::from_utf8(r.get_bytes(name_len).to_vec())
            .map_err(|_| FsError::Corrupt("directory block: non-UTF-8 name".into()))?;
        out.push(DirRecord { ino, ftype, name });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ino: Ino, name: &str) -> DirRecord {
        DirRecord {
            ino,
            ftype: FileType::Regular,
            name: name.to_string(),
        }
    }

    #[test]
    fn empty_block_roundtrip() {
        let buf = encode_block(&[]);
        assert!(decode_block(&buf).unwrap().is_empty());
    }

    #[test]
    fn records_roundtrip_in_order() {
        let records = vec![
            rec(5, "alpha"),
            DirRecord {
                ino: 9,
                ftype: FileType::Directory,
                name: "subdir".into(),
            },
            rec(12, "z"),
        ];
        let buf = encode_block(&records);
        assert_eq!(decode_block(&buf).unwrap(), records);
    }

    #[test]
    fn zero_filled_block_is_empty_directory() {
        let buf = vec![0u8; BLOCK_SIZE];
        assert!(decode_block(&buf).unwrap().is_empty());
    }

    #[test]
    fn fits_accounts_for_terminator() {
        // Records of length 6 + 10 = 16 bytes each; 256 of them fill the
        // block exactly.
        let full: Vec<DirRecord> = (0..256).map(|i| rec(i + 1, &format!("n{i:09}"))).collect();
        assert_eq!(records_len(&full), BLOCK_SIZE);
        assert!(fits(&full));
        let buf = encode_block(&full);
        assert_eq!(decode_block(&buf).unwrap().len(), 256);

        // One more record cannot fit.
        let mut over = full.clone();
        over.push(rec(999, "x"));
        assert!(!fits(&over));
    }

    #[test]
    fn nearly_full_block_keeps_terminator_space() {
        // 255 records of 16 bytes = 4080; terminator needs 6; 4080+6 <=
        // 4096, so it fits.
        let recs: Vec<DirRecord> = (0..255).map(|i| rec(i + 1, &format!("n{i:09}"))).collect();
        assert!(fits(&recs));
        let buf = encode_block(&recs);
        assert_eq!(decode_block(&buf).unwrap().len(), 255);
    }

    #[test]
    fn corrupt_type_detected() {
        let buf = encode_block(&[rec(1, "a")]);
        let mut bad = buf;
        bad[4] = 77;
        assert!(decode_block(&bad).is_err());
    }

    #[test]
    fn max_name_length_roundtrips() {
        let name = "n".repeat(255);
        let records = vec![DirRecord {
            ino: 3,
            ftype: FileType::Regular,
            name,
        }];
        let buf = encode_block(&records);
        assert_eq!(decode_block(&buf).unwrap(), records);
    }
}
