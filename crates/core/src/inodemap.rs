//! The inode map: where each inode currently lives in the log.
//!
//! "Sprite LFS doesn't place inodes at fixed positions; they are written to
//! the log. Sprite LFS uses a data structure called an inode map to
//! maintain the current location of each inode" (§3.1). The map is divided
//! into blocks that are themselves written to the log; the checkpoint
//! region records the block addresses. The map also holds each file's
//! version number — the uid half of the fast liveness check (§3.3) — and
//! its last access time.
//!
//! The whole map is kept in memory ("inode maps are compact enough to keep
//! the active portions cached in main memory: inode map lookups rarely
//! require disk accesses").

use blockdev::BLOCK_SIZE;
use vfs::{FsError, FsResult, Ino};

use crate::codec::{Reader, Writer};
use crate::layout::{DiskAddr, NIL_ADDR};

/// Bytes per on-disk inode-map entry.
pub const IMAP_ENTRY_SIZE: usize = 24;

/// Inode-map entries per disk block.
pub const IMAP_ENTRIES_PER_BLOCK: usize = BLOCK_SIZE / IMAP_ENTRY_SIZE;

/// One inode-map entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImapEntry {
    /// Disk address of the inode block holding this inode, or [`NIL_ADDR`]
    /// if the inode is free.
    pub addr: DiskAddr,
    /// Slot within that inode block.
    pub slot: u8,
    /// Version number, "incremented whenever the file is deleted or
    /// truncated to length zero" (§3.3).
    pub version: u32,
    /// Time of last access (kept here, as in the paper's Table 1, so
    /// reads don't dirty the inode).
    pub atime: u64,
}

impl ImapEntry {
    const FREE: ImapEntry = ImapEntry {
        addr: NIL_ADDR,
        slot: 0,
        version: 0,
        atime: 0,
    };

    /// True if the inode is currently allocated.
    pub fn is_live(&self) -> bool {
        self.addr != NIL_ADDR
    }
}

/// The in-memory inode map with dirty-block tracking.
pub struct InodeMap {
    entries: Vec<ImapEntry>,
    /// Current on-disk address of each inode-map block ([`NIL_ADDR`] until
    /// first written). The checkpoint region persists this vector.
    block_addrs: Vec<DiskAddr>,
    dirty: Vec<bool>,
    /// Recycled inode numbers available for allocation.
    free: Vec<Ino>,
    /// Lowest inode number that has never been allocated.
    next_unused: Ino,
    live_count: u64,
}

impl InodeMap {
    /// An empty map for `max_inodes` inodes; every inode starts free.
    pub fn new(max_inodes: u32) -> InodeMap {
        let nblocks = (max_inodes as usize).div_ceil(IMAP_ENTRIES_PER_BLOCK);
        InodeMap {
            entries: vec![ImapEntry::FREE; max_inodes as usize],
            block_addrs: vec![NIL_ADDR; nblocks],
            dirty: vec![false; nblocks],
            free: Vec::new(),
            next_unused: 2, // 0 is invalid, 1 is the root.
            live_count: 0,
        }
    }

    /// Number of inode-map blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_addrs.len()
    }

    /// Capacity in inodes.
    pub fn capacity(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Number of live inodes.
    pub fn live_count(&self) -> u64 {
        self.live_count
    }

    /// The inode-map block holding `ino`.
    pub fn block_of(ino: Ino) -> usize {
        ino as usize / IMAP_ENTRIES_PER_BLOCK
    }

    /// Looks up an entry.
    pub fn get(&self, ino: Ino) -> FsResult<&ImapEntry> {
        self.entries
            .get(ino as usize)
            .ok_or(FsError::InvalidArgument("inode number out of range"))
    }

    /// Records that inode `ino` now lives at (`addr`, `slot`).
    pub fn set_location(&mut self, ino: Ino, addr: DiskAddr, slot: u8) {
        let was_live = self.entries[ino as usize].is_live();
        let e = &mut self.entries[ino as usize];
        e.addr = addr;
        e.slot = slot;
        if !was_live {
            self.live_count += 1;
        }
        self.dirty[Self::block_of(ino)] = true;
    }

    /// Updates an inode's access time.
    pub fn set_atime(&mut self, ino: Ino, atime: u64) {
        self.entries[ino as usize].atime = atime;
        self.dirty[Self::block_of(ino)] = true;
    }

    /// Updates an inode's access time without dirtying the map block, so
    /// that pure read traffic does not generate log writes. The value
    /// still reaches disk whenever the block is written for another
    /// reason or at checkpoint.
    pub fn set_atime_quiet(&mut self, ino: Ino, atime: u64) {
        self.entries[ino as usize].atime = atime;
    }

    /// Sets location *and* version in one step — used by roll-forward when
    /// it adopts a newer inode found in the log tail.
    pub fn set_entry(&mut self, ino: Ino, addr: DiskAddr, slot: u8, version: u32) {
        self.set_location(ino, addr, slot);
        self.entries[ino as usize].version = version;
    }

    /// Bumps the version of a *live* inode — the paper increments the
    /// version "whenever the file is deleted or truncated to length zero",
    /// and truncation leaves the inode live.
    pub fn bump_version(&mut self, ino: Ino) -> u32 {
        let e = &mut self.entries[ino as usize];
        e.version += 1;
        self.dirty[Self::block_of(ino)] = true;
        e.version
    }

    /// Allocates a free inode number (the entry's version already reflects
    /// any previous lives of this number). Returns `None` when the map is
    /// full. The location stays [`NIL_ADDR`] until the inode is written.
    pub fn allocate(&mut self) -> Option<Ino> {
        if let Some(ino) = self.free.pop() {
            return Some(ino);
        }
        if (self.next_unused as usize) < self.entries.len() {
            let ino = self.next_unused;
            self.next_unused += 1;
            Some(ino)
        } else {
            None
        }
    }

    /// Reserves a specific inode number (used for the root at format time
    /// and by recovery).
    pub fn reserve(&mut self, ino: Ino) {
        if ino >= self.next_unused {
            // Everything between stays allocatable.
            for i in self.next_unused..ino {
                if i >= 2 {
                    self.free.push(i);
                }
            }
            self.next_unused = ino + 1;
        } else {
            self.free.retain(|&f| f != ino);
        }
    }

    /// Frees an inode: bumps its version (invalidating every block with
    /// the old uid, which is what lets the cleaner discard them without
    /// reading the inode) and recycles the number.
    pub fn free(&mut self, ino: Ino) {
        let e = &mut self.entries[ino as usize];
        if e.is_live() {
            self.live_count -= 1;
        }
        e.addr = NIL_ADDR;
        e.slot = 0;
        e.version += 1;
        self.dirty[Self::block_of(ino)] = true;
        self.free.push(ino);
    }

    /// Current version of `ino` — the uid check for cleaning (§3.3): a
    /// block stamped with an older version is dead, no inode read needed.
    pub fn version(&self, ino: Ino) -> u32 {
        self.entries[ino as usize].version
    }

    /// Indices of dirty inode-map blocks.
    pub fn dirty_blocks(&self) -> Vec<usize> {
        (0..self.dirty.len()).filter(|&i| self.dirty[i]).collect()
    }

    /// True if any block is dirty.
    pub fn has_dirty(&self) -> bool {
        self.dirty.iter().any(|&d| d)
    }

    /// Serializes inode-map block `idx`.
    pub fn encode_block(&self, idx: usize) -> Box<[u8]> {
        let mut buf = vec![0u8; BLOCK_SIZE].into_boxed_slice();
        self.encode_block_into(idx, &mut buf);
        buf
    }

    /// Serializes inode-map block `idx` into a caller-provided block-sized
    /// buffer (zero-filled first); see [`crate::summary::Summary::encode_into`].
    pub fn encode_block_into(&self, idx: usize, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), BLOCK_SIZE);
        buf.fill(0);
        let start = idx * IMAP_ENTRIES_PER_BLOCK;
        let end = (start + IMAP_ENTRIES_PER_BLOCK).min(self.entries.len());
        let mut w = Writer::new(buf);
        for e in &self.entries[start..end] {
            w.put_u64(e.addr);
            w.put_u32(e.version);
            w.put_u8(e.slot);
            w.pad(3);
            w.put_u64(e.atime);
        }
    }

    /// Loads inode-map block `idx` from a raw disk block, replacing the
    /// in-memory entries it covers, and records `addr` as its on-disk home.
    pub fn load_block(&mut self, idx: usize, buf: &[u8], addr: DiskAddr) {
        let start = idx * IMAP_ENTRIES_PER_BLOCK;
        let end = (start + IMAP_ENTRIES_PER_BLOCK).min(self.entries.len());
        let mut r = Reader::new(buf);
        for i in start..end {
            let was_live = self.entries[i].is_live();
            let e = ImapEntry {
                addr: r.get_u64(),
                version: r.get_u32(),
                slot: {
                    let s = r.get_u8();
                    r.skip(3);
                    s
                },
                atime: r.get_u64(),
            };
            match (was_live, e.is_live()) {
                (false, true) => self.live_count += 1,
                (true, false) => self.live_count -= 1,
                _ => {}
            }
            self.entries[i] = e;
        }
        self.block_addrs[idx] = addr;
        self.dirty[idx] = false;
    }

    /// Marks block `idx` as written at `addr` and clears its dirty bit.
    pub fn block_written(&mut self, idx: usize, addr: DiskAddr) {
        self.block_addrs[idx] = addr;
        self.dirty[idx] = false;
    }

    /// Current on-disk address of inode-map block `idx`.
    pub fn block_addr(&self, idx: usize) -> DiskAddr {
        self.block_addrs[idx]
    }

    /// The full on-disk address vector (persisted by the checkpoint).
    pub fn block_addr_vec(&self) -> &[DiskAddr] {
        &self.block_addrs
    }

    /// Marks an inode-map block dirty (used by the cleaner to relocate it).
    pub fn mark_block_dirty(&mut self, idx: usize) {
        self.dirty[idx] = true;
    }

    /// Rebuilds the free list after loading from disk (recovery path).
    pub fn rebuild_free_list(&mut self) {
        self.free.clear();
        self.live_count = 0;
        let mut highest_live = 1u32;
        for (i, e) in self.entries.iter().enumerate() {
            if e.is_live() {
                self.live_count += 1;
                highest_live = highest_live.max(i as u32);
            }
        }
        self.next_unused = highest_live + 1;
        for i in 2..self.next_unused {
            if !self.entries[i as usize].is_live() {
                self.free.push(i);
            }
        }
    }

    /// Decodes the entries a raw inode-map block holds, without loading
    /// them, as `(ino, entry)` pairs — roll-forward diffs these against
    /// the in-memory state to find deletions that became durable.
    pub fn peek_block(&self, idx: usize, buf: &[u8]) -> Vec<(Ino, ImapEntry)> {
        let start = idx * IMAP_ENTRIES_PER_BLOCK;
        let end = (start + IMAP_ENTRIES_PER_BLOCK).min(self.entries.len());
        let mut r = Reader::new(buf);
        let mut out = Vec::with_capacity(end.saturating_sub(start));
        for i in start..end {
            let e = ImapEntry {
                addr: r.get_u64(),
                version: r.get_u32(),
                slot: {
                    let s = r.get_u8();
                    r.skip(3);
                    s
                },
                atime: r.get_u64(),
            };
            out.push((i as Ino, e));
        }
        out
    }

    /// Iterates over the live inode numbers.
    pub fn live_inos(&self) -> impl Iterator<Item = Ino> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_live())
            .map(|(i, _)| i as Ino)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_skips_zero_and_root() {
        let mut m = InodeMap::new(100);
        assert_eq!(m.allocate(), Some(2));
        assert_eq!(m.allocate(), Some(3));
    }

    #[test]
    fn free_bumps_version_and_recycles() {
        let mut m = InodeMap::new(100);
        let ino = m.allocate().unwrap();
        m.set_location(ino, 500, 3);
        assert_eq!(m.version(ino), 0);
        m.free(ino);
        assert_eq!(m.version(ino), 1);
        assert!(!m.get(ino).unwrap().is_live());
        assert_eq!(m.allocate(), Some(ino));
    }

    #[test]
    fn allocation_exhausts_at_capacity() {
        let mut m = InodeMap::new(4); // inos 2 and 3 allocatable.
        assert!(m.allocate().is_some());
        assert!(m.allocate().is_some());
        assert!(m.allocate().is_none());
    }

    #[test]
    fn live_count_tracks_set_and_free() {
        let mut m = InodeMap::new(100);
        assert_eq!(m.live_count(), 0);
        m.set_location(2, 10, 0);
        m.set_location(3, 11, 0);
        assert_eq!(m.live_count(), 2);
        m.set_location(2, 20, 1); // Relocation, not a new life.
        assert_eq!(m.live_count(), 2);
        m.free(3);
        assert_eq!(m.live_count(), 1);
    }

    #[test]
    fn dirty_tracking_follows_mutations() {
        let mut m = InodeMap::new(IMAP_ENTRIES_PER_BLOCK as u32 * 3);
        assert!(!m.has_dirty());
        m.set_location(2, 1, 0);
        assert_eq!(m.dirty_blocks(), vec![0]);
        let far = (IMAP_ENTRIES_PER_BLOCK * 2 + 1) as Ino;
        m.set_location(far, 2, 0);
        assert_eq!(m.dirty_blocks(), vec![0, 2]);
        m.block_written(0, 99);
        assert_eq!(m.dirty_blocks(), vec![2]);
        assert_eq!(m.block_addr(0), 99);
    }

    #[test]
    fn block_encode_load_roundtrip() {
        let mut m = InodeMap::new(400);
        m.set_location(2, 1234, 5);
        m.set_atime(2, 777);
        m.set_location(3, 888, 1);
        let blk = m.encode_block(0);

        let mut m2 = InodeMap::new(400);
        m2.load_block(0, &blk, 4321);
        assert_eq!(m2.get(2).unwrap(), m.get(2).unwrap());
        assert_eq!(m2.get(3).unwrap(), m.get(3).unwrap());
        assert_eq!(m2.block_addr(0), 4321);
        assert_eq!(m2.live_count(), 2);
    }

    #[test]
    fn rebuild_free_list_after_load() {
        let mut m = InodeMap::new(100);
        m.set_location(2, 10, 0);
        m.set_location(5, 11, 0);
        let blk = m.encode_block(0);
        let mut m2 = InodeMap::new(100);
        m2.load_block(0, &blk, 50);
        m2.rebuild_free_list();
        // 3 and 4 are free below the watermark; allocation must hand them
        // out before advancing past 5.
        let mut got = vec![
            m2.allocate().unwrap(),
            m2.allocate().unwrap(),
            m2.allocate().unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, vec![3, 4, 6]);
    }

    #[test]
    fn reserve_makes_specific_ino_unavailable() {
        let mut m = InodeMap::new(100);
        m.reserve(1);
        m.reserve(4);
        let mut next4: Vec<Ino> = (0..4).filter_map(|_| m.allocate()).collect();
        next4.sort_unstable();
        assert_eq!(next4, vec![2, 3, 5, 6]);
    }

    #[test]
    fn live_inos_iterates_exactly_live() {
        let mut m = InodeMap::new(100);
        m.set_location(1, 5, 0);
        m.set_location(7, 6, 0);
        let live: Vec<Ino> = m.live_inos().collect();
        assert_eq!(live, vec![1, 7]);
    }

    #[test]
    fn entries_per_block_constant() {
        assert_eq!(IMAP_ENTRIES_PER_BLOCK, 170);
    }
}
