//! The directory operation log.
//!
//! "To restore consistency between directories and inodes, Sprite LFS
//! outputs a special record in the log for each directory change. The
//! record includes an operation code (create, link, rename, or unlink),
//! the location of the directory entry ..., the contents of the directory
//! entry (name and i-number), and the new reference count for the inode
//! named in the entry" (§4.2). Sprite LFS guarantees that each record
//! appears in the log *before* the corresponding directory block or inode;
//! our flush path writes dirlog blocks first in every partial write.
//!
//! Roll-forward replays these records to complete or undo half-finished
//! directory operations; they also make `rename` atomic.

use blockdev::BLOCK_SIZE;
use vfs::{FsError, FsResult, Ino};

use crate::codec::{Reader, Writer};

/// The directory operation performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirOp {
    /// A regular file was created.
    Create,
    /// A hard link was added.
    Link,
    /// A directory entry was removed.
    Unlink,
    /// An entry moved from one (dir, name) to another, atomically.
    Rename,
    /// A directory was created.
    Mkdir,
    /// A directory was removed.
    Rmdir,
}

impl DirOp {
    fn encode(self) -> u8 {
        match self {
            DirOp::Create => 1,
            DirOp::Link => 2,
            DirOp::Unlink => 3,
            DirOp::Rename => 4,
            DirOp::Mkdir => 5,
            DirOp::Rmdir => 6,
        }
    }

    fn decode(v: u8) -> FsResult<DirOp> {
        Ok(match v {
            1 => DirOp::Create,
            2 => DirOp::Link,
            3 => DirOp::Unlink,
            4 => DirOp::Rename,
            5 => DirOp::Mkdir,
            6 => DirOp::Rmdir,
            o => return Err(FsError::Corrupt(format!("dirlog: bad op {o}"))),
        })
    }
}

/// One directory-operation-log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirLogRecord {
    /// The operation.
    pub op: DirOp,
    /// Directory containing the (source) entry.
    pub dir: Ino,
    /// Entry name (source name for renames).
    pub name: String,
    /// Inode the entry refers to.
    pub ino: Ino,
    /// The inode's reference count after the operation.
    pub nlink: u32,
    /// Inode version at the time of the operation (to recognise a later
    /// reincarnation of the number during replay).
    pub version: u32,
    /// Destination directory (renames only, else 0).
    pub dir2: Ino,
    /// Destination name (renames only, else empty).
    pub name2: String,
}

impl DirLogRecord {
    /// Serialized length of the record in bytes.
    pub fn encoded_len(&self) -> usize {
        24 + self.name.len() + self.name2.len()
    }

    fn encode_into(&self, w: &mut Writer<'_>) {
        w.put_u8(self.op.encode());
        w.put_u8(self.name.len() as u8);
        w.put_u8(self.name2.len() as u8);
        w.pad(1);
        w.put_u32(self.dir);
        w.put_u32(self.ino);
        w.put_u32(self.nlink);
        w.put_u32(self.version);
        w.put_u32(self.dir2);
        w.put_bytes(self.name.as_bytes());
        w.put_bytes(self.name2.as_bytes());
    }

    fn decode_from(r: &mut Reader<'_>) -> FsResult<Option<DirLogRecord>> {
        // The block contents may be arbitrary garbage (torn write, media
        // rot), so every read is bounds-checked: truncation is corruption,
        // not a panic.
        if r.remaining() < 1 {
            return Ok(None); // Block exhausted exactly at a record boundary.
        }
        let op_byte = r.get_u8();
        if op_byte == 0 {
            return Ok(None); // End-of-block marker.
        }
        let op = DirOp::decode(op_byte)?;
        if r.remaining() < 23 {
            return Err(FsError::Corrupt("dirlog: truncated record header".into()));
        }
        let name_len = r.get_u8() as usize;
        let name2_len = r.get_u8() as usize;
        r.skip(1);
        let dir = r.get_u32();
        let ino = r.get_u32();
        let nlink = r.get_u32();
        let version = r.get_u32();
        let dir2 = r.get_u32();
        if r.remaining() < name_len + name2_len {
            return Err(FsError::Corrupt("dirlog: truncated record names".into()));
        }
        let name = String::from_utf8(r.get_bytes(name_len).to_vec())
            .map_err(|_| FsError::Corrupt("dirlog: non-UTF-8 name".into()))?;
        let name2 = String::from_utf8(r.get_bytes(name2_len).to_vec())
            .map_err(|_| FsError::Corrupt("dirlog: non-UTF-8 name".into()))?;
        Ok(Some(DirLogRecord {
            op,
            dir,
            name,
            ino,
            nlink,
            version,
            dir2,
            name2,
        }))
    }
}

/// Packs records into as many blocks as needed; records never span blocks.
///
/// Returns `(blocks, records_per_block)` so the caller knows the packing.
pub fn encode_records(records: &[DirLogRecord]) -> Vec<Box<[u8]>> {
    let mut blocks = Vec::new();
    let mut cur = vec![0u8; BLOCK_SIZE].into_boxed_slice();
    let mut pos = 0usize;
    for rec in records {
        let len = rec.encoded_len();
        debug_assert!(len < BLOCK_SIZE, "single dirlog record exceeds a block");
        if pos + len + 1 > BLOCK_SIZE {
            blocks.push(cur);
            cur = vec![0u8; BLOCK_SIZE].into_boxed_slice();
            pos = 0;
        }
        let mut w = Writer::new(&mut cur[pos..]);
        rec.encode_into(&mut w);
        pos += len;
    }
    if pos > 0 {
        blocks.push(cur);
    }
    blocks
}

/// Parses all records from one dirlog block.
pub fn decode_block(buf: &[u8]) -> FsResult<Vec<DirLogRecord>> {
    let mut out = Vec::new();
    let mut r = Reader::new(buf);
    while r.pos() < BLOCK_SIZE {
        match DirLogRecord::decode_from(&mut r)? {
            Some(rec) => out.push(rec),
            None => break,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: DirOp, name: &str) -> DirLogRecord {
        DirLogRecord {
            op,
            dir: 1,
            name: name.to_string(),
            ino: 42,
            nlink: 1,
            version: 3,
            dir2: 0,
            name2: String::new(),
        }
    }

    #[test]
    fn single_record_roundtrip() {
        let records = vec![rec(DirOp::Create, "hello.txt")];
        let blocks = encode_records(&records);
        assert_eq!(blocks.len(), 1);
        assert_eq!(decode_block(&blocks[0]).unwrap(), records);
    }

    #[test]
    fn rename_record_roundtrips_both_names() {
        let r = DirLogRecord {
            op: DirOp::Rename,
            dir: 5,
            name: "old".into(),
            ino: 9,
            nlink: 1,
            version: 0,
            dir2: 6,
            name2: "new-name".into(),
        };
        let blocks = encode_records(std::slice::from_ref(&r));
        let back = decode_block(&blocks[0]).unwrap();
        assert_eq!(back, vec![r]);
    }

    #[test]
    fn many_records_spill_to_multiple_blocks() {
        let records: Vec<DirLogRecord> = (0..300)
            .map(|i| rec(DirOp::Create, &format!("file-{i:04}-with-a-longish-name")))
            .collect();
        let blocks = encode_records(&records);
        assert!(blocks.len() > 1);
        let mut back = Vec::new();
        for b in &blocks {
            back.extend(decode_block(b).unwrap());
        }
        assert_eq!(back, records);
    }

    #[test]
    fn empty_record_list_produces_no_blocks() {
        assert!(encode_records(&[]).is_empty());
    }

    #[test]
    fn empty_block_decodes_to_no_records() {
        let buf = vec![0u8; BLOCK_SIZE];
        assert!(decode_block(&buf).unwrap().is_empty());
    }

    #[test]
    fn bad_op_is_corrupt() {
        let mut buf = vec![0u8; BLOCK_SIZE];
        buf[0] = 200;
        assert!(decode_block(&buf).is_err());
    }

    #[test]
    fn garbage_block_is_corrupt_not_panic() {
        // A block of 0x01 bytes parses as an endless run of tiny Create
        // records until the tail truncates one; that must surface as
        // `Corrupt`, never as a slice panic.
        assert!(decode_block(&[1u8; BLOCK_SIZE]).is_err());
    }

    #[test]
    fn truncated_names_are_corrupt() {
        // Valid 24-byte header claiming a long name with no bytes behind
        // it: the name read must not run off the end of the buffer.
        let mut buf = vec![0u8; 24];
        buf[0] = 1; // Create
        buf[1] = 200; // name_len far beyond the buffer tail
        assert!(decode_block(&buf).is_err());
    }

    #[test]
    fn all_ops_roundtrip() {
        let ops = [
            DirOp::Create,
            DirOp::Link,
            DirOp::Unlink,
            DirOp::Rename,
            DirOp::Mkdir,
            DirOp::Rmdir,
        ];
        let records: Vec<DirLogRecord> = ops.iter().map(|&op| rec(op, "n")).collect();
        let blocks = encode_records(&records);
        assert_eq!(decode_block(&blocks[0]).unwrap(), records);
    }
}
