//! Inodes and indirect blocks.
//!
//! "For each file there exists a data structure called an inode, which
//! contains the file's attributes plus the disk addresses of the first ten
//! blocks of the file; for files larger than ten blocks, the inode also
//! contains the disk addresses of one or more indirect blocks" (§3.1).
//!
//! Unlike Unix FFS, inodes have no fixed home: they are packed
//! [`crate::layout::INODES_PER_BLOCK`] to a block and appended to the log;
//! the inode map records where each one currently lives.

use blockdev::BLOCK_SIZE;
use vfs::{FileType, FsError, FsResult, Ino};

use crate::codec::{Reader, Writer};
use crate::layout::{DiskAddr, NIL_ADDR, NUM_DIRECT, PTRS_PER_BLOCK};

/// Bytes an inode occupies on disk.
pub const INODE_DISK_SIZE: usize = 256;

/// The on-disk inode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inode {
    /// Inode number (0 marks an unused slot in an inode block).
    pub ino: Ino,
    /// Version number; together with `ino` it forms the uid used for the
    /// fast liveness check during cleaning (§3.3).
    pub version: u32,
    /// Regular file or directory.
    pub ftype: FileType,
    /// Protection bits (stored for fidelity, not enforced).
    pub mode: u16,
    /// Number of directory entries referring to this inode.
    pub nlink: u32,
    /// Size in bytes.
    pub size: u64,
    /// Last data modification time (logical time).
    pub mtime: u64,
    /// Last access time (logical time).
    pub atime: u64,
    /// Last inode change time (logical time).
    pub ctime: u64,
    /// Addresses of the first ten file blocks.
    pub direct: [DiskAddr; NUM_DIRECT],
    /// Address of the single-indirect block.
    pub indirect: DiskAddr,
    /// Address of the double-indirect block.
    pub dindirect: DiskAddr,
}

impl Inode {
    /// A fresh inode with no blocks.
    pub fn new(ino: Ino, version: u32, ftype: FileType, now: u64) -> Inode {
        Inode {
            ino,
            version,
            ftype,
            mode: match ftype {
                FileType::Regular => 0o644,
                FileType::Directory => 0o755,
            },
            nlink: 1,
            size: 0,
            mtime: now,
            atime: now,
            ctime: now,
            direct: [NIL_ADDR; NUM_DIRECT],
            indirect: NIL_ADDR,
            dindirect: NIL_ADDR,
        }
    }

    /// Serializes the inode into `buf` (must be `INODE_DISK_SIZE` bytes).
    pub fn encode_into(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), INODE_DISK_SIZE);
        let mut w = Writer::new(buf);
        w.put_u32(self.ino);
        w.put_u32(self.version);
        w.put_u8(match self.ftype {
            FileType::Regular => 1,
            FileType::Directory => 2,
        });
        w.pad(1);
        w.put_u16(self.mode);
        w.put_u32(self.nlink);
        w.put_u64(self.size);
        w.put_u64(self.mtime);
        w.put_u64(self.atime);
        w.put_u64(self.ctime);
        for a in self.direct {
            w.put_u64(a);
        }
        w.put_u64(self.indirect);
        w.put_u64(self.dindirect);
    }

    /// Parses an inode; returns `None` for an unused slot (`ino == 0`).
    pub fn decode(buf: &[u8]) -> FsResult<Option<Inode>> {
        debug_assert_eq!(buf.len(), INODE_DISK_SIZE);
        let mut r = Reader::new(buf);
        let ino = r.get_u32();
        if ino == 0 {
            return Ok(None);
        }
        let version = r.get_u32();
        let ftype = match r.get_u8() {
            1 => FileType::Regular,
            2 => FileType::Directory,
            t => return Err(FsError::Corrupt(format!("inode {ino}: bad type {t}"))),
        };
        r.skip(1);
        let mode = r.get_u16();
        let nlink = r.get_u32();
        let size = r.get_u64();
        let mtime = r.get_u64();
        let atime = r.get_u64();
        let ctime = r.get_u64();
        let mut direct = [NIL_ADDR; NUM_DIRECT];
        for d in &mut direct {
            *d = r.get_u64();
        }
        let indirect = r.get_u64();
        let dindirect = r.get_u64();
        Ok(Some(Inode {
            ino,
            version,
            ftype,
            mode,
            nlink,
            size,
            mtime,
            atime,
            ctime,
            direct,
            indirect,
            dindirect,
        }))
    }

    /// Converts to the VFS metadata view.
    pub fn metadata(&self) -> vfs::Metadata {
        vfs::Metadata {
            ino: self.ino,
            ftype: self.ftype,
            size: self.size,
            nlink: self.nlink,
            mode: self.mode,
            mtime: self.mtime,
            atime: self.atime,
            ctime: self.ctime,
        }
    }

    /// Copies out just the scalar attributes, leaving the block-pointer
    /// arrays behind. The stat path and name resolution need only these.
    pub fn attrs(&self) -> InodeAttrs {
        InodeAttrs {
            ino: self.ino,
            version: self.version,
            ftype: self.ftype,
            mode: self.mode,
            nlink: self.nlink,
            size: self.size,
            mtime: self.mtime,
            atime: self.atime,
            ctime: self.ctime,
        }
    }
}

/// The scalar attributes of an inode — everything except the block
/// pointers. Cheap to copy where cloning a whole [`Inode`] (with its
/// ten-slot direct array and indirect addresses) would be waste.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InodeAttrs {
    /// Inode number.
    pub ino: Ino,
    /// Version number (see [`Inode::version`]).
    pub version: u32,
    /// Regular file or directory.
    pub ftype: FileType,
    /// Protection bits.
    pub mode: u16,
    /// Number of directory entries referring to this inode.
    pub nlink: u32,
    /// Size in bytes.
    pub size: u64,
    /// Last data modification time (logical time).
    pub mtime: u64,
    /// Last access time (logical time).
    pub atime: u64,
    /// Last inode change time (logical time).
    pub ctime: u64,
}

impl InodeAttrs {
    /// Converts to the VFS metadata view.
    pub fn metadata(&self) -> vfs::Metadata {
        vfs::Metadata {
            ino: self.ino,
            ftype: self.ftype,
            size: self.size,
            nlink: self.nlink,
            mode: self.mode,
            mtime: self.mtime,
            atime: self.atime,
            ctime: self.ctime,
        }
    }
}

/// An indirect block: a block-sized array of disk addresses.
///
/// Used both for single-indirect blocks (addresses of data blocks) and for
/// the double-indirect block (addresses of single-indirect blocks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndirectBlock {
    /// The pointer slots.
    pub ptrs: Box<[DiskAddr; PTRS_PER_BLOCK]>,
}

impl Default for IndirectBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl IndirectBlock {
    /// An indirect block with every slot empty.
    pub fn new() -> IndirectBlock {
        IndirectBlock {
            ptrs: Box::new([NIL_ADDR; PTRS_PER_BLOCK]),
        }
    }

    /// Serializes into a disk block.
    pub fn encode(&self) -> Box<[u8]> {
        let mut buf = vec![0u8; BLOCK_SIZE].into_boxed_slice();
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes into a caller-provided block-sized buffer; see
    /// [`crate::summary::Summary::encode_into`].
    pub fn encode_into(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), BLOCK_SIZE);
        for (i, p) in self.ptrs.iter().enumerate() {
            buf[i * 8..i * 8 + 8].copy_from_slice(&p.to_le_bytes());
        }
    }

    /// Parses an indirect block from a raw disk block.
    pub fn decode(buf: &[u8]) -> IndirectBlock {
        debug_assert_eq!(buf.len(), BLOCK_SIZE);
        let mut b = IndirectBlock::new();
        for (i, p) in b.ptrs.iter_mut().enumerate() {
            *p = u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
        }
        b
    }

    /// True if every slot is [`NIL_ADDR`].
    pub fn is_empty(&self) -> bool {
        self.ptrs.iter().all(|&p| p == NIL_ADDR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_inode() -> Inode {
        let mut ino = Inode::new(42, 7, FileType::Regular, 1000);
        ino.size = 12345;
        ino.nlink = 2;
        ino.direct[0] = 100;
        ino.direct[9] = 900;
        ino.indirect = 1234;
        ino
    }

    #[test]
    fn inode_roundtrip() {
        let ino = sample_inode();
        let mut buf = [0u8; INODE_DISK_SIZE];
        ino.encode_into(&mut buf);
        assert_eq!(Inode::decode(&buf).unwrap().unwrap(), ino);
    }

    #[test]
    fn zero_slot_decodes_to_none() {
        let buf = [0u8; INODE_DISK_SIZE];
        assert!(Inode::decode(&buf).unwrap().is_none());
    }

    #[test]
    fn bad_file_type_is_corrupt() {
        let ino = sample_inode();
        let mut buf = [0u8; INODE_DISK_SIZE];
        ino.encode_into(&mut buf);
        buf[8] = 99; // The ftype byte.
        assert!(matches!(Inode::decode(&buf), Err(FsError::Corrupt(_))));
    }

    #[test]
    fn directory_roundtrip_preserves_type() {
        let ino = Inode::new(1, 0, FileType::Directory, 5);
        let mut buf = [0u8; INODE_DISK_SIZE];
        ino.encode_into(&mut buf);
        let back = Inode::decode(&buf).unwrap().unwrap();
        assert_eq!(back.ftype, FileType::Directory);
        assert_eq!(back.mode, 0o755);
    }

    #[test]
    fn inode_fits_in_disk_slot() {
        // Header 4+4+1+1+2+4 = 16, times 8+8+8+8 = 48, direct 80,
        // indirect 16 => 144 <= 256.
        let ino = sample_inode();
        let mut buf = [0u8; INODE_DISK_SIZE];
        ino.encode_into(&mut buf); // Would panic on overflow.
    }

    #[test]
    fn indirect_block_roundtrip() {
        let mut b = IndirectBlock::new();
        b.ptrs[0] = 1;
        b.ptrs[511] = u64::MAX - 1;
        let enc = b.encode();
        assert_eq!(IndirectBlock::decode(&enc), b);
    }

    #[test]
    fn fresh_indirect_block_is_empty() {
        assert!(IndirectBlock::new().is_empty());
        let mut b = IndirectBlock::new();
        b.ptrs[3] = 0;
        assert!(!b.is_empty());
    }

    #[test]
    fn attrs_match_metadata() {
        let ino = sample_inode();
        assert_eq!(ino.attrs().metadata(), ino.metadata());
        assert_eq!(ino.attrs().version, ino.version);
    }

    #[test]
    fn metadata_mirrors_inode_fields() {
        let ino = sample_inode();
        let m = ino.metadata();
        assert_eq!(m.ino, 42);
        assert_eq!(m.size, 12345);
        assert_eq!(m.nlink, 2);
        assert_eq!(m.ftype, FileType::Regular);
    }
}
