//! Checkpoint regions.
//!
//! "A checkpoint is a position in the log at which all of the file system
//! structures are consistent and complete. ... there are actually two
//! checkpoint regions, and checkpoint operations alternate between them"
//! (§4.1). The region contains the addresses of all the blocks in the
//! inode map and segment usage table, plus the current time and a pointer
//! to the last segment written.
//!
//! Validity is established with a checksum over the whole payload rather
//! than just a trailing timestamp; the effect is the same as the paper's
//! "time in the last block" trick — a torn checkpoint write fails
//! validation and reboot falls back to the other region — but it also
//! catches arbitrary partial writes. The header block is written *after*
//! the payload blocks so the checksum can never cover data that is not yet
//! on disk.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use blockdev::{BlockDevice, WriteKind, BLOCK_SIZE};
use vfs::{FsError, FsResult};

use crate::codec::{checksum, Reader, Writer};
use crate::layout::{DiskAddr, CR_BLOCKS};
use crate::ordering::CheckpointReady;

const MAGIC: u64 = 0x4c46_5343_4850_5431; // "LFSCHPT1"
const HEADER_SIZE: usize = 64;

/// The contents of a checkpoint region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Mount epoch; incremented at every mount so roll-forward never
    /// follows a log tail left by an earlier incarnation.
    pub epoch: u32,
    /// Log sequence number of the last partial write covered by this
    /// checkpoint.
    pub seq: u64,
    /// Logical clock at checkpoint time (the paper's "current time").
    pub timestamp: u64,
    /// Segment the log head was in (shard 0's write point on a
    /// multi-volume set).
    pub cur_seg: u32,
    /// Next free block offset within that segment.
    pub cur_off: u32,
    /// Write points of shards 1.. on a multi-volume set, as
    /// `(segment, next free offset)` pairs. Empty on a single volume,
    /// which keeps the encoding byte-identical to the single-volume
    /// format: the pair count lives in a header field that was
    /// previously written as a reserved zero.
    pub extra_write_points: Vec<(u32, u32)>,
    /// Addresses of every inode-map block.
    pub imap_addrs: Vec<DiskAddr>,
    /// Addresses of every segment-usage-table block.
    pub usage_addrs: Vec<DiskAddr>,
    /// Exact live-byte count of every segment at checkpoint time.
    ///
    /// The usage-table *blocks* in the log may be slightly stale for the
    /// segments they themselves landed in (their own relocation is
    /// accounted quietly to keep the checkpoint settle loop finite); the
    /// checkpoint carries the authoritative counts so a mount restores
    /// exactly the state the running system had.
    pub live_bytes: Vec<u32>,
    /// Per-inode write-heat snapshot, hottest first, as
    /// `(ino, Q16 heat)` pairs. Empty on a single-stream file system,
    /// which keeps the encoding byte-identical to the pre-stream format:
    /// the pair count lives in a header field that was previously
    /// written as reserved zero padding. A mount seeds its heat
    /// estimator from these so temperature routing survives a remount
    /// instead of restarting from an all-cold state.
    pub heat: Vec<(u32, u32)>,
}

impl Checkpoint {
    /// Serialized payload size in bytes.
    fn payload_len(&self) -> usize {
        HEADER_SIZE
            + 8 * (self.imap_addrs.len() + self.usage_addrs.len())
            + 4 * self.live_bytes.len()
            + 8 * self.extra_write_points.len()
            + 8 * self.heat.len()
            + 8
    }

    /// Serializes the checkpoint into whole blocks.
    ///
    /// Returns an error if the payload exceeds the fixed region size
    /// ([`CR_BLOCKS`] blocks) — which would mean the file system was
    /// formatted with an impossibly large inode map.
    pub fn encode(&self) -> FsResult<Vec<u8>> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Serializes into a caller-provided buffer, reusing its allocation
    /// (the flush scratch pool); the buffer is cleared and refilled with
    /// exactly the bytes [`Checkpoint::encode`] would return.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> FsResult<()> {
        let len = self.payload_len();
        let padded = len.div_ceil(BLOCK_SIZE) * BLOCK_SIZE;
        if padded > (CR_BLOCKS as usize) * BLOCK_SIZE {
            return Err(FsError::InvalidArgument(
                "checkpoint payload exceeds checkpoint region",
            ));
        }
        buf.clear();
        buf.resize(padded, 0);
        {
            let mut w = Writer::new(buf);
            w.put_u64(MAGIC);
            w.put_u32(self.epoch);
            // Extra write-point count: zero on a single volume, which is
            // exactly the reserved field older checkpoints wrote.
            w.put_u32(self.extra_write_points.len() as u32);
            w.put_u64(self.seq);
            w.put_u64(self.timestamp);
            w.put_u32(self.cur_seg);
            w.put_u32(self.cur_off);
            w.put_u32(self.imap_addrs.len() as u32);
            w.put_u32(self.usage_addrs.len() as u32);
            w.put_u32(self.live_bytes.len() as u32);
            w.put_u64(len as u64);
            // Heat-entry count: zero on a single-stream file system,
            // which is exactly the reserved zero padding older
            // checkpoints wrote here.
            w.put_u32(self.heat.len() as u32);
            w.pad(HEADER_SIZE - w.pos());
            for &a in &self.imap_addrs {
                w.put_u64(a);
            }
            for &a in &self.usage_addrs {
                w.put_u64(a);
            }
            for &l in &self.live_bytes {
                w.put_u32(l);
            }
            for &(seg, off) in &self.extra_write_points {
                w.put_u32(seg);
                w.put_u32(off);
            }
            for &(ino, q) in &self.heat {
                w.put_u32(ino);
                w.put_u32(q);
            }
        }
        let sum = checksum(&buf[..len - 8]);
        buf[len - 8..len].copy_from_slice(&sum.to_le_bytes());
        Ok(())
    }

    /// All write points the checkpoint records, shard 0's first — the
    /// `(segment, next free offset)` log heads a mount must restore.
    pub fn write_points(&self) -> Vec<(u32, u32)> {
        let mut wps = Vec::with_capacity(1 + self.extra_write_points.len());
        wps.push((self.cur_seg, self.cur_off));
        wps.extend_from_slice(&self.extra_write_points);
        wps
    }

    /// Parses and validates a checkpoint region image.
    pub fn decode(buf: &[u8]) -> FsResult<Checkpoint> {
        if buf.len() < HEADER_SIZE {
            return Err(FsError::Corrupt("checkpoint: region too small".into()));
        }
        let mut r = Reader::new(buf);
        if r.get_u64() != MAGIC {
            return Err(FsError::Corrupt("checkpoint: bad magic".into()));
        }
        let epoch = r.get_u32();
        let n_extra_wp = r.get_u32() as usize;
        let seq = r.get_u64();
        let timestamp = r.get_u64();
        let cur_seg = r.get_u32();
        let cur_off = r.get_u32();
        let n_imap = r.get_u32() as usize;
        let n_usage = r.get_u32() as usize;
        let n_live = r.get_u32() as usize;
        let len = r.get_u64() as usize;
        let n_heat = r.get_u32() as usize;
        if len > buf.len()
            || len
                != HEADER_SIZE
                    + 8 * (n_imap + n_usage)
                    + 4 * n_live
                    + 8 * n_extra_wp
                    + 8 * n_heat
                    + 8
        {
            return Err(FsError::Corrupt("checkpoint: bad length".into()));
        }
        let mut stored_bytes = [0u8; 8];
        stored_bytes.copy_from_slice(&buf[len - 8..len]);
        let stored = u64::from_le_bytes(stored_bytes);
        if checksum(&buf[..len - 8]) != stored {
            return Err(FsError::Corrupt("checkpoint: bad checksum".into()));
        }
        r.skip(HEADER_SIZE - r.pos());
        let mut imap_addrs = Vec::with_capacity(n_imap);
        for _ in 0..n_imap {
            imap_addrs.push(r.get_u64());
        }
        let mut usage_addrs = Vec::with_capacity(n_usage);
        for _ in 0..n_usage {
            usage_addrs.push(r.get_u64());
        }
        let mut live_bytes = Vec::with_capacity(n_live);
        for _ in 0..n_live {
            live_bytes.push(r.get_u32());
        }
        let mut extra_write_points = Vec::with_capacity(n_extra_wp);
        for _ in 0..n_extra_wp {
            let seg = r.get_u32();
            let off = r.get_u32();
            extra_write_points.push((seg, off));
        }
        let mut heat = Vec::with_capacity(n_heat);
        for _ in 0..n_heat {
            let ino = r.get_u32();
            let q = r.get_u32();
            heat.push((ino, q));
        }
        Ok(Checkpoint {
            epoch,
            seq,
            timestamp,
            cur_seg,
            cur_off,
            extra_write_points,
            imap_addrs,
            usage_addrs,
            live_bytes,
            heat,
        })
    }

    /// Writes this checkpoint to the region starting at `region_addr`,
    /// consuming the [`CheckpointReady`] proof that an ordering barrier
    /// has drained every log write the checkpoint claims to cover.
    ///
    /// This is the only entry point the running file system uses; the
    /// typestate chain in [`crate::ordering`] makes writing a region
    /// before its log is durable a compile error rather than a crash bug.
    /// Payload blocks go first, the header block last, so a crash anywhere
    /// in between leaves a region that fails validation.
    pub fn write_ordered<D: BlockDevice>(
        &self,
        dev: &mut D,
        region_addr: DiskAddr,
        ready: CheckpointReady,
    ) -> FsResult<()> {
        let _proof_consumed = ready;
        self.write_to(dev, region_addr)
    }

    /// Writes this checkpoint to the region starting at `region_addr`.
    ///
    /// Payload blocks go first, the header block last, so a crash anywhere
    /// in between leaves a region that fails validation.
    ///
    /// This is the *raw* escape hatch — it demands no ordering proof, and
    /// exists for formatting (no prior log to fence) and for
    /// fault-injection tests that deliberately construct ill-ordered
    /// images. Runtime checkpointing goes through
    /// [`Checkpoint::write_ordered`].
    pub fn write_to<D: BlockDevice>(&self, dev: &mut D, region_addr: DiskAddr) -> FsResult<()> {
        let buf = self.encode()?;
        let nblocks = buf.len() / BLOCK_SIZE;
        if nblocks > 1 {
            dev.write_blocks(region_addr + 1, &buf[BLOCK_SIZE..], WriteKind::Sync)
                .map_err(FsError::device)?;
        }
        dev.write_blocks(region_addr, &buf[..BLOCK_SIZE], WriteKind::Sync)
            .map_err(FsError::device)?;
        Ok(())
    }

    /// Reads and validates the checkpoint at `region_addr`.
    pub fn read_from<D: BlockDevice>(dev: &mut D, region_addr: DiskAddr) -> FsResult<Checkpoint> {
        let mut buf = vec![0u8; (CR_BLOCKS as usize) * BLOCK_SIZE];
        dev.read_blocks(region_addr, &mut buf)
            .map_err(FsError::device)?;
        Checkpoint::decode(&buf)
    }

    /// Reads both regions and returns the valid one with the highest
    /// sequence number, along with which region index (0 or 1) it came
    /// from. Errors only if *neither* region is valid.
    pub fn read_latest<D: BlockDevice>(
        dev: &mut D,
        regions: [DiskAddr; 2],
    ) -> FsResult<(Checkpoint, usize)> {
        let a = Checkpoint::read_from(dev, regions[0]);
        let b = Checkpoint::read_from(dev, regions[1]);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                if a.seq >= b.seq {
                    Ok((a, 0))
                } else {
                    Ok((b, 1))
                }
            }
            (Ok(a), Err(_)) => Ok((a, 0)),
            (Err(_), Ok(b)) => Ok((b, 1)),
            (Err(e), Err(_)) => Err(e),
        }
    }

    /// Reads both regions and returns every *valid* checkpoint, newest
    /// (highest `seq`) first, each paired with its region index.
    ///
    /// Mount tries candidates in this order: if the newest checkpoint is
    /// internally consistent but describes impossible geometry (a torn or
    /// rotted region that still checksums, or cross-written garbage),
    /// mount falls back to the next candidate instead of failing — the
    /// alternating-region discipline of §4.1 extended to arbitrary
    /// corruption, not just torn header blocks.
    pub fn read_candidates<D: BlockDevice>(
        dev: &mut D,
        regions: [DiskAddr; 2],
    ) -> Vec<(Checkpoint, usize)> {
        let mut found: Vec<(Checkpoint, usize)> = Vec::new();
        for (i, &addr) in regions.iter().enumerate() {
            if let Ok(cp) = Checkpoint::read_from(dev, addr) {
                found.push((cp, i));
            }
        }
        found.sort_by_key(|c| std::cmp::Reverse(c.0.seq));
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{CR0_ADDR, CR1_ADDR};
    use blockdev::MemDisk;

    fn sample(seq: u64) -> Checkpoint {
        Checkpoint {
            epoch: 2,
            seq,
            timestamp: 1234,
            cur_seg: 3,
            cur_off: 17,
            extra_write_points: vec![],
            imap_addrs: vec![100, 101, 102],
            usage_addrs: vec![200],
            live_bytes: vec![7, 0, 4096],
            heat: vec![],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cp = sample(9);
        let buf = cp.encode().unwrap();
        assert_eq!(Checkpoint::decode(&buf).unwrap(), cp);
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let cp = sample(9);
        let buf = cp.encode().unwrap();
        // Only bytes inside the payload are protected; the rest of the
        // region is padding.
        let payload_len = HEADER_SIZE + 8 * (3 + 1) + 8;
        for i in (0..payload_len).step_by(13) {
            let mut bad = buf.clone();
            bad[i] ^= 0x80;
            assert!(Checkpoint::decode(&bad).is_err(), "byte {i} undetected");
        }
    }

    #[test]
    fn write_read_via_device() {
        let mut dev = MemDisk::new(CR1_ADDR + CR_BLOCKS + 10);
        let cp = sample(5);
        cp.write_to(&mut dev, CR0_ADDR).unwrap();
        let back = Checkpoint::read_from(&mut dev, CR0_ADDR).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn read_latest_prefers_higher_seq() {
        let mut dev = MemDisk::new(CR1_ADDR + CR_BLOCKS + 10);
        sample(5).write_to(&mut dev, CR0_ADDR).unwrap();
        sample(8).write_to(&mut dev, CR1_ADDR).unwrap();
        let (cp, idx) = Checkpoint::read_latest(&mut dev, [CR0_ADDR, CR1_ADDR]).unwrap();
        assert_eq!(cp.seq, 8);
        assert_eq!(idx, 1);
    }

    #[test]
    fn read_latest_survives_one_torn_region() {
        let mut dev = MemDisk::new(CR1_ADDR + CR_BLOCKS + 10);
        sample(5).write_to(&mut dev, CR0_ADDR).unwrap();
        // Region B contains garbage.
        let junk = vec![0xffu8; BLOCK_SIZE];
        blockdev::BlockDevice::write_blocks(&mut dev, CR1_ADDR, &junk, WriteKind::Sync).unwrap();
        let (cp, idx) = Checkpoint::read_latest(&mut dev, [CR0_ADDR, CR1_ADDR]).unwrap();
        assert_eq!(cp.seq, 5);
        assert_eq!(idx, 0);
    }

    #[test]
    fn read_latest_fails_when_both_invalid() {
        let mut dev = MemDisk::new(CR1_ADDR + CR_BLOCKS + 10);
        assert!(Checkpoint::read_latest(&mut dev, [CR0_ADDR, CR1_ADDR]).is_err());
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let cp = Checkpoint {
            epoch: 0,
            seq: 0,
            timestamp: 0,
            cur_seg: 0,
            cur_off: 0,
            extra_write_points: vec![],
            imap_addrs: vec![0; (CR_BLOCKS as usize) * BLOCK_SIZE / 8],
            usage_addrs: vec![],
            live_bytes: vec![],
            heat: vec![],
        };
        assert!(cp.encode().is_err());
    }

    #[test]
    fn empty_address_lists_roundtrip() {
        let cp = Checkpoint {
            epoch: 1,
            seq: 1,
            timestamp: 1,
            cur_seg: 0,
            cur_off: 0,
            extra_write_points: vec![],
            imap_addrs: vec![],
            usage_addrs: vec![],
            live_bytes: vec![],
            heat: vec![],
        };
        let buf = cp.encode().unwrap();
        assert_eq!(Checkpoint::decode(&buf).unwrap(), cp);
    }

    #[test]
    fn heat_entries_roundtrip() {
        let mut cp = sample(12);
        cp.extra_write_points = vec![(4, 9)];
        cp.heat = vec![(7, 3 << 16), (2, 1 << 16), (40, 9)];
        let buf = cp.encode().unwrap();
        let back = Checkpoint::decode(&buf).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn no_heat_encoding_matches_reserved_zero_format() {
        // Bytes 60..64 held reserved zero padding before the heat
        // snapshot existed; an empty snapshot must keep them zero so
        // single-stream images stay byte-identical.
        let buf = sample(9).encode().unwrap();
        assert_eq!(&buf[60..64], &[0u8; 4]);
    }

    #[test]
    fn extra_write_points_roundtrip() {
        let mut cp = sample(11);
        cp.extra_write_points = vec![(4, 9), (5, 0), (6, 15)];
        let buf = cp.encode().unwrap();
        let back = Checkpoint::decode(&buf).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.write_points(), vec![(3, 17), (4, 9), (5, 0), (6, 15)]);
    }

    #[test]
    fn single_volume_encoding_matches_reserved_zero_format() {
        // A checkpoint with no extra write points must serialize exactly
        // as the pre-multi-volume format did: the count occupies what was
        // a reserved zero at header offset 12, and no pairs follow the
        // live-byte vector.
        let cp = sample(9);
        let buf = cp.encode().unwrap();
        assert_eq!(&buf[12..16], &[0u8; 4]);
        let payload_len = HEADER_SIZE + 8 * (3 + 1) + 4 * 3 + 8;
        assert_eq!(
            u64::from_le_bytes(buf[52..60].try_into().unwrap()) as usize,
            payload_len,
            "header length field must not grow for a single volume"
        );
    }

    #[test]
    fn tampered_extra_write_point_is_detected() {
        let mut cp = sample(7);
        cp.extra_write_points = vec![(4, 2)];
        let buf = cp.encode().unwrap();
        let payload_len = HEADER_SIZE + 8 * (3 + 1) + 4 * 3 + 8 + 8;
        let mut bad = buf.clone();
        bad[payload_len - 16] ^= 0x01; // first byte of the (seg, off) pair
        assert!(Checkpoint::decode(&bad).is_err());
    }
}
