//! The `Lfs` file system: state, caching, addressing, and the VFS surface.
//!
//! The write path is the paper's: modifications accumulate in the file
//! cache ([`Lfs`] keeps dirty blocks, inodes, and indirect blocks in
//! memory) and reach disk only through large sequential partial writes
//! built by the flush machinery in `flush.rs`. Reads consult the cache
//! first and otherwise walk inode pointers exactly as Unix FFS would —
//! "once a file's inode has been found, the number of disk I/Os required
//! to read the file is identical in Sprite LFS and Unix FFS" (§3.1).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use blockdev::{BlockDevice, QueueDevice, BLOCK_SIZE};
use vfs::{DirEntry, FileSystem, FileType, FsError, FsResult, Ino, Metadata, StatFs, ROOT_INO};

use crate::config::LfsConfig;
use crate::dir::{self, DirRecord};
use crate::dirlog::{DirLogRecord, DirOp};
use crate::inode::{IndirectBlock, Inode, InodeAttrs};
use crate::inodemap::InodeMap;
use crate::layout::{
    blocks_for_size, classify_block, BlockClass, DiskAddr, IND1_START, IND2_START, MAX_FILE_SIZE,
    NIL_ADDR, PTRS_PER_BLOCK,
};
use crate::stats::LfsStats;
use crate::superblock::Superblock;
use crate::usage::{SegState, UsageTable};

/// Attempts per device operation on the retry paths (1 initial + 4
/// retries). Paired with [`blockdev::FaultPlan`]'s default burst length
/// this lets transient faults clear; persistent faults still surface
/// within a bounded delay.
pub(crate) const IO_ATTEMPTS: u32 = 5;

/// Half-life of the per-inode heat counters, in logical clock ticks
/// (the clock advances once per mutation). A file needs roughly three
/// writes inside a half-life to classify hot; one half-life of silence
/// halves its heat. See [`crate::heat`].
pub(crate) const HEAT_HALF_LIFE: u64 = 128;

/// Whether a device error is worth retrying. Geometry errors are
/// deterministic (a retry cannot fix an out-of-range request); only
/// `Io` errors model conditions that can clear.
pub(crate) fn is_transient(e: &blockdev::BlockError) -> bool {
    matches!(e, blockdev::BlockError::Io(_))
}

/// Exponential backoff between retries: 20 µs, 40 µs, 80 µs, ...
/// Short enough not to matter in tests, present so the policy is honest.
pub(crate) fn backoff(attempt: u32) {
    std::thread::sleep(std::time::Duration::from_micros(20u64 << attempt));
}

/// Sets a cache entry's dirty flag, bumping the matching running count on
/// a clean→dirty transition. Taking the flag and counter as plain `&mut`s
/// lets call sites hold a map entry and the counter (disjoint [`Lfs`]
/// fields) at the same time.
pub(crate) fn set_dirty(flag: &mut bool, count: &mut usize) {
    if !*flag {
        *flag = true;
        *count += 1;
    }
}

/// Issues one gather write ([`BlockDevice::write_run_gather`]) with the
/// same bounded-retry policy as [`Lfs::write_retry`]. A free function over
/// disjoint [`Lfs`] fields rather than a method: the borrowed slices in
/// `bufs` point into the block cache, which a `&mut self` receiver would
/// forbid.
pub(crate) fn gather_write_retry<D: BlockDevice>(
    dev: &mut D,
    stats: &mut LfsStats,
    obs: &crate::obs::FsObs,
    start: u64,
    bufs: &[&[u8]],
    kind: blockdev::WriteKind,
) -> FsResult<()> {
    for attempt in 0..IO_ATTEMPTS {
        match dev.write_run_gather(start, bufs, kind) {
            Ok(()) => return Ok(()),
            Err(e) if is_transient(&e) && attempt + 1 < IO_ATTEMPTS => {
                stats.io_retries += 1;
                let trace = &obs.obs.trace;
                if trace.is_on() {
                    trace.emit(dev.stats().busy_ns, || lfs_obs::TraceEvent::Retry {
                        write: true,
                        attempt: attempt + 1,
                    });
                }
                backoff(attempt);
            }
            Err(e) => {
                if is_transient(&e) {
                    stats.io_giveups += 1;
                    let trace = &obs.obs.trace;
                    if trace.is_on() {
                        trace.emit(dev.stats().busy_ns, || lfs_obs::TraceEvent::Giveup {
                            write: true,
                        });
                    }
                }
                return Err(FsError::device(e));
            }
        }
    }
    unreachable!("retry loop always returns")
}

/// A cached file (or directory) data block.
///
/// The payload is reference-counted so the queued write path can hand the
/// device a zero-copy window onto the cache ([`blockdev::IoBuf`]): a
/// submission clones the `Arc`, and a later in-place mutation of the
/// still-in-flight block copies-on-write via [`Arc::make_mut`] instead of
/// corrupting the queued snapshot. On the synchronous path the count
/// never exceeds one and `make_mut` degenerates to a plain `&mut`.
pub(crate) struct CachedBlock {
    pub(crate) data: Arc<Vec<u8>>,
    pub(crate) dirty: bool,
    pub(crate) lru: u64,
    /// The block's modification time — per *block*, not per file, which
    /// is the refinement §3.6 of the paper says Sprite planned. The
    /// cleaner preserves it across relocations so segment ages and
    /// age-sorting reflect true block ages.
    pub(crate) mtime: u64,
}

impl CachedBlock {
    /// Whether the block is pinned against eviction: its payload `Arc` is
    /// shared with a concurrent reader's published snapshot or an
    /// in-flight queued submission. See [`Lfs::maybe_evict_except`].
    pub(crate) fn pinned(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }
}

/// A cached inode.
pub(crate) struct CachedInode {
    pub(crate) inode: Inode,
    pub(crate) dirty: bool,
}

/// Identifies one indirect block of a file: `Single(k)` is single-indirect
/// block `k` (k = 0 hangs off `inode.indirect`; k ≥ 1 off slot `k-1` of the
/// double-indirect block); `Double` is the double-indirect block itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum IndKey {
    Single(u32),
    Double,
}

/// A cached indirect block together with its current on-disk home.
pub(crate) struct CachedInd {
    pub(crate) blk: IndirectBlock,
    pub(crate) dirty: bool,
    /// Where the block currently lives on disk ([`NIL_ADDR`] if never
    /// written); flush uses this to retire the old copy's live bytes.
    pub(crate) disk_addr: DiskAddr,
}

/// One name in the in-memory directory cache.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DirSlot {
    pub(crate) ino: Ino,
    pub(crate) ftype: FileType,
    /// Directory data block that holds the entry.
    pub(crate) blk: u64,
}

/// The cached view of one directory.
#[derive(Default)]
pub(crate) struct DirCache {
    pub(crate) map: HashMap<String, DirSlot>,
    /// Hint: a block index known to have had free space recently.
    pub(crate) space_hint: u64,
}

/// Sprite LFS over a block device.
///
/// See the crate-level documentation for the overall design, and
/// [`Lfs::format`] / [`Lfs::mount`] for how instances come to be.
pub struct Lfs<D: QueueDevice> {
    pub(crate) dev: D,
    pub(crate) sb: Superblock,
    pub(crate) cfg: LfsConfig,
    /// Mount epoch (stamped into summaries; see `summary.rs`).
    pub(crate) epoch: u32,
    pub(crate) imap: InodeMap,
    pub(crate) usage: UsageTable,
    pub(crate) inodes: HashMap<Ino, CachedInode>,
    /// Running count of dirty entries in `inodes`, maintained at every
    /// flag transition so `needs_flush` never scans the cache.
    pub(crate) dirty_inode_count: usize,
    pub(crate) blocks: HashMap<(Ino, u64), CachedBlock>,
    pub(crate) dirty_blocks: BTreeSet<(Ino, u64)>,
    pub(crate) inds: HashMap<(Ino, IndKey), CachedInd>,
    /// Running count of dirty entries in `inds`; see `dirty_inode_count`.
    pub(crate) dirty_ind_count: usize,
    pub(crate) dcache: HashMap<Ino, DirCache>,
    /// Files with any dirty state (data, indirect, or inode).
    pub(crate) dirty_files: BTreeSet<Ino>,
    /// Directory-op records not yet written to the log.
    pub(crate) dirlog_pending: Vec<DirLogRecord>,
    /// Depth of in-flight namespace operations (see [`Lfs::with_nsop`]).
    /// While non-zero, `checkpoint` degrades to a plain flush.
    pub(crate) nsop_depth: u32,
    /// Log write points, one per (temperature stream, shard) pair:
    /// `write_points[t * nshards + s]` is the `(segment, next free block
    /// offset)` of stream `t`'s log head on shard `s`. Stream 0 is the
    /// hottest; the last stream is the coldest and receives
    /// cleaner-salvaged blocks. With `streams = 1` (the default) this is
    /// one entry per shard and behaves exactly like the per-shard write
    /// point it generalizes; on a single volume it is one entry, the
    /// scalar `cur_seg`/`cur_off` pair of the paper. Always non-empty.
    pub(crate) write_points: Vec<(u32, u32)>,
    /// Number of shards of the device (cached; `write_points.len()` is
    /// `nshards × streams`, so it can no longer serve as the shard
    /// count).
    pub(crate) nshards: usize,
    /// Per-inode update-temperature estimator driving stream routing.
    pub(crate) heat: crate::heat::HeatMap,
    /// Segments cleaned per shard since mount (one entry per write
    /// point). Not part of [`crate::stats::CleanerStats`] — that struct
    /// is `Copy` — but published next to it as `shard.<i>.*` metrics so
    /// an operator can spot a cleaner neglecting one disk.
    pub(crate) cleaned_per_shard: Vec<u64>,
    /// Sequence number of the last partial write.
    pub(crate) write_seq: u64,
    /// Sequence number covered by the last checkpoint.
    pub(crate) checkpoint_seq: u64,
    /// Which checkpoint region the *next* checkpoint goes to.
    pub(crate) next_cr: usize,
    /// Logical clock (incremented per mutation).
    pub(crate) clock: u64,
    pub(crate) lru_tick: u64,
    /// Bytes of dirty data blocks awaiting flush.
    pub(crate) dirty_bytes: u64,
    /// New log bytes since the last checkpoint (drives the
    /// `checkpoint_every_bytes` policy).
    pub(crate) bytes_since_checkpoint: u64,
    /// Live files + directories, excluding the root.
    pub(crate) nfiles: u64,
    /// Re-entrancy guard for the cleaner.
    pub(crate) cleaning: bool,
    /// Set while a checkpoint writes its final metadata: those writes may
    /// use every clean segment, including the cleaner's reserve, because
    /// completing the checkpoint is what makes reserved space reusable.
    pub(crate) settling: bool,
    pub(crate) stats: LfsStats,
    /// Observability handles (tracing + metrics); off by default.
    pub(crate) obs: crate::obs::FsObs,
    /// Reusable serialization pool: synthesized blocks (summaries, inode
    /// groups, map encodes) of each partial-write chunk render here, and
    /// checkpoints encode into the same allocation, instead of a fresh
    /// `Vec` per chunk. Grows to the largest chunk seen and stays.
    pub(crate) scratch: Vec<u8>,
    /// Scratch pool for the *queued* write path: each in-flight chunk's
    /// synthesized blocks render into one `Arc<Vec<u8>>` whose windows are
    /// submitted zero-copy ([`blockdev::IoBuf::Shared`]). A buffer is
    /// reusable once its strong count drops back to one (the submission
    /// completed), so the pool never grows past the ring depth + 1.
    pub(crate) scratch_pool: Vec<Arc<Vec<u8>>>,
    /// The checkpoint sequence each region currently holds on disk
    /// (`None` until this instance writes it). Group commit may skip the
    /// region writes only when *both* regions already record
    /// `write_seq` — otherwise an idle `sync` after `format`'s first
    /// checkpoint would leave the second region unwritten.
    pub(crate) cp_seqs: [Option<u64>; 2],
}

/// Looks `bno` up in a pointer window (see [`Lfs::ptr_window`]).
fn win_lookup(win: &Option<(u64, Vec<DiskAddr>)>, bno: u64) -> Option<DiskAddr> {
    let (start, ptrs) = win.as_ref()?;
    ptrs.get(usize::try_from(bno.checked_sub(*start)?).ok()?)
        .copied()
}

impl<D: QueueDevice> Lfs<D> {
    /// Formats `dev` as a fresh log-structured file system containing only
    /// the root directory, writes both checkpoint regions, and returns the
    /// mounted file system.
    pub fn format(dev: D, cfg: LfsConfig) -> FsResult<Lfs<D>> {
        let sb = Superblock::compute(dev.num_blocks(), cfg.seg_blocks, cfg.max_inodes)
            .ok_or(FsError::InvalidArgument("device too small for geometry"))?;
        // On a sharded device every segment must live on exactly one
        // shard, which requires the striping unit to equal the segment
        // size; and each shard needs at least one segment to host its
        // write point.
        if dev.shard_count() > 1 {
            if dev.stripe_blocks() != Some(cfg.seg_blocks as u64) {
                return Err(FsError::InvalidArgument(
                    "stripe unit must equal the segment size",
                ));
            }
            if (sb.nsegments as usize) < dev.shard_count() {
                return Err(FsError::InvalidArgument(
                    "device too small: fewer segments than shards",
                ));
            }
        }
        // Every (stream, shard) write point needs its own segment.
        let streams = cfg.streams.clamp(1, crate::stats::MAX_STREAMS as u32) as usize;
        if (sb.nsegments as usize) < dev.shard_count().max(1) * streams {
            return Err(FsError::InvalidArgument(
                "device too small: fewer segments than write streams",
            ));
        }
        let mut fs = Lfs::bare(dev, sb, cfg);
        let sb_block = {
            let enc = fs.sb.encode();
            let mut b = [0u8; BLOCK_SIZE];
            b.copy_from_slice(&enc);
            b
        };
        fs.dev
            .write_block(
                crate::layout::SUPERBLOCK_ADDR,
                &sb_block,
                blockdev::WriteKind::Sync,
            )
            .map_err(FsError::device)?;

        // Create the root directory through the normal machinery.
        fs.imap.reserve(ROOT_INO);
        let now = fs.now();
        let root = Inode::new(ROOT_INO, 0, FileType::Directory, now);
        fs.inodes.insert(
            ROOT_INO,
            CachedInode {
                inode: root,
                dirty: true,
            },
        );
        fs.dirty_inode_count += 1;
        fs.dirty_files.insert(ROOT_INO);
        let wp_segs: Vec<u32> = fs.write_points.iter().map(|&(s, _)| s).collect();
        for s in wp_segs {
            fs.usage.set_state(s, SegState::Active);
        }

        // Write the initial state to *both* regions so `read_latest`
        // always has two candidates.
        fs.checkpoint()?;
        fs.checkpoint()?;
        Ok(fs)
    }

    /// Constructs the in-memory state shared by `format` and `mount`.
    pub(crate) fn bare(dev: D, sb: Superblock, cfg: LfsConfig) -> Lfs<D> {
        // One write point per (temperature stream, shard) pair; each
        // cursor starts its log in the lowest-numbered segment of its
        // shard not claimed by a hotter stream. On a homogeneous set
        // this is segment `t * nshards + s` for stream `t` on shard `s`;
        // mount replaces the assignment with the checkpoint's.
        let shards = dev.shard_count().max(1);
        let streams = cfg.streams.clamp(1, crate::stats::MAX_STREAMS as u32) as usize;
        let ncursors = shards * streams;
        let mut write_points = vec![(0u32, 0u32); ncursors];
        let mut next_stream = vec![0usize; shards];
        let mut placed = 0usize;
        let mut g = 0u32;
        while placed < ncursors && (g as u64) < sb.nsegments as u64 {
            let s = dev.shard_of_stripe(g as u64).min(shards - 1);
            if next_stream[s] < streams {
                write_points[next_stream[s] * shards + s] = (g, 0);
                next_stream[s] += 1;
                placed += 1;
            }
            g += 1;
        }
        Lfs {
            dev,
            imap: InodeMap::new(sb.max_inodes),
            usage: UsageTable::new(sb.nsegments),
            sb,
            cfg,
            epoch: 0,
            inodes: HashMap::new(),
            dirty_inode_count: 0,
            blocks: HashMap::new(),
            dirty_blocks: BTreeSet::new(),
            inds: HashMap::new(),
            dirty_ind_count: 0,
            dcache: HashMap::new(),
            dirty_files: BTreeSet::new(),
            dirlog_pending: Vec::new(),
            nsop_depth: 0,
            write_points,
            nshards: shards,
            heat: crate::heat::HeatMap::new(HEAT_HALF_LIFE),
            cleaned_per_shard: vec![0; shards],
            write_seq: 0,
            checkpoint_seq: 0,
            next_cr: 0,
            clock: 0,
            lru_tick: 0,
            dirty_bytes: 0,
            bytes_since_checkpoint: 0,
            nfiles: 0,
            cleaning: false,
            settling: false,
            stats: LfsStats::default(),
            obs: crate::obs::FsObs::default(),
            scratch: Vec::new(),
            scratch_pool: Vec::new(),
            cp_seqs: [None, None],
        }
    }

    /// Writes `buf` at `start`, retrying transient device errors with
    /// exponential backoff.
    ///
    /// Only [`blockdev::BlockError::Io`] is considered transient; geometry
    /// errors (`OutOfRange`, `Misaligned`) are bugs or corruption and fail
    /// immediately. Each absorbed retry bumps [`LfsStats::io_retries`];
    /// exhausting the budget bumps [`LfsStats::io_giveups`] (the
    /// degraded-mode signal) and surfaces the last error as
    /// [`FsError::Device`].
    pub(crate) fn write_retry(
        &mut self,
        start: u64,
        buf: &[u8],
        kind: blockdev::WriteKind,
    ) -> FsResult<()> {
        for attempt in 0..IO_ATTEMPTS {
            match self.dev.write_blocks(start, buf, kind) {
                Ok(()) => return Ok(()),
                Err(e) if is_transient(&e) && attempt + 1 < IO_ATTEMPTS => {
                    self.stats.io_retries += 1;
                    self.emit(|| lfs_obs::TraceEvent::Retry {
                        write: true,
                        attempt: attempt + 1,
                    });
                    backoff(attempt);
                }
                Err(e) => {
                    if is_transient(&e) {
                        self.stats.io_giveups += 1;
                        self.emit(|| lfs_obs::TraceEvent::Giveup { write: true });
                    }
                    return Err(FsError::device(e));
                }
            }
        }
        unreachable!("retry loop always returns")
    }

    /// Reads into `buf` from `start`, retrying transient device errors.
    /// See [`Lfs::write_retry`] for the retry policy.
    pub(crate) fn read_retry(&mut self, start: u64, buf: &mut [u8]) -> FsResult<()> {
        for attempt in 0..IO_ATTEMPTS {
            match self.dev.read_blocks(start, buf) {
                Ok(()) => return Ok(()),
                Err(e) if is_transient(&e) && attempt + 1 < IO_ATTEMPTS => {
                    self.stats.io_retries += 1;
                    self.emit(|| lfs_obs::TraceEvent::Retry {
                        write: false,
                        attempt: attempt + 1,
                    });
                    backoff(attempt);
                }
                Err(e) => {
                    if is_transient(&e) {
                        self.stats.io_giveups += 1;
                        self.emit(|| lfs_obs::TraceEvent::Giveup { write: false });
                    }
                    return Err(FsError::device(e));
                }
            }
        }
        unreachable!("retry loop always returns")
    }

    /// Reads a contiguous run of blocks as *one* device request (see
    /// [`BlockDevice::read_run`] for why this costs exactly the same
    /// simulated time as per-block reads), retrying transient errors.
    /// See [`Lfs::write_retry`] for the retry policy.
    pub(crate) fn read_run_retry(&mut self, start: u64, buf: &mut [u8]) -> FsResult<()> {
        for attempt in 0..IO_ATTEMPTS {
            match self.dev.read_run(start, buf) {
                Ok(()) => return Ok(()),
                Err(e) if is_transient(&e) && attempt + 1 < IO_ATTEMPTS => {
                    self.stats.io_retries += 1;
                    self.emit(|| lfs_obs::TraceEvent::Retry {
                        write: false,
                        attempt: attempt + 1,
                    });
                    backoff(attempt);
                }
                Err(e) => {
                    if is_transient(&e) {
                        self.stats.io_giveups += 1;
                        self.emit(|| lfs_obs::TraceEvent::Giveup { write: false });
                    }
                    return Err(FsError::device(e));
                }
            }
        }
        unreachable!("retry loop always returns")
    }

    /// Folds device-side retry/giveup counts from the submission ring
    /// into [`LfsStats`]. With a queued device the engine owns retries of
    /// transient apply failures (re-issuing from the file system would
    /// reorder the log around later queued submissions); the counts still
    /// belong in the same `io_retries` / `io_giveups` ledger the
    /// synchronous retry paths feed.
    pub(crate) fn absorb_queue_errors(&mut self) {
        let (retries, giveups) = self.dev.take_queue_errors();
        self.stats.io_retries += retries;
        self.stats.io_giveups += giveups;
    }

    /// Returns the underlying device (e.g. to inspect [`blockdev::IoStats`]).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutable access to the underlying device.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Consumes the file system (without syncing) and returns the device.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// File-system statistics (Table 2 / Table 4 inputs).
    pub fn stats(&self) -> &LfsStats {
        &self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &LfsConfig {
        &self.cfg
    }

    /// The superblock geometry.
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// Current logical time.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances the logical clock — workload generators use this to give
    /// data realistic ages for the cost-benefit policy.
    pub fn advance_clock(&mut self, delta: u64) {
        self.clock += delta;
    }

    /// Number of clean (immediately writable) segments.
    pub fn clean_segment_count(&self) -> u32 {
        self.usage.clean_count()
    }

    /// The log write points, one per (temperature stream, shard) pair,
    /// stream-major: entry `t * nshards + s` is stream `t`'s `(segment,
    /// next free block offset)` on shard `s`. A single-volume,
    /// single-stream file system has exactly one.
    pub fn write_points(&self) -> &[(u32, u32)] {
        &self.write_points
    }

    /// Number of shards of the underlying device.
    pub fn shard_count(&self) -> usize {
        self.nshards
    }

    /// Number of temperature streams per shard.
    pub fn stream_count(&self) -> usize {
        self.write_points.len() / self.nshards
    }

    /// Which shard segment `seg` lives on (always 0 on a single
    /// volume). Delegates to the device's stripe mapping, which is
    /// `seg % nshards` on homogeneous sets but skips exhausted shards
    /// on heterogeneous ones.
    pub fn shard_of_seg(&self, seg: u32) -> usize {
        self.dev.shard_of_stripe(seg as u64).min(self.nshards - 1)
    }

    /// The `write_points` index of stream `stream` on shard `shard`.
    pub(crate) fn cursor_index(&self, stream: usize, shard: usize) -> usize {
        stream * self.nshards + shard
    }

    /// The temperature stream that should carry a dirty block of `ino`:
    /// the inode's heat class, for cleaner relocations and foreground
    /// writes alike. Routing survivors by their file's *own* heat (not
    /// blanket-coldest) matters: blocks salvaged from a hot segment are
    /// usually recent and about to die again, and burying them in a cold
    /// segment seeds it with soon-to-be-dead bytes. Genuinely cold
    /// survivors still land cold — an idle file's heat decays to zero.
    pub(crate) fn stream_of_block(&self, ino: Ino, _bno: u64) -> usize {
        let nstreams = self.stream_count();
        if nstreams == 1 {
            return 0;
        }
        self.heat.class(ino, self.clock, nstreams)
    }

    /// Whether `seg` currently holds any shard's write point. Such
    /// segments are off-limits to the cleaner: the log is still growing
    /// into them.
    pub(crate) fn is_write_point_seg(&self, seg: u32) -> bool {
        self.write_points.iter().any(|&(s, _)| s == seg)
    }

    /// Dirty-byte level that triggers an automatic flush.
    /// [`LfsConfig::flush_threshold_bytes`] is sized so one flush fills
    /// one segment; on a multi-volume set a flush that small keeps only
    /// one arm busy while the other shards idle, so the trigger scales
    /// with the number of write points — each flush then carries about
    /// one segment *per shard* and the layout rotation hands every arm a
    /// full segment. Exactly the configured threshold on a single
    /// volume.
    pub(crate) fn flush_trigger_bytes(&self) -> u64 {
        self.cfg.flush_threshold_bytes * self.nshards as u64
    }

    /// Per-segment `last_write` times (the age input to the cost-benefit
    /// policy). With per-block modification times in the summaries, a
    /// segment full of cold blocks keeps its old age even while the
    /// owning files' mtimes advance.
    pub fn segment_ages(&self) -> Vec<u64> {
        self.usage.iter().map(|(_, u)| u.last_write).collect()
    }

    /// Per-segment `(state, utilization)` snapshot — the data behind
    /// Figure 10.
    pub fn segment_snapshot(&self) -> Vec<(SegState, f64)> {
        let seg_bytes = self.cfg.seg_bytes();
        self.usage
            .iter()
            .map(|(_, u)| (u.state, u.utilization(seg_bytes)))
            .collect()
    }

    /// Drops all *clean* cached file data (and cached indirect blocks of
    /// clean files), so subsequent reads exercise the disk. Benchmarks use
    /// this between phases to measure cold-cache read behaviour, the way
    /// the paper's machine (32 MB RAM) could not keep the working set
    /// resident.
    pub fn drop_caches(&mut self) {
        self.blocks.retain(|_, b| b.dirty);
        self.inds.retain(|_, e| e.dirty);
        let dirty: std::collections::HashSet<Ino> = self.dirty_files.iter().copied().collect();
        self.inodes.retain(|ino, c| c.dirty || dirty.contains(ino));
        self.dcache.clear();
    }

    /// Applies a deferred access-time update (see `shared.rs`: lock-free
    /// readers queue atimes and the writer lane drains them before its
    /// next operation). Quiet like [`InodeMap::set_atime_quiet`] — never
    /// dirties anything — and skipped when the file has since been
    /// deleted, so a stale queued atime cannot resurrect a freed entry.
    /// A freshly created inode has no disk address yet (`is_live` is
    /// false until its first flush) but is still allocated — it sits in
    /// the inode cache — and its atime must be applied, or a read of a
    /// new file would lose its access time where the exclusive path
    /// keeps it.
    pub(crate) fn apply_atime_quiet(&mut self, ino: Ino, atime: u64) {
        let allocated = self.imap.get(ino).map(|e| e.is_live()).unwrap_or(false)
            || self.inodes.contains_key(&ino);
        if allocated {
            self.imap.set_atime_quiet(ino, atime);
        }
    }

    /// Advances and returns the logical clock.
    pub(crate) fn now(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    // ----- inode cache -------------------------------------------------

    /// Ensures `ino` is in the inode cache, loading it from the log if
    /// needed.
    pub(crate) fn ensure_inode(&mut self, ino: Ino) -> FsResult<()> {
        if self.inodes.contains_key(&ino) {
            return Ok(());
        }
        let entry = *self.imap.get(ino)?;
        if !entry.is_live() {
            return Err(FsError::InvalidArgument("no such inode"));
        }
        let mut buf = [0u8; BLOCK_SIZE];
        self.dev
            .read_block(entry.addr, &mut buf)
            .map_err(FsError::device)?;
        // Inodes are packed 16 to a block exactly so that one read serves
        // many files; adopt every still-current inode in the block, not
        // just the requested one (a big win for "read files in creation
        // order" workloads — Figure 8's read phase).
        for slot in 0..crate::layout::INODES_PER_BLOCK {
            let off = slot * crate::inode::INODE_DISK_SIZE;
            let Some(inode) = Inode::decode(&buf[off..off + crate::inode::INODE_DISK_SIZE])? else {
                continue;
            };
            let other = inode.ino;
            if self.inodes.contains_key(&other) {
                continue;
            }
            let current = match self.imap.get(other) {
                Ok(e) => e.is_live() && e.addr == entry.addr && e.slot == slot as u8,
                Err(_) => false,
            };
            if current {
                self.inodes.insert(
                    other,
                    CachedInode {
                        inode,
                        dirty: false,
                    },
                );
            }
        }
        if !self.inodes.contains_key(&ino) {
            return Err(FsError::Corrupt(format!(
                "inode {ino}: slot {} of block {} does not hold it",
                entry.slot, entry.addr
            )));
        }
        Ok(())
    }

    /// Returns a copy of the cached inode.
    pub(crate) fn inode_clone(&mut self, ino: Ino) -> FsResult<Inode> {
        self.ensure_inode(ino)?;
        Ok(self.inodes[&ino].inode.clone())
    }

    /// Borrows the cached inode. The hot paths use this instead of
    /// [`Lfs::inode_clone`]: most callers only need one or two fields.
    pub(crate) fn inode_ref(&mut self, ino: Ino) -> FsResult<&Inode> {
        self.ensure_inode(ino)?;
        Ok(&self.inodes[&ino].inode)
    }

    /// Copies out just the scalar attributes — what stat and name
    /// resolution need — without cloning the block-pointer arrays.
    pub(crate) fn inode_attrs(&mut self, ino: Ino) -> FsResult<InodeAttrs> {
        Ok(self.inode_ref(ino)?.attrs())
    }

    /// Mutably borrows the cached inode, marking it dirty. Replaces the
    /// clone-mutate-[`Lfs::put_inode`] dance on paths that always commit
    /// their change; do not use for conditional mutations.
    pub(crate) fn inode_mut(&mut self, ino: Ino) -> FsResult<&mut Inode> {
        self.ensure_inode(ino)?;
        self.dirty_files.insert(ino);
        let c = self.inodes.get_mut(&ino).expect("ensured above");
        set_dirty(&mut c.dirty, &mut self.dirty_inode_count);
        Ok(&mut c.inode)
    }

    /// Stores a modified inode back into the cache and marks it dirty.
    pub(crate) fn put_inode(&mut self, inode: Inode) {
        let ino = inode.ino;
        let old = self
            .inodes
            .insert(inode.ino, CachedInode { inode, dirty: true });
        if !old.is_some_and(|c| c.dirty) {
            self.dirty_inode_count += 1;
        }
        self.dirty_files.insert(ino);
    }

    // ----- indirect blocks ---------------------------------------------

    /// Disk address of the indirect block `key` of `ino`, as recorded in
    /// its parent pointer, or [`NIL_ADDR`].
    fn ind_parent_ptr(&mut self, ino: Ino, key: IndKey) -> FsResult<DiskAddr> {
        let (indirect, dindirect) = {
            let inode = self.inode_ref(ino)?;
            (inode.indirect, inode.dindirect)
        };
        Ok(match key {
            IndKey::Single(0) => indirect,
            IndKey::Double => dindirect,
            IndKey::Single(k) => {
                if dindirect == NIL_ADDR && !self.inds.contains_key(&(ino, IndKey::Double)) {
                    NIL_ADDR
                } else {
                    self.ensure_ind(ino, IndKey::Double, false)?;
                    match self.inds.get(&(ino, IndKey::Double)) {
                        Some(d) => d.blk.ptrs[(k - 1) as usize],
                        None => NIL_ADDR,
                    }
                }
            }
        })
    }

    /// Ensures the indirect block `key` of `ino` is cached. With
    /// `create`, a missing block is materialised empty (it becomes dirty
    /// only when a pointer is stored). Returns whether the block exists.
    pub(crate) fn ensure_ind(&mut self, ino: Ino, key: IndKey, create: bool) -> FsResult<bool> {
        if self.inds.contains_key(&(ino, key)) {
            return Ok(true);
        }
        let addr = self.ind_parent_ptr(ino, key)?;
        if addr == NIL_ADDR {
            if !create {
                return Ok(false);
            }
            self.inds.insert(
                (ino, key),
                CachedInd {
                    blk: IndirectBlock::new(),
                    dirty: false,
                    disk_addr: NIL_ADDR,
                },
            );
            return Ok(true);
        }
        let mut buf = vec![0u8; BLOCK_SIZE];
        self.dev
            .read_blocks(addr, &mut buf)
            .map_err(FsError::device)?;
        self.inds.insert(
            (ino, key),
            CachedInd {
                blk: IndirectBlock::decode(&buf),
                dirty: false,
                disk_addr: addr,
            },
        );
        Ok(true)
    }

    /// Current disk address of file block `bno` of `ino` ([`NIL_ADDR`] for
    /// holes).
    pub(crate) fn block_ptr(&mut self, ino: Ino, bno: u64) -> FsResult<DiskAddr> {
        match classify_block(bno).ok_or(FsError::FileTooLarge)? {
            BlockClass::Direct(i) => Ok(self.inode_ref(ino)?.direct[i]),
            BlockClass::Indirect1(i) => {
                if !self.ensure_ind(ino, IndKey::Single(0), false)? {
                    return Ok(NIL_ADDR);
                }
                Ok(self.inds[&(ino, IndKey::Single(0))].blk.ptrs[i])
            }
            BlockClass::Indirect2(i, j) => {
                let key = IndKey::Single(i as u32 + 1);
                if !self.ensure_ind(ino, key, false)? {
                    return Ok(NIL_ADDR);
                }
                Ok(self.inds[&(ino, key)].blk.ptrs[j])
            }
        }
    }

    /// Stores a new address for file block `bno`, returning the old one.
    ///
    /// Dirties whatever holds the pointer (inode or indirect block); the
    /// caller is responsible for usage-table accounting.
    pub(crate) fn set_block_ptr(
        &mut self,
        ino: Ino,
        bno: u64,
        addr: DiskAddr,
    ) -> FsResult<DiskAddr> {
        match classify_block(bno).ok_or(FsError::FileTooLarge)? {
            BlockClass::Direct(i) => {
                let inode = self.inode_mut(ino)?;
                let old = inode.direct[i];
                inode.direct[i] = addr;
                Ok(old)
            }
            BlockClass::Indirect1(i) => {
                self.ensure_ind(ino, IndKey::Single(0), true)?;
                let e = self.inds.get_mut(&(ino, IndKey::Single(0))).unwrap();
                let old = e.blk.ptrs[i];
                e.blk.ptrs[i] = addr;
                set_dirty(&mut e.dirty, &mut self.dirty_ind_count);
                self.dirty_files.insert(ino);
                Ok(old)
            }
            BlockClass::Indirect2(i, j) => {
                let key = IndKey::Single(i as u32 + 1);
                self.ensure_ind(ino, IndKey::Double, true)?;
                self.ensure_ind(ino, key, true)?;
                // The double-indirect block will need rewriting once the
                // single relocates; mark it conservatively now.
                let d = self.inds.get_mut(&(ino, IndKey::Double)).unwrap();
                set_dirty(&mut d.dirty, &mut self.dirty_ind_count);
                let e = self.inds.get_mut(&(ino, key)).unwrap();
                let old = e.blk.ptrs[j];
                e.blk.ptrs[j] = addr;
                set_dirty(&mut e.dirty, &mut self.dirty_ind_count);
                self.dirty_files.insert(ino);
                Ok(old)
            }
        }
    }

    // ----- data block cache --------------------------------------------

    fn touch_lru(&mut self) -> u64 {
        self.lru_tick += 1;
        self.lru_tick
    }

    /// Ensures file block `bno` of `ino` is cached (reading from disk or
    /// materialising zeros for a hole).
    pub(crate) fn ensure_block(&mut self, ino: Ino, bno: u64) -> FsResult<()> {
        if self.blocks.contains_key(&(ino, bno)) {
            return Ok(());
        }
        let addr = self.block_ptr(ino, bno)?;
        let mut data = vec![0u8; BLOCK_SIZE];
        if addr != NIL_ADDR {
            self.dev
                .read_blocks(addr, &mut data)
                .map_err(FsError::device)?;
        }
        self.insert_fetched(ino, bno, data);
        Ok(())
    }

    /// Inserts one freshly fetched (clean) block, with exactly the cache
    /// bookkeeping [`Lfs::ensure_block`] does: LRU touch, modification
    /// stamp, eviction check.
    fn insert_fetched(&mut self, ino: Ino, bno: u64, data: Vec<u8>) {
        let lru = self.touch_lru();
        let mtime = self.clock;
        self.blocks.insert(
            (ino, bno),
            CachedBlock {
                data: Arc::new(data),
                dirty: false,
                lru,
                mtime,
            },
        );
        self.maybe_evict_except(Some((ino, bno)));
    }

    /// Ensures file block `bno` of `ino` is cached and returns a clone of
    /// its reference-counted payload. The extra `Arc` pins the cache entry
    /// ([`CachedBlock::pinned`]) for as long as the caller holds it, and a
    /// writer that mutates the block meanwhile copies-on-write
    /// (`Arc::make_mut`), so the returned snapshot stays immutable.
    pub(crate) fn block_arc(&mut self, ino: Ino, bno: u64) -> FsResult<Arc<Vec<u8>>> {
        self.ensure_block(ino, bno)?;
        Ok(self
            .blocks
            .get(&(ino, bno))
            .expect("ensure_block keeps its own block resident")
            .data
            .clone())
    }

    /// Ensures file blocks `first..=last` of `ino` are cached, fetching
    /// runs of blocks with *contiguous disk addresses* as single device
    /// requests.
    ///
    /// Exactly equivalent to calling [`Lfs::ensure_block`] on each block
    /// in order: device requests happen in the same order (a pending run
    /// is issued before anything that would itself touch the device — an
    /// indirect-block load — and before skipping a cached block), blocks
    /// enter the cache in the same order with the same LRU ticks, and a
    /// run costs the same simulated time as its blocks read back-to-back
    /// ([`BlockDevice::read_run`]). Only the device's *request count*
    /// differs.
    fn fetch_blocks(&mut self, ino: Ino, first: u64, last: u64) -> FsResult<()> {
        // The run being assembled: (start address, first file block,
        // block count).
        let mut run: Option<(DiskAddr, u64, u64)> = None;
        // Pointer window: one cloned stretch of pointers (the inode's
        // direct array or a cached indirect block), so assembly resolves
        // addresses with an array index per block instead of per-block
        // cache lookups. Purely a lookup cache — loading it never touches
        // the device.
        let mut win: Option<(u64, Vec<DiskAddr>)> = None;
        for bno in first..=last {
            if self.blocks.contains_key(&(ino, bno)) {
                self.fetch_run(ino, &mut run)?;
                continue;
            }
            let addr = match win_lookup(&win, bno) {
                Some(a) => a,
                None => match self.ptr_window(ino, bno)? {
                    Some(w) => {
                        let a = w.1[(bno - w.0) as usize];
                        win = Some(w);
                        a
                    }
                    None => {
                        // Resolving this pointer reads an indirect block;
                        // issue the pending run first so device requests
                        // stay in per-block order.
                        self.fetch_run(ino, &mut run)?;
                        let a = self.block_ptr(ino, bno)?;
                        win = self.ptr_window(ino, bno)?;
                        a
                    }
                },
            };
            if addr == NIL_ADDR {
                // A hole: materialise zeros without a device read.
                self.fetch_run(ino, &mut run)?;
                self.insert_fetched(ino, bno, vec![0u8; BLOCK_SIZE]);
                continue;
            }
            run = match run {
                Some((start, rb, count)) if addr == start + count => Some((start, rb, count + 1)),
                Some(prev) => {
                    let mut prev = Some(prev);
                    self.fetch_run(ino, &mut prev)?;
                    Some((addr, bno, 1))
                }
                None => Some((addr, bno, 1)),
            };
        }
        // Read-ahead: extend the final run through blocks whose addresses
        // are already resolvable from cached state and stay contiguous.
        // Stops at holes, cached blocks, pointers that would need their
        // own device read, and end of file — so with the default window
        // of 0 the fetched block set is identical to the per-block path.
        if self.cfg.read_ahead_blocks > 0 && run.is_some() {
            let file_blocks = blocks_for_size(self.inode_ref(ino)?.size);
            let limit = last.saturating_add(self.cfg.read_ahead_blocks as u64);
            let mut next = last + 1;
            while next < file_blocks && next <= limit {
                let (start, rb, count) = run.expect("checked above");
                if self.blocks.contains_key(&(ino, next)) {
                    break;
                }
                let addr = match win_lookup(&win, next) {
                    Some(a) => Some(a),
                    None => {
                        win = self.ptr_window(ino, next)?;
                        win.as_ref().map(|w| w.1[(next - w.0) as usize])
                    }
                };
                match addr {
                    Some(a) if a != NIL_ADDR && a == start + count => {
                        run = Some((start, rb, count + 1));
                    }
                    _ => break,
                }
                next += 1;
            }
        }
        self.fetch_run(ino, &mut run)
    }

    /// Returns the contiguous stretch of file-block pointers covering
    /// `bno` that is resolvable from cached state alone: `(first file
    /// block of the stretch, the pointer values)`. `None` exactly when an
    /// indirect block would need its own device read first. A stretch
    /// under an absent indirect tree comes back as [`NIL_ADDR`]s, matching
    /// per-block hole semantics.
    fn ptr_window(&mut self, ino: Ino, bno: u64) -> FsResult<Option<(u64, Vec<DiskAddr>)>> {
        match classify_block(bno).ok_or(FsError::FileTooLarge)? {
            BlockClass::Direct(_) => Ok(Some((0, self.inode_ref(ino)?.direct.to_vec()))),
            BlockClass::Indirect1(_) => {
                if let Some(e) = self.inds.get(&(ino, IndKey::Single(0))) {
                    return Ok(Some((IND1_START, e.blk.ptrs.to_vec())));
                }
                if self.inode_ref(ino)?.indirect == NIL_ADDR {
                    return Ok(Some((IND1_START, vec![NIL_ADDR; PTRS_PER_BLOCK])));
                }
                Ok(None)
            }
            BlockClass::Indirect2(i, _) => {
                let win_start = IND2_START + (i * PTRS_PER_BLOCK) as u64;
                let key = IndKey::Single(i as u32 + 1);
                if let Some(e) = self.inds.get(&(ino, key)) {
                    return Ok(Some((win_start, e.blk.ptrs.to_vec())));
                }
                if let Some(d) = self.inds.get(&(ino, IndKey::Double)) {
                    if d.blk.ptrs[i] == NIL_ADDR {
                        return Ok(Some((win_start, vec![NIL_ADDR; PTRS_PER_BLOCK])));
                    }
                    return Ok(None);
                }
                if self.inode_ref(ino)?.dindirect == NIL_ADDR {
                    return Ok(Some((win_start, vec![NIL_ADDR; PTRS_PER_BLOCK])));
                }
                Ok(None)
            }
        }
    }

    /// Issues the pending run (if any) as one device request, scattered
    /// straight into the blocks' final cache buffers (no bounce buffer,
    /// no second copy), and inserts them in file order.
    fn fetch_run(&mut self, ino: Ino, run: &mut Option<(DiskAddr, u64, u64)>) -> FsResult<()> {
        let Some((start, first_bno, count)) = run.take() else {
            return Ok(());
        };
        if count == 1 {
            // Single-block run: skip the scatter-list machinery (this is
            // the common case for small files).
            let mut data = vec![0u8; BLOCK_SIZE];
            self.dev
                .read_run(start, &mut data)
                .map_err(FsError::device)?;
            self.insert_fetched(ino, first_bno, data);
            return Ok(());
        }
        let mut boxes: Vec<Vec<u8>> = (0..count).map(|_| vec![0u8; BLOCK_SIZE]).collect();
        let mut bufs: Vec<&mut [u8]> = boxes.iter_mut().map(|b| &mut b[..]).collect();
        self.dev
            .read_run_scatter(start, &mut bufs)
            .map_err(FsError::device)?;
        for (i, data) in boxes.into_iter().enumerate() {
            self.insert_fetched(ino, first_bno + i as u64, data);
        }
        Ok(())
    }

    /// Marks a cached block dirty, tracking flush bookkeeping and
    /// stamping the block's modification time.
    pub(crate) fn mark_block_dirty(&mut self, ino: Ino, bno: u64) {
        let now = self.clock;
        let b = self.blocks.get_mut(&(ino, bno)).expect("block not cached");
        b.mtime = now;
        if !b.dirty {
            b.dirty = true;
            self.dirty_bytes += BLOCK_SIZE as u64;
            self.dirty_blocks.insert((ino, bno));
        }
        self.dirty_files.insert(ino);
    }

    /// Evicts clean blocks when the cache exceeds its limit, never
    /// evicting `protect`.
    ///
    /// Blocks whose payload `Arc` is shared are *pinned* and never
    /// evicted: a second strong count means a concurrent reader holds a
    /// published snapshot ([`crate::SharedLfs`]'s read cache) or a queued
    /// submission still references the block in flight. Evicting the
    /// entry itself would be data-safe (every holder keeps its own
    /// reference), but dropping it would let an interleaved re-read
    /// install a *second* allocation for the same `(ino, bno)` while the
    /// first is still being served — the divergence the pin guard exists
    /// to prevent, and the reason the running dirty-count invariants
    /// (`needs_flush`'s debug asserts) can be checked against scans at
    /// any interleaving point.
    ///
    /// `protect` is set by [`Lfs::insert_fetched`] so a freshly fetched
    /// block cannot be evicted by its own insertion: when every other
    /// entry is dirty or pinned, the newest block would otherwise be the
    /// only candidate, and callers that fetch-then-access would find the
    /// cache empty under them (panic in the write path, livelock in the
    /// read path).
    fn maybe_evict_except(&mut self, protect: Option<(Ino, u64)>) {
        let limit = (self.cfg.cache_limit_bytes / BLOCK_SIZE as u64) as usize;
        if self.blocks.len() <= limit + limit / 8 {
            return;
        }
        let mut clean: Vec<((Ino, u64), u64)> = self
            .blocks
            .iter()
            .filter(|(&k, b)| !b.dirty && !b.pinned() && Some(k) != protect)
            .map(|(&k, b)| (k, b.lru))
            .collect();
        let excess = self.blocks.len().saturating_sub(limit);
        // Only the `excess` least-recently-used entries are evicted, so an
        // O(n) partition suffices — no need to sort the whole clean set.
        if clean.len() > excess && excess > 0 {
            clean.select_nth_unstable_by_key(excess - 1, |&(_, lru)| lru);
            clean.truncate(excess);
        }
        for (k, _) in clean.into_iter().take(excess) {
            self.blocks.remove(&k);
        }
    }

    /// Asserts that every running count matches a fresh scan of the
    /// caches: the dirty-inode and dirty-indirect populations
    /// (`needs_flush`'s O(1) inputs), the dirty-block set, and the
    /// dirty-byte total. Test-only hook for the eviction/pinning
    /// interleaving proptests; release builds compile it to nothing.
    #[doc(hidden)]
    pub fn assert_running_counts(&self) {
        debug_assert_eq!(
            self.dirty_inode_count,
            self.inodes.values().filter(|c| c.dirty).count(),
            "dirty inode running count diverged from scan"
        );
        debug_assert_eq!(
            self.dirty_ind_count,
            self.inds.values().filter(|c| c.dirty).count(),
            "dirty indirect running count diverged from scan"
        );
        debug_assert_eq!(
            self.dirty_blocks.len(),
            self.blocks.values().filter(|b| b.dirty).count(),
            "dirty block set diverged from scan"
        );
        debug_assert_eq!(
            self.dirty_bytes,
            self.dirty_blocks.len() as u64 * BLOCK_SIZE as u64,
            "dirty byte total diverged from dirty block set"
        );
    }

    /// Drops all cached state for a deleted file.
    pub(crate) fn purge_file(&mut self, ino: Ino) {
        if self.inodes.remove(&ino).is_some_and(|c| c.dirty) {
            self.dirty_inode_count -= 1;
        }
        let dic = &mut self.dirty_ind_count;
        self.inds.retain(|&(i, _), e| {
            if i == ino && e.dirty {
                *dic -= 1;
            }
            i != ino
        });
        let keys: Vec<(Ino, u64)> = self
            .blocks
            .keys()
            .filter(|&&(i, _)| i == ino)
            .copied()
            .collect();
        for k in keys {
            if let Some(b) = self.blocks.remove(&k) {
                if b.dirty {
                    self.dirty_bytes -= BLOCK_SIZE as u64;
                }
            }
            self.dirty_blocks.remove(&k);
        }
        self.dirty_files.remove(&ino);
        self.dcache.remove(&ino);
    }

    // ----- file data I/O -----------------------------------------------

    /// The shared write path (used for regular files and, internally, for
    /// directory content).
    pub(crate) fn write_internal(
        &mut self,
        ino: Ino,
        offset: u64,
        data: &[u8],
        count_app_bytes: bool,
    ) -> FsResult<()> {
        if data.is_empty() {
            return Ok(());
        }
        let end = offset
            .checked_add(data.len() as u64)
            .ok_or(FsError::FileTooLarge)?;
        if end > MAX_FILE_SIZE {
            return Err(FsError::FileTooLarge);
        }
        let old_size = self.inode_ref(ino)?.size;
        let mut pos = 0usize;
        while pos < data.len() {
            // Flush incrementally *before* buffering more: a single huge
            // write must not demand more clean segments at once than the
            // cleaner maintains, and a failing flush must not leave ever
            // more dirty data stranded in the cache.
            if self.dirty_bytes >= self.flush_trigger_bytes() {
                // Keep the inode's size current so a crash mid-write
                // recovers a correct prefix. (Mutating the cached inode in
                // place means there is no pre-flush clone whose pointers
                // could go stale.)
                let m = self.inode_mut(ino)?;
                m.size = m.size.max(offset + pos as u64);
                self.flush()?;
                self.maybe_clean()?;
            }
            let abs = offset + pos as u64;
            let bno = abs / BLOCK_SIZE as u64;
            let off_in = (abs % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - off_in).min(data.len() - pos);
            let full_overwrite = off_in == 0 && n == BLOCK_SIZE;
            if full_overwrite {
                // No read needed: replace or insert the whole block.
                let lru = self.touch_lru();
                let existing = self.blocks.get_mut(&(ino, bno));
                match existing {
                    Some(b) => {
                        Arc::make_mut(&mut b.data).copy_from_slice(&data[pos..pos + n]);
                        b.lru = lru;
                    }
                    None => {
                        let mtime = self.clock;
                        self.blocks.insert(
                            (ino, bno),
                            CachedBlock {
                                data: Arc::new(data[pos..pos + n].to_vec()),
                                dirty: false,
                                lru,
                                mtime,
                            },
                        );
                    }
                }
            } else {
                self.ensure_block(ino, bno)?;
                let b = self.blocks.get_mut(&(ino, bno)).unwrap();
                Arc::make_mut(&mut b.data)[off_in..off_in + n].copy_from_slice(&data[pos..pos + n]);
            }
            self.mark_block_dirty(ino, bno);
            pos += n;
        }
        let now = self.now();
        let m = self.inode_mut(ino)?;
        m.size = old_size.max(end);
        m.mtime = now;
        if count_app_bytes {
            self.stats.app_bytes_written += data.len() as u64;
        }
        self.after_mutation()?;
        Ok(())
    }

    /// The shared read path.
    ///
    /// With [`LfsConfig::coalesced_reads`] (the default) the missing
    /// blocks of the range are fetched up front in contiguous-address
    /// runs; otherwise each block is fetched on its own as the copy loop
    /// reaches it. Both paths return the same bytes, leave the cache in
    /// the same state, and cost the same simulated device time.
    pub(crate) fn read_internal(
        &mut self,
        ino: Ino,
        offset: u64,
        buf: &mut [u8],
    ) -> FsResult<usize> {
        let size = self.inode_ref(ino)?.size;
        if offset >= size {
            return Ok(0);
        }
        let n = buf.len().min((size - offset) as usize);
        if self.cfg.coalesced_reads {
            let first = offset / BLOCK_SIZE as u64;
            let last = (offset + n as u64 - 1) / BLOCK_SIZE as u64;
            self.fetch_blocks(ino, first, last)?;
        }
        let mut pos = 0usize;
        while pos < n {
            let abs = offset + pos as u64;
            let bno = abs / BLOCK_SIZE as u64;
            let off_in = (abs % BLOCK_SIZE as u64) as usize;
            let len = (BLOCK_SIZE - off_in).min(n - pos);
            if let Some(b) = self.blocks.get(&(ino, bno)) {
                buf[pos..pos + len].copy_from_slice(&b.data[off_in..off_in + len]);
                pos += len;
            } else {
                // The per-block path lands here for every miss; the
                // coalesced path only when a cache smaller than the
                // request evicted a block between fetch and copy.
                self.ensure_block(ino, bno)?;
            }
        }
        let now = self.clock;
        self.imap.set_atime_quiet(ino, now);
        Ok(n)
    }

    /// Frees all blocks of `ino` past `new_blocks` file blocks, adjusting
    /// usage accounting and pruning emptied indirect blocks.
    pub(crate) fn free_blocks_from(&mut self, ino: Ino, new_blocks: u64) -> FsResult<()> {
        let old_blocks = blocks_for_size(self.inode_ref(ino)?.size);
        // Dirty blocks can exist beyond the recorded size (a write that
        // buffered data and then failed before updating the size); drop
        // them too, or they leak in the cache forever.
        let zombies: Vec<(Ino, u64)> = self
            .dirty_blocks
            .range((ino, old_blocks.max(new_blocks))..=(ino, u64::MAX))
            .copied()
            .collect();
        for key in zombies {
            if let Some(b) = self.blocks.remove(&key) {
                if b.dirty {
                    self.dirty_bytes -= BLOCK_SIZE as u64;
                }
            }
            self.dirty_blocks.remove(&key);
        }
        for bno in new_blocks..old_blocks {
            // Drop the cached copy first.
            if let Some(b) = self.blocks.remove(&(ino, bno)) {
                if b.dirty {
                    self.dirty_bytes -= BLOCK_SIZE as u64;
                }
            }
            self.dirty_blocks.remove(&(ino, bno));
            let old = match classify_block(bno) {
                Some(BlockClass::Direct(_)) => self.set_block_ptr(ino, bno, NIL_ADDR)?,
                Some(_) => {
                    // Only touch indirect trees that exist.
                    if self.block_ptr(ino, bno)? == NIL_ADDR {
                        NIL_ADDR
                    } else {
                        self.set_block_ptr(ino, bno, NIL_ADDR)?
                    }
                }
                None => NIL_ADDR,
            };
            if old != NIL_ADDR {
                if let Some(seg) = self.sb.seg_of(old) {
                    self.usage.sub_live(seg, BLOCK_SIZE as u32);
                }
            }
        }
        self.prune_indirect(ino)?;
        Ok(())
    }

    /// Releases indirect blocks that no longer hold any pointers.
    fn prune_indirect(&mut self, ino: Ino) -> FsResult<()> {
        let keys: Vec<IndKey> = self
            .inds
            .keys()
            .filter(|&&(i, _)| i == ino)
            .map(|&(_, k)| k)
            .collect();
        let mut freed_single = Vec::new();
        for key in keys {
            if let IndKey::Single(k) = key {
                let e = &self.inds[&(ino, key)];
                if e.blk.is_empty() {
                    let old = e.disk_addr;
                    if self.inds.remove(&(ino, key)).is_some_and(|e| e.dirty) {
                        self.dirty_ind_count -= 1;
                    }
                    if old != NIL_ADDR {
                        if let Some(seg) = self.sb.seg_of(old) {
                            self.usage.sub_live(seg, BLOCK_SIZE as u32);
                        }
                    }
                    freed_single.push(k);
                }
            }
        }
        if !freed_single.is_empty() {
            let mut inode = self.inode_clone(ino)?;
            let mut inode_changed = false;
            for k in &freed_single {
                if *k == 0 {
                    inode.indirect = NIL_ADDR;
                    inode_changed = true;
                } else if self.inds.contains_key(&(ino, IndKey::Double)) {
                    let d = self.inds.get_mut(&(ino, IndKey::Double)).unwrap();
                    d.blk.ptrs[(*k - 1) as usize] = NIL_ADDR;
                    set_dirty(&mut d.dirty, &mut self.dirty_ind_count);
                }
            }
            // Now check whether the double-indirect block emptied out.
            if let Some(d) = self.inds.get(&(ino, IndKey::Double)) {
                if d.blk.is_empty() {
                    let old = d.disk_addr;
                    if self
                        .inds
                        .remove(&(ino, IndKey::Double))
                        .is_some_and(|e| e.dirty)
                    {
                        self.dirty_ind_count -= 1;
                    }
                    if old != NIL_ADDR {
                        if let Some(seg) = self.sb.seg_of(old) {
                            self.usage.sub_live(seg, BLOCK_SIZE as u32);
                        }
                    }
                    inode.dindirect = NIL_ADDR;
                    inode_changed = true;
                }
            }
            if inode_changed {
                self.put_inode(inode);
            } else {
                self.dirty_files.insert(ino);
            }
        }
        Ok(())
    }

    /// Deletes a file whose link count reached zero.
    pub(crate) fn delete_file(&mut self, ino: Ino) -> FsResult<()> {
        self.heat.forget(ino);
        self.free_blocks_from(ino, 0)?;
        // Retire the on-disk inode slot.
        let entry = *self.imap.get(ino)?;
        if entry.is_live() {
            if let Some(seg) = self.sb.seg_of(entry.addr) {
                self.usage
                    .sub_live(seg, crate::inode::INODE_DISK_SIZE as u32);
            }
        }
        self.imap.free(ino);
        self.purge_file(ino);
        // Saturating: during roll-forward replay the counter is still 0
        // (mount recomputes it from the inode map after replay finishes).
        self.nfiles = self.nfiles.saturating_sub(1);
        Ok(())
    }

    // ----- directories ---------------------------------------------------

    /// Loads a directory's entries into the directory cache.
    pub(crate) fn ensure_dcache(&mut self, dirino: Ino) -> FsResult<()> {
        if self.dcache.contains_key(&dirino) {
            return Ok(());
        }
        let attrs = self.inode_attrs(dirino)?;
        if attrs.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        let nblocks = blocks_for_size(attrs.size);
        let mut cache = DirCache::default();
        for blk in 0..nblocks {
            self.ensure_block(dirino, blk)?;
            let records = dir::decode_block(&self.blocks[&(dirino, blk)].data)?;
            for rec in records {
                cache.map.insert(
                    rec.name,
                    DirSlot {
                        ino: rec.ino,
                        ftype: rec.ftype,
                        blk,
                    },
                );
            }
        }
        self.dcache.insert(dirino, cache);
        Ok(())
    }

    /// Looks up `name` in directory `dirino`.
    pub(crate) fn dir_lookup(&mut self, dirino: Ino, name: &str) -> FsResult<Option<DirSlot>> {
        self.ensure_dcache(dirino)?;
        Ok(self.dcache[&dirino].map.get(name).copied())
    }

    /// Reads the records of one directory block from cache.
    fn dir_block_records(&mut self, dirino: Ino, blk: u64) -> FsResult<Vec<DirRecord>> {
        self.ensure_block(dirino, blk)?;
        dir::decode_block(&self.blocks[&(dirino, blk)].data)
    }

    /// Rewrites one directory block with `records`.
    fn dir_block_write(&mut self, dirino: Ino, blk: u64, records: &[DirRecord]) -> FsResult<()> {
        let buf = dir::encode_block(records);
        self.write_internal(dirino, blk * BLOCK_SIZE as u64, &buf, false)
    }

    /// Inserts an entry into a directory.
    ///
    /// The caller must already have checked that the name is free.
    pub(crate) fn dir_insert(
        &mut self,
        dirino: Ino,
        name: &str,
        ino: Ino,
        ftype: FileType,
    ) -> FsResult<()> {
        self.ensure_dcache(dirino)?;
        let nblocks = blocks_for_size(self.inode_ref(dirino)?.size);
        // Built once and moved from block to block — popped back out of a
        // candidate that could not fit it, never cloned.
        let mut pending = Some(DirRecord {
            ino,
            ftype,
            name: name.to_string(),
        });
        let hint = self.dcache[&dirino]
            .space_hint
            .min(nblocks.saturating_sub(1));
        // Try the hint block first, then every block, then append.
        let mut target = None;
        let order = std::iter::once(hint).chain((0..nblocks).filter(|&b| b != hint));
        let candidates: Vec<u64> = if nblocks == 0 {
            vec![]
        } else {
            order.collect()
        };
        for blk in candidates {
            let mut records = self.dir_block_records(dirino, blk)?;
            records.push(pending.take().expect("record is pending"));
            if dir::fits(&records) {
                target = Some((blk, records));
                break;
            }
            pending = records.pop();
        }
        let (blk, records) = match target {
            Some(t) => t,
            None => (nblocks, vec![pending.expect("record is pending")]),
        };
        self.dir_block_write(dirino, blk, &records)?;
        let cache = self.dcache.get_mut(&dirino).unwrap();
        cache
            .map
            .insert(name.to_string(), DirSlot { ino, ftype, blk });
        cache.space_hint = blk;
        Ok(())
    }

    /// Removes an entry from a directory, returning what it referred to.
    pub(crate) fn dir_remove(&mut self, dirino: Ino, name: &str) -> FsResult<DirSlot> {
        self.ensure_dcache(dirino)?;
        let slot = self.dcache[&dirino]
            .map
            .get(name)
            .copied()
            .ok_or(FsError::NotFound)?;
        let mut records = self.dir_block_records(dirino, slot.blk)?;
        records.retain(|r| r.name != name);
        self.dir_block_write(dirino, slot.blk, &records)?;
        let cache = self.dcache.get_mut(&dirino).unwrap();
        cache.map.remove(name);
        cache.space_hint = slot.blk;
        Ok(slot)
    }

    /// All live entries of a directory.
    pub(crate) fn dir_entries(&mut self, dirino: Ino) -> FsResult<Vec<(String, DirSlot)>> {
        self.ensure_dcache(dirino)?;
        let mut out: Vec<(String, DirSlot)> = self.dcache[&dirino]
            .map
            .iter()
            .map(|(n, s)| (n.clone(), *s))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    // ----- path resolution ----------------------------------------------

    /// Resolves a path to an inode number.
    pub(crate) fn resolve(&mut self, path: &str) -> FsResult<Ino> {
        let parts = vfs::path::components(path)?;
        let mut cur = ROOT_INO;
        for part in parts {
            if self.inode_ref(cur)?.ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            cur = self.dir_lookup(cur, part)?.ok_or(FsError::NotFound)?.ino;
        }
        Ok(cur)
    }

    /// Resolves a path to `(parent directory inode, final name)`.
    pub(crate) fn resolve_parent<'p>(&mut self, path: &'p str) -> FsResult<(Ino, &'p str)> {
        let (parent_parts, name) = vfs::path::split_parent(path)?;
        let mut cur = ROOT_INO;
        for part in parent_parts {
            if self.inode_ref(cur)?.ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            cur = self.dir_lookup(cur, part)?.ok_or(FsError::NotFound)?.ino;
        }
        if self.inode_ref(cur)?.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        Ok((cur, name))
    }

    // ----- common post-mutation policy -----------------------------------

    /// Runs `f` as one atomic *namespace operation*.
    ///
    /// Flushes inside `f` are safe: the directory-operation log record is
    /// pushed before the mutations, so roll-forward can finish or undo a
    /// half-applied operation after a crash (§4.2). A *checkpoint*,
    /// however, declares the on-disk state complete and puts the repair
    /// record behind the checkpoint where replay never sees it — so a
    /// checkpoint landing between, say, a rename's entry removal and its
    /// entry insertion would freeze the orphaned intermediate state
    /// forever. While the guard is held, [`Lfs::checkpoint`] degrades to
    /// a plain flush and the cleaner defers segment promotion; the
    /// caller's `after_mutation` (outside the guard) checkpoints normally.
    fn with_nsop<T>(&mut self, f: impl FnOnce(&mut Self) -> FsResult<T>) -> FsResult<T> {
        self.nsop_depth += 1;
        let r = f(self);
        self.nsop_depth -= 1;
        r
    }

    /// Applies the flush / clean / checkpoint policies after a mutation.
    pub(crate) fn after_mutation(&mut self) -> FsResult<()> {
        if self.dirty_bytes >= self.flush_trigger_bytes() {
            self.flush()?;
        }
        if self.cfg.checkpoint_every_bytes > 0
            && self.bytes_since_checkpoint >= self.cfg.checkpoint_every_bytes
        {
            self.checkpoint()?;
        }
        self.maybe_clean()?;
        Ok(())
    }

    /// Creates a file or directory (the shared half of `create`/`mkdir`).
    fn create_node(&mut self, path: &str, ftype: FileType) -> FsResult<Ino> {
        let (parent, name) = self.resolve_parent(path)?;
        if self.dir_lookup(parent, name)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        let ino = self.with_nsop(|fs| {
            let ino = fs.imap.allocate().ok_or(FsError::NoInodes)?;
            let now = fs.now();
            let version = fs.imap.version(ino);
            let inode = Inode::new(ino, version, ftype, now);
            fs.put_inode(inode);
            fs.nfiles += 1;
            fs.dirlog_pending.push(DirLogRecord {
                op: match ftype {
                    FileType::Regular => DirOp::Create,
                    FileType::Directory => DirOp::Mkdir,
                },
                dir: parent,
                name: name.to_string(),
                ino,
                nlink: 1,
                version,
                dir2: 0,
                name2: String::new(),
            });
            fs.dir_insert(parent, name, ino, ftype)?;
            Ok(ino)
        })?;
        self.after_mutation()?;
        Ok(ino)
    }
}

impl<D: QueueDevice> FileSystem for Lfs<D> {
    fn create(&mut self, path: &str) -> FsResult<Ino> {
        self.timed(|o| &o.create, |fs| fs.create_node(path, FileType::Regular))
    }

    fn mkdir(&mut self, path: &str) -> FsResult<Ino> {
        self.create_node(path, FileType::Directory)
    }

    fn lookup(&mut self, path: &str) -> FsResult<Ino> {
        self.resolve(path)
    }

    fn write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<()> {
        self.timed(
            |o| &o.write,
            |fs| {
                if fs.inode_ref(ino)?.ftype == FileType::Directory {
                    return Err(FsError::IsADirectory);
                }
                fs.heat.touch(ino, fs.clock);
                fs.write_internal(ino, offset, data, true)
            },
        )
    }

    fn read(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.timed(
            |o| &o.read,
            |fs| {
                if fs.inode_ref(ino)?.ftype == FileType::Directory {
                    return Err(FsError::IsADirectory);
                }
                fs.read_internal(ino, offset, buf)
            },
        )
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        let attrs = self.inode_attrs(ino)?;
        if attrs.ftype == FileType::Directory {
            return Err(FsError::IsADirectory);
        }
        if size > MAX_FILE_SIZE {
            return Err(FsError::FileTooLarge);
        }
        if size < attrs.size {
            let new_blocks = blocks_for_size(size);
            self.free_blocks_from(ino, new_blocks)?;
            // Zero the tail of the now-final partial block so a later
            // extension reads back zeros.
            if !size.is_multiple_of(BLOCK_SIZE as u64) {
                let bno = size / BLOCK_SIZE as u64;
                if self.block_ptr(ino, bno)? != NIL_ADDR || self.blocks.contains_key(&(ino, bno)) {
                    self.ensure_block(ino, bno)?;
                    let off = (size % BLOCK_SIZE as u64) as usize;
                    let b = self.blocks.get_mut(&(ino, bno)).unwrap();
                    Arc::make_mut(&mut b.data)[off..].fill(0);
                    self.mark_block_dirty(ino, bno);
                }
            }
            if size == 0 {
                // "The version number is incremented whenever the file is
                // deleted or truncated to length zero" (§3.3).
                let v = self.imap.bump_version(ino);
                self.inode_mut(ino)?.version = v;
            }
        }
        let now = self.now();
        self.heat.touch(ino, now);
        let m = self.inode_mut(ino)?;
        m.size = size;
        m.mtime = now;
        self.after_mutation()?;
        Ok(())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.timed(
            |o| &o.unlink,
            |this| {
                let (parent, name) = this.resolve_parent(path)?;
                let slot = this.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
                if slot.ftype == FileType::Directory {
                    return Err(FsError::IsADirectory);
                }
                let mut inode = this.inode_clone(slot.ino)?;
                inode.nlink -= 1;
                let nlink = inode.nlink;
                let version = inode.version;
                this.with_nsop(|fs| {
                    fs.dirlog_pending.push(DirLogRecord {
                        op: DirOp::Unlink,
                        dir: parent,
                        name: name.to_string(),
                        ino: slot.ino,
                        nlink,
                        version,
                        dir2: 0,
                        name2: String::new(),
                    });
                    fs.dir_remove(parent, name)?;
                    if nlink == 0 {
                        fs.delete_file(slot.ino)
                    } else {
                        fs.put_inode(inode);
                        Ok(())
                    }
                })?;
                this.after_mutation()?;
                Ok(())
            },
        )
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let slot = self.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
        if slot.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        if !self.dir_entries(slot.ino)?.is_empty() {
            return Err(FsError::DirectoryNotEmpty);
        }
        let version = self.imap.version(slot.ino);
        self.with_nsop(|fs| {
            fs.dirlog_pending.push(DirLogRecord {
                op: DirOp::Rmdir,
                dir: parent,
                name: name.to_string(),
                ino: slot.ino,
                nlink: 0,
                version,
                dir2: 0,
                name2: String::new(),
            });
            fs.dir_remove(parent, name)?;
            fs.delete_file(slot.ino)
        })?;
        self.after_mutation()?;
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        let (from_parent, from_name) = self.resolve_parent(from)?;
        let src = self
            .dir_lookup(from_parent, from_name)?
            .ok_or(FsError::NotFound)?;
        let (to_parent, to_name) = self.resolve_parent(to)?;
        if let Some(dst) = self.dir_lookup(to_parent, to_name)? {
            if dst.ino == src.ino {
                return Ok(());
            }
            if src.ftype == FileType::Directory || dst.ftype == FileType::Directory {
                return Err(FsError::AlreadyExists);
            }
        }
        self.with_nsop(|fs| {
            if let Some(dst) = fs.dir_lookup(to_parent, to_name)? {
                // Replace a regular-file target: unlink it as part of the
                // atomic rename.
                let mut dst_inode = fs.inode_clone(dst.ino)?;
                dst_inode.nlink -= 1;
                let nlink = dst_inode.nlink;
                let version = dst_inode.version;
                fs.dirlog_pending.push(DirLogRecord {
                    op: DirOp::Unlink,
                    dir: to_parent,
                    name: to_name.to_string(),
                    ino: dst.ino,
                    nlink,
                    version,
                    dir2: 0,
                    name2: String::new(),
                });
                fs.dir_remove(to_parent, to_name)?;
                if nlink == 0 {
                    fs.delete_file(dst.ino)?;
                } else {
                    fs.put_inode(dst_inode);
                }
            }
            let src_inode = fs.inode_clone(src.ino)?;
            fs.dirlog_pending.push(DirLogRecord {
                op: DirOp::Rename,
                dir: from_parent,
                name: from_name.to_string(),
                ino: src.ino,
                nlink: src_inode.nlink,
                version: src_inode.version,
                dir2: to_parent,
                name2: to_name.to_string(),
            });
            fs.dir_remove(from_parent, from_name)?;
            fs.dir_insert(to_parent, to_name, src.ino, src.ftype)
        })?;
        self.after_mutation()?;
        Ok(())
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        let src_ino = self.resolve(existing)?;
        let mut inode = self.inode_clone(src_ino)?;
        if inode.ftype == FileType::Directory {
            return Err(FsError::IsADirectory);
        }
        let (parent, name) = self.resolve_parent(new)?;
        if self.dir_lookup(parent, name)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        inode.nlink += 1;
        let now = self.now();
        inode.ctime = now;
        let nlink = inode.nlink;
        let version = inode.version;
        self.with_nsop(|fs| {
            fs.put_inode(inode);
            fs.dirlog_pending.push(DirLogRecord {
                op: DirOp::Link,
                dir: parent,
                name: name.to_string(),
                ino: src_ino,
                nlink,
                version,
                dir2: 0,
                name2: String::new(),
            });
            fs.dir_insert(parent, name, src_ino, FileType::Regular)
        })?;
        self.after_mutation()?;
        Ok(())
    }

    fn metadata(&mut self, ino: Ino) -> FsResult<Metadata> {
        // Attrs only — stat must not clone the block-pointer arrays.
        let mut m = self.inode_attrs(ino)?.metadata();
        if let Ok(e) = self.imap.get(ino) {
            m.atime = m.atime.max(e.atime);
        }
        Ok(m)
    }

    fn readdir(&mut self, path: &str) -> FsResult<Vec<DirEntry>> {
        let dirino = self.resolve(path)?;
        if self.inode_ref(dirino)?.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        Ok(self
            .dir_entries(dirino)?
            .into_iter()
            .map(|(name, slot)| DirEntry {
                name,
                ino: slot.ino,
                ftype: slot.ftype,
            })
            .collect())
    }

    fn sync(&mut self) -> FsResult<()> {
        self.checkpoint()
    }

    fn statfs(&mut self) -> FsResult<StatFs> {
        let live: u64 = self.usage.iter().map(|(_, u)| u.live_bytes as u64).sum();
        // Include data that is dirty in the cache but not yet on disk.
        let pending = self.dirty_bytes;
        Ok(StatFs {
            total_bytes: self.sb.nsegments as u64 * self.cfg.seg_bytes(),
            live_bytes: live + pending,
            num_files: self.nfiles,
        })
    }
}
