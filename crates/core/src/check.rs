//! Offline consistency checking ("lfsck").
//!
//! Verifies the cross-structure invariants that make a log-structured file
//! system correct:
//!
//! 1. every live inode-map entry resolves to a decodable inode with the
//!    right number in the right slot;
//! 2. no disk block is referenced by two owners;
//! 3. the directory tree is connected: every entry points at a live inode,
//!    every live inode is reachable, and reference counts match entry
//!    counts;
//! 4. the segment usage table's live-byte counts equal a from-scratch
//!    recount, and clean segments hold no live data.
//!
//! Note the contrast with `fsck` for Unix FFS: this check exists for
//! testing and diagnostics, not for crash recovery — recovery needs only
//! the checkpoint and the log tail (§4).

use std::collections::HashMap;

use blockdev::{QueueDevice, BLOCK_SIZE};
use vfs::{FileType, FsResult, Ino, ROOT_INO};

use crate::fs::{IndKey, Lfs};
use crate::inode::INODE_DISK_SIZE;
use crate::layout::{blocks_for_size, DiskAddr, NIL_ADDR};
use crate::usage::SegState;

/// The result of a consistency check.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Human-readable descriptions of every violated invariant.
    pub errors: Vec<String>,
    /// Live files (regular) found.
    pub files: u64,
    /// Live directories found (including the root).
    pub dirs: u64,
    /// Live data blocks counted.
    pub data_blocks: u64,
}

impl CheckReport {
    /// True if no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

impl<D: QueueDevice> Lfs<D> {
    /// Live bytes on disk per block kind — the "Live data" column of
    /// Table 4. Indexed like [`crate::BlockKind::ALL`]; summary and
    /// directory-log blocks are never live, so their entries are zero.
    pub fn live_bytes_by_kind(&mut self) -> FsResult<[u64; 7]> {
        let mut out = [0u64; 7];
        let live: Vec<Ino> = self.imap.live_inos().collect();
        for ino in live {
            out[2] += INODE_DISK_SIZE as u64; // Inode slots.
            let inode = self.inode_clone(ino)?;
            let nblocks = blocks_for_size(inode.size);
            for bno in 0..nblocks {
                if self.block_ptr(ino, bno)? != NIL_ADDR {
                    out[0] += BLOCK_SIZE as u64; // Data.
                }
            }
            if inode.indirect != NIL_ADDR {
                out[1] += BLOCK_SIZE as u64; // Indirect.
            }
            if inode.dindirect != NIL_ADDR {
                out[1] += BLOCK_SIZE as u64;
                self.ensure_ind(ino, IndKey::Double, false)?;
                let children = self.inds[&(ino, IndKey::Double)]
                    .blk
                    .ptrs
                    .iter()
                    .filter(|&&p| p != NIL_ADDR)
                    .count();
                out[1] += children as u64 * BLOCK_SIZE as u64;
            }
        }
        for i in 0..self.imap.num_blocks() {
            if self.imap.block_addr(i) != NIL_ADDR {
                out[3] += BLOCK_SIZE as u64; // Inode map.
            }
        }
        for i in 0..self.usage.num_blocks() {
            if self.usage.block_addr(i) != NIL_ADDR {
                out[4] += BLOCK_SIZE as u64; // Usage table.
            }
        }
        Ok(out)
    }

    /// Runs the full consistency check.
    ///
    /// Intended to be called on a quiescent file system (after
    /// [`vfs::FileSystem::sync`]); dirty in-memory state that has not
    /// reached the log yet would legitimately disagree with the disk.
    pub fn check(&mut self) -> FsResult<CheckReport> {
        let mut report = CheckReport::default();
        let seg_bytes = self.cfg.seg_bytes();
        let mut recount: Vec<u64> = vec![0; self.sb.nsegments as usize];
        let mut owners: HashMap<DiskAddr, String> = HashMap::new();

        let live: Vec<Ino> = self.imap.live_inos().collect();
        let claim = |addr: DiskAddr,
                     bytes: u64,
                     what: String,
                     sb: &crate::superblock::Superblock,
                     report: &mut CheckReport,
                     recount: &mut Vec<u64>,
                     owners: &mut HashMap<DiskAddr, String>,
                     whole_block: bool| {
            match sb.seg_of(addr) {
                Some(seg) => recount[seg as usize] += bytes,
                None => report
                    .errors
                    .push(format!("{what}: address {addr} outside the log")),
            }
            if whole_block {
                if let Some(prev) = owners.insert(addr, what.clone()) {
                    report
                        .errors
                        .push(format!("block {addr} owned by both {prev} and {what}"));
                }
            }
        };

        // Pass 1: inodes and block pointers.
        for &ino in &live {
            let entry = *self.imap.get(ino)?;
            let inode = match self.inode_clone(ino) {
                Ok(i) => i,
                Err(e) => {
                    report.errors.push(format!("inode {ino}: unreadable: {e}"));
                    continue;
                }
            };
            claim(
                entry.addr,
                INODE_DISK_SIZE as u64,
                format!("inode {ino} (slot {})", entry.slot),
                &self.sb,
                &mut report,
                &mut recount,
                &mut owners,
                false, // Inode blocks are legitimately shared by 16 slots.
            );
            match inode.ftype {
                FileType::Regular => report.files += 1,
                FileType::Directory => report.dirs += 1,
            }
            let nblocks = blocks_for_size(inode.size);
            for bno in 0..nblocks {
                let addr = self.block_ptr(ino, bno)?;
                if addr == NIL_ADDR {
                    continue; // A hole.
                }
                report.data_blocks += 1;
                claim(
                    addr,
                    BLOCK_SIZE as u64,
                    format!("data {ino}:{bno}"),
                    &self.sb,
                    &mut report,
                    &mut recount,
                    &mut owners,
                    true,
                );
            }
            // Indirect blocks.
            if inode.indirect != NIL_ADDR {
                claim(
                    inode.indirect,
                    BLOCK_SIZE as u64,
                    format!("ind1 {ino}"),
                    &self.sb,
                    &mut report,
                    &mut recount,
                    &mut owners,
                    true,
                );
            }
            if inode.dindirect != NIL_ADDR {
                claim(
                    inode.dindirect,
                    BLOCK_SIZE as u64,
                    format!("ind2 {ino}"),
                    &self.sb,
                    &mut report,
                    &mut recount,
                    &mut owners,
                    true,
                );
                self.ensure_ind(ino, IndKey::Double, false)?;
                let children: Vec<DiskAddr> = self.inds[&(ino, IndKey::Double)]
                    .blk
                    .ptrs
                    .iter()
                    .copied()
                    .filter(|&p| p != NIL_ADDR)
                    .collect();
                for (k, child) in children.into_iter().enumerate() {
                    claim(
                        child,
                        BLOCK_SIZE as u64,
                        format!("ind1 {ino}#{}", k + 1),
                        &self.sb,
                        &mut report,
                        &mut recount,
                        &mut owners,
                        true,
                    );
                }
            }
        }

        // Shared inode blocks count their occupied slots; add each live
        // inode block once for ownership purposes.
        // (Slot-level double-use shows up as two imap entries pointing at
        // the same (addr, slot); detect that directly.)
        let mut slot_owners: HashMap<(DiskAddr, u8), Ino> = HashMap::new();
        for &ino in &live {
            let e = *self.imap.get(ino)?;
            if let Some(prev) = slot_owners.insert((e.addr, e.slot), ino) {
                report.errors.push(format!(
                    "inode slot ({}, {}) shared by inodes {prev} and {ino}",
                    e.addr, e.slot
                ));
            }
        }

        // The inode map and usage table blocks are live data too.
        for i in 0..self.imap.num_blocks() {
            let addr = self.imap.block_addr(i);
            if addr != NIL_ADDR {
                claim(
                    addr,
                    BLOCK_SIZE as u64,
                    format!("imap block {i}"),
                    &self.sb,
                    &mut report,
                    &mut recount,
                    &mut owners,
                    true,
                );
            }
        }
        for i in 0..self.usage.num_blocks() {
            let addr = self.usage.block_addr(i);
            if addr != NIL_ADDR {
                claim(
                    addr,
                    BLOCK_SIZE as u64,
                    format!("usage block {i}"),
                    &self.sb,
                    &mut report,
                    &mut recount,
                    &mut owners,
                    true,
                );
            }
        }

        // Pass 2: directory tree connectivity and reference counts.
        let mut refcount: HashMap<Ino, u32> = HashMap::new();
        let mut stack = vec![ROOT_INO];
        let mut visited: HashMap<Ino, bool> = HashMap::new();
        visited.insert(ROOT_INO, true);
        while let Some(dir) = stack.pop() {
            let entries = match self.dir_entries(dir) {
                Ok(e) => e,
                Err(e) => {
                    report
                        .errors
                        .push(format!("directory {dir}: unreadable: {e}"));
                    continue;
                }
            };
            for (name, slot) in entries {
                let live_entry = self
                    .imap
                    .get(slot.ino)
                    .map(|e| e.is_live())
                    .unwrap_or(false);
                if !live_entry {
                    report.errors.push(format!(
                        "entry {dir}:{name} points at dead inode {}",
                        slot.ino
                    ));
                    continue;
                }
                let inode = self.inode_clone(slot.ino)?;
                if inode.ftype != slot.ftype {
                    report.errors.push(format!(
                        "entry {dir}:{name}: cached type disagrees with inode {}",
                        slot.ino
                    ));
                }
                *refcount.entry(slot.ino).or_insert(0) += 1;
                if inode.ftype == FileType::Directory {
                    if visited.insert(slot.ino, true).is_some() {
                        report.errors.push(format!(
                            "directory {} reachable twice (entry {dir}:{name})",
                            slot.ino
                        ));
                    } else {
                        stack.push(slot.ino);
                    }
                }
            }
        }
        for &ino in &live {
            if ino == ROOT_INO {
                continue;
            }
            let inode = self.inode_clone(ino)?;
            let refs = refcount.get(&ino).copied().unwrap_or(0);
            if inode.ftype == FileType::Directory && !visited.contains_key(&ino) {
                report
                    .errors
                    .push(format!("directory {ino} unreachable from the root"));
            }
            if inode.ftype == FileType::Regular && refs == 0 {
                report
                    .errors
                    .push(format!("file {ino} has no directory entry"));
            }
            if inode.nlink != refs {
                report.errors.push(format!(
                    "inode {ino}: nlink {} but {refs} directory entries",
                    inode.nlink
                ));
            }
        }

        // Pass 3: segment usage accounting.
        for (seg, usage) in self.usage.iter() {
            let counted = recount[seg as usize];
            if usage.live_bytes as u64 != counted {
                report.errors.push(format!(
                    "segment {seg}: usage table says {} live bytes, recount says {counted}",
                    usage.live_bytes
                ));
            }
            if usage.state == SegState::Clean && counted != 0 {
                report
                    .errors
                    .push(format!("clean segment {seg} holds {counted} live bytes"));
            }
            let _ = seg_bytes;
        }

        Ok(report)
    }
}
