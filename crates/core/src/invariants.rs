//! The recovery invariants, in one place.
//!
//! Everything this reproduction promises about a crash is checkable, and
//! before this module the checks were scattered: `lfsck` ran the
//! structural pass, the torture binary re-implemented byte-exactness and
//! prefix-of-history content rules, and each crash-sweep test carried its
//! own mount-and-check boilerplate. A new invariant had to be added in
//! three places or it silently guarded only one harness.
//!
//! [`InvariantSuite`] is the single predicate they all share now. Applied
//! to a post-crash image it asserts, in order:
//!
//! 1. **Recoverability** — [`Lfs::mount`] succeeds. This exercises the
//!    checkpoint checksum gating and the older-checkpoint-region fallback
//!    (§4.1): a torn newest region must be rejected by checksum and the
//!    alternate used, and roll-forward (§4.2) must replay only
//!    checksum-valid summary chunks.
//! 2. **Structural consistency** — the offline checker ([`Lfs::check`])
//!    reports clean: inode map, inodes, block pointers, directory tree,
//!    nlink counts, and the segment usage table all agree, and no block
//!    has two owners.
//! 3. **Namespace/content atomicity** — files registered with
//!    [`InvariantSuite::expect_exact`] are byte-exact (checkpointed data
//!    may never regress), and files registered with
//!    [`InvariantSuite::expect_history`] hold a *prefix of some version
//!    they legally held* (crash atomicity is per flush, not per
//!    operation: a large write may recover as a correct prefix, and a cut
//!    between a create's dirlog chunk and its data chunk leaves the file
//!    empty — those are the only legal intermediate states; a dirlog
//!    replay must never manufacture mixed or never-written content).
//!    Absent is always legal for history files: the crash may predate the
//!    create or postdate the unlink.
//!
//! The same suite runs under the `torture` sampler, under the exhaustive
//! `crash_explore` model checker, in the `crash_sweeps` tests, and (with
//! no content expectations) inside `lfsck`.

use std::fmt;

use blockdev::QueueDevice;
use vfs::{FileSystem, FsError};

use crate::check::CheckReport;
use crate::config::LfsConfig;
use crate::fs::Lfs;

/// Declarative expectations about a (possibly crashed) file-system image,
/// checked by [`InvariantSuite::verify_device`].
#[derive(Clone, Debug, Default)]
pub struct InvariantSuite {
    /// Files that must survive byte-exact (written before the crash
    /// window opened, e.g. before `checkpoint_baseline`).
    exact: Vec<(String, Vec<u8>)>,
    /// Files written inside the crash window: every content version the
    /// path has ever held, oldest first. Legal post-crash states are
    /// absent, empty, or a prefix of any version.
    history: Vec<(String, Vec<Vec<u8>>)>,
}

impl InvariantSuite {
    /// A suite with no content expectations (recoverability and
    /// structural consistency only).
    pub fn new() -> InvariantSuite {
        InvariantSuite::default()
    }

    /// Requires `path` to exist with exactly `content` after recovery.
    pub fn expect_exact(&mut self, path: impl Into<String>, content: Vec<u8>) {
        self.exact.push((path.into(), content));
    }

    /// Requires `path` to be absent, empty, or a prefix of one of
    /// `versions` after recovery.
    pub fn expect_history(&mut self, path: impl Into<String>, versions: Vec<Vec<u8>>) {
        self.history.push((path.into(), versions));
    }

    /// Appends one more legal version to `path`'s history (creating the
    /// entry if needed) — the incremental form the torture workload uses
    /// as it issues writes.
    pub fn push_version(&mut self, path: &str, content: Vec<u8>) {
        if let Some((_, versions)) = self.history.iter_mut().find(|(p, _)| p == path) {
            versions.push(content);
        } else {
            self.history.push((path.to_string(), vec![content]));
        }
    }

    /// Registered history versions for `path`, if any.
    pub fn versions(&self, path: &str) -> Option<&[Vec<u8>]> {
        self.history
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, v)| v.as_slice())
    }

    /// Mounts `dev` and asserts the full suite. On a successful mount the
    /// file system is returned alongside the report so callers can add
    /// scenario-specific assertions.
    pub fn verify_device<D: QueueDevice>(
        &self,
        dev: D,
        cfg: LfsConfig,
    ) -> (InvariantReport, Option<Lfs<D>>) {
        self.verify_device_obs(dev, cfg, None)
    }

    /// [`InvariantSuite::verify_device`] with an observability registry
    /// attached to the mount (recovery traces and latency histograms
    /// accumulate there).
    pub fn verify_device_obs<D: QueueDevice>(
        &self,
        dev: D,
        cfg: LfsConfig,
        obs: Option<lfs_obs::Obs>,
    ) -> (InvariantReport, Option<Lfs<D>>) {
        let mut report = InvariantReport::default();
        let mounted = match obs {
            Some(obs) => Lfs::mount_with_obs(dev, cfg, obs),
            None => Lfs::mount(dev, cfg),
        };
        let mut fs = match mounted {
            Ok(fs) => fs,
            Err(e) => {
                report.mount_error = Some(e.to_string());
                return (report, None);
            }
        };
        self.verify_mounted_into(&mut fs, &mut report);
        (report, Some(fs))
    }

    /// Asserts the structural and content invariants on an
    /// already-mounted file system (the recoverability step is assumed —
    /// `fs` exists). This is the entry point `lfsck` uses.
    pub fn verify_mounted<D: QueueDevice>(&self, fs: &mut Lfs<D>) -> InvariantReport {
        let mut report = InvariantReport::default();
        self.verify_mounted_into(fs, &mut report);
        report
    }

    fn verify_mounted_into<D: QueueDevice>(&self, fs: &mut Lfs<D>, report: &mut InvariantReport) {
        match fs.check() {
            Ok(check) => {
                for e in &check.errors {
                    report.violations.push(format!("structural: {e}"));
                }
                report.check = Some(check);
            }
            Err(e) => report.check_error = Some(e.to_string()),
        }
        for (path, content) in &self.exact {
            match read_file(fs, path) {
                Ok(Some(data)) if &data == content => {}
                Ok(Some(data)) => report.violations.push(format!(
                    "content: {path} corrupted ({} bytes, expected {})",
                    data.len(),
                    content.len()
                )),
                Ok(None) => report.violations.push(format!(
                    "content: {path} lost (expected {} bytes)",
                    content.len()
                )),
                Err(e) => report
                    .violations
                    .push(format!("content: {path} unreadable: {e}")),
            }
        }
        for (path, versions) in &self.history {
            match read_file(fs, path) {
                Ok(Some(data)) => {
                    let known = data.is_empty() || versions.iter().any(|v| v.starts_with(&data));
                    if !known {
                        report.violations.push(format!(
                            "content: {path} holds a never-written state ({} bytes, {} known versions)",
                            data.len(),
                            versions.len()
                        ));
                    }
                }
                Ok(None) => {} // absent is always legal inside the window
                Err(e) => report
                    .violations
                    .push(format!("content: {path} unreadable: {e}")),
            }
        }
    }
}

/// `Ok(None)` if the path does not exist; errors other than `NotFound`
/// surface to the caller.
fn read_file<D: QueueDevice>(fs: &mut Lfs<D>, path: &str) -> Result<Option<Vec<u8>>, FsError> {
    match fs.lookup(path) {
        Ok(ino) => fs.read_to_vec(ino).map(Some),
        Err(FsError::NotFound) => Ok(None),
        Err(e) => Err(e),
    }
}

/// The outcome of one [`InvariantSuite`] application.
#[derive(Debug, Default)]
pub struct InvariantReport {
    /// The mount failed (recoverability violated). Nothing else ran.
    pub mount_error: Option<String>,
    /// The structural checker aborted with an I/O or decode error.
    pub check_error: Option<String>,
    /// The structural checker's report, when it ran.
    pub check: Option<CheckReport>,
    /// Structural and content violations, human-readable.
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// True when every invariant held.
    pub fn is_ok(&self) -> bool {
        self.mount_error.is_none() && self.check_error.is_none() && self.violations.is_empty()
    }

    /// All failures flattened into printable lines.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(e) = &self.mount_error {
            out.push(format!("mount failed: {e}"));
        }
        if let Some(e) = &self.check_error {
            out.push(format!("check aborted: {e}"));
        }
        out.extend(self.violations.iter().cloned());
        out
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return write!(f, "all invariants hold");
        }
        let failures = self.failures();
        for (i, line) in failures.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::MemDisk;

    fn fresh() -> Lfs<MemDisk> {
        Lfs::format(MemDisk::new(2048), LfsConfig::small()).unwrap()
    }

    #[test]
    fn clean_fs_passes_empty_suite() {
        let mut fs = fresh();
        fs.write_file("/a", b"hello").unwrap();
        fs.sync().unwrap();
        let dev = fs.into_device();
        let suite = InvariantSuite::new();
        let (report, fs) = suite.verify_device(dev, LfsConfig::small());
        assert!(report.is_ok(), "{report}");
        assert!(fs.is_some());
        assert!(report.check.unwrap().is_clean());
    }

    #[test]
    fn exact_expectations_catch_loss_and_corruption() {
        let mut fs = fresh();
        fs.write_file("/keep", b"precious").unwrap();
        fs.sync().unwrap();
        let dev = fs.into_device();

        let mut suite = InvariantSuite::new();
        suite.expect_exact("/keep", b"precious".to_vec());
        suite.expect_exact("/gone", b"never written".to_vec());
        let (report, _) = suite.verify_device(dev, LfsConfig::small());
        assert!(!report.is_ok());
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("/gone"), "{report}");
    }

    #[test]
    fn history_accepts_absent_empty_and_prefixes_only() {
        let mut fs = fresh();
        fs.write_file("/h", b"version-two").unwrap();
        fs.sync().unwrap();
        let dev = fs.into_device();

        let mut suite = InvariantSuite::new();
        suite.push_version("/h", b"version-one!".to_vec());
        suite.push_version("/h", b"version-two".to_vec());
        suite.expect_history("/never-created", vec![b"x".to_vec()]);
        assert_eq!(suite.versions("/h").unwrap().len(), 2);
        let (report, _) = suite.verify_device(dev, LfsConfig::small());
        assert!(report.is_ok(), "{report}");

        // A never-written content is a violation.
        let mut fs = fresh();
        fs.write_file("/h", b"rogue bytes").unwrap();
        fs.sync().unwrap();
        let dev = fs.into_device();
        let mut suite = InvariantSuite::new();
        suite.expect_history("/h", vec![b"version-one!".to_vec()]);
        let (report, _) = suite.verify_device(dev, LfsConfig::small());
        assert!(!report.is_ok());
        assert!(report.violations[0].contains("never-written"), "{report}");
    }

    #[test]
    fn garbage_image_reports_mount_error_not_panic() {
        let suite = InvariantSuite::new();
        let (report, fs) = suite.verify_device(MemDisk::new(64), LfsConfig::small());
        assert!(report.mount_error.is_some());
        assert!(fs.is_none());
        assert!(!report.is_ok());
        assert!(report.failures()[0].contains("mount failed"));
    }
}
