//! Run-time statistics: log-bandwidth accounting per block type (Table 4),
//! cleaning statistics and write cost (Table 2), and operation counters.

/// The kind of a block written to the log — the row labels of Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// File data blocks.
    Data,
    /// Single- and double-indirect blocks.
    Indirect,
    /// Blocks of packed inodes.
    Inode,
    /// Inode-map blocks.
    Imap,
    /// Segment-usage-table blocks.
    Usage,
    /// Segment summary blocks.
    Summary,
    /// Directory-operation-log blocks.
    DirLog,
}

impl BlockKind {
    /// All kinds, in Table 4 row order.
    pub const ALL: [BlockKind; 7] = [
        BlockKind::Data,
        BlockKind::Indirect,
        BlockKind::Inode,
        BlockKind::Imap,
        BlockKind::Usage,
        BlockKind::Summary,
        BlockKind::DirLog,
    ];

    /// Human-readable row label.
    pub fn label(self) -> &'static str {
        match self {
            BlockKind::Data => "Data blocks",
            BlockKind::Indirect => "Indirect blocks",
            BlockKind::Inode => "Inode blocks",
            BlockKind::Imap => "Inode map",
            BlockKind::Usage => "Seg usage map",
            BlockKind::Summary => "Summary blocks",
            BlockKind::DirLog => "Dir op log",
        }
    }

    fn index(self) -> usize {
        match self {
            BlockKind::Data => 0,
            BlockKind::Indirect => 1,
            BlockKind::Inode => 2,
            BlockKind::Imap => 3,
            BlockKind::Usage => 4,
            BlockKind::Summary => 5,
            BlockKind::DirLog => 6,
        }
    }
}

/// Upper bound on temperature-keyed write streams per shard (hot, warm,
/// cold, plus one spare class). Sizes the fixed per-stream counter
/// arrays so [`LfsStats`] stays `Copy`.
pub const MAX_STREAMS: usize = 4;

/// Statistics of the segment cleaner (the inputs to Table 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct CleanerStats {
    /// Segments cleaned in total.
    pub segments_cleaned: u64,
    /// Of those, segments that were entirely empty (reused without any
    /// copying — and, per formula (1), without even being read).
    pub segments_empty: u64,
    /// Sum of the utilizations of the *non-empty* cleaned segments (for
    /// the "Avg" column of Table 2).
    pub utilization_sum: f64,
    /// Bytes read from disk by the cleaner.
    pub bytes_read: u64,
    /// Live bytes written back by the cleaner.
    pub bytes_written: u64,
    /// Number of cleaning passes.
    pub passes: u64,
    /// Histogram of the utilizations at which non-empty segments were
    /// cleaned, in ten deciles (`[0,0.1)`, `[0.1,0.2)`, …, `[0.9,1.0]`).
    /// The adaptive policy's pacing reads the same shape; `lfstop`
    /// renders it as the utilization-at-clean panel.
    pub util_deciles: [u64; 10],
}

impl CleanerStats {
    /// Fraction of cleaned segments that were empty.
    pub fn empty_fraction(&self) -> f64 {
        if self.segments_cleaned == 0 {
            return 0.0;
        }
        self.segments_empty as f64 / self.segments_cleaned as f64
    }

    /// Records one non-empty segment cleaned at utilization `u` into the
    /// decile histogram.
    pub fn record_clean_utilization(&mut self, u: f64) {
        let decile = ((u * 10.0) as usize).min(9);
        self.util_deciles[decile] += 1;
    }

    /// Mean utilization of the non-empty segments cleaned (`u` in
    /// Table 2).
    pub fn avg_nonempty_utilization(&self) -> f64 {
        let nonempty = self.segments_cleaned - self.segments_empty;
        if nonempty == 0 {
            return 0.0;
        }
        self.utilization_sum / nonempty as f64
    }
}

/// Aggregate statistics for one [`crate::Lfs`] instance.
#[derive(Clone, Copy, Debug, Default)]
pub struct LfsStats {
    /// Bytes appended to the log, per block kind, by normal operation
    /// (not by the cleaner).
    log_bytes: [u64; 7],
    /// Bytes appended to the log by the cleaner, per block kind.
    cleaner_log_bytes: [u64; 7],
    /// Bytes appended to the log per temperature stream (chunk payloads
    /// plus their summaries, attributed to the stream whose write point
    /// carried them). All traffic lands in stream 0 when `streams = 1`.
    stream_bytes: [u64; MAX_STREAMS],
    /// Cleaner statistics.
    pub cleaner: CleanerStats,
    /// Checkpoints performed.
    pub checkpoints: u64,
    /// `sync` calls satisfied by group commit: nothing had reached the
    /// log since the last checkpoint and both regions already recorded
    /// it, so the call amortized into the checkpoint already on disk
    /// instead of writing its own.
    pub group_commits: u64,
    /// Partial writes (flushes) performed.
    pub partial_writes: u64,
    /// Bytes of new file data accepted from applications.
    pub app_bytes_written: u64,
    /// Host-side bytes memcpy'd into write buffers while serializing
    /// partial writes. With gather writes only synthesized blocks
    /// (summaries, inode groups, map encodes) are rendered; data and
    /// directory-log blocks go to the device as borrowed slices, so this
    /// counter is the direct measure of what the zero-copy path saves.
    pub flush_copy_bytes: u64,
    /// Transient device errors absorbed by retrying.
    pub io_retries: u64,
    /// Device operations abandoned after the retry budget was exhausted.
    /// Any non-zero value means the file system is running degraded: an
    /// error was surfaced to the caller instead of silently absorbed.
    pub io_giveups: u64,
}

impl LfsStats {
    /// True when at least one device operation exhausted its retry budget
    /// (the degraded-mode signal of the fault-injection experiments).
    pub fn degraded(&self) -> bool {
        self.io_giveups > 0
    }

    /// Records `bytes` of kind `kind` appended to the log.
    pub fn add_log_bytes(&mut self, kind: BlockKind, bytes: u64, by_cleaner: bool) {
        if by_cleaner {
            self.cleaner_log_bytes[kind.index()] += bytes;
        } else {
            self.log_bytes[kind.index()] += bytes;
        }
    }

    /// Records `bytes` carried by temperature stream `stream`.
    pub fn add_stream_bytes(&mut self, stream: usize, bytes: u64) {
        self.stream_bytes[stream.min(MAX_STREAMS - 1)] += bytes;
    }

    /// Bytes carried by temperature stream `stream` so far.
    pub fn stream_bytes(&self, stream: usize) -> u64 {
        self.stream_bytes[stream.min(MAX_STREAMS - 1)]
    }

    /// Bytes of `kind` written to the log (including cleaner rewrites).
    pub fn log_bytes(&self, kind: BlockKind) -> u64 {
        self.log_bytes[kind.index()] + self.cleaner_log_bytes[kind.index()]
    }

    /// Bytes of `kind` appended by normal operation only.
    pub fn log_bytes_new(&self, kind: BlockKind) -> u64 {
        self.log_bytes[kind.index()]
    }

    /// Bytes of `kind` appended by the cleaner only.
    pub fn log_bytes_cleaner(&self, kind: BlockKind) -> u64 {
        self.cleaner_log_bytes[kind.index()]
    }

    /// Total bytes appended to the log.
    pub fn total_log_bytes(&self) -> u64 {
        BlockKind::ALL.iter().map(|&k| self.log_bytes(k)).sum()
    }

    /// Share of log bandwidth consumed by `kind` — the "Log bandwidth"
    /// column of Table 4.
    pub fn log_bandwidth_share(&self, kind: BlockKind) -> f64 {
        let total = self.total_log_bytes();
        if total == 0 {
            return 0.0;
        }
        self.log_bytes(kind) as f64 / total as f64
    }

    /// Bytes appended to the log by normal operation (the "new data" of
    /// the write-cost formula).
    pub fn new_log_bytes(&self) -> u64 {
        self.log_bytes.iter().sum()
    }

    /// Bytes moved by the cleaner (its log appends).
    pub fn cleaner_written_bytes(&self) -> u64 {
        self.cleaner_log_bytes.iter().sum()
    }

    /// The long-term write cost: total bytes moved to and from the disk
    /// per byte of new data written (§3.4's formula generalised to
    /// measured traffic, as used for Table 2):
    ///
    /// `(new + cleaner reads + cleaner writes) / new`.
    pub fn write_cost(&self) -> f64 {
        let new = self.new_log_bytes();
        if new == 0 {
            return 1.0;
        }
        (new + self.cleaner.bytes_read + self.cleaner_written_bytes()) as f64 / new as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_share_sums_to_one() {
        let mut s = LfsStats::default();
        s.add_log_bytes(BlockKind::Data, 800, false);
        s.add_log_bytes(BlockKind::Inode, 100, false);
        s.add_log_bytes(BlockKind::Summary, 100, true);
        let total: f64 = BlockKind::ALL
            .iter()
            .map(|&k| s.log_bandwidth_share(k))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((s.log_bandwidth_share(BlockKind::Data) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn write_cost_of_clean_run_is_one() {
        let mut s = LfsStats::default();
        s.add_log_bytes(BlockKind::Data, 1000, false);
        assert!((s.write_cost() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn write_cost_counts_cleaner_traffic() {
        let mut s = LfsStats::default();
        s.add_log_bytes(BlockKind::Data, 1000, false);
        s.cleaner.bytes_read = 500;
        s.add_log_bytes(BlockKind::Data, 250, true);
        // (1000 + 500 + 250) / 1000.
        assert!((s.write_cost() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn cleaner_stats_fractions() {
        let c = CleanerStats {
            segments_cleaned: 10,
            segments_empty: 6,
            utilization_sum: 0.8,
            ..CleanerStats::default()
        };
        assert!((c.empty_fraction() - 0.6).abs() < 1e-12);
        assert!((c.avg_nonempty_utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = LfsStats::default();
        assert_eq!(s.write_cost(), 1.0);
        assert_eq!(s.log_bandwidth_share(BlockKind::Data), 0.0);
        assert_eq!(CleanerStats::default().empty_fraction(), 0.0);
        assert_eq!(CleanerStats::default().avg_nonempty_utilization(), 0.0);
    }

    #[test]
    fn labels_cover_all_kinds() {
        for k in BlockKind::ALL {
            assert!(!k.label().is_empty());
        }
    }
}
