//! Typestate encoding of the write-ordering protocol.
//!
//! Recovery (§4) is sound only if the log reaches the disk in a specific
//! order: a partial write's summary block is sealed over the checksums of
//! every block it covers *before* the chunk goes to the device, every
//! chunk is fenced to stable storage *before* a checkpoint region claims
//! to cover it, and the region itself is written payload-first,
//! header-last. PR 6's submission ring widened the set of reorderable
//! in-flight writes, so the protocol is now encoded in the type system
//! the way SquirrelFS does with its Soup-inspired typestate pattern: each
//! protocol stage is a zero-sized token type, every token has exactly one
//! forward transition, and the operations with crash-ordering
//! consequences demand the token that proves their preconditions ran.
//! A mis-ordered write path is not a bug to hunt with the model checker —
//! it does not compile.
//!
//! The stages, in legal order:
//!
//! 1. [`Flush<DataStaged>`] — a flush chunk's blocks are chosen and their
//!    per-block content checksums computed ([`Flush::stage`]).
//! 2. [`Flush<SummarySealed>`] — the summary block covering exactly those
//!    checksums has been rendered ([`Flush::seal_summary`]); only now may
//!    the chunk be handed to the device.
//! 3. [`Flush<DataWritten>`] — the chunk (summary + blocks, one gather
//!    request) has been issued ([`Flush::submitted`]).
//! 4. [`CheckpointReady`] — an ordering barrier
//!    ([`blockdev::QueueDevice::fence`]) has drained every in-flight log
//!    write ([`Flush::fence`]). This token is the *only* way to reach
//!    [`crate::checkpoint::Checkpoint::write_ordered`], and it is
//!    consumed by it: one fence authorizes one checkpoint region write.
//!
//! Every token is zero-sized, `!Clone`, and constructible only at the
//! chain's entry point, so the protocol costs nothing at runtime and the
//! compiler rejects the reorderings the crash model checker would
//! otherwise have to search for. The orderings that must not compile are
//! pinned below as `compile_fail` doctests.
//!
//! # Examples
//!
//! The legal chain, end to end:
//!
//! ```
//! use blockdev::MemDisk;
//! use lfs_core::checkpoint::Checkpoint;
//! use lfs_core::layout::CR0_ADDR;
//! use lfs_core::ordering::Flush;
//!
//! let mut dev = MemDisk::new(256);
//! // ... stage a chunk's blocks and checksums ...
//! let staged = Flush::stage();
//! // ... render the summary block over those checksums ...
//! let sealed = staged.seal_summary();
//! // ... issue the chunk (summary + blocks) to the device ...
//! let written = sealed.submitted();
//! // Barrier: all log writes durable before the region claims them.
//! let ready = written.fence(&mut dev).unwrap();
//! let cp = Checkpoint {
//!     epoch: 1, seq: 1, timestamp: 0, cur_seg: 0, cur_off: 1,
//!     extra_write_points: vec![],
//!     imap_addrs: vec![], usage_addrs: vec![], live_bytes: vec![], heat: vec![],
//! };
//! cp.write_ordered(&mut dev, CR0_ADDR, ready).unwrap();
//! assert_eq!(Checkpoint::read_from(&mut dev, CR0_ADDR).unwrap(), cp);
//! ```
//!
//! Fencing before the summary is sealed does not compile — there is no
//! ordering barrier a chunk without a summary could meaningfully pass:
//!
//! ```compile_fail
//! use blockdev::MemDisk;
//! use lfs_core::ordering::Flush;
//!
//! let mut dev = MemDisk::new(256);
//! let staged = Flush::stage();
//! let _ = staged.fence(&mut dev); // ERROR: no `fence` on Flush<DataStaged>
//! ```
//!
//! Submitting a chunk whose summary has not been sealed does not compile
//! (the summary must be rendered over the final checksums first):
//!
//! ```compile_fail
//! use lfs_core::ordering::Flush;
//!
//! let staged = Flush::stage();
//! let _ = staged.submitted(); // ERROR: no `submitted` on Flush<DataStaged>
//! ```
//!
//! Writing a checkpoint region from an unfenced flush does not compile —
//! a submitted-but-not-drained log could still reorder around the region:
//!
//! ```compile_fail
//! use blockdev::MemDisk;
//! use lfs_core::checkpoint::Checkpoint;
//! use lfs_core::layout::CR0_ADDR;
//! use lfs_core::ordering::Flush;
//!
//! let mut dev = MemDisk::new(256);
//! let written = Flush::stage().seal_summary().submitted();
//! let cp = Checkpoint {
//!     epoch: 1, seq: 1, timestamp: 0, cur_seg: 0, cur_off: 1,
//!     extra_write_points: vec![],
//!     imap_addrs: vec![], usage_addrs: vec![], live_bytes: vec![], heat: vec![],
//! };
//! // ERROR: expected `CheckpointReady`, found `Flush<DataWritten>`
//! cp.write_ordered(&mut dev, CR0_ADDR, written).unwrap();
//! ```
//!
//! One fence cannot authorize two checkpoint writes — the token moves:
//!
//! ```compile_fail
//! use blockdev::MemDisk;
//! use lfs_core::checkpoint::Checkpoint;
//! use lfs_core::layout::{CR0_ADDR, CR1_ADDR};
//! use lfs_core::ordering::Flush;
//!
//! let mut dev = MemDisk::new(256);
//! let ready = Flush::stage().seal_summary().submitted().fence(&mut dev).unwrap();
//! let cp = Checkpoint {
//!     epoch: 1, seq: 1, timestamp: 0, cur_seg: 0, cur_off: 1,
//!     extra_write_points: vec![],
//!     imap_addrs: vec![], usage_addrs: vec![], live_bytes: vec![], heat: vec![],
//! };
//! cp.write_ordered(&mut dev, CR0_ADDR, ready).unwrap();
//! cp.write_ordered(&mut dev, CR1_ADDR, ready).unwrap(); // ERROR: use of moved value
//! ```
//!
//! And a `CheckpointReady` cannot be minted out of thin air:
//!
//! ```compile_fail
//! use lfs_core::ordering::CheckpointReady;
//!
//! let _ = CheckpointReady { _sealed: () }; // ERROR: field is private
//! ```

use std::marker::PhantomData;

use blockdev::QueueDevice;

/// Stage marker: the chunk's blocks are chosen and their content
/// checksums computed, but no summary covers them yet.
pub struct DataStaged {
    _sealed: (),
}

/// Stage marker: the summary block has been rendered over the staged
/// checksums; the chunk is complete and may go to the device.
pub struct SummarySealed {
    _sealed: (),
}

/// Stage marker: the sealed chunk has been issued (possibly still in
/// flight on a submission ring).
pub struct DataWritten {
    _sealed: (),
}

/// A zero-sized witness that the flush protocol has reached stage `S`.
///
/// There is no way to construct one except [`Flush::stage`], and each
/// transition consumes its input, so a value of type `Flush<S>` is proof
/// that every earlier stage ran, in order, exactly once. See the module
/// docs for the protocol.
#[must_use = "a flush token carries the ordering proof — drop it and the protocol chain is broken"]
pub struct Flush<S> {
    _stage: PhantomData<S>,
}

impl Flush<DataStaged> {
    /// Enters the protocol: a chunk's blocks are staged and their
    /// per-block checksums computed.
    #[allow(clippy::new_without_default)]
    pub fn stage() -> Flush<DataStaged> {
        Flush {
            _stage: PhantomData,
        }
    }

    /// The summary block covering the staged checksums has been rendered.
    /// Only after this may the chunk be handed to the device.
    pub fn seal_summary(self) -> Flush<SummarySealed> {
        Flush {
            _stage: PhantomData,
        }
    }
}

impl Flush<SummarySealed> {
    /// The sealed chunk (summary first, then its blocks, one gather
    /// request) has been issued to the device.
    pub fn submitted(self) -> Flush<DataWritten> {
        Flush {
            _stage: PhantomData,
        }
    }
}

impl Flush<DataWritten> {
    /// A flush with nothing to write: the log already covers the cache,
    /// so the (vacuous) protocol is trivially satisfied. Crate-internal —
    /// external users must come through [`Flush::stage`].
    pub(crate) fn idle() -> Flush<DataWritten> {
        Flush {
            _stage: PhantomData,
        }
    }

    /// Issues the ordering barrier: every issued log write is applied and
    /// the device is idle before this returns. The resulting
    /// [`CheckpointReady`] is the only key to
    /// [`crate::checkpoint::Checkpoint::write_ordered`].
    pub fn fence<D: QueueDevice>(self, dev: &mut D) -> blockdev::Result<CheckpointReady> {
        dev.fence()?;
        Ok(CheckpointReady { _sealed: () })
    }
}

/// Witness that an ordering barrier has drained every issued log write.
///
/// Produced only by [`Flush::fence`] and consumed by
/// [`crate::checkpoint::Checkpoint::write_ordered`]: one fence, one
/// checkpoint region write.
#[must_use = "a fence that authorizes no checkpoint write is a lost ordering edge"]
pub struct CheckpointReady {
    _sealed: (),
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tokens must stay zero-sized — the whole protocol erases at
    /// runtime.
    #[test]
    fn tokens_are_zero_cost() {
        assert_eq!(std::mem::size_of::<Flush<DataStaged>>(), 0);
        assert_eq!(std::mem::size_of::<Flush<SummarySealed>>(), 0);
        assert_eq!(std::mem::size_of::<Flush<DataWritten>>(), 0);
        assert_eq!(std::mem::size_of::<CheckpointReady>(), 0);
    }

    #[test]
    fn legal_chain_reaches_checkpoint_ready() {
        let mut dev = blockdev::MemDisk::new(8);
        let ready = Flush::stage()
            .seal_summary()
            .submitted()
            .fence(&mut dev)
            .unwrap();
        let _ = ready;
    }
}
