//! On-disk layout constants and address types.
//!
//! The disk is laid out as:
//!
//! ```text
//! block 0            superblock                      (fixed)
//! blocks 1..1+CR     checkpoint region A             (fixed)
//! blocks 1+CR..1+2CR checkpoint region B             (fixed)
//! remainder          segments 0..nsegments           (the log)
//! ```
//!
//! Everything except the superblock and the two checkpoint regions lives in
//! the log, exactly as in Table 1 of the paper. There is no bitmap and no
//! free list.

use blockdev::BLOCK_SIZE;

/// A disk block address.
pub type DiskAddr = u64;

/// The "no address" sentinel (an unwritten or freed pointer).
pub const NIL_ADDR: DiskAddr = u64::MAX;

/// Number of blocks reserved for each checkpoint region.
pub const CR_BLOCKS: u64 = 32;

/// Disk block of the superblock.
pub const SUPERBLOCK_ADDR: DiskAddr = 0;

/// Disk block where checkpoint region A starts.
pub const CR0_ADDR: DiskAddr = 1;

/// Disk block where checkpoint region B starts.
pub const CR1_ADDR: DiskAddr = CR0_ADDR + CR_BLOCKS;

/// First block available for segments.
pub const SEGMENTS_START: DiskAddr = CR1_ADDR + CR_BLOCKS;

/// Direct block pointers per inode (as in Unix FFS and the paper: the
/// inode holds "the disk addresses of the first ten blocks").
pub const NUM_DIRECT: usize = 10;

/// Block-address pointers per indirect block.
pub const PTRS_PER_BLOCK: usize = BLOCK_SIZE / 8;

/// Inodes packed into one inode block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / crate::inode::INODE_DISK_SIZE;

/// First file block covered by the single-indirect tree.
pub const IND1_START: u64 = NUM_DIRECT as u64;

/// First file block covered by the double-indirect tree.
pub const IND2_START: u64 = IND1_START + PTRS_PER_BLOCK as u64;

/// One past the largest addressable file block.
pub const MAX_FILE_BLOCKS: u64 = IND2_START + (PTRS_PER_BLOCK * PTRS_PER_BLOCK) as u64;

/// Maximum file size in bytes.
pub const MAX_FILE_SIZE: u64 = MAX_FILE_BLOCKS * BLOCK_SIZE as u64;

/// Where a file block's address is stored.
///
/// Computed by [`classify_block`]; this is the indexing scheme of
/// Section 3.1 (inode → direct pointers, single-indirect block,
/// double-indirect tree).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockClass {
    /// `direct[i]` in the inode.
    Direct(usize),
    /// Slot `i` of the single-indirect block (`inode.indirect`).
    Indirect1(usize),
    /// Slot `j` of single-indirect block `i` hanging off the
    /// double-indirect block (`inode.dindirect[i][j]`).
    Indirect2(usize, usize),
}

/// Maps a file block number to its pointer location.
///
/// Returns `None` if `bno` exceeds [`MAX_FILE_BLOCKS`].
pub fn classify_block(bno: u64) -> Option<BlockClass> {
    if bno < IND1_START {
        Some(BlockClass::Direct(bno as usize))
    } else if bno < IND2_START {
        Some(BlockClass::Indirect1((bno - IND1_START) as usize))
    } else if bno < MAX_FILE_BLOCKS {
        let off = bno - IND2_START;
        Some(BlockClass::Indirect2(
            (off / PTRS_PER_BLOCK as u64) as usize,
            (off % PTRS_PER_BLOCK as u64) as usize,
        ))
    } else {
        None
    }
}

/// Number of file blocks needed to hold `size` bytes.
pub fn blocks_for_size(size: u64) -> u64 {
    size.div_ceil(BLOCK_SIZE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_blocks_classify_direct() {
        assert_eq!(classify_block(0), Some(BlockClass::Direct(0)));
        assert_eq!(classify_block(9), Some(BlockClass::Direct(9)));
    }

    #[test]
    fn indirect_boundaries_are_exact() {
        assert_eq!(classify_block(10), Some(BlockClass::Indirect1(0)));
        assert_eq!(
            classify_block(IND2_START - 1),
            Some(BlockClass::Indirect1(PTRS_PER_BLOCK - 1))
        );
        assert_eq!(
            classify_block(IND2_START),
            Some(BlockClass::Indirect2(0, 0))
        );
        assert_eq!(
            classify_block(IND2_START + PTRS_PER_BLOCK as u64),
            Some(BlockClass::Indirect2(1, 0))
        );
    }

    #[test]
    fn max_file_block_is_rejected() {
        assert_eq!(classify_block(MAX_FILE_BLOCKS), None);
        assert!(classify_block(MAX_FILE_BLOCKS - 1).is_some());
    }

    #[test]
    fn max_file_size_exceeds_one_gigabyte() {
        // 10 direct + 512 indirect + 512*512 double-indirect 4 KB blocks.
        const { assert!(MAX_FILE_SIZE > 1 << 30) };
    }

    #[test]
    fn blocks_for_size_rounds_up() {
        assert_eq!(blocks_for_size(0), 0);
        assert_eq!(blocks_for_size(1), 1);
        assert_eq!(blocks_for_size(BLOCK_SIZE as u64), 1);
        assert_eq!(blocks_for_size(BLOCK_SIZE as u64 + 1), 2);
    }

    #[test]
    fn fixed_regions_do_not_overlap() {
        const { assert!(CR0_ADDR > SUPERBLOCK_ADDR) };
        assert_eq!(CR1_ADDR, CR0_ADDR + CR_BLOCKS);
        assert_eq!(SEGMENTS_START, CR1_ADDR + CR_BLOCKS);
    }

    #[test]
    fn sixteen_inodes_per_block() {
        assert_eq!(INODES_PER_BLOCK, 16);
        assert_eq!(PTRS_PER_BLOCK, 512);
    }
}
