//! Per-inode update-temperature estimation.
//!
//! The paper's cost-benefit policy separates hot and cold data only
//! *after* the fact, by how segments age. Lomet & Luo observe that most
//! of the cleaning cost disappears if data is separated by update
//! temperature *at write time*; this module supplies the temperature
//! signal: an exponentially-decaying write counter per inode, advanced
//! on the file system's logical clock.
//!
//! The estimator is deliberately integer-only: heat is a Q16
//! fixed-point value, each write adds `1.0`, and elapsed time decays it
//! by one binary order of magnitude per half-life. No floats, no wall
//! clock, no randomness — the same operation sequence always yields the
//! same routing, which is what lets `streams = 1` stay bit-identical
//! and multi-stream runs stay reproducible.

use std::collections::BTreeMap;

use vfs::Ino;

/// One write's worth of heat (Q16 fixed point: 1.0).
const ONE: u64 = 1 << 16;

/// Heat at or above this is "hot": roughly three writes within the last
/// half-life.
const HOT: u64 = 3 * ONE;

/// Heat at or above this (but below [`HOT`]) is "warm": about one
/// recent write.
const WARM: u64 = ONE;

/// Entry-count bound; reaching it triggers a sweep of fully-decayed
/// entries so the map tracks live temperature, not history.
const SWEEP_LEN: usize = 8192;

#[derive(Clone, Copy, Debug)]
struct Heat {
    /// Q16 decayed write counter.
    q: u64,
    /// Logical-clock time of the last touch (decay anchor).
    last: u64,
}

impl Heat {
    fn decayed(self, now: u64, half_life: u64) -> u64 {
        let elapsed = now.saturating_sub(self.last);
        let shift = elapsed / half_life.max(1);
        if shift >= 48 {
            0
        } else {
            self.q >> shift
        }
    }
}

/// The per-inode heat map. See the module docs for the model.
#[derive(Clone, Debug)]
pub struct HeatMap {
    half_life: u64,
    entries: BTreeMap<Ino, Heat>,
}

impl HeatMap {
    /// Creates a heat map whose counters halve every `half_life` logical
    /// clock ticks.
    pub fn new(half_life: u64) -> HeatMap {
        HeatMap {
            half_life: half_life.max(1),
            entries: BTreeMap::new(),
        }
    }

    /// Records one write to `ino` at logical time `now`.
    pub fn touch(&mut self, ino: Ino, now: u64) {
        if !self.entries.contains_key(&ino) && self.entries.len() >= SWEEP_LEN {
            let hl = self.half_life;
            self.entries.retain(|_, h| h.decayed(now, hl) > 0);
        }
        let e = self.entries.entry(ino).or_insert(Heat { q: 0, last: now });
        e.q = e.decayed(now, self.half_life).saturating_add(ONE);
        e.last = now;
    }

    /// Drops `ino`'s history (the file was unlinked).
    pub fn forget(&mut self, ino: Ino) {
        self.entries.remove(&ino);
    }

    /// Current decayed heat of `ino`, Q16.
    pub fn heat(&self, ino: Ino, now: u64) -> u64 {
        self.entries
            .get(&ino)
            .map_or(0, |h| h.decayed(now, self.half_life))
    }

    /// Temperature class of `ino` among `nstreams` streams: 0 is
    /// hottest, `nstreams - 1` coldest. Data never seen before is cold —
    /// the first write carries no evidence of re-writing.
    pub fn class(&self, ino: Ino, now: u64, nstreams: usize) -> usize {
        if nstreams <= 1 {
            return 0;
        }
        let q = self.heat(ino, now);
        let class = if q >= HOT {
            0
        } else if q >= WARM {
            1
        } else {
            2
        };
        class.min(nstreams - 1)
    }

    /// Serializes the hottest entries (decayed to `now`, zero entries
    /// dropped, at most `cap`) as `(ino, q)` pairs for the checkpoint.
    /// Heat is a hint, so truncation only costs placement quality.
    pub fn snapshot(&self, now: u64, cap: usize) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = self
            .entries
            .iter()
            .filter_map(|(&ino, h)| {
                let q = h.decayed(now, self.half_life);
                if q == 0 {
                    None
                } else {
                    Some((ino, q.min(u32::MAX as u64) as u32))
                }
            })
            .collect();
        // Hottest first; ties to the lower inode for determinism.
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(cap);
        v
    }

    /// Restores a snapshot taken at logical time `then`.
    pub fn restore(&mut self, entries: &[(u32, u32)], then: u64) {
        self.entries.clear();
        for &(ino, q) in entries {
            self.entries.insert(
                ino as Ino,
                Heat {
                    q: q as u64,
                    last: then,
                },
            );
        }
    }

    /// Number of tracked inodes (for tests and metrics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no inode has recorded heat.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_writes_become_hot() {
        let mut h = HeatMap::new(100);
        for t in 0..4 {
            h.touch(7, t);
        }
        assert_eq!(h.class(7, 4, 3), 0, "four quick writes must be hot");
    }

    #[test]
    fn heat_decays_to_cold() {
        let mut h = HeatMap::new(10);
        for t in 0..4 {
            h.touch(7, t);
        }
        assert_eq!(h.class(7, 4, 3), 0);
        // Five half-lives later the counter has lost 97% of its value.
        assert_eq!(h.class(7, 4 + 50, 3), 2);
    }

    #[test]
    fn unseen_inodes_are_cold() {
        let h = HeatMap::new(10);
        assert_eq!(h.class(42, 1000, 3), 2);
        assert_eq!(h.class(42, 1000, 2), 1);
        assert_eq!(h.class(42, 1000, 1), 0);
    }

    #[test]
    fn two_stream_split_merges_warm_into_cold() {
        let mut h = HeatMap::new(100);
        h.touch(1, 0); // warm: one write
        for t in 0..5 {
            h.touch(2, t);
        }
        assert_eq!(h.class(2, 5, 2), 0, "hot stays hot");
        assert_eq!(h.class(1, 5, 2), 1, "warm folds into cold");
    }

    #[test]
    fn snapshot_roundtrip_preserves_classes() {
        let mut h = HeatMap::new(100);
        for t in 0..6 {
            h.touch(3, t);
        }
        h.touch(9, 5);
        let snap = h.snapshot(6, 512);
        assert_eq!(snap[0].0, 3, "hottest first");
        let mut back = HeatMap::new(100);
        back.restore(&snap, 6);
        assert_eq!(back.class(3, 6, 3), h.class(3, 6, 3));
        assert_eq!(back.class(9, 6, 3), h.class(9, 6, 3));
    }

    #[test]
    fn snapshot_caps_and_drops_zeroes() {
        let mut h = HeatMap::new(1);
        for ino in 0..20 {
            h.touch(ino, 0);
        }
        // All heat fully decayed: nothing worth persisting.
        assert!(h.snapshot(1_000, 512).is_empty());
        for ino in 0..20 {
            h.touch(ino, 2_000);
        }
        assert_eq!(h.snapshot(2_000, 5).len(), 5);
    }

    #[test]
    fn forget_removes_history() {
        let mut h = HeatMap::new(100);
        for t in 0..5 {
            h.touch(4, t);
        }
        h.forget(4);
        assert_eq!(h.heat(4, 5), 0);
    }
}
