//! Mount and crash recovery: checkpoints plus roll-forward (§4).
//!
//! Mount reads both checkpoint regions and initialises the in-memory state
//! from the valid one with the newest sequence number. With roll-forward
//! enabled, the log tail written after that checkpoint is then scanned:
//! new inodes found in summaries are adopted into the inode map (which
//! automatically incorporates their data blocks), segment utilizations are
//! adjusted for the overwrites and deletions the tail implies, and the
//! directory-operation log is replayed to restore consistency between
//! directory entries and inodes — completing half-done operations or
//! undoing the unfinishable ones (a create whose inode never reached the
//! log). Without roll-forward, the tail is simply discarded, which is how
//! the production Sprite systems ran.
//!
//! Nothing in this module trusts bytes read from the device: checkpoint
//! regions, segment summaries, inode blocks, and directory-log records are
//! all validated (checksums plus geometry) before use, and any hostile
//! byte sequence surfaces as [`FsError::Corrupt`] rather than a panic. A
//! newest checkpoint region that checksums but describes impossible state
//! is *skipped* — mount falls back to the older region, the behaviour the
//! alternating-region design of §4.1 exists to provide.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;

use blockdev::{QueueDevice, BLOCK_SIZE};
use vfs::{FileSystem, FsError, FsResult, Ino};

use crate::checkpoint::Checkpoint;
use crate::config::LfsConfig;
use crate::dirlog::{self, DirLogRecord, DirOp};
use crate::fs::Lfs;
use crate::inode::{IndirectBlock, Inode, INODE_DISK_SIZE};
use crate::layout::{DiskAddr, NIL_ADDR, SUPERBLOCK_ADDR};
use crate::summary::{EntryKind, Summary};
use crate::superblock::Superblock;
use crate::usage::SegState;

impl<D: QueueDevice> Lfs<D> {
    /// Mounts an existing file system, recovering from a crash if the log
    /// extends past the last checkpoint.
    ///
    /// Checkpoint regions are tried newest-first: if the newest valid
    /// region describes impossible state (torn or rotted but still
    /// checksummed), mount falls back to the older region instead of
    /// failing. Only when no region yields a mountable state does this
    /// return [`FsError::Corrupt`].
    pub fn mount(dev: D, cfg: LfsConfig) -> FsResult<Lfs<D>> {
        Self::mount_with_obs(dev, cfg, lfs_obs::Obs::off())
    }

    /// Like [`Lfs::mount`], but with observability attached *before*
    /// recovery runs, so roll-forward trace events (and the end-of-mount
    /// checkpoint) are captured.
    pub fn mount_with_obs(mut dev: D, cfg: LfsConfig, obs: lfs_obs::Obs) -> FsResult<Lfs<D>> {
        let mut sb_buf = [0u8; BLOCK_SIZE];
        dev.read_block(SUPERBLOCK_ADDR, &mut sb_buf)
            .map_err(FsError::device)?;
        let sb = Superblock::decode(&sb_buf)?;
        if sb.device_blocks != dev.num_blocks() {
            return Err(FsError::Corrupt(format!(
                "superblock says {} blocks, device has {}",
                sb.device_blocks,
                dev.num_blocks()
            )));
        }
        if sb.seg_start(sb.nsegments) > sb.device_blocks {
            return Err(FsError::Corrupt(format!(
                "superblock geometry ({} segments of {} blocks) exceeds device",
                sb.nsegments, sb.seg_blocks
            )));
        }
        let candidates = Checkpoint::read_candidates(
            &mut dev,
            [sb.checkpoint_addrs()[0], sb.checkpoint_addrs()[1]],
        );
        if candidates.is_empty() {
            return Err(FsError::Corrupt(
                "no valid checkpoint region (both torn or corrupt)".into(),
            ));
        }
        let mut last_err = FsError::Corrupt("no checkpoint candidate".into());
        for (cp, idx) in candidates {
            match Self::mount_at_checkpoint(dev, sb, cfg, &cp, idx, obs.clone()) {
                Ok(mut fs) => {
                    fs.nfiles = fs.imap.live_count().saturating_sub(1);
                    // Commit the new epoch (and anything recovery
                    // changed). This happens *outside* the fallback loop:
                    // a device-write failure here is not corruption and
                    // must not send mount chasing the older region.
                    fs.checkpoint()?;
                    return Ok(fs);
                }
                Err((returned, e)) => {
                    dev = returned;
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    /// Attempts to bring up the file system from one specific checkpoint.
    /// On failure the (unmodified) device is handed back so the caller can
    /// try the other region. Nothing in here writes to the device:
    /// roll-forward's mutations live in the cache until the end-of-mount
    /// checkpoint.
    #[allow(clippy::type_complexity)]
    fn mount_at_checkpoint(
        dev: D,
        sb: Superblock,
        cfg: LfsConfig,
        cp: &Checkpoint,
        idx: usize,
        obs: lfs_obs::Obs,
    ) -> Result<Lfs<D>, (D, FsError)> {
        let mut cfg = cfg;
        cfg.seg_blocks = sb.seg_blocks;
        cfg.max_inodes = sb.max_inodes;
        let mut fs = Lfs::bare(dev, sb, cfg);
        fs.set_obs(obs);
        match fs.load_checkpoint_state(cp, idx) {
            Ok(()) => Ok(fs),
            Err(e) => Err((fs.into_device(), e)),
        }
    }

    /// Validates a checkpoint against the superblock geometry and loads
    /// the in-memory state from it. Every quantity the checkpoint supplies
    /// is range-checked before use — a checksummed region can still be a
    /// stale or hostile one.
    fn load_checkpoint_state(&mut self, cp: &Checkpoint, idx: usize) -> FsResult<()> {
        let corrupt = |what: &str| FsError::Corrupt(format!("checkpoint: {what}"));
        // One write point per (stream, shard) pair, stored stream-major,
        // each on its own shard. A checkpoint from a volume set of a
        // different width describes a different disk geometry entirely;
        // a different *stream* count is fine (the count is a tuning
        // knob, not geometry) and is reconciled with the mount
        // configuration after roll-forward.
        let wps = cp.write_points();
        if wps.is_empty()
            || !wps.len().is_multiple_of(self.nshards)
            || wps.len() / self.nshards > crate::stats::MAX_STREAMS
        {
            return Err(corrupt("write-point count does not match shard count"));
        }
        for (i, &(seg, off)) in wps.iter().enumerate() {
            if seg >= self.sb.nsegments {
                return Err(corrupt("log head segment out of range"));
            }
            if off > self.sb.seg_blocks {
                return Err(corrupt("log head offset out of range"));
            }
            if self.shard_of_seg(seg) != i % self.nshards {
                return Err(corrupt("write point on wrong shard"));
            }
        }
        if cp.imap_addrs.len() != self.imap.num_blocks() {
            return Err(corrupt("inode-map block count mismatch"));
        }
        if cp.usage_addrs.len() != self.usage.num_blocks() {
            return Err(corrupt("usage-table block count mismatch"));
        }
        if cp.live_bytes.len() != self.sb.nsegments as usize {
            return Err(corrupt("live-byte vector length mismatch"));
        }
        let in_range = |addr: DiskAddr| addr == NIL_ADDR || addr < self.sb.device_blocks;
        if !cp
            .imap_addrs
            .iter()
            .chain(cp.usage_addrs.iter())
            .all(|&a| in_range(a))
        {
            return Err(corrupt("metadata block address out of range"));
        }

        // Load the inode map and segment usage table from the addresses
        // in the checkpoint.
        let mut buf = vec![0u8; BLOCK_SIZE];
        for (i, &addr) in cp.imap_addrs.iter().enumerate() {
            if addr == NIL_ADDR {
                continue;
            }
            self.read_retry(addr, &mut buf)?;
            self.imap.load_block(i, &buf, addr);
        }
        for (i, &addr) in cp.usage_addrs.iter().enumerate() {
            if addr == NIL_ADDR {
                continue;
            }
            self.read_retry(addr, &mut buf)?;
            self.usage.load_block(i, &buf, addr);
        }
        // The checkpoint carries the authoritative live counts (the table
        // blocks in the log can be quietly stale for the segments they
        // themselves landed in).
        self.usage.overlay_live(&cp.live_bytes);
        self.imap.rebuild_free_list();
        // Segments recorded as PendingFree are safe to reuse: any
        // checkpoint that stored that state was written after the
        // cleaner's relocations reached the log.
        self.usage.promote_pending(cp.seq);
        self.epoch = cp.epoch + 1;
        self.write_seq = cp.seq;
        self.checkpoint_seq = cp.seq;
        self.clock = cp.timestamp;
        // Seed the heat estimator from the checkpoint's snapshot so
        // temperature routing resumes where the last incarnation left
        // off instead of treating every file as cold.
        self.heat.restore(&cp.heat, cp.timestamp);
        self.next_cr = 1 - idx;
        self.write_points = wps;
        for i in 0..self.write_points.len() {
            self.usage
                .set_state(self.write_points[i].0, SegState::Active);
        }

        // Allocation safety across the mount: every segment that looks
        // Clean here was Clean (or PendingFree with its relocation
        // already covered) in the loaded checkpoint, so writing into it
        // cannot destroy anything the checkpoint references. Roll-forward
        // itself only reads; its mutations reach the log through the
        // end-of-mount checkpoint.
        if self.cfg.roll_forward {
            self.roll_forward(cp)?;
            // Usage blocks recovered from the log tail may reintroduce
            // PendingFree states; those covered by the loaded checkpoint
            // are promotable, the rest wait for the end-of-mount
            // checkpoint.
            self.usage.promote_pending(cp.seq);
        }
        self.reconcile_streams(self.write_seq);
        Ok(())
    }

    /// Brings the cursor set to the configured stream count after the
    /// checkpoint (and any roll-forward) restored the on-disk cursors.
    ///
    /// This runs strictly *after* roll-forward: the tail may have been
    /// written into segments the checkpoint still records as Clean, so
    /// grabbing clean segments for new cursors any earlier could steal a
    /// segment the tail lives in. Growing adds whole rows (one cursor
    /// per shard) from the clean pool and stops early — without error —
    /// when some shard has no clean segment left; shrinking seals the
    /// coldest rows. Either way the end-of-mount checkpoint persists the
    /// reconciled set.
    fn reconcile_streams(&mut self, seal_seq: u64) {
        let want = self.cfg.streams.clamp(1, crate::stats::MAX_STREAMS as u32) as usize;
        while self.stream_count() < want {
            let clean: Vec<u32> = self
                .usage
                .clean_segs()
                .filter(|&g| !self.is_write_point_seg(g))
                .collect();
            let mut row: Vec<(u32, u32)> = Vec::with_capacity(self.nshards);
            for s in 0..self.nshards {
                let found = clean
                    .iter()
                    .copied()
                    .find(|&g| self.shard_of_seg(g) == s && !row.iter().any(|&(rg, _)| rg == g));
                match found {
                    Some(g) => row.push((g, 0)),
                    None => break,
                }
            }
            if row.len() < self.nshards {
                break;
            }
            for &(g, _) in &row {
                self.usage.set_state(g, SegState::Active);
            }
            self.write_points.extend(row);
        }
        while self.stream_count() > want.max(1) {
            let start = (self.stream_count() - 1) * self.nshards;
            let extra: Vec<(u32, u32)> = self.write_points.drain(start..).collect();
            for (g, _) in extra {
                self.usage.set_state(g, SegState::Dirty);
                self.usage.set_seal_seq(g, seal_seq);
            }
        }
    }

    /// Scans the log tail written after checkpoint `cp` and recovers it.
    ///
    /// On a volume set the log is still one sequence-numbered chain, but
    /// its chunks rotate across per-shard cursors: chunk `s` prefers the
    /// write point of shard `s % n` (see the layout in `flush`), spilling
    /// to the other cursors in wrap order only when its primary cursor
    /// had no room. The traversal replays that placement decision, so on
    /// a single volume it is exactly the historical single-cursor walk.
    fn roll_forward(&mut self, cp: &Checkpoint) -> FsResult<()> {
        let seg_blocks = self.sb.seg_blocks;
        let mut buf = vec![0u8; BLOCK_SIZE];
        let mut cursors = self.write_points.clone();
        let nsh = self.nshards;
        let nstr = cursors.len() / nsh;
        // Fast path: probe the positions the first post-checkpoint chunk
        // must occupy — the write points of shard `(seq + 1) % nshards`
        // (the layout never spills a chunk whose preferred cursor has
        // room; with several streams the chunk's stream is unknown, so
        // every stream cursor on the primary shard is a candidate). If
        // every cursor there had room and none holds a valid
        // continuation summary, the shutdown was clean and there is
        // nothing to roll forward — recovery cost stays independent of
        // disk size.
        {
            let p = ((cp.seq + 1) % nsh as u64) as usize;
            let mut all_room = true;
            let mut found = false;
            for t in 0..nstr {
                let (seg, off) = cursors[t * nsh + p];
                if off + 1 >= seg_blocks {
                    // That write point filled its segment exactly; a
                    // tail could start in some other segment.
                    all_room = false;
                    continue;
                }
                let probe = self.sb.seg_start(seg) + off as u64;
                self.dev
                    .read_blocks(probe, &mut buf)
                    .map_err(FsError::device)?;
                if let Ok(s) = Summary::decode(&buf) {
                    if s.epoch == cp.epoch && s.seq == cp.seq + 1 {
                        found = true;
                        break;
                    }
                }
            }
            if !found && all_room {
                return Ok(());
            }
        }
        // Index the first summary of every segment so the traversal can
        // follow the log across segment boundaries by sequence number.
        let mut heads: HashMap<u64, u32> = HashMap::new();
        for seg in 0..self.sb.nsegments {
            let addr = self.sb.seg_start(seg);
            if self.dev.read_blocks(addr, &mut buf).is_err() {
                continue;
            }
            if let Ok(s) = Summary::decode(&buf) {
                if s.epoch == cp.epoch && s.seq > cp.seq {
                    heads.insert(s.seq, seg);
                }
            }
        }

        let mut expected = cp.seq + 1;
        let mut records: Vec<DirLogRecord> = Vec::new();
        loop {
            // Where chunk `expected` must be: with a single stream, its
            // primary cursor if that had room; otherwise one of the
            // other cursors in wrap order (a spilled chunk); otherwise
            // the head of a freshly allocated segment reached through
            // the `heads` index. With several streams the chunk's stream
            // (and so its preferred cursor) is unknown, so every cursor
            // with room is probed — summaries are sequence-numbered and
            // checksummed, so a valid match identifies the chunk
            // regardless of which cursor carried it.
            let p = (expected % nsh as u64) as usize;
            let single_fast = nstr == 1 && cursors[p].1 + 1 < seg_blocks;
            let cur = if single_fast {
                p
            } else {
                let mut found = None;
                'probe: for k in 0..nsh {
                    let sh = (p + k) % nsh;
                    for t in 0..nstr {
                        let q = t * nsh + sh;
                        if nstr == 1 && q == p {
                            continue; // just established it has no room
                        }
                        let (qseg, qoff) = cursors[q];
                        if qoff + 1 >= seg_blocks {
                            continue;
                        }
                        let addr = self.sb.seg_start(qseg) + qoff as u64;
                        if self.dev.read_blocks(addr, &mut buf).is_err() {
                            continue;
                        }
                        if let Ok(s) = Summary::decode(&buf) {
                            if s.epoch == cp.epoch && s.seq == expected {
                                found = Some(q);
                                break 'probe;
                            }
                        }
                    }
                }
                match found {
                    Some(q) => q,
                    // No cursor has room (or holds the chunk); follow the
                    // chain into a freshly allocated segment. The layout
                    // only allocates a fresh segment for a cursor that
                    // was full, so prefer a full cursor on the segment's
                    // shard (the lowest-indexed one: with one stream per
                    // shard this is *the* shard cursor, the historical
                    // attribution; with several, any same-shard cursor is
                    // sound — temperature is a hint, not geometry).
                    None => match heads.get(&expected) {
                        Some(&next) => {
                            let sh = self.shard_of_seg(next);
                            let mut c = sh;
                            for t in 0..nstr {
                                let cc = t * nsh + sh;
                                if cursors[cc].1 + 1 >= seg_blocks {
                                    c = cc;
                                    break;
                                }
                            }
                            if cursors[c] == (next, 0) {
                                break;
                            }
                            self.usage.set_state(cursors[c].0, SegState::Dirty);
                            self.usage.set_seal_seq(cursors[c].0, expected - 1);
                            cursors[c] = (next, 0);
                            continue;
                        }
                        None => break,
                    },
                }
            };
            let (seg, off) = cursors[cur];
            let addr = self.sb.seg_start(seg) + off as u64;
            self.dev
                .read_blocks(addr, &mut buf)
                .map_err(FsError::device)?;
            let summary = match Summary::decode(&buf) {
                Ok(s) => s,
                Err(_) => break,
            };
            if summary.epoch != cp.epoch || summary.seq != expected {
                // Possibly the chain continues in another segment (this
                // position holds stale data from the segment's previous
                // life). A chunk never spills while its preferred cursor
                // has room, so the only legal continuation is a fresh
                // segment.
                match heads.get(&expected) {
                    Some(&next) => {
                        let sh = self.shard_of_seg(next);
                        let mut c = sh;
                        for t in 0..nstr {
                            let cc = t * nsh + sh;
                            if cursors[cc].1 + 1 >= seg_blocks {
                                c = cc;
                                break;
                            }
                        }
                        if cursors[c] == (next, 0) {
                            break;
                        }
                        self.usage.set_state(cursors[c].0, SegState::Dirty);
                        self.usage.set_seal_seq(cursors[c].0, expected - 1);
                        cursors[c] = (next, 0);
                        continue;
                    }
                    _ => break,
                }
            }
            let nent = summary.entries.len() as u32;
            if off + 1 + nent > seg_blocks {
                break;
            }
            // Verify the whole chunk against the summary's per-block
            // checksums *before* adopting anything from it. A torn
            // segment write can persist the summary but lose some of the
            // blocks it describes; any mismatch means this chunk never
            // fully reached the disk, so the log effectively ends at the
            // previous partial write.
            let mut chunk = vec![0u8; nent as usize * BLOCK_SIZE];
            if self.dev.read_blocks(addr + 1, &mut chunk).is_err() {
                break;
            }
            let verified = summary.entries.iter().enumerate().all(|(j, e)| {
                let b = &chunk[j * BLOCK_SIZE..(j + 1) * BLOCK_SIZE];
                crate::codec::block_checksum(b) == e.csum
            });
            if !verified {
                break;
            }
            self.replay_partial_write(&summary, addr + 1, &chunk, &mut records)?;
            self.emit(|| lfs_obs::TraceEvent::RollForward {
                seq: summary.seq,
                seg,
            });
            self.usage.set_state(seg, SegState::Dirty);
            cursors[cur] = (seg, off + 1 + nent);
            self.write_seq = summary.seq;
            self.clock = self.clock.max(summary.write_time);
            expected += 1;
        }
        self.write_points = cursors;
        for i in 0..self.write_points.len() {
            self.usage
                .set_state(self.write_points[i].0, SegState::Active);
        }

        // Replay the directory operation log (§4.2).
        for rec in records {
            self.replay_record(&rec)?;
        }
        Ok(())
    }

    /// Processes the blocks of one recovered partial write. `chunk` holds
    /// the checksum-verified contents of the write's blocks (one per
    /// summary entry), so nothing here re-reads the tail from the device.
    fn replay_partial_write(
        &mut self,
        summary: &Summary,
        first_block: DiskAddr,
        chunk: &[u8],
        records: &mut Vec<DirLogRecord>,
    ) -> FsResult<()> {
        for (j, entry) in summary.entries.iter().enumerate() {
            let addr = first_block + j as u64;
            let buf = &chunk[j * BLOCK_SIZE..(j + 1) * BLOCK_SIZE];
            match entry.kind {
                EntryKind::InodeBlock => {
                    for slot in 0..crate::layout::INODES_PER_BLOCK {
                        let chunk = &buf[slot * INODE_DISK_SIZE..(slot + 1) * INODE_DISK_SIZE];
                        let Some(inode) = Inode::decode(chunk)? else {
                            continue;
                        };
                        self.adopt_inode(&inode, addr, slot as u8)?;
                    }
                }
                EntryKind::ImapBlock => {
                    let idx = entry.offset as usize;
                    if idx < self.imap.num_blocks() {
                        // Account the relocation of the map block itself
                        // (done quietly at runtime, so it must be redone
                        // here for the counts to stay exact).
                        let old = self.imap.block_addr(idx);
                        if old != NIL_ADDR {
                            if let Some(seg) = self.sb.seg_of(old) {
                                self.usage.sub_live_quiet(seg, BLOCK_SIZE as u32);
                            }
                        }
                        if let Some(seg) = self.sb.seg_of(addr) {
                            self.usage
                                .add_live_quiet(seg, BLOCK_SIZE as u32, summary.write_time);
                        }
                        // A live -> free transition in the incoming block
                        // is a deletion becoming durable; its liveness
                        // accounting never reached the checkpoint, so
                        // retire the dead file's blocks here, from the
                        // about-to-be-replaced entry.
                        for (ino, incoming) in self.imap.peek_block(idx, buf) {
                            let cur = match self.imap.get(ino) {
                                Ok(e) => *e,
                                Err(_) => continue,
                            };
                            if cur.is_live() && !incoming.is_live() {
                                if let Some(seg) = self.sb.seg_of(cur.addr) {
                                    self.usage.sub_live(seg, INODE_DISK_SIZE as u32);
                                }
                                if let Ok(dead) = self.read_inode_at(cur.addr, cur.slot, ino) {
                                    self.visit_inode_blocks(&dead, |fs, a| {
                                        if let Some(seg) = fs.sb.seg_of(a) {
                                            fs.usage.sub_live(seg, BLOCK_SIZE as u32);
                                        }
                                    })?;
                                }
                            }
                        }
                        self.imap.load_block(idx, buf, addr);
                    }
                }
                EntryKind::UsageBlock => {
                    let idx = entry.offset as usize;
                    if idx < self.usage.num_blocks() {
                        let old = self.usage.block_addr(idx);
                        if old != NIL_ADDR {
                            if let Some(seg) = self.sb.seg_of(old) {
                                self.usage.sub_live_quiet(seg, BLOCK_SIZE as u32);
                            }
                        }
                        if let Some(seg) = self.sb.seg_of(addr) {
                            self.usage
                                .add_live_quiet(seg, BLOCK_SIZE as u32, summary.write_time);
                        }
                        // Live counts stay under incremental tracking.
                        self.usage.load_block_preserving_live(idx, buf, addr);
                    }
                }
                EntryKind::DirLog => {
                    records.extend(dirlog::decode_block(buf)?);
                }
                // Data and indirect blocks are incorporated through their
                // inode: "when a summary block indicates the presence of a
                // new inode, Sprite LFS updates the inode map ..., [which]
                // automatically incorporates the file's new data blocks.
                // If data blocks are discovered for a file without a new
                // copy of the file's inode ... the roll-forward code ...
                // ignores the new data blocks" (§4.2).
                EntryKind::Data | EntryKind::Indirect1 | EntryKind::Indirect2 => {}
            }
        }
        Ok(())
    }

    /// Adopts a newer inode found in the log tail, adjusting segment
    /// utilizations for everything the old version referenced and the new
    /// version references.
    fn adopt_inode(&mut self, inode: &Inode, addr: DiskAddr, slot: u8) -> FsResult<bool> {
        let ino = inode.ino;
        if ino as usize >= self.imap.capacity() as usize {
            return Ok(false);
        }
        let old = *self.imap.get(ino)?;
        if old.is_live() && old.version > inode.version {
            return Ok(false); // Stale: the file has since been reincarnated.
        }
        if old.is_live() && old.addr == addr && old.slot == slot {
            return Ok(false); // Already current (e.g. imap block covered it).
        }
        // Retire the old version's blocks from the usage accounting.
        if old.is_live() {
            if let Some(seg) = self.sb.seg_of(old.addr) {
                self.usage.sub_live(seg, INODE_DISK_SIZE as u32);
            }
            if let Ok(old_inode) = self.read_inode_at(old.addr, old.slot, ino) {
                self.visit_inode_blocks(&old_inode, |fs, a| {
                    if let Some(seg) = fs.sb.seg_of(a) {
                        fs.usage.sub_live(seg, BLOCK_SIZE as u32);
                    }
                })?;
            }
        }
        // Adopt the new version.
        self.imap.set_entry(ino, addr, slot, inode.version);
        if let Some(seg) = self.sb.seg_of(addr) {
            self.usage
                .add_live(seg, INODE_DISK_SIZE as u32, inode.mtime);
        }
        let mtime = inode.mtime;
        self.visit_inode_blocks(inode, |fs, a| {
            if let Some(seg) = fs.sb.seg_of(a) {
                fs.usage.add_live(seg, BLOCK_SIZE as u32, mtime);
            }
        })?;
        // Invalidate any cached copy.
        if self.inodes.remove(&ino).is_some_and(|c| c.dirty) {
            self.dirty_inode_count -= 1;
        }
        self.dcache.remove(&ino);
        let stale: Vec<(Ino, u64)> = self
            .blocks
            .keys()
            .filter(|&&(i, _)| i == ino)
            .copied()
            .collect();
        for k in stale {
            self.blocks.remove(&k);
        }
        let dic = &mut self.dirty_ind_count;
        self.inds.retain(|&(i, _), e| {
            if i == ino && e.dirty {
                *dic -= 1;
            }
            i != ino
        });
        Ok(true)
    }

    /// Reads one inode directly from an inode block on disk.
    fn read_inode_at(&mut self, addr: DiskAddr, slot: u8, expect: Ino) -> FsResult<Inode> {
        let mut buf = vec![0u8; BLOCK_SIZE];
        self.dev
            .read_blocks(addr, &mut buf)
            .map_err(FsError::device)?;
        let chunk = &buf[slot as usize * INODE_DISK_SIZE..(slot as usize + 1) * INODE_DISK_SIZE];
        let inode = Inode::decode(chunk)?
            .ok_or_else(|| FsError::Corrupt(format!("inode {expect}: empty slot")))?;
        if inode.ino != expect {
            return Err(FsError::Corrupt(format!(
                "inode {expect}: slot holds {}",
                inode.ino
            )));
        }
        Ok(inode)
    }

    /// Calls `f` with the address of every block (data and indirect) that
    /// `inode` references, reading indirect blocks directly from disk.
    fn visit_inode_blocks<F: FnMut(&mut Self, DiskAddr)>(
        &mut self,
        inode: &Inode,
        mut f: F,
    ) -> FsResult<()> {
        for &a in &inode.direct {
            if a != NIL_ADDR {
                f(self, a);
            }
        }
        let mut singles: Vec<DiskAddr> = Vec::new();
        if inode.indirect != NIL_ADDR {
            singles.push(inode.indirect);
        }
        if inode.dindirect != NIL_ADDR {
            f(self, inode.dindirect);
            let mut buf = vec![0u8; BLOCK_SIZE];
            self.dev
                .read_blocks(inode.dindirect, &mut buf)
                .map_err(FsError::device)?;
            let dind = IndirectBlock::decode(&buf);
            singles.extend(dind.ptrs.iter().copied().filter(|&p| p != NIL_ADDR));
        }
        let mut buf = vec![0u8; BLOCK_SIZE];
        for s in singles {
            f(self, s);
            self.dev.read_blocks(s, &mut buf).map_err(FsError::device)?;
            let ind = IndirectBlock::decode(&buf);
            for &p in ind.ptrs.iter() {
                if p != NIL_ADDR {
                    f(self, p);
                }
            }
        }
        Ok(())
    }

    /// Replays one directory-operation-log record, restoring consistency
    /// between the directory entry and the inode's reference count.
    fn replay_record(&mut self, rec: &DirLogRecord) -> FsResult<()> {
        match rec.op {
            DirOp::Create | DirOp::Mkdir | DirOp::Link => {
                let inode_live = self
                    .imap
                    .get(rec.ino)
                    .map(|e| e.is_live() && e.version == rec.version)
                    .unwrap_or(false);
                let dir_live = self.imap.get(rec.dir).map(|e| e.is_live()).unwrap_or(false);
                if !dir_live {
                    return Ok(());
                }
                let existing = self.dir_lookup(rec.dir, &rec.name)?;
                if inode_live {
                    // Complete the operation: entry present, nlink right.
                    if existing.map(|s| s.ino) != Some(rec.ino) {
                        if existing.is_some() {
                            self.dir_remove(rec.dir, &rec.name)?;
                        }
                        let ftype = self.inode_clone(rec.ino)?.ftype;
                        self.dir_insert(rec.dir, &rec.name, rec.ino, ftype)?;
                    }
                    let mut inode = self.inode_clone(rec.ino)?;
                    if inode.nlink != rec.nlink {
                        inode.nlink = rec.nlink;
                        self.put_inode(inode);
                    }
                } else if existing.map(|s| s.ino) == Some(rec.ino) {
                    // "The only operation that can't be completed is the
                    // creation of a new file for which the inode is never
                    // written; in this case the directory entry will be
                    // removed" (§4.2).
                    self.dir_remove(rec.dir, &rec.name)?;
                }
            }
            DirOp::Unlink | DirOp::Rmdir => {
                let dir_live = self.imap.get(rec.dir).map(|e| e.is_live()).unwrap_or(false);
                if dir_live {
                    if let Some(slot) = self.dir_lookup(rec.dir, &rec.name)? {
                        if slot.ino == rec.ino {
                            self.dir_remove(rec.dir, &rec.name)?;
                        }
                    }
                }
                let live_same_version = self
                    .imap
                    .get(rec.ino)
                    .map(|e| e.is_live() && e.version == rec.version)
                    .unwrap_or(false);
                if live_same_version {
                    if rec.nlink == 0 {
                        self.delete_file(rec.ino)?;
                    } else {
                        let mut inode = self.inode_clone(rec.ino)?;
                        if inode.nlink != rec.nlink {
                            inode.nlink = rec.nlink;
                            self.put_inode(inode);
                        }
                    }
                }
                // Deletions that became durable through the tail's
                // inode-map blocks have their liveness retired by the
                // live->free diff in `replay_partial_write`.
            }
            DirOp::Rename => {
                let inode_live = self
                    .imap
                    .get(rec.ino)
                    .map(|e| e.is_live() && e.version == rec.version)
                    .unwrap_or(false);
                // Remove the source entry.
                if self.imap.get(rec.dir).map(|e| e.is_live()).unwrap_or(false) {
                    if let Some(slot) = self.dir_lookup(rec.dir, &rec.name)? {
                        if slot.ino == rec.ino {
                            self.dir_remove(rec.dir, &rec.name)?;
                        }
                    }
                }
                // Install the destination entry.
                if inode_live
                    && self
                        .imap
                        .get(rec.dir2)
                        .map(|e| e.is_live())
                        .unwrap_or(false)
                {
                    let existing = self.dir_lookup(rec.dir2, &rec.name2)?;
                    if existing.map(|s| s.ino) != Some(rec.ino) {
                        if existing.is_some() {
                            self.dir_remove(rec.dir2, &rec.name2)?;
                        }
                        let ftype = self.inode_clone(rec.ino)?.ftype;
                        self.dir_insert(rec.dir2, &rec.name2, rec.ino, ftype)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// A convenience for tests and tools: mounts, runs `f`, and unmounts
/// (checkpointing) — returning the device.
pub fn with_mounted<D, T, F>(dev: D, cfg: LfsConfig, f: F) -> FsResult<(D, T)>
where
    D: QueueDevice,
    F: FnOnce(&mut Lfs<D>) -> FsResult<T>,
{
    let mut fs = Lfs::mount(dev, cfg)?;
    let out = f(&mut fs)?;
    fs.sync()?;
    Ok((fs.into_device(), out))
}

/// Returns true when a path exists on the mounted file system — a small
/// helper used by recovery tests.
pub fn exists<D: QueueDevice>(fs: &mut Lfs<D>, path: &str) -> bool {
    fs.lookup(path).is_ok()
}
