//! Shared concurrent access to an [`Lfs`]: the single-writer-lane /
//! lock-free-reader front end ([`SharedLfs`]).
//!
//! # Concurrency model
//!
//! The log-structured design gives the write path a natural serialization
//! point: *everything* mutable — log appends, flushes, cleaning,
//! checkpoints — already funnels through the tail of the log. `SharedLfs`
//! makes that explicit with a **writer lane**: one `Mutex<Lfs<D>>` through
//! which every mutating operation (and every cache miss) passes, in a
//! total order. Because the lane is the only path to the device, all of
//! PR 7's crash-state guarantees carry over unchanged: the sequence of
//! device writes produced by N concurrent clients is *some* serial
//! interleaving of their operations, and every prefix of that sequence is
//! a crash state the single-threaded core could also have produced.
//!
//! **Reads are served lock-free** against a sharded, reference-counted
//! snapshot cache layered over the core's `Arc`'d COW block cache:
//!
//! * Every inode has a monotonically increasing **generation counter**
//!   (`gens`, a `Vec<AtomicU64>` indexed by inode number). The writer
//!   lane bumps the generation of every inode an operation touches,
//!   *before* releasing the lock.
//! * A read loads the inode's generation once, then consults the sharded
//!   read cache: per-inode metadata (`{gen, ftype, size}`) and per-block
//!   payload (`{gen, Arc<Vec<u8>>}`) entries are valid only while their
//!   recorded generation matches the current one. A hit touches no lock
//!   but the shard's `RwLock` read side and copies straight out of the
//!   shared `Arc` — the writer can never mutate that payload in place,
//!   because [`Arc::make_mut`] in the core's write path copies-on-write
//!   whenever a published snapshot holds a second reference.
//! * A miss takes the writer lane, loads through the ordinary cache
//!   ([`Lfs::block_arc`]), and publishes the snapshot tagged with the
//!   generation observed *under the lock*.
//!
//! This gives **per-file ordering**: once a client observes a write's
//! completion, every later read of that file sees a generation at least
//! as new as the bump that write published (release/acquire on the
//! counter), so stale cached snapshots can never satisfy it. Reads
//! concurrent *with* a write may see either side — the usual POSIX
//! grey zone — and a read spanning multiple blocks may be torn at block
//! granularity, exactly like two processes sharing a page cache.
//!
//! **Concurrent `sync` batches through the group-commit path.** Callers
//! serialize on the writer lane, where `checkpoint_inner`'s dual-region
//! `cp_seqs` guard already amortizes redundant checkpoints; on top of
//! that, a `settled` atomic mirrors [`Lfs::sync_settled`] so that when
//! both regions already cover the log tail a `sync` returns without
//! touching the lane at all (counted in `sync_handoffs` — the WAL-style
//! commit handoff).
//!
//! **Access times** are the one piece of mutable state a lock-free read
//! must produce. Reads queue `(ino, clock)` pairs into a pending list and
//! the writer lane drains it at every acquisition — before the next
//! mutation, flush, or checkpoint — which is exactly where a
//! single-threaded trace would have applied them. Single-client runs are
//! therefore **bit-identical** to the plain `Lfs` (pinned by the
//! `shared_equivalence` proptest): atime values are captured from the
//! clock mirror at read time and applied before the next imap encode,
//! and no other state diverges.
//!
//! # Memory bound
//!
//! Published snapshots pin their writer-cache twins ([`CachedBlock`]
//! eviction skips pinned blocks), so the read cache is bounded at ~1/4 of
//! `cache_limit_bytes` (plus metadata); with the writer cache itself the
//! worst case is ~1.25× the configured limit. Shards evict
//! stale-generation entries first, then arbitrary ones.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use blockdev::{QueueDevice, BLOCK_SIZE};
use lfs_obs::{Histogram, MetricsSnapshot, Obs};
use vfs::{DirEntry, FileSystem, FileType, FsError, FsResult, Ino, Metadata, StatFs};

use crate::config::LfsConfig;
use crate::fs::Lfs;
use crate::stats::LfsStats;

/// Number of read-cache shards. Sixteen keeps cross-client contention on
/// the shard `RwLock`s negligible at the client counts the server runs
/// (each hit takes one read lock) without bloating the structure.
const SHARDS: usize = 16;

/// A published block snapshot: valid while `gen` matches the owning
/// inode's current generation.
struct RBlock {
    gen: u64,
    data: Arc<Vec<u8>>,
}

/// Published scalar metadata of one inode.
#[derive(Clone, Copy)]
struct RMeta {
    gen: u64,
    ftype: FileType,
    size: u64,
}

/// Lock-free read-side counters (all monotonic).
#[derive(Default)]
struct ReadCounters {
    reads: AtomicU64,
    lockfree_reads: AtomicU64,
    block_hits: AtomicU64,
    block_misses: AtomicU64,
    read_bytes: AtomicU64,
    sync_handoffs: AtomicU64,
}

/// A consistent copy of the read-side counters; see
/// [`SharedLfs::shared_stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SharedReadStats {
    /// Total `read` calls served.
    pub reads: u64,
    /// Reads satisfied entirely from the shared cache (no writer lane).
    pub lockfree_reads: u64,
    /// Individual block lookups that hit the shared cache.
    pub block_hits: u64,
    /// Block lookups that fell through to the writer lane.
    pub block_misses: u64,
    /// Payload bytes returned to readers.
    pub read_bytes: u64,
    /// `sync` calls satisfied by the settled fast path (group-commit
    /// handoff) without taking the writer lane.
    pub sync_handoffs: u64,
}

struct Inner<D: QueueDevice> {
    /// The writer lane: every mutation and every cache miss serializes
    /// here. Poisoning is deliberately ignored (a panicking client must
    /// not brick the mount); on-disk state stays crash-consistent because
    /// the lane only ever produces legal log prefixes.
    writer: Mutex<Lfs<D>>,
    /// Per-inode generation counters, indexed by inode number. Bumped
    /// under the writer lock for every inode an operation touches.
    gens: Vec<AtomicU64>,
    blocks: [RwLock<HashMap<(Ino, u64), RBlock>>; SHARDS],
    metas: [RwLock<HashMap<Ino, RMeta>>; SHARDS],
    /// Access times queued by lock-free reads; drained (FIFO) at every
    /// writer-lane acquisition.
    atimes: Mutex<Vec<(Ino, u64)>>,
    /// Mirror of the core's logical clock, refreshed on writer-lane exit.
    clock: AtomicU64,
    /// Mirror of [`Lfs::sync_settled`]; see the module docs.
    settled: AtomicBool,
    counters: ReadCounters,
    /// `op.read_ns` histogram for lock-free hits (zero device time).
    read_hist: RwLock<Option<Arc<Histogram>>>,
    /// Per-shard entry cap for `blocks`.
    block_cap: usize,
    /// Per-shard entry cap for `metas`.
    meta_cap: usize,
}

/// A cloneable, thread-safe handle to one mounted log-structured file
/// system. See the [module docs](self) for the concurrency model.
///
/// Clones share the mount; each client (thread) holds its own handle and
/// uses the ordinary [`FileSystem`] interface.
///
/// ```
/// use blockdev::MemDisk;
/// use lfs_core::{LfsConfig, SharedLfs};
/// use vfs::FileSystem;
///
/// let fs = SharedLfs::format(MemDisk::new(4096), LfsConfig::small()).unwrap();
/// let mut h1 = fs.clone();
/// let ino = h1.write_file("/hello", b"from the log").unwrap();
/// let t = std::thread::spawn({
///     let mut h2 = fs.clone();
///     move || h2.read_to_vec(ino).unwrap()
/// });
/// assert_eq!(t.join().unwrap(), b"from the log");
/// ```
pub struct SharedLfs<D: QueueDevice> {
    inner: Arc<Inner<D>>,
}

impl<D: QueueDevice> Clone for SharedLfs<D> {
    fn clone(&self) -> Self {
        SharedLfs {
            inner: Arc::clone(&self.inner),
        }
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn block_shard(ino: Ino, bno: u64) -> usize {
    let h = (ino as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(bno.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    (h >> 48) as usize % SHARDS
}

fn meta_shard(ino: Ino) -> usize {
    ino as usize % SHARDS
}

impl<D: QueueDevice> SharedLfs<D> {
    /// Wraps an already formatted/mounted [`Lfs`] for shared access.
    pub fn new(fs: Lfs<D>) -> SharedLfs<D> {
        let max_inodes = fs.superblock().max_inodes as usize;
        let cache_blocks = (fs.config().cache_limit_bytes as usize / BLOCK_SIZE).max(SHARDS);
        // Bound the read cache at a quarter of the writer cache so pinned
        // twins never dominate the configured limit; see module docs.
        let block_cap = (cache_blocks / 4 / SHARDS).max(16);
        let settled = fs.sync_settled();
        let clock = fs.clock();
        SharedLfs {
            inner: Arc::new(Inner {
                writer: Mutex::new(fs),
                gens: (0..=max_inodes).map(|_| AtomicU64::new(0)).collect(),
                blocks: std::array::from_fn(|_| RwLock::new(HashMap::new())),
                metas: std::array::from_fn(|_| RwLock::new(HashMap::new())),
                atimes: Mutex::new(Vec::new()),
                clock: AtomicU64::new(clock),
                settled: AtomicBool::new(settled),
                counters: ReadCounters::default(),
                read_hist: RwLock::new(None),
                block_cap,
                meta_cap: 1024,
            }),
        }
    }

    /// Formats `dev` and returns a shared handle (see [`Lfs::format`]).
    pub fn format(dev: D, cfg: LfsConfig) -> FsResult<SharedLfs<D>> {
        Ok(SharedLfs::new(Lfs::format(dev, cfg)?))
    }

    /// Mounts an existing file system (see `Lfs::mount`).
    pub fn mount(dev: D, cfg: LfsConfig) -> FsResult<SharedLfs<D>> {
        Ok(SharedLfs::new(Lfs::mount(dev, cfg)?))
    }

    /// Unwraps the handle back into the exclusive [`Lfs`], draining any
    /// queued access times. Fails (returning `self`) while other handles
    /// are alive.
    pub fn into_inner(self) -> Result<Lfs<D>, SharedLfs<D>> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => {
                let mut fs = inner.writer.into_inner().unwrap_or_else(|e| e.into_inner());
                for (ino, at) in inner.atimes.into_inner().unwrap_or_else(|e| e.into_inner()) {
                    fs.apply_atime_quiet(ino, at);
                }
                Ok(fs)
            }
            Err(arc) => Err(SharedLfs { inner: arc }),
        }
    }

    /// Runs `f` on the writer lane: takes the lock, drains queued access
    /// times first (so they land before whatever `f` encodes), and
    /// refreshes the clock/settled mirrors on the way out.
    fn with_writer<R>(&self, f: impl FnOnce(&mut Lfs<D>) -> R) -> R {
        let inner = &*self.inner;
        let mut fs = lock(&inner.writer);
        {
            let mut pending = lock(&inner.atimes);
            for (ino, at) in pending.drain(..) {
                fs.apply_atime_quiet(ino, at);
            }
        }
        let r = f(&mut fs);
        inner.clock.store(fs.clock(), Ordering::Release);
        inner.settled.store(fs.sync_settled(), Ordering::Release);
        r
    }

    /// Escape hatch for tools (torture, invariants, benchmarks): exclusive
    /// access to the underlying [`Lfs`] through the writer lane.
    pub fn with_fs<R>(&self, f: impl FnOnce(&mut Lfs<D>) -> R) -> R {
        self.with_writer(f)
    }

    fn gen_of(&self, ino: Ino) -> u64 {
        self.inner
            .gens
            .get(ino as usize)
            .map_or(0, |g| g.load(Ordering::Acquire))
    }

    /// Bumps `ino`'s generation; call only while holding the writer lock
    /// (the release ordering pairs with `gen_of`'s acquire).
    fn bump_gen(&self, ino: Ino) {
        if let Some(g) = self.inner.gens.get(ino as usize) {
            g.fetch_add(1, Ordering::AcqRel);
        }
    }

    // ----- read cache ---------------------------------------------------

    fn meta_lookup(&self, ino: Ino, gen: u64) -> Option<RMeta> {
        let map = self.inner.metas[meta_shard(ino)]
            .read()
            .unwrap_or_else(|e| e.into_inner());
        map.get(&ino).filter(|m| m.gen == gen).copied()
    }

    fn block_lookup(&self, ino: Ino, bno: u64, gen: u64) -> Option<Arc<Vec<u8>>> {
        let map = self.inner.blocks[block_shard(ino, bno)]
            .read()
            .unwrap_or_else(|e| e.into_inner());
        map.get(&(ino, bno))
            .filter(|b| b.gen == gen)
            .map(|b| Arc::clone(&b.data))
    }

    fn publish_meta(&self, ino: Ino, m: RMeta) {
        let mut map = self.inner.metas[meta_shard(ino)]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        if map.len() >= self.inner.meta_cap {
            let gens = &self.inner.gens;
            map.retain(|&i, e| {
                gens.get(i as usize)
                    .is_some_and(|g| g.load(Ordering::Relaxed) == e.gen)
            });
            prune_half(&mut map, self.inner.meta_cap);
        }
        map.insert(ino, m);
    }

    fn publish_block(&self, ino: Ino, bno: u64, gen: u64, data: Arc<Vec<u8>>) {
        let mut map = self.inner.blocks[block_shard(ino, bno)]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        if map.len() >= self.inner.block_cap {
            let gens = &self.inner.gens;
            // Stale generations first — those can never serve a hit again.
            map.retain(|&(i, _), b| {
                gens.get(i as usize)
                    .is_some_and(|g| g.load(Ordering::Relaxed) == b.gen)
            });
            prune_half(&mut map, self.inner.block_cap);
        }
        map.insert((ino, bno), RBlock { gen, data });
    }

    /// Loads `ino`'s scalar attributes through the writer lane and
    /// publishes them at the generation observed under the lock.
    fn load_meta(&self, ino: Ino) -> FsResult<RMeta> {
        self.with_writer(|fs| {
            let a = fs.inode_attrs(ino)?;
            let m = RMeta {
                gen: self.gen_of(ino),
                ftype: a.ftype,
                size: a.size,
            };
            self.publish_meta(ino, m);
            Ok(m)
        })
    }

    /// Loads one block snapshot through the writer lane (recording its
    /// device time in `op.read_ns`, like the exclusive read path) and
    /// publishes it.
    fn load_block(&self, ino: Ino, bno: u64) -> FsResult<Arc<Vec<u8>>> {
        self.with_writer(|fs| {
            let data = fs.timed(|o| &o.read, |fs| fs.block_arc(ino, bno))?;
            self.publish_block(ino, bno, self.gen_of(ino), Arc::clone(&data));
            Ok(data)
        })
    }

    // ----- lock-free read ----------------------------------------------

    /// The concurrent read path: generation-validated lookups against the
    /// shared cache, falling back to the writer lane per missing block.
    /// Matches [`Lfs::read`] exactly for a single client (same bytes, same
    /// errors, same queued-atime effect); concurrent readers may observe
    /// block-granular tearing against in-flight writes.
    pub fn read_at(&self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        let c = &self.inner.counters;
        c.reads.fetch_add(1, Ordering::Relaxed);
        let gen = self.gen_of(ino);
        let meta = match self.meta_lookup(ino, gen) {
            Some(m) => m,
            None => self.load_meta(ino)?,
        };
        if meta.ftype == FileType::Directory {
            return Err(FsError::IsADirectory);
        }
        if offset >= meta.size {
            return Ok(0);
        }
        let n = buf.len().min((meta.size - offset) as usize);
        let mut lock_free = true;
        let mut pos = 0usize;
        while pos < n {
            let abs = offset + pos as u64;
            let bno = abs / BLOCK_SIZE as u64;
            let off_in = (abs % BLOCK_SIZE as u64) as usize;
            let len = (BLOCK_SIZE - off_in).min(n - pos);
            let data = match self.block_lookup(ino, bno, meta.gen) {
                Some(d) => {
                    c.block_hits.fetch_add(1, Ordering::Relaxed);
                    d
                }
                None => {
                    lock_free = false;
                    c.block_misses.fetch_add(1, Ordering::Relaxed);
                    self.load_block(ino, bno)?
                }
            };
            buf[pos..pos + len].copy_from_slice(&data[off_in..off_in + len]);
            pos += len;
        }
        if lock_free {
            c.lockfree_reads.fetch_add(1, Ordering::Relaxed);
            // A pure cache hit consumes zero device time; record it so the
            // latency histogram keeps one sample per read, as the
            // exclusive path does.
            let hist = self
                .inner
                .read_hist
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            if let Some(h) = hist {
                h.record(0);
            }
        }
        c.read_bytes.fetch_add(n as u64, Ordering::Relaxed);
        lock(&self.inner.atimes).push((ino, self.inner.clock.load(Ordering::Acquire)));
        Ok(n)
    }

    // ----- writer-lane operations ---------------------------------------

    /// Forces buffered modifications to the log without a checkpoint
    /// (see [`Lfs::flush`]).
    pub fn flush(&self) -> FsResult<()> {
        self.with_writer(|fs| fs.flush())
    }

    /// Writes a checkpoint (see [`Lfs::checkpoint`]).
    pub fn checkpoint(&self) -> FsResult<()> {
        self.with_writer(|fs| fs.checkpoint())
    }

    /// `sync` with the group-commit fast path: when both checkpoint
    /// regions already cover everything durable-relevant, hand off to the
    /// checkpoint that is already on disk without taking the writer lane.
    pub fn sync_all(&self) -> FsResult<()> {
        if self.inner.settled.load(Ordering::Acquire) {
            self.inner
                .counters
                .sync_handoffs
                .fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        self.with_writer(|fs| fs.sync())
    }

    /// Advances the logical clock (see [`Lfs::advance_clock`]).
    pub fn advance_clock(&self, delta: u64) {
        self.with_writer(|fs| fs.advance_clock(delta));
    }

    /// Drops clean cached data in both the core cache and the shared read
    /// cache, so subsequent reads exercise the disk.
    pub fn drop_caches(&self) {
        self.with_writer(|fs| fs.drop_caches());
        for s in &self.inner.blocks {
            s.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
        for s in &self.inner.metas {
            s.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// A consistent snapshot of the file-system statistics, taken under
    /// the writer lock with ring-side error counts absorbed first —
    /// concurrent readers can never observe a torn or backwards copy.
    pub fn stats(&self) -> LfsStats {
        self.with_writer(|fs| {
            fs.absorb_queue_errors();
            *fs.stats()
        })
    }

    /// A snapshot of the lock-free read-side counters.
    pub fn shared_stats(&self) -> SharedReadStats {
        let c = &self.inner.counters;
        SharedReadStats {
            reads: c.reads.load(Ordering::Relaxed),
            lockfree_reads: c.lockfree_reads.load(Ordering::Relaxed),
            block_hits: c.block_hits.load(Ordering::Relaxed),
            block_misses: c.block_misses.load(Ordering::Relaxed),
            read_bytes: c.read_bytes.load(Ordering::Relaxed),
            sync_handoffs: c.sync_handoffs.load(Ordering::Relaxed),
        }
    }

    /// Attaches observability (see [`Lfs::set_obs`]); also wires the
    /// lock-free read path's `op.read_ns` histogram.
    pub fn set_obs(&self, obs: Obs) {
        let hist = obs.registry.as_ref().map(|r| r.histogram("op.read_ns"));
        self.with_writer(|fs| fs.set_obs(obs));
        *self
            .inner
            .read_hist
            .write()
            .unwrap_or_else(|e| e.into_inner()) = hist;
    }

    /// Publishes core metrics plus the `lfs.shared.*` read-side counters
    /// into the attached registry (no-op without one).
    pub fn publish_metrics(&self) {
        let shared = self.shared_stats();
        self.with_writer(|fs| {
            fs.publish_metrics();
            if let Some(reg) = fs.obs().registry.as_deref() {
                reg.counter("lfs.shared.reads").store(shared.reads);
                reg.counter("lfs.shared.lockfree_reads")
                    .store(shared.lockfree_reads);
                reg.counter("lfs.shared.block_hits")
                    .store(shared.block_hits);
                reg.counter("lfs.shared.block_misses")
                    .store(shared.block_misses);
                reg.counter("lfs.shared.read_bytes")
                    .store(shared.read_bytes);
                reg.counter("lfs.shared.sync_handoffs")
                    .store(shared.sync_handoffs);
            }
        })
    }

    /// Publishes current statistics and returns a metrics snapshot, or
    /// `None` when no registry is attached.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.publish_metrics();
        self.with_writer(|fs| fs.obs().snapshot())
    }
}

/// When `map` is still at/over `cap` after the stale sweep, drop every
/// other entry — O(cap) and rare, which beats tracking LRU order on the
/// lock-free hot path.
fn prune_half<K, V>(map: &mut HashMap<K, V>, cap: usize) {
    if map.len() >= cap {
        let mut keep = false;
        map.retain(|_, _| {
            keep = !keep;
            keep
        });
    }
}

impl<D: QueueDevice> FileSystem for SharedLfs<D> {
    fn create(&mut self, path: &str) -> FsResult<Ino> {
        self.with_writer(|fs| {
            let ino = fs.create(path)?;
            // Bump even though the file is new: inode numbers are reused,
            // so stale snapshots of a previous incarnation must die here.
            self.bump_gen(ino);
            Ok(ino)
        })
    }

    fn mkdir(&mut self, path: &str) -> FsResult<Ino> {
        self.with_writer(|fs| {
            let ino = fs.mkdir(path)?;
            self.bump_gen(ino);
            Ok(ino)
        })
    }

    fn lookup(&mut self, path: &str) -> FsResult<Ino> {
        self.with_writer(|fs| fs.lookup(path))
    }

    fn write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<()> {
        self.with_writer(|fs| {
            let r = fs.write(ino, offset, data);
            // Bump on error too: a failed write may still have buffered a
            // prefix of its blocks.
            self.bump_gen(ino);
            r
        })
    }

    fn read(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.read_at(ino, offset, buf)
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        self.with_writer(|fs| {
            let r = fs.truncate(ino, size);
            self.bump_gen(ino);
            r
        })
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.with_writer(|fs| {
            let victim = fs.resolve(path).ok();
            let r = fs.unlink(path);
            if r.is_ok() {
                if let Some(v) = victim {
                    self.bump_gen(v);
                }
            }
            r
        })
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.with_writer(|fs| {
            let victim = fs.resolve(path).ok();
            let r = fs.rmdir(path);
            if r.is_ok() {
                if let Some(v) = victim {
                    self.bump_gen(v);
                }
            }
            r
        })
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.with_writer(|fs| {
            let src = fs.resolve(from).ok();
            let dst = fs.resolve(to).ok();
            let r = fs.rename(from, to);
            if r.is_ok() {
                // The replaced target (if any) is gone; the source keeps
                // its content but bumping is cheap and removes any doubt.
                for v in [src, dst].into_iter().flatten() {
                    self.bump_gen(v);
                }
            }
            r
        })
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        self.with_writer(|fs| {
            let src = fs.resolve(existing).ok();
            let r = fs.link(existing, new);
            if r.is_ok() {
                if let Some(v) = src {
                    self.bump_gen(v);
                }
            }
            r
        })
    }

    fn metadata(&mut self, ino: Ino) -> FsResult<Metadata> {
        self.with_writer(|fs| fs.metadata(ino))
    }

    fn readdir(&mut self, path: &str) -> FsResult<Vec<DirEntry>> {
        self.with_writer(|fs| fs.readdir(path))
    }

    fn sync(&mut self) -> FsResult<()> {
        self.sync_all()
    }

    fn statfs(&mut self) -> FsResult<StatFs> {
        self.with_writer(|fs| fs.statfs())
    }
}
