//! Segment summary blocks.
//!
//! "Sprite LFS solves both of these problems by writing a segment summary
//! block as part of each segment. The summary block identifies each piece
//! of information that is written in the segment; for example, for each
//! file data block the summary block contains the file number and block
//! number for the block" (§3.3). Summaries also record the uid (inode
//! number + version) of each block so the cleaner can discard dead blocks
//! without reading the inode, and they carry a sequence number, epoch, and
//! checksum so roll-forward can find the valid end of the log (§4.2).
//!
//! One summary block precedes each *partial write* — segments receive
//! multiple summaries when the file cache flushes before a whole segment's
//! worth of dirty blocks has accumulated.

use blockdev::BLOCK_SIZE;
use vfs::{FsError, FsResult, Ino};

use crate::codec::{checksum, Reader, Writer};

const MAGIC: u32 = 0x5347_5355; // "SUGS"
const HEADER_SIZE: usize = 40;
const ENTRY_SIZE: usize = 28;

/// Maximum blocks one summary can describe.
pub const MAX_SUMMARY_ENTRIES: usize = (BLOCK_SIZE - HEADER_SIZE) / ENTRY_SIZE;

/// What a block in a partial write is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// File data block: `ino` + `offset` (file block number) + `version`.
    Data,
    /// Single-indirect block `offset` of file `ino`.
    Indirect1,
    /// The double-indirect block of file `ino`.
    Indirect2,
    /// A block of packed inodes (the block itself lists its inodes).
    InodeBlock,
    /// Inode-map block `offset`.
    ImapBlock,
    /// Segment-usage-table block `offset`.
    UsageBlock,
    /// A block of directory-operation-log records.
    DirLog,
}

impl EntryKind {
    fn encode(self) -> u8 {
        match self {
            EntryKind::Data => 1,
            EntryKind::Indirect1 => 2,
            EntryKind::Indirect2 => 3,
            EntryKind::InodeBlock => 4,
            EntryKind::ImapBlock => 5,
            EntryKind::UsageBlock => 6,
            EntryKind::DirLog => 7,
        }
    }

    fn decode(v: u8) -> FsResult<EntryKind> {
        Ok(match v {
            1 => EntryKind::Data,
            2 => EntryKind::Indirect1,
            3 => EntryKind::Indirect2,
            4 => EntryKind::InodeBlock,
            5 => EntryKind::ImapBlock,
            6 => EntryKind::UsageBlock,
            7 => EntryKind::DirLog,
            k => return Err(FsError::Corrupt(format!("summary: bad entry kind {k}"))),
        })
    }
}

/// Description of one block in a partial write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SummaryEntry {
    /// What the block is.
    pub kind: EntryKind,
    /// Owning inode (for `Data`/`Indirect*`), else 0.
    pub ino: Ino,
    /// File block number (`Data`), indirect index (`Indirect1`), or table
    /// block index (`ImapBlock`/`UsageBlock`); else 0.
    pub offset: u32,
    /// The inode's version at write time — the uid check of §3.3.
    pub version: u32,
    /// The block's own modification time. The paper's Sprite LFS only
    /// kept one modified time per *file* and noted "this estimate will be
    /// incorrect for files that are not modified in their entirety. We
    /// plan to modify the segment summary information to include modified
    /// times for each block" (§3.6) — this field is that plan, realised:
    /// the cleaner's age-sort and the usage table's segment ages work on
    /// true block ages, and relocation preserves them.
    pub mtime: u64,
    /// Checksum ([`crate::codec::block_checksum`]) of the described
    /// block's contents at write time. Roll-forward verifies every block
    /// of a chunk against this before replaying any of it, so a torn
    /// segment write (summary persisted, some data blocks lost) is
    /// detected as the end of the log instead of being replayed as
    /// garbage; the cleaner uses it to refuse to relocate rotted live
    /// blocks.
    pub csum: u32,
}

impl SummaryEntry {
    /// A file data block entry.
    pub fn data(ino: Ino, offset: u32, version: u32, mtime: u64) -> SummaryEntry {
        SummaryEntry {
            kind: EntryKind::Data,
            ino,
            offset,
            version,
            mtime,
            csum: 0,
        }
    }

    /// A metadata entry with no owning file.
    pub fn meta(kind: EntryKind, offset: u32, mtime: u64) -> SummaryEntry {
        SummaryEntry {
            kind,
            ino: 0,
            offset,
            version: 0,
            mtime,
            csum: 0,
        }
    }
}

/// A parsed segment summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Mount epoch the write belongs to (prevents roll-forward from
    /// following stale log tails left by a previous mount).
    pub epoch: u32,
    /// Global partial-write sequence number; strictly increasing along the
    /// log.
    pub seq: u64,
    /// Logical time of the write.
    pub write_time: u64,
    /// One entry per block following the summary, in disk order.
    pub entries: Vec<SummaryEntry>,
}

impl Summary {
    /// Serializes into a disk block.
    ///
    /// # Panics
    ///
    /// Panics if there are more than [`MAX_SUMMARY_ENTRIES`] entries.
    pub fn encode(&self) -> Box<[u8]> {
        let mut buf = vec![0u8; BLOCK_SIZE].into_boxed_slice();
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes into a caller-provided block-sized buffer (zero-filled
    /// first), so the flush path can render into a reusable scratch pool
    /// instead of allocating. Byte-for-byte identical to [`Summary::encode`].
    ///
    /// # Panics
    ///
    /// Panics if there are more than [`MAX_SUMMARY_ENTRIES`] entries.
    pub fn encode_into(&self, buf: &mut [u8]) {
        assert!(self.entries.len() <= MAX_SUMMARY_ENTRIES);
        debug_assert_eq!(buf.len(), BLOCK_SIZE);
        buf.fill(0);
        {
            let mut w = Writer::new(buf);
            w.put_u32(MAGIC);
            w.put_u32(self.epoch);
            w.put_u64(self.seq);
            w.put_u16(self.entries.len() as u16);
            w.pad(6);
            w.put_u64(self.write_time);
            w.pad(8); // Checksum written below.
            for e in &self.entries {
                w.put_u8(e.kind.encode());
                w.pad(3);
                w.put_u32(e.ino);
                w.put_u32(e.offset);
                w.put_u32(e.version);
                w.put_u64(e.mtime);
                w.put_u32(e.csum);
            }
        }
        let sum = Self::compute_checksum(buf, self.entries.len());
        buf[32..40].copy_from_slice(&sum.to_le_bytes());
    }

    /// Parses and validates a summary block; any failure (bad magic, bad
    /// checksum, impossible count) is reported as corruption, which
    /// roll-forward interprets as the end of the log.
    pub fn decode(buf: &[u8]) -> FsResult<Summary> {
        debug_assert_eq!(buf.len(), BLOCK_SIZE);
        let mut r = Reader::new(buf);
        if r.get_u32() != MAGIC {
            return Err(FsError::Corrupt("summary: bad magic".into()));
        }
        let epoch = r.get_u32();
        let seq = r.get_u64();
        let n = r.get_u16() as usize;
        if n > MAX_SUMMARY_ENTRIES {
            return Err(FsError::Corrupt("summary: entry count too large".into()));
        }
        r.skip(6);
        let write_time = r.get_u64();
        let stored = r.get_u64();
        if Self::compute_checksum(buf, n) != stored {
            return Err(FsError::Corrupt("summary: bad checksum".into()));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let kind = EntryKind::decode(r.get_u8())?;
            r.skip(3);
            let ino = r.get_u32();
            let offset = r.get_u32();
            let version = r.get_u32();
            let mtime = r.get_u64();
            let csum = r.get_u32();
            entries.push(SummaryEntry {
                kind,
                ino,
                offset,
                version,
                mtime,
                csum,
            });
        }
        Ok(Summary {
            epoch,
            seq,
            write_time,
            entries,
        })
    }

    fn compute_checksum(buf: &[u8], n: usize) -> u64 {
        let mut h = checksum(&buf[..32]);
        // Mix in the entry bytes (skipping the checksum field itself).
        let entries = &buf[HEADER_SIZE..HEADER_SIZE + n * ENTRY_SIZE];
        for &b in entries {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Summary {
        Summary {
            epoch: 3,
            seq: 42,
            write_time: 999,
            entries: vec![
                SummaryEntry::data(7, 0, 2, 11),
                SummaryEntry::data(7, 1, 2, 12),
                SummaryEntry::meta(EntryKind::InodeBlock, 0, 13),
                SummaryEntry::meta(EntryKind::ImapBlock, 5, 14),
                SummaryEntry {
                    kind: EntryKind::Indirect1,
                    ino: 7,
                    offset: 0,
                    version: 2,
                    mtime: 15,
                    csum: 0xdead_beef,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = sample();
        assert_eq!(Summary::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn empty_summary_roundtrips() {
        let s = Summary {
            epoch: 0,
            seq: 1,
            write_time: 0,
            entries: vec![],
        };
        assert_eq!(Summary::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn max_entries_roundtrip() {
        let s = Summary {
            epoch: 1,
            seq: 2,
            write_time: 3,
            entries: (0..MAX_SUMMARY_ENTRIES as u32)
                .map(|i| SummaryEntry::data(i + 1, i, i % 5, i as u64 * 3))
                .collect(),
        };
        assert_eq!(Summary::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn zero_block_is_rejected() {
        let buf = vec![0u8; BLOCK_SIZE];
        assert!(Summary::decode(&buf).is_err());
    }

    #[test]
    fn flipped_entry_byte_fails_checksum() {
        let mut buf = sample().encode();
        buf[HEADER_SIZE + 4] ^= 1; // The ino field of entry 0.
        assert!(Summary::decode(&buf).is_err());
    }

    #[test]
    fn flipped_header_byte_fails_checksum() {
        let mut buf = sample().encode();
        buf[8] ^= 1; // Part of seq.
        assert!(Summary::decode(&buf).is_err());
    }

    #[test]
    fn capacity_is_144_blocks() {
        assert_eq!(MAX_SUMMARY_ENTRIES, 144);
    }

    #[test]
    fn flipped_csum_field_fails_checksum() {
        let mut buf = sample().encode();
        buf[HEADER_SIZE + ENTRY_SIZE - 1] ^= 0x80; // csum byte of entry 0
        assert!(Summary::decode(&buf).is_err());
    }

    #[test]
    #[should_panic]
    fn encode_rejects_oversized_entry_list() {
        let s = Summary {
            epoch: 0,
            seq: 0,
            write_time: 0,
            entries: vec![SummaryEntry::data(1, 0, 0, 0); MAX_SUMMARY_ENTRIES + 1],
        };
        let _ = s.encode();
    }
}
