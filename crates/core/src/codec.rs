//! Little-endian serialization helpers for the on-disk structures.
//!
//! The on-disk format is laid out by hand (fixed offsets, little-endian)
//! rather than through serde: a file system's disk format is a contract,
//! and spelling it out keeps the format stable, inspectable with `lfsdump`,
//! and independent of any Rust library's encoding decisions.

/// A cursor for writing fixed-layout structures into a byte buffer.
pub struct Writer<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> Writer<'a> {
    /// Wraps `buf`, starting at offset 0.
    pub fn new(buf: &'a mut [u8]) -> Writer<'a> {
        Writer { buf, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf[self.pos] = v;
        self.pos += 1;
    }

    /// Appends a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf[self.pos..self.pos + 2].copy_from_slice(&v.to_le_bytes());
        self.pos += 2;
    }

    /// Appends a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf[self.pos..self.pos + v.len()].copy_from_slice(v);
        self.pos += v.len();
    }

    /// Skips `n` bytes, leaving them untouched (zero in fresh buffers).
    pub fn pad(&mut self, n: usize) {
        self.pos += n;
    }
}

/// A cursor for reading fixed-layout structures from a byte buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    /// Reads a `u16` (little-endian).
    pub fn get_u16(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.buf[self.pos..self.pos + 2].try_into().unwrap());
        self.pos += 2;
        v
    }

    /// Reads a `u32` (little-endian).
    pub fn get_u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    /// Reads a `u64` (little-endian).
    pub fn get_u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> &'a [u8] {
        let v = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        v
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize) {
        self.pos += n;
    }

    /// Bytes left to read. Decoders that parse attacker-controlled input
    /// check this before every read so truncated records surface as
    /// corruption errors instead of slice panics.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }
}

/// FNV-1a over `data` — the checksum used by summaries and checkpoints.
///
/// A cryptographic hash is unnecessary: the checksum only needs to detect
/// torn writes and stale garbage, the same role the checkpoint timestamp
/// plays in the paper.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// 32-bit fold of [`checksum`], used where space is tight (per-block
/// checksums in segment-summary entries).
pub fn block_checksum(data: &[u8]) -> u32 {
    let h = checksum(data);
    (h ^ (h >> 32)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = [0u8; 32];
        let mut w = Writer::new(&mut buf);
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdeadbeef);
        w.put_u64(0x0123456789abcdef);
        w.put_bytes(b"xyz");
        assert_eq!(w.pos(), 18);

        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdeadbeef);
        assert_eq!(r.get_u64(), 0x0123456789abcdef);
        assert_eq!(r.get_bytes(3), b"xyz");
    }

    #[test]
    fn pad_and_skip_stay_in_sync() {
        let mut buf = [0u8; 16];
        let mut w = Writer::new(&mut buf);
        w.put_u32(7);
        w.pad(4);
        w.put_u32(9);
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u32(), 7);
        r.skip(4);
        assert_eq!(r.get_u32(), 9);
    }

    #[test]
    fn checksum_detects_single_bit_flip() {
        let a = checksum(b"the quick brown fox");
        let b = checksum(b"the quick brown foy");
        assert_ne!(a, b);
        assert_eq!(a, checksum(b"the quick brown fox"));
    }

    #[test]
    fn checksum_of_empty_is_fnv_offset() {
        assert_eq!(checksum(&[]), 0xcbf29ce484222325);
    }
}
