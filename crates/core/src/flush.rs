//! The write path: building partial writes and checkpoints.
//!
//! A flush gathers everything dirty in the file cache — directory-log
//! records first (the §4.2 ordering guarantee), then file data blocks,
//! indirect blocks, inode blocks, inode-map blocks, and segment-usage
//! blocks — lays the blocks out after a summary block in the current
//! segment, updates every pointer to the new addresses, and issues one
//! large sequential device write per chunk. "For workloads that contain
//! many small files, a log-structured file system converts the many small
//! synchronous random writes of traditional file systems into large
//! asynchronous sequential transfers" (§3).

use std::collections::BTreeSet;

use blockdev::{IoBuf, QueueDevice, WriteKind, BLOCK_SIZE};
use vfs::{FsError, FsResult, Ino};

use crate::dirlog;
use crate::fs::{gather_write_retry, set_dirty, IndKey, Lfs};
use crate::inode::INODE_DISK_SIZE;
use crate::layout::{classify_block, BlockClass, DiskAddr, NIL_ADDR};
use crate::ordering::{CheckpointReady, DataWritten, Flush};
use crate::stats::BlockKind;
use crate::summary::{EntryKind, Summary, SummaryEntry, MAX_SUMMARY_ENTRIES};
use crate::usage::SegState;

/// Clean segments normal writes may never consume — the cleaner's private
/// pool for relocating live data when the log runs out of space.
pub(crate) const CLEANER_RESERVE_SEGS: usize = 2;

/// Most heat entries a checkpoint persists (the hottest ones win).
/// Bounds the region payload: 512 pairs cost 4 KB, one extra block.
const MAX_CHECKPOINT_HEAT: usize = 512;

/// One block scheduled for the current partial write.
#[derive(Clone, Debug)]
enum Item {
    DirLog(Box<[u8]>),
    Data { ino: Ino, bno: u64 },
    Ind { ino: Ino, key: IndKey },
    InodeBlk { inos: Vec<Ino> },
    Imap(usize),
    Usage(usize),
}

impl Item {
    fn stats_kind(&self) -> BlockKind {
        match self {
            Item::DirLog(_) => BlockKind::DirLog,
            Item::Data { .. } => BlockKind::Data,
            Item::Ind { .. } => BlockKind::Indirect,
            Item::InodeBlk { .. } => BlockKind::Inode,
            Item::Imap(_) => BlockKind::Imap,
            Item::Usage(_) => BlockKind::Usage,
        }
    }
}

/// Placement of one partial write.
struct ChunkPlan {
    seg: u32,
    off: u32,
    n_items: usize,
    /// Index into [`Lfs::write_points`] of the cursor this chunk
    /// advances — encodes both the temperature stream (`cursor /
    /// nshards`) and the shard (`cursor % nshards`).
    cursor: usize,
}

/// The result of the (pure) layout computation.
struct LayoutPlan {
    chunks: Vec<ChunkPlan>,
    /// Segments newly allocated (to be marked Active in order).
    allocated: Vec<u32>,
    /// Where every shard's write point ends up after the plan executes
    /// (same order as [`Lfs::write_points`]; untouched shards keep their
    /// current position).
    end_wps: Vec<(u32, u32)>,
}

impl<D: QueueDevice> Lfs<D> {
    /// True if any state is waiting to reach the log. O(1): the inode and
    /// indirect-block dirty populations are running counts maintained at
    /// every flag transition, not cache scans (this predicate runs on
    /// every write while the caches hold the whole working set).
    pub fn needs_flush(&self) -> bool {
        debug_assert_eq!(
            self.dirty_inode_count,
            self.inodes.values().filter(|c| c.dirty).count()
        );
        debug_assert_eq!(
            self.dirty_ind_count,
            self.inds.values().filter(|c| c.dirty).count()
        );
        !self.dirty_blocks.is_empty()
            || !self.dirlog_pending.is_empty()
            || self.dirty_inode_count > 0
            || self.dirty_ind_count > 0
            || self.imap.has_dirty()
            || self.usage.has_dirty()
    }

    /// True when a `sync` would be a pure group commit: nothing dirty,
    /// nothing in the log tail past the last checkpoint, and *both*
    /// checkpoint regions already record `write_seq` — exactly the skip
    /// condition of `checkpoint_inner`. [`crate::SharedLfs`] mirrors this
    /// into an atomic so concurrent `sync` callers can hand off without
    /// taking the writer lane at all.
    pub(crate) fn sync_settled(&self) -> bool {
        self.nsop_depth == 0
            && !self.needs_flush()
            && self.checkpoint_seq == self.write_seq
            && self.bytes_since_checkpoint == 0
            && self.cp_seqs[0] == Some(self.write_seq)
            && self.cp_seqs[1] == Some(self.write_seq)
    }

    /// Writes everything dirty to the log as one or more partial writes.
    ///
    /// This is the paper's fundamental operation: it converts the
    /// accumulated small modifications into large sequential transfers.
    /// It does *not* write a checkpoint; see [`Lfs::checkpoint`].
    pub fn flush(&mut self) -> FsResult<()> {
        self.flush_tokened().map(drop)
    }

    /// [`Lfs::flush`], returning the [`Flush<DataWritten>`] ordering token
    /// of the last chunk written. Checkpointing goes through this form:
    /// the token is the compile-time proof that the log writes a
    /// checkpoint will cover were staged → sealed → submitted in order,
    /// and [`Flush::fence`] is the only way to turn it into the
    /// [`CheckpointReady`] the region write demands.
    pub(crate) fn flush_tokened(&mut self) -> FsResult<Flush<DataWritten>> {
        if !self.needs_flush() {
            return Ok(Flush::idle());
        }
        let res = self.timed(|o| &o.flush, |fs| fs.flush_inner());
        // On a queued device the ring engine owns retries of transient
        // apply failures; fold whatever it absorbed (or gave up on) into
        // the same ledger the synchronous retry paths use.
        self.absorb_queue_errors();
        res
    }

    fn flush_inner(&mut self) -> FsResult<Flush<DataWritten>> {
        // ---- gather -----------------------------------------------------
        let dirlog_blocks = dirlog::encode_records(&self.dirlog_pending);

        // Items are gathered into one group per temperature stream plus
        // (with several streams) a trailing metadata group; the flat
        // item list written below is the concatenation of the groups in
        // that order. With a single stream this is exactly the
        // historical single-list gather. Two constraints meet here:
        //
        // * *Placement*: metadata (directory log, inode/imap/usage
        //   blocks) rides the hot stream's write point — it turns over
        //   fastest, so segregating it from cold file data keeps cold
        //   segments at high, stable utilization (§3.4).
        // * *Ordering*: an inode must reach the log *after* every data
        //   and indirect block it references, or roll-forward could
        //   adopt an inode whose blocks a crash swallowed (§4.2). The
        //   streams write to distinct cursors but share one sequence
        //   numbering, and replay stops at the first missing sequence —
        //   so the inode/imap/usage group must take the *highest*
        //   sequence numbers, i.e. come last in the flat list, even
        //   though its chunks land on the stream-0 cursor.
        let nstreams = self.stream_count();
        let ngroups = if nstreams == 1 { 1 } else { nstreams + 1 };
        let meta = ngroups - 1;
        let mut groups: Vec<Vec<Item>> = vec![Vec::new(); ngroups];
        for b in dirlog_blocks {
            groups[0].push(Item::DirLog(b));
        }

        // Data blocks, grouped per file. With age-sorting enabled the
        // cleaner's relocations are grouped oldest-first so cold data
        // segregates from hot data (§3.4, policy 4).
        let mut file_order: Vec<Ino> = {
            let mut inos: BTreeSet<Ino> = self.dirty_blocks.iter().map(|&(i, _)| i).collect();
            for (&(i, _), c) in self.inds.iter() {
                if c.dirty {
                    inos.insert(i);
                }
            }
            for (&i, c) in self.inodes.iter() {
                if c.dirty {
                    inos.insert(i);
                }
            }
            inos.extend(self.dirty_files.iter().copied());
            inos.into_iter().collect()
        };
        if self.cleaning && self.cfg.age_sort {
            // "Sort the blocks by the time they were last modified and
            // group blocks of similar age together into new segments"
            // (§3.4). Files are ordered by the age of their oldest dirty
            // block; within a file, blocks are already relocated
            // together, which is the grouping the policy wants.
            let mut keyed: Vec<(u64, Ino)> = Vec::with_capacity(file_order.len());
            for ino in file_order {
                let oldest_block = self
                    .dirty_blocks
                    .range((ino, 0)..=(ino, u64::MAX))
                    .filter_map(|k| self.blocks.get(k).map(|b| b.mtime))
                    .min();
                let key = match oldest_block {
                    Some(t) => t,
                    None => self.inode_ref(ino).map(|i| i.mtime).unwrap_or(0),
                };
                keyed.push((key, ino));
            }
            keyed.sort_unstable();
            file_order = keyed.into_iter().map(|(_, i)| i).collect();
        }

        // Make sure every indirect block that will receive a pointer
        // update exists in the cache before layout, so it is part of the
        // batch.
        let dirty_data: Vec<(Ino, u64)> = self.dirty_blocks.iter().copied().collect();
        for &(ino, bno) in &dirty_data {
            match classify_block(bno).ok_or(FsError::FileTooLarge)? {
                BlockClass::Direct(_) => {}
                BlockClass::Indirect1(_) => {
                    self.ensure_ind(ino, IndKey::Single(0), true)?;
                    let e = self.inds.get_mut(&(ino, IndKey::Single(0))).unwrap();
                    set_dirty(&mut e.dirty, &mut self.dirty_ind_count);
                }
                BlockClass::Indirect2(i, _) => {
                    self.ensure_ind(ino, IndKey::Double, true)?;
                    let d = self.inds.get_mut(&(ino, IndKey::Double)).unwrap();
                    set_dirty(&mut d.dirty, &mut self.dirty_ind_count);
                    let key = IndKey::Single(i as u32 + 1);
                    self.ensure_ind(ino, key, true)?;
                    let e = self.inds.get_mut(&(ino, key)).unwrap();
                    set_dirty(&mut e.dirty, &mut self.dirty_ind_count);
                }
            }
        }

        let mut dirty_inos: Vec<Ino> = Vec::new();
        for &ino in &file_order {
            // Data blocks of this file, in file order.
            let blocks: Vec<u64> = self
                .dirty_blocks
                .range((ino, 0)..=(ino, u64::MAX))
                .map(|&(_, b)| b)
                .collect();
            for bno in blocks {
                let t = self.stream_of_block(ino, bno);
                groups[t].push(Item::Data { ino, bno });
            }
            // Indirect blocks: singles first (their addresses go into the
            // double), then the double. They follow the file's own heat
            // class — an indirect block changes whenever its file does.
            let mut keys: Vec<IndKey> = self
                .inds
                .iter()
                .filter(|(&(i, _), c)| i == ino && c.dirty)
                .map(|(&(_, k), _)| k)
                .collect();
            keys.sort();
            let ft = if nstreams == 1 {
                0
            } else {
                self.heat.class(ino, self.clock, nstreams)
            };
            for key in keys {
                groups[ft].push(Item::Ind { ino, key });
            }
            if self.inodes.get(&ino).map(|c| c.dirty).unwrap_or(false)
                || self.dirty_files.contains(&ino)
            {
                dirty_inos.push(ino);
            }
        }
        // Pack dirty inodes 16 to a block, preserving the file order.
        for group in dirty_inos.chunks(crate::layout::INODES_PER_BLOCK) {
            groups[meta].push(Item::InodeBlk {
                inos: group.to_vec(),
            });
        }

        // Inode-map blocks: already dirty ones plus those about to change
        // because of the inode relocations above.
        let mut imap_blocks: BTreeSet<usize> = self.imap.dirty_blocks().into_iter().collect();
        for &ino in &dirty_inos {
            imap_blocks.insert(crate::inodemap::InodeMap::block_of(ino));
        }
        for &idx in &imap_blocks {
            groups[meta].push(Item::Imap(idx));
        }

        // Usage blocks: iterate with the layout until the set of touched
        // segments stabilises (normally one extra round at most).
        let mut usage_blocks: BTreeSet<usize> = self.usage.dirty_blocks().into_iter().collect();
        // Segments that will lose live bytes (old homes of rewritten
        // blocks) are known before layout.
        for &(ino, bno) in &dirty_data {
            let old = self.block_ptr(ino, bno)?;
            if old != NIL_ADDR {
                if let Some(seg) = self.sb.seg_of(old) {
                    usage_blocks.insert(crate::usage::UsageTable::block_of(seg));
                }
            }
        }
        for &(seg, _) in &self.write_points {
            usage_blocks.insert(crate::usage::UsageTable::block_of(seg));
        }

        // Usage items are appended in place (to the metadata group) and
        // truncated off again when the layout touches new segments — no
        // per-round clone of the whole item list (which holds dirlog
        // payloads and inode groups).
        let base_meta = groups[meta].len();
        let plan = loop {
            for &idx in &usage_blocks {
                groups[meta].push(Item::Usage(idx));
            }
            let counts: Vec<usize> = groups.iter().map(|g| g.len()).collect();
            let plan = {
                let mut plan = self.layout(&counts);
                // Out of clean segments: let the cleaner regenerate some
                // (it has a reserved allocation pool precisely so it can
                // still run now), then retry. Several rounds may be
                // needed when space is very tight.
                let mut rounds = 0;
                while matches!(plan, Err(FsError::NoSpace)) && !self.cleaning && rounds < 4 {
                    self.cleaning = true;
                    let res = self.clean_for_space();
                    self.cleaning = false;
                    res?;
                    plan = self.layout(&counts);
                    rounds += 1;
                }
                plan?
            };
            let mut grew = false;
            for c in &plan.chunks {
                if usage_blocks.insert(crate::usage::UsageTable::block_of(c.seg)) {
                    grew = true;
                }
            }
            if !grew {
                break plan;
            }
            groups[meta].truncate(base_meta);
        };
        // Flatten into the single write-order list: stream 0 (hottest)
        // first, the metadata group last so inodes take the highest
        // sequence numbers of the batch. The layout above consumed
        // per-group counts in the same order, so chunk `i` covers
        // exactly the next `n_items` of this list.
        let items: Vec<Item> = groups.into_iter().flatten().collect();

        // ---- commit segment allocation -----------------------------------
        for &seg in &plan.allocated {
            self.usage.set_state(seg, SegState::Active);
        }

        // ---- assign addresses -------------------------------------------
        let mut addrs: Vec<DiskAddr> = Vec::with_capacity(items.len());
        for c in &plan.chunks {
            let base = self.sb.seg_start(c.seg) + c.off as u64;
            for i in 0..c.n_items {
                addrs.push(base + 1 + i as u64);
            }
        }
        debug_assert_eq!(addrs.len(), items.len());

        // ---- apply pointer and accounting updates -------------------------
        let now = self.clock;
        let by_cleaner = self.cleaning;
        for (item, &addr) in items.iter().zip(&addrs) {
            let seg = self.sb.seg_of(addr).expect("log write outside segments");
            match item {
                Item::DirLog(_) => {}
                Item::Data { ino, bno } => {
                    // Per-block modification time (the §3.6 refinement):
                    // segment ages reflect the blocks actually in them,
                    // not the owning file's latest touch.
                    let mtime = self
                        .blocks
                        .get(&(*ino, *bno))
                        .map(|b| b.mtime)
                        .unwrap_or(now);
                    let old = self.set_block_ptr(*ino, *bno, addr)?;
                    if old != NIL_ADDR {
                        if let Some(s) = self.sb.seg_of(old) {
                            self.usage.sub_live(s, BLOCK_SIZE as u32);
                        }
                    }
                    self.usage.add_live(seg, BLOCK_SIZE as u32, mtime);
                }
                Item::Ind { ino, key } => {
                    // Update the parent pointer.
                    match key {
                        IndKey::Single(0) => {
                            self.inode_mut(*ino)?.indirect = addr;
                        }
                        IndKey::Single(k) => {
                            let d = self
                                .inds
                                .get_mut(&(*ino, IndKey::Double))
                                .expect("double-indirect missing for child update");
                            d.blk.ptrs[(*k - 1) as usize] = addr;
                            set_dirty(&mut d.dirty, &mut self.dirty_ind_count);
                        }
                        IndKey::Double => {
                            self.inode_mut(*ino)?.dindirect = addr;
                        }
                    }
                    let e = self.inds.get_mut(&(*ino, *key)).unwrap();
                    let old = e.disk_addr;
                    e.disk_addr = addr;
                    if old != NIL_ADDR {
                        if let Some(s) = self.sb.seg_of(old) {
                            self.usage.sub_live(s, BLOCK_SIZE as u32);
                        }
                    }
                    self.usage.add_live(seg, BLOCK_SIZE as u32, now);
                }
                Item::InodeBlk { inos } => {
                    for (slot, &ino) in inos.iter().enumerate() {
                        let old = *self.imap.get(ino)?;
                        if old.is_live() {
                            if let Some(s) = self.sb.seg_of(old.addr) {
                                self.usage.sub_live(s, INODE_DISK_SIZE as u32);
                            }
                        }
                        self.imap.set_location(ino, addr, slot as u8);
                        self.usage.add_live(seg, INODE_DISK_SIZE as u32, now);
                    }
                }
                Item::Imap(idx) => {
                    let old = self.imap.block_addr(*idx);
                    if old != NIL_ADDR {
                        if let Some(s) = self.sb.seg_of(old) {
                            self.usage.sub_live_quiet(s, BLOCK_SIZE as u32);
                        }
                    }
                    self.usage.add_live_quiet(seg, BLOCK_SIZE as u32, now);
                    self.imap.block_written(*idx, addr);
                }
                Item::Usage(idx) => {
                    let old = self.usage.block_addr(*idx);
                    if old != NIL_ADDR {
                        if let Some(s) = self.sb.seg_of(old) {
                            self.usage.sub_live_quiet(s, BLOCK_SIZE as u32);
                        }
                    }
                    self.usage.add_live_quiet(seg, BLOCK_SIZE as u32, now);
                    // `block_written` runs during serialization below so
                    // the dirty bit survives until the content snapshot.
                }
            }
        }

        // ---- seal segments the layout moved past --------------------------
        // (Sealing before serialization so the usage blocks carry the
        // final states.) A segment is sealed when the log head leaves it,
        // or when it has no room left for another partial write (a chunk
        // needs a summary plus at least one block).
        {
            let mut seq = self.write_seq;
            let mut seg_last_seq: std::collections::BTreeMap<u32, u64> =
                std::collections::BTreeMap::new();
            for c in &plan.chunks {
                seq += 1;
                seg_last_seq.insert(c.seg, seq);
            }
            // Each touched segment belongs to exactly one cursor: the one
            // that was parked on it before the flush, or the one the plan
            // advanced onto it. (With a single stream the owner is always
            // the segment's shard cursor — the historical lookup.)
            let mut owner: std::collections::BTreeMap<u32, usize> =
                std::collections::BTreeMap::new();
            for (c, &(seg, _)) in self.write_points.iter().enumerate() {
                owner.insert(seg, c);
            }
            for c in &plan.chunks {
                owner.insert(c.seg, c.cursor);
            }
            let mut touched: BTreeSet<u32> = seg_last_seq.keys().copied().collect();
            for &(seg, _) in &self.write_points {
                touched.insert(seg);
            }
            for seg in touched {
                let cur = owner[&seg];
                let (end_seg, end_off) = plan.end_wps[cur];
                let is_end = seg == end_seg;
                let end_full = end_off + 1 >= self.sb.seg_blocks;
                if !is_end || end_full {
                    self.usage.set_state(seg, SegState::Dirty);
                    let s = seg_last_seq.get(&seg).copied().unwrap_or(self.write_seq);
                    self.usage.set_seal_seq(seg, s);
                }
            }
        }

        // ---- serialize and write ------------------------------------------
        let mut item_idx = 0usize;
        let mut seq = self.write_seq;
        let time = self.clock;
        let mut written = Flush::idle();
        for c in &plan.chunks {
            seq += 1;
            let chunk_items = &items[item_idx..item_idx + c.n_items];
            let chunk_addrs = &addrs[item_idx..item_idx + c.n_items];
            let start = self.sb.seg_start(c.seg) + c.off as u64;
            written = if self.cfg.gather_writes {
                self.write_chunk_gather(chunk_items, chunk_addrs, start, seq, time, by_cleaner)?
            } else {
                self.write_chunk_assembled(chunk_items, chunk_addrs, start, seq, time, by_cleaner)?
            };
            if !by_cleaner {
                self.bytes_since_checkpoint += ((1 + c.n_items) * BLOCK_SIZE) as u64;
            }
            self.stats.partial_writes += 1;
            self.stats.add_stream_bytes(
                c.cursor / self.nshards,
                ((1 + c.n_items) * BLOCK_SIZE) as u64,
            );
            self.emit(|| lfs_obs::TraceEvent::SegmentWrite {
                seg: c.seg,
                blocks: c.n_items as u32 + 1, // items + the summary block
                by_cleaner,
            });
            item_idx += c.n_items;
        }
        self.write_seq = seq;
        self.write_points = plan.end_wps;

        // ---- clear dirty state --------------------------------------------
        for (ino, bno) in std::mem::take(&mut self.dirty_blocks) {
            if let Some(b) = self.blocks.get_mut(&(ino, bno)) {
                b.dirty = false;
            }
        }
        self.dirty_bytes = 0;
        for c in self.inodes.values_mut() {
            c.dirty = false;
        }
        self.dirty_inode_count = 0;
        for c in self.inds.values_mut() {
            c.dirty = false;
        }
        self.dirty_ind_count = 0;
        self.dirty_files.clear();
        self.dirlog_pending.clear();
        self.maybe_evict_after_flush();
        Ok(written)
    }

    /// Writes one partial-write chunk as a single gather request: data and
    /// directory-log blocks go to the device as borrowed slices straight
    /// from the cache; only genuinely synthesized blocks (the summary,
    /// inode groups, indirect/imap/usage encodes) are rendered, into the
    /// reusable scratch pool. Produces byte-for-byte the same disk image —
    /// and, on the simulated disk, the same service time — as
    /// [`Lfs::write_chunk_assembled`], minus one host copy per cached
    /// block.
    ///
    /// On a queued device (ring capacity > 1) the chunk is *submitted*
    /// instead of written: cached data blocks ride along as `Arc` clones
    /// ([`IoBuf::Shared`], still zero-copy — a later in-place write to a
    /// block in flight copies-on-write), synthesized blocks as shared
    /// windows of a pooled scratch buffer, and the call returns without
    /// waiting for the device. The foreground only blocks again at an
    /// ordering barrier (a read, a checkpoint fence, or the ring filling
    /// up). Retries of transient apply failures belong to the ring engine
    /// on this path — re-issuing from here would reorder the log around
    /// later queued submissions — and are folded back into
    /// [`crate::LfsStats`] by [`Lfs::absorb_queue_errors`].
    #[allow(clippy::too_many_arguments)]
    fn write_chunk_gather(
        &mut self,
        items: &[Item],
        addrs: &[DiskAddr],
        start: u64,
        seq: u64,
        time: u64,
        by_cleaner: bool,
    ) -> FsResult<Flush<DataWritten>> {
        let staged = Flush::stage();
        let n = items.len();
        let need = (1 + n) * BLOCK_SIZE;
        let queued = self.dev.queue_capacity() > 1;
        // Synthesized blocks render into `scratch`: the plain reusable
        // buffer on the synchronous path, or a pooled `Arc` buffer on the
        // queued path (a pool entry is free again once its submission
        // completed and dropped the other strong reference).
        let mut owned_scratch = Vec::new();
        let mut arc_scratch = None;
        let scratch: &mut Vec<u8> = if queued {
            let arc = match self
                .scratch_pool
                .iter()
                .position(|a| std::sync::Arc::strong_count(a) == 1)
            {
                Some(i) => self.scratch_pool.swap_remove(i),
                None => std::sync::Arc::new(Vec::new()),
            };
            std::sync::Arc::make_mut(arc_scratch.insert(arc))
        } else {
            owned_scratch = std::mem::take(&mut self.scratch);
            &mut owned_scratch
        };
        if scratch.len() < need {
            scratch.resize(need, 0);
        }
        // Pass 1: render synthesized blocks into their scratch slots and
        // build the summary entries. Each entry's content checksum (the
        // torn-write detector roll-forward relies on) is computed over the
        // exact bytes the device will receive — scratch slot or borrowed
        // cache block.
        let mut entries = Vec::with_capacity(n);
        for (j, item) in items.iter().enumerate() {
            let dst = &mut scratch[(1 + j) * BLOCK_SIZE..(2 + j) * BLOCK_SIZE];
            let entry = match item {
                Item::DirLog(data) => {
                    let mut e = SummaryEntry::meta(EntryKind::DirLog, 0, time);
                    e.csum = crate::codec::block_checksum(data);
                    e
                }
                Item::Data { ino, bno } => {
                    let b = &self.blocks[&(*ino, *bno)];
                    let mut e =
                        SummaryEntry::data(*ino, *bno as u32, self.imap.version(*ino), b.mtime);
                    e.csum = crate::codec::block_checksum(&b.data);
                    e
                }
                Item::Ind { ino, key } => {
                    self.inds[&(*ino, *key)].blk.encode_into(dst);
                    self.stats.flush_copy_bytes += BLOCK_SIZE as u64;
                    let mut e = match key {
                        IndKey::Single(k) => SummaryEntry {
                            kind: EntryKind::Indirect1,
                            ino: *ino,
                            offset: *k,
                            version: self.imap.version(*ino),
                            mtime: time,
                            csum: 0,
                        },
                        IndKey::Double => SummaryEntry {
                            kind: EntryKind::Indirect2,
                            ino: *ino,
                            offset: 0,
                            version: self.imap.version(*ino),
                            mtime: time,
                            csum: 0,
                        },
                    };
                    e.csum = crate::codec::block_checksum(dst);
                    e
                }
                Item::InodeBlk { inos } => {
                    // The pool is reused: zero the slot so a partial inode
                    // group leaves the same zero padding a fresh buffer had.
                    dst.fill(0);
                    for (slot, &ino) in inos.iter().enumerate() {
                        let inode = &self.inodes[&ino].inode;
                        inode.encode_into(
                            &mut dst[slot * INODE_DISK_SIZE..(slot + 1) * INODE_DISK_SIZE],
                        );
                    }
                    self.stats.flush_copy_bytes += BLOCK_SIZE as u64;
                    let mut e = SummaryEntry::meta(EntryKind::InodeBlock, 0, time);
                    e.csum = crate::codec::block_checksum(dst);
                    e
                }
                Item::Imap(idx) => {
                    self.imap.encode_block_into(*idx, dst);
                    self.stats.flush_copy_bytes += BLOCK_SIZE as u64;
                    let mut e = SummaryEntry::meta(EntryKind::ImapBlock, *idx as u32, time);
                    e.csum = crate::codec::block_checksum(dst);
                    e
                }
                Item::Usage(idx) => {
                    self.usage.block_written(*idx, addrs[j]);
                    self.usage.encode_block_into(*idx, dst);
                    self.stats.flush_copy_bytes += BLOCK_SIZE as u64;
                    let mut e = SummaryEntry::meta(EntryKind::UsageBlock, *idx as u32, time);
                    e.csum = crate::codec::block_checksum(dst);
                    e
                }
            };
            self.stats
                .add_log_bytes(entry_stats_kind(item), BLOCK_SIZE as u64, by_cleaner);
            entries.push(entry);
        }
        let summary = Summary {
            epoch: self.epoch,
            seq,
            write_time: time,
            entries,
        };
        summary.encode_into(&mut scratch[..BLOCK_SIZE]);
        let sealed = staged.seal_summary();
        self.stats.flush_copy_bytes += BLOCK_SIZE as u64;
        self.stats
            .add_log_bytes(BlockKind::Summary, BLOCK_SIZE as u64, by_cleaner);
        // Pass 2 (queued): enqueue the chunk and return without waiting.
        // The summary and synthesized blocks go as shared windows of the
        // pooled scratch `Arc`; cached data blocks as `Arc` clones of
        // their cache entries (no copy — an in-place overwrite while the
        // submission is in flight clones-on-write instead); only the
        // small, rare directory-log payloads are copied into owned
        // buffers. The pool entry goes back in the pool still pinned by
        // the in-flight submission and becomes reusable on completion.
        if let Some(arc) = arc_scratch {
            let mut bufs: Vec<IoBuf> = Vec::with_capacity(1 + n);
            bufs.push(IoBuf::shared_range(arc.clone(), 0, BLOCK_SIZE));
            for (j, item) in items.iter().enumerate() {
                match item {
                    Item::DirLog(data) => bufs.push(IoBuf::Owned(data.to_vec())),
                    Item::Data { ino, bno } => {
                        bufs.push(IoBuf::shared(self.blocks[&(*ino, *bno)].data.clone()))
                    }
                    _ => bufs.push(IoBuf::shared_range(
                        arc.clone(),
                        (1 + j) * BLOCK_SIZE,
                        BLOCK_SIZE,
                    )),
                }
            }
            self.scratch_pool.push(arc);
            self.dev
                .submit_gather(start, bufs, WriteKind::Async)
                .map_err(FsError::device)?;
            return Ok(sealed.submitted());
        }
        // Pass 2 (synchronous): hand the device the block list without
        // assembling it — scratch slots for synthesized blocks, borrowed
        // cache data for the rest. `gather_write_retry` is a free function
        // over disjoint fields precisely so these borrows can be live
        // across the write.
        let scratch_ref: &[u8] = &owned_scratch;
        let mut bufs: Vec<&[u8]> = Vec::with_capacity(1 + n);
        bufs.push(&scratch_ref[..BLOCK_SIZE]);
        for (j, item) in items.iter().enumerate() {
            match item {
                Item::DirLog(data) => bufs.push(data),
                Item::Data { ino, bno } => bufs.push(&self.blocks[&(*ino, *bno)].data),
                _ => bufs.push(&scratch_ref[(1 + j) * BLOCK_SIZE..(2 + j) * BLOCK_SIZE]),
            }
        }
        let res = gather_write_retry(
            &mut self.dev,
            &mut self.stats,
            &self.obs,
            start,
            &bufs,
            WriteKind::Async,
        );
        drop(bufs);
        self.scratch = owned_scratch;
        res.map(|()| sealed.submitted())
    }

    /// The legacy chunk writer: assembles the whole chunk into one fresh
    /// contiguous buffer and issues a plain `write_blocks`. Kept (behind
    /// `LfsConfig::gather_writes = false`) as the reference the gather
    /// path is tested byte-for-byte against.
    #[allow(clippy::too_many_arguments)]
    fn write_chunk_assembled(
        &mut self,
        items: &[Item],
        addrs: &[DiskAddr],
        start: u64,
        seq: u64,
        time: u64,
        by_cleaner: bool,
    ) -> FsResult<Flush<DataWritten>> {
        let staged = Flush::stage();
        let mut entries = Vec::with_capacity(items.len());
        let mut buf = vec![0u8; (1 + items.len()) * BLOCK_SIZE];
        for (j, item) in items.iter().enumerate() {
            let dst = &mut buf[(1 + j) * BLOCK_SIZE..(2 + j) * BLOCK_SIZE];
            let mut entry = match item {
                Item::DirLog(data) => {
                    dst.copy_from_slice(data);
                    SummaryEntry::meta(EntryKind::DirLog, 0, time)
                }
                Item::Data { ino, bno } => {
                    let b = &self.blocks[&(*ino, *bno)];
                    dst.copy_from_slice(&b.data);
                    SummaryEntry::data(*ino, *bno as u32, self.imap.version(*ino), b.mtime)
                }
                Item::Ind { ino, key } => {
                    let e = &self.inds[&(*ino, *key)];
                    dst.copy_from_slice(&e.blk.encode());
                    match key {
                        IndKey::Single(k) => SummaryEntry {
                            kind: EntryKind::Indirect1,
                            ino: *ino,
                            offset: *k,
                            version: self.imap.version(*ino),
                            mtime: time,
                            csum: 0,
                        },
                        IndKey::Double => SummaryEntry {
                            kind: EntryKind::Indirect2,
                            ino: *ino,
                            offset: 0,
                            version: self.imap.version(*ino),
                            mtime: time,
                            csum: 0,
                        },
                    }
                }
                Item::InodeBlk { inos } => {
                    for (slot, &ino) in inos.iter().enumerate() {
                        let inode = &self.inodes[&ino].inode;
                        inode.encode_into(
                            &mut dst[slot * INODE_DISK_SIZE..(slot + 1) * INODE_DISK_SIZE],
                        );
                    }
                    SummaryEntry::meta(EntryKind::InodeBlock, 0, time)
                }
                Item::Imap(idx) => {
                    dst.copy_from_slice(&self.imap.encode_block(*idx));
                    SummaryEntry::meta(EntryKind::ImapBlock, *idx as u32, time)
                }
                Item::Usage(idx) => {
                    self.usage.block_written(*idx, addrs[j]);
                    dst.copy_from_slice(&self.usage.encode_block(*idx));
                    SummaryEntry::meta(EntryKind::UsageBlock, *idx as u32, time)
                }
            };
            // Per-block content checksum: roll-forward refuses to
            // replay a chunk whose blocks do not all verify, so a
            // torn segment write is indistinguishable from the end
            // of the log instead of being replayed as garbage.
            entry.csum = crate::codec::block_checksum(dst);
            self.stats.flush_copy_bytes += BLOCK_SIZE as u64;
            self.stats
                .add_log_bytes(entry_stats_kind(item), BLOCK_SIZE as u64, by_cleaner);
            entries.push(entry);
        }
        let summary = Summary {
            epoch: self.epoch,
            seq,
            write_time: time,
            entries,
        };
        buf[..BLOCK_SIZE].copy_from_slice(&summary.encode());
        let sealed = staged.seal_summary();
        self.stats.flush_copy_bytes += BLOCK_SIZE as u64;
        self.stats
            .add_log_bytes(BlockKind::Summary, BLOCK_SIZE as u64, by_cleaner);
        // Bounded retry: transient device errors must not abort a
        // flush that the cache can simply reissue.
        self.write_retry(start, &buf, WriteKind::Async)
            .map(|()| sealed.submitted())
    }

    fn maybe_evict_after_flush(&mut self) {
        // Reuse the normal eviction policy via a no-op block touch.
        let limit = (self.cfg.cache_limit_bytes / BLOCK_SIZE as u64) as usize;
        if self.blocks.len() <= limit {
            return;
        }
        let mut clean: Vec<((Ino, u64), u64)> = self
            .blocks
            .iter()
            // Pinned blocks (payload `Arc` shared with a reader snapshot
            // or an in-flight submission) stay; see `Lfs::maybe_evict_except`.
            .filter(|(_, b)| !b.dirty && !b.pinned())
            .map(|(&k, b)| (k, b.lru))
            .collect();
        // Only the `excess` least-recently-used clean blocks leave the
        // cache; a selection partition finds them in O(n) instead of
        // paying for a full sort of every clean entry.
        let excess = self.blocks.len() - limit;
        if clean.len() > excess {
            clean.select_nth_unstable_by_key(excess - 1, |&(_, lru)| lru);
            clean.truncate(excess);
        }
        for (k, _) in clean {
            self.blocks.remove(&k);
        }
    }

    /// Computes chunk placement for the per-group item counts in
    /// `counts` (one entry per temperature stream, hot first; with
    /// several streams a trailing metadata group that targets the hot
    /// stream's cursors) without mutating anything.
    ///
    /// Chunks rotate across shards: the chunk that will carry sequence
    /// number `s` prefers the write points of shard `s % nshards`,
    /// falling back to the next shards in wrap order only when the
    /// primary shard has neither head room nor a clean segment left.
    /// Recovery's fast path depends on this: if a shard's write point
    /// had room for another chunk, the chunk whose sequence maps to that
    /// shard *must* be there. Within a shard a chunk prefers its own
    /// stream's cursor and falls back to the other streams' cursors on
    /// that shard before trying the next shard — temperature is a
    /// placement *hint*; space is a guarantee. On a single volume with a
    /// single stream the rotation is the identity and the placement is
    /// exactly the historical single-write-point layout.
    fn layout(&self, counts: &[usize]) -> FsResult<LayoutPlan> {
        let seg_blocks = self.sb.seg_blocks;
        let nsh = self.nshards;
        let nstr = self.stream_count();
        let mut chunks = Vec::new();
        let mut allocated = Vec::new();
        let mut wps = self.write_points.clone();
        // Clean segments available for allocation, in index order, pooled
        // per shard and shared by that shard's stream cursors. Normal
        // writes must leave a couple of segments *per shard* for the
        // cleaner, which needs somewhere to copy live data even when the
        // log is full — without this reserve the file system can wedge
        // with free space it cannot reach.
        let mut avail: Vec<Vec<u32>> = vec![Vec::new(); nsh];
        for s in self.usage.clean_segs() {
            if !self.is_write_point_seg(s) {
                avail[self.shard_of_seg(s)].push(s);
            }
        }
        // Normal writes leave segments for the cleaner; the cleaner's own
        // relocations and a checkpoint's settle writes may use everything
        // (the selection budget guarantees they fit, and completing them
        // is what regenerates free space).
        let reserve = if self.cleaning || self.settling {
            0
        } else {
            CLEANER_RESERVE_SEGS
        };
        for pool in &mut avail {
            let keep = pool.len().saturating_sub(reserve);
            pool.truncate(keep);
            pool.reverse(); // Pop from the low end.
        }
        let mut ordinal = 0u64;
        for (g, &count) in counts.iter().enumerate() {
            // The metadata group (index `nstr`, present only with
            // several streams) targets the hot stream's cursors.
            let t = if g < nstr { g } else { 0 };
            let mut remaining = count;
            while remaining > 0 {
                let primary = ((self.write_seq + 1 + ordinal) % nsh as u64) as usize;
                let mut placed = false;
                'rows: for r in 0..nstr {
                    let row = (t + r) % nstr;
                    for k in 0..nsh {
                        let sh = (primary + k) % nsh;
                        let cur = self.cursor_index(row, sh);
                        loop {
                            let (seg, off) = wps[cur];
                            let space = seg_blocks.saturating_sub(off) as usize;
                            if space < 2 {
                                // No room for a summary plus at least one
                                // block.
                                match avail[sh].pop() {
                                    Some(s) => {
                                        allocated.push(s);
                                        wps[cur] = (s, 0);
                                        continue;
                                    }
                                    None => break, // next cursor
                                }
                            }
                            let take = remaining.min(space - 1).min(MAX_SUMMARY_ENTRIES);
                            chunks.push(ChunkPlan {
                                seg,
                                off,
                                n_items: take,
                                cursor: cur,
                            });
                            wps[cur] = (seg, off + 1 + take as u32);
                            remaining -= take;
                            placed = true;
                            break 'rows;
                        }
                    }
                }
                if !placed {
                    return Err(FsError::NoSpace);
                }
                ordinal += 1;
            }
        }
        Ok(LayoutPlan {
            chunks,
            allocated,
            end_wps: wps,
        })
    }

    /// Writes a checkpoint: flushes everything, lets the metadata settle,
    /// promotes cleaned segments, and writes the alternate checkpoint
    /// region (§4.1).
    pub fn checkpoint(&mut self) -> FsResult<()> {
        if self.nsop_depth > 0 {
            // A namespace operation is mid-flight: its directory-log
            // record is (or will be) in the log, but the matching
            // directory/inode mutations may be half-applied. A checkpoint
            // now would declare that intermediate state complete and bury
            // the repair record where roll-forward never replays it — so
            // only flush, and let the operation's own `after_mutation`
            // write the real checkpoint.
            return self.flush();
        }
        self.timed(|o| &o.checkpoint, |fs| fs.checkpoint_inner())
    }

    fn checkpoint_inner(&mut self) -> FsResult<()> {
        // Group commit: when nothing has reached the log since the last
        // checkpoint and *both* regions already record `write_seq` (see
        // `cp_seqs` — `format` writes the regions one at a time), there
        // is nothing to make durable. Concurrent `sync` callers amortize
        // into the one checkpoint already on disk: one log append + one
        // checkpoint barrier serves them all (§4.1's cost argument).
        if !self.needs_flush()
            && self.checkpoint_seq == self.write_seq
            && self.bytes_since_checkpoint == 0
            && self.cp_seqs[0] == Some(self.write_seq)
            && self.cp_seqs[1] == Some(self.write_seq)
        {
            self.stats.group_commits += 1;
            return Ok(());
        }
        // Every flush hands back the ordering token of its last chunk;
        // the settle loop keeps only the newest one, which is all the
        // fence below needs — a barrier drains *everything* in flight.
        let written = self.flush_tokened()?;
        // Let the inode map and usage table reach the log; their own
        // relocations are accounted quietly, so this settles quickly.
        // Settle writes may dip into the cleaner's reserve — finishing
        // this checkpoint is what turns pending segments clean again.
        self.settling = true;
        let settle = (|mut written: Flush<DataWritten>| -> FsResult<Flush<DataWritten>> {
            for _ in 0..4 {
                if !self.imap.has_dirty() && !self.usage.has_dirty() {
                    break;
                }
                written = self.flush_tokened()?;
            }
            Ok(written)
        })(written);
        self.settling = false;
        let written = settle?;
        // The heat snapshot rides only multi-stream checkpoints: a
        // single-stream image must stay byte-identical to the
        // pre-stream format, and has no routing to seed anyway.
        let heat = if self.stream_count() > 1 {
            self.heat.snapshot(self.clock, MAX_CHECKPOINT_HEAT)
        } else {
            Vec::new()
        };
        let cp = crate::checkpoint::Checkpoint {
            epoch: self.epoch,
            seq: self.write_seq,
            timestamp: self.clock,
            cur_seg: self.write_points[0].0,
            cur_off: self.write_points[0].1,
            extra_write_points: self.write_points[1..].to_vec(),
            imap_addrs: self.imap.block_addr_vec().to_vec(),
            usage_addrs: self.usage.block_addr_vec().to_vec(),
            live_bytes: self.usage.live_vec(),
            heat,
        };
        // The summary → checkpoint ordering edge: every queued log write
        // must have completed before the region claims to cover it. On a
        // synchronous device this is a no-op; on a ring it is the one
        // explicit barrier of the flush pipeline (direct reads and the
        // region writes below drain implicitly, but the edge deserves to
        // be spelled out — CrashDisk enumerates legal reorderings between
        // fences, never across them). The `written` token makes the edge
        // a type: `CheckpointReady` only exists on the far side of the
        // fence, and `write_region_ordered` will not run without it.
        let fence_res = written.fence(&mut self.dev).map_err(FsError::device);
        // Claim ring-side retry/giveup counts even when the fence itself
        // failed — a giveup *is* the fence failure, and the stats ledger
        // must reflect it on this call, not whenever the next flush runs.
        self.absorb_queue_errors();
        let ready = fence_res?;
        let region = self.sb.checkpoint_addrs()[self.next_cr];
        // Write the region payload-first, header-last (see
        // `Checkpoint::write_to`), retrying transient device errors so a
        // flaky disk does not abort the checkpoint.
        // The checkpoint image renders into the same reusable scratch
        // pool the flush path uses, so steady-state checkpoints allocate
        // nothing.
        let mut enc = std::mem::take(&mut self.scratch);
        cp.encode_into(&mut enc)?;
        let write_res = self.write_region_ordered(region, &enc, ready);
        self.scratch = enc;
        write_res?;
        let written_cr = self.next_cr;
        self.cp_seqs[written_cr] = Some(self.write_seq);
        self.next_cr = 1 - self.next_cr;
        self.checkpoint_seq = self.write_seq;
        self.bytes_since_checkpoint = 0;
        self.stats.checkpoints += 1;
        self.emit(|| lfs_obs::TraceEvent::Checkpoint {
            seq: self.write_seq,
            region: written_cr as u8,
        });
        // Only now do the cleaned segments become allocatable: the
        // checkpoint just written covers their relocations (the cleaner's
        // flush preceded it), so even a crash right after this point
        // recovers safely. The on-disk usage table still says PendingFree
        // until the next checkpoint; `mount` promotes such segments on
        // load, which is sound for the same reason — any checkpoint that
        // recorded PendingFree was written after the relocation flush.
        self.usage.promote_pending(self.checkpoint_seq);
        Ok(())
    }

    /// The retrying flavour of [`Checkpoint::write_ordered`]: payload
    /// blocks first, header block last, each through the bounded
    /// transient-error retry, gated on the same consumed
    /// [`CheckpointReady`] proof. `enc` is the encoded region image.
    ///
    /// [`Checkpoint::write_ordered`]: crate::checkpoint::Checkpoint::write_ordered
    fn write_region_ordered(
        &mut self,
        region: DiskAddr,
        enc: &[u8],
        ready: CheckpointReady,
    ) -> FsResult<()> {
        let _proof_consumed = ready;
        if enc.len() > BLOCK_SIZE {
            self.write_retry(region + 1, &enc[BLOCK_SIZE..], WriteKind::Sync)?;
        }
        self.write_retry(region, &enc[..BLOCK_SIZE], WriteKind::Sync)
    }
}

fn entry_stats_kind(item: &Item) -> BlockKind {
    item.stats_kind()
}
