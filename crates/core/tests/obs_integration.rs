//! Integration tests for the observability layer: trace events from real
//! file-system activity, and exact agreement between a metrics snapshot
//! and the in-memory statistics (the Table 2 / Table 4 cross-check).

use blockdev::{BlockDevice, MemDisk, SimDisk};
use lfs_core::{BlockKind, Lfs, LfsConfig};
use lfs_obs::Obs;
use vfs::FileSystem;

fn small_cfg() -> LfsConfig {
    LfsConfig::small()
}

/// Runs enough traffic to force flushes, checkpoints, and cleaning
/// (same overwrite-churn shape as `cleaner_reclaims_overwritten_segments`).
fn churn<D: blockdev::QueueDevice>(fs: &mut Lfs<D>) {
    let ino = fs.create("/churn").unwrap();
    for round in 0..200u32 {
        let data = vec![(round % 251) as u8; 64 * 1024];
        fs.write(ino, 0, &data).unwrap();
        fs.advance_clock(100);
    }
    fs.sync().unwrap();
    assert!(
        fs.stats().cleaner.segments_cleaned > 0,
        "churn failed to trigger the cleaner"
    );
}

#[test]
fn trace_captures_segment_writes_checkpoints_and_cleaning() {
    let disk = MemDisk::new(4096);
    let mut fs = Lfs::format(disk, small_cfg()).unwrap();
    fs.set_obs(Obs::recording(4096));
    churn(&mut fs);

    let counts = fs.obs().trace.counts();
    assert!(
        counts.get("segment_write").copied().unwrap_or(0) > 0,
        "no segment_write events: {counts:?}"
    );
    assert!(
        counts.get("checkpoint").copied().unwrap_or(0) > 0,
        "no checkpoint events: {counts:?}"
    );
    assert!(
        counts.get("cleaner_pass").copied().unwrap_or(0) > 0,
        "no cleaner_pass events — churn() did not trigger cleaning: {counts:?}"
    );

    // Every buffered event must export as parseable JSONL tagged with a
    // kind and a timestamp.
    let jsonl = fs.obs().trace.to_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        let v = serde_json::from_str(line).expect("trace line parses");
        assert!(v.get("kind").and_then(|k| k.as_str()).is_some());
        assert!(v.get("t").and_then(|t| t.as_u64()).is_some());
    }
}

/// The cross-check demanded by the issue: Table 2 and Table 4 figures
/// recomputed from a serialized metrics snapshot must equal the live
/// `LfsStats` getters *exactly* (bit-for-bit for the floats, since the
/// snapshot mirrors the same accumulators rather than re-deriving them).
#[test]
fn snapshot_reproduces_table2_and_table4_exactly() {
    let disk = SimDisk::new(4096, blockdev::DiskModel::wren_iv());
    let mut fs = Lfs::format(disk, small_cfg()).unwrap();
    fs.set_obs(Obs::recording(1024));
    churn(&mut fs);

    let snap = fs.metrics_snapshot().expect("registry attached");
    // Round-trip through JSON so the test also covers serialization.
    let snap =
        lfs_obs::MetricsSnapshot::from_json(&serde_json::from_str(&snap.to_json_string()).unwrap())
            .unwrap();

    let stats = fs.stats();

    // Table 4: per-kind log bytes and bandwidth shares.
    let mut total = 0u64;
    for kind in BlockKind::ALL {
        let new = snap.counter(&format!("lfs.log_bytes.{}", kind.slug()));
        let cleaner = snap.counter(&format!("lfs.cleaner_log_bytes.{}", kind.slug()));
        assert_eq!(new + cleaner, stats.log_bytes(kind), "kind {kind:?}");
        total += new + cleaner;
    }
    assert_eq!(total, stats.total_log_bytes());
    for kind in BlockKind::ALL {
        let new = snap.counter(&format!("lfs.log_bytes.{}", kind.slug()));
        let cleaner = snap.counter(&format!("lfs.cleaner_log_bytes.{}", kind.slug()));
        let share = if total == 0 {
            0.0
        } else {
            (new + cleaner) as f64 / total as f64
        };
        assert_eq!(
            share,
            stats.log_bandwidth_share(kind),
            "bandwidth share for {kind:?} must match bit-for-bit"
        );
    }

    // Table 2: cleaner figures and write cost.
    assert_eq!(
        snap.counter("lfs.cleaner.segments_cleaned"),
        stats.cleaner.segments_cleaned
    );
    assert_eq!(
        snap.counter("lfs.cleaner.segments_empty"),
        stats.cleaner.segments_empty
    );
    assert_eq!(
        snap.counter("lfs.cleaner.bytes_read"),
        stats.cleaner.bytes_read
    );
    assert_eq!(
        snap.counter("lfs.cleaner.bytes_written"),
        stats.cleaner.bytes_written
    );
    assert_eq!(snap.counter("lfs.cleaner.passes"), stats.cleaner.passes);
    assert_eq!(
        snap.gauge("lfs.cleaner.utilization_sum"),
        Some(stats.cleaner.utilization_sum),
        "utilization sum must survive the JSON round-trip exactly"
    );

    let new_bytes: u64 = BlockKind::ALL
        .iter()
        .map(|k| snap.counter(&format!("lfs.log_bytes.{}", k.slug())))
        .sum();
    let cleaner_written: u64 = BlockKind::ALL
        .iter()
        .map(|k| snap.counter(&format!("lfs.cleaner_log_bytes.{}", k.slug())))
        .sum();
    assert!(new_bytes > 0, "churn produced no new log bytes");
    let write_cost = (new_bytes + snap.counter("lfs.cleaner.bytes_read") + cleaner_written) as f64
        / new_bytes as f64;
    assert_eq!(
        write_cost,
        stats.write_cost(),
        "write cost recomputed from the snapshot must match exactly"
    );

    // Operation counters.
    assert_eq!(snap.counter("lfs.checkpoints"), stats.checkpoints);
    assert_eq!(snap.counter("lfs.partial_writes"), stats.partial_writes);
    assert_eq!(snap.counter("lfs.io_retries"), stats.io_retries);
    assert_eq!(snap.counter("lfs.io_giveups"), stats.io_giveups);

    // Device-side mirror.
    let d = fs.device().stats();
    assert_eq!(snap.counter("disk.busy_ns"), d.busy_ns);
    assert_eq!(snap.counter("disk.writes"), d.writes);

    // Latency histograms actually observed traffic, and the simulated
    // device's service times flowed into them.
    let writes = snap.hist("disk.write_ns").expect("disk.write_ns present");
    assert!(writes.count > 0);
    assert!(writes.sum > 0, "SimDisk service times must be non-zero");
    let op_write = snap.hist("op.write_ns").expect("op.write_ns present");
    assert!(op_write.count > 0);
    assert!(op_write.quantile(0.99).is_some());
}

#[test]
fn mount_with_obs_traces_roll_forward() {
    let disk = MemDisk::new(4096);
    let mut fs = Lfs::format(disk, small_cfg()).unwrap();
    fs.sync().unwrap();
    // Write past the checkpoint, flush the log, then "crash" by taking
    // the device back without a final checkpoint.
    fs.write_file("/after-checkpoint", b"roll me forward")
        .unwrap();
    fs.flush().unwrap();
    let disk = fs.into_device();

    let obs = Obs::recording(256);
    let mut fs = Lfs::mount_with_obs(disk, small_cfg(), obs).unwrap();
    let counts = fs.obs().trace.counts();
    assert!(
        counts.get("roll_forward").copied().unwrap_or(0) > 0,
        "mount found nothing to roll forward: {counts:?}"
    );
    let ino = fs.lookup("/after-checkpoint").unwrap();
    assert_eq!(fs.read_to_vec(ino).unwrap(), b"roll me forward");
}

#[test]
fn obs_off_by_default_and_snapshot_absent() {
    let disk = MemDisk::new(2048);
    let mut fs = Lfs::format(disk, small_cfg()).unwrap();
    fs.write_file("/f", b"quiet").unwrap();
    fs.sync().unwrap();
    assert!(!fs.obs().is_on());
    assert!(fs.metrics_snapshot().is_none());
    assert!(fs.obs().trace.counts().is_empty());
}
