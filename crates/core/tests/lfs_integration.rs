//! End-to-end tests for the log-structured file system.

use blockdev::{CrashDisk, MemDisk};
use lfs_core::{CleaningPolicy, Lfs, LfsConfig};
use vfs::{FileSystem, FsError};

/// A 16 MB memory disk.
fn disk() -> MemDisk {
    MemDisk::new(4096)
}

fn small_fs() -> Lfs<MemDisk> {
    Lfs::format(disk(), LfsConfig::small()).unwrap()
}

fn check_clean(fs: &mut Lfs<MemDisk>) {
    fs.sync().unwrap();
    let report = fs.check().unwrap();
    assert!(report.is_clean(), "fsck errors: {:#?}", report.errors);
}

#[test]
fn create_write_read_many_small_files() {
    let mut fs = small_fs();
    fs.mkdir("/d").unwrap();
    let mut inos = Vec::new();
    for i in 0..200 {
        let data = vec![i as u8; 1024];
        let ino = fs.write_file(&format!("/d/file{i}"), &data).unwrap();
        inos.push((ino, data));
    }
    for (ino, data) in &inos {
        assert_eq!(&fs.read_to_vec(*ino).unwrap(), data);
    }
    check_clean(&mut fs);
}

#[test]
fn large_file_through_indirect_blocks() {
    // A file spanning direct, single-indirect, and double-indirect
    // pointers: > (10 + 512) blocks.
    let mut fs = Lfs::format(MemDisk::new(8192), LfsConfig::small()).unwrap();
    let nblocks = 560u64;
    let ino = fs.create("/big").unwrap();
    let mut expect = Vec::new();
    for b in 0..nblocks {
        let chunk = vec![(b % 251) as u8; 4096];
        fs.write(ino, b * 4096, &chunk).unwrap();
        expect.extend_from_slice(&chunk);
    }
    fs.sync().unwrap();
    let back = fs.read_to_vec(ino).unwrap();
    assert_eq!(back.len(), expect.len());
    assert_eq!(back, expect);
    check_clean(&mut fs);
}

#[test]
fn sparse_file_reads_zero_in_holes() {
    let mut fs = small_fs();
    let ino = fs.create("/sparse").unwrap();
    // Write one block far into the file (inside the indirect range).
    fs.write(ino, 100 * 4096, b"end").unwrap();
    fs.sync().unwrap();
    let mut buf = [1u8; 16];
    assert_eq!(fs.read(ino, 50 * 4096, &mut buf).unwrap(), 16);
    assert!(buf.iter().all(|&b| b == 0));
    let mut tail = [0u8; 3];
    fs.read(ino, 100 * 4096, &mut tail).unwrap();
    assert_eq!(&tail, b"end");
    check_clean(&mut fs);
}

#[test]
fn overwrite_supersedes_old_blocks() {
    let mut fs = small_fs();
    let ino = fs.write_file("/f", &[1u8; 8192]).unwrap();
    fs.sync().unwrap();
    let live_before = fs.statfs().unwrap().live_bytes;
    fs.write(ino, 0, &[2u8; 8192]).unwrap();
    fs.sync().unwrap();
    let live_after = fs.statfs().unwrap().live_bytes;
    // Overwriting in place must not grow live data.
    assert_eq!(live_before, live_after);
    assert_eq!(fs.read_to_vec(ino).unwrap(), vec![2u8; 8192]);
    check_clean(&mut fs);
}

#[test]
fn unlink_frees_space() {
    let mut fs = small_fs();
    fs.sync().unwrap();
    let base = fs.statfs().unwrap().live_bytes;
    for i in 0..20 {
        fs.write_file(&format!("/f{i}"), &[7u8; 16384]).unwrap();
    }
    fs.sync().unwrap();
    assert!(fs.statfs().unwrap().live_bytes > base + 20 * 16384);
    for i in 0..20 {
        fs.unlink(&format!("/f{i}")).unwrap();
    }
    fs.sync().unwrap();
    let after = fs.statfs().unwrap().live_bytes;
    // All the file data must be dead again (metadata may differ slightly).
    assert!(
        after < base + 8 * 4096,
        "live after deletes: {after} vs {base}"
    );
    check_clean(&mut fs);
}

#[test]
fn truncate_shrink_extend_zeroes() {
    let mut fs = small_fs();
    let ino = fs.write_file("/t", b"abcdefgh").unwrap();
    fs.truncate(ino, 3).unwrap();
    fs.truncate(ino, 6).unwrap();
    assert_eq!(fs.read_to_vec(ino).unwrap(), b"abc\0\0\0");
    check_clean(&mut fs);
}

#[test]
fn truncate_to_zero_bumps_version() {
    let mut fs = small_fs();
    let ino = fs.write_file("/v", &[9u8; 4096]).unwrap();
    fs.sync().unwrap();
    fs.truncate(ino, 0).unwrap();
    fs.write(ino, 0, &[1u8; 100]).unwrap();
    fs.sync().unwrap();
    assert_eq!(fs.read_to_vec(ino).unwrap(), vec![1u8; 100]);
    check_clean(&mut fs);
}

#[test]
fn rename_and_hard_links() {
    let mut fs = small_fs();
    fs.mkdir("/a").unwrap();
    fs.mkdir("/b").unwrap();
    let ino = fs.write_file("/a/x", b"payload").unwrap();
    fs.link("/a/x", "/b/y").unwrap();
    assert_eq!(fs.metadata(ino).unwrap().nlink, 2);
    fs.rename("/a/x", "/b/z").unwrap();
    assert!(fs.lookup("/a/x").is_err());
    assert_eq!(fs.lookup("/b/z").unwrap(), ino);
    assert_eq!(fs.lookup("/b/y").unwrap(), ino);
    fs.unlink("/b/y").unwrap();
    assert_eq!(fs.metadata(ino).unwrap().nlink, 1);
    assert_eq!(fs.read_to_vec(ino).unwrap(), b"payload");
    check_clean(&mut fs);
}

#[test]
fn rename_replaces_target_file() {
    let mut fs = small_fs();
    let a = fs.write_file("/a", b"aaa").unwrap();
    fs.write_file("/b", b"bbb").unwrap();
    fs.rename("/a", "/b").unwrap();
    assert_eq!(fs.lookup("/b").unwrap(), a);
    assert_eq!(fs.read_to_vec(a).unwrap(), b"aaa");
    assert!(fs.lookup("/a").is_err());
    check_clean(&mut fs);
}

#[test]
fn directory_with_many_entries_spans_blocks() {
    let mut fs = Lfs::format(MemDisk::new(8192), LfsConfig::small()).unwrap();
    fs.mkdir("/big").unwrap();
    for i in 0..600 {
        fs.create(&format!("/big/file-with-a-longer-name-{i:05}"))
            .unwrap();
    }
    let entries = fs.readdir("/big").unwrap();
    assert_eq!(entries.len(), 600);
    // Sorted by name.
    let mut names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
    // Remove half, re-list.
    for i in (0..600).step_by(2) {
        fs.unlink(&format!("/big/file-with-a-longer-name-{i:05}"))
            .unwrap();
    }
    names = fs
        .readdir("/big")
        .unwrap()
        .iter()
        .map(|e| e.name.clone())
        .collect();
    assert_eq!(names.len(), 300);
    check_clean(&mut fs);
}

#[test]
fn rmdir_semantics() {
    let mut fs = small_fs();
    fs.mkdir("/d").unwrap();
    fs.create("/d/f").unwrap();
    assert!(matches!(fs.rmdir("/d"), Err(FsError::DirectoryNotEmpty)));
    fs.unlink("/d/f").unwrap();
    fs.rmdir("/d").unwrap();
    assert!(fs.lookup("/d").is_err());
    assert!(matches!(fs.rmdir("/d"), Err(FsError::NotFound)));
    check_clean(&mut fs);
}

#[test]
fn remount_preserves_everything() {
    let mut fs = small_fs();
    fs.mkdir("/dir1").unwrap();
    fs.mkdir("/dir1/sub").unwrap();
    let ino = fs.write_file("/dir1/sub/data", &[0x5a; 10_000]).unwrap();
    fs.write_file("/top", b"hello").unwrap();
    fs.sync().unwrap();
    let dev = fs.into_device();

    let mut fs2 = Lfs::mount(dev, LfsConfig::small()).unwrap();
    assert_eq!(fs2.lookup("/dir1/sub/data").unwrap(), ino);
    assert_eq!(fs2.read_to_vec(ino).unwrap(), vec![0x5a; 10_000]);
    let top = fs2.lookup("/top").unwrap();
    assert_eq!(fs2.read_to_vec(top).unwrap(), b"hello");
    assert_eq!(fs2.statfs().unwrap().num_files, 4);
    check_clean(&mut fs2);
}

#[test]
fn remount_twice_is_stable() {
    let mut fs = small_fs();
    fs.write_file("/f", b"x").unwrap();
    fs.sync().unwrap();
    let dev = fs.into_device();
    let fs2 = Lfs::mount(dev, LfsConfig::small()).unwrap();
    let dev = fs2.into_device();
    let mut fs3 = Lfs::mount(dev, LfsConfig::small()).unwrap();
    let ino = fs3.lookup("/f").unwrap();
    assert_eq!(fs3.read_to_vec(ino).unwrap(), b"x");
    check_clean(&mut fs3);
}

#[test]
fn cleaner_reclaims_overwritten_segments() {
    // Small disk; write and overwrite until the cleaner must run.
    let mut fs = Lfs::format(MemDisk::new(4096), LfsConfig::small()).unwrap();
    let ino = fs.create("/churn").unwrap();
    // 16 MB disk, ~60 KB segments: overwrite a 256 KB file many times.
    for round in 0..200u32 {
        let data = vec![(round % 251) as u8; 64 * 1024];
        fs.write(ino, 0, &data).unwrap();
    }
    let stats = *fs.stats();
    assert!(
        stats.cleaner.segments_cleaned > 0,
        "cleaner never ran: {stats:?}"
    );
    assert_eq!(fs.read_to_vec(ino).unwrap(), vec![199u8; 64 * 1024]);
    check_clean(&mut fs);
}

#[test]
fn cleaner_preserves_cold_data() {
    let mut fs = Lfs::format(MemDisk::new(1536), LfsConfig::small()).unwrap();
    // Cold files written once.
    let mut cold = Vec::new();
    for i in 0..30 {
        let data = vec![i as u8; 8192];
        let ino = fs.write_file(&format!("/cold{i}"), &data).unwrap();
        cold.push((ino, data));
    }
    // Hot churn to force cleaning. Rotate the offset so each round
    // dirties fresh blocks — overwrites of still-dirty blocks would just
    // coalesce in the write buffer and never reach the log.
    let hot = fs.create("/hot").unwrap();
    for round in 0..300u32 {
        let off = (round % 8) as u64 * 32 * 1024;
        fs.write(hot, off, &vec![(round % 256) as u8; 32 * 1024])
            .unwrap();
    }
    assert!(fs.stats().cleaner.segments_cleaned > 0);
    for (ino, data) in &cold {
        assert_eq!(
            &fs.read_to_vec(*ino).unwrap(),
            data,
            "cold file {ino} damaged"
        );
    }
    check_clean(&mut fs);
}

#[test]
fn greedy_policy_also_works() {
    let mut fs = Lfs::format(MemDisk::new(1024), LfsConfig::small().greedy()).unwrap();
    let ino = fs.create("/churn").unwrap();
    for round in 0..150u32 {
        fs.write(ino, 0, &vec![(round % 251) as u8; 64 * 1024])
            .unwrap();
    }
    assert!(fs.stats().cleaner.segments_cleaned > 0);
    assert_eq!(fs.config().policy, CleaningPolicy::Greedy);
    check_clean(&mut fs);
}

#[test]
fn no_space_is_reported_not_corrupted() {
    // A tiny disk fills up; writes must fail with NoSpace and the data
    // already written must survive.
    let mut fs = Lfs::format(MemDisk::new(512), LfsConfig::small()).unwrap();
    let mut written = Vec::new();
    let mut failed = false;
    for i in 0..200 {
        match fs.write_file(&format!("/f{i}"), &vec![i as u8; 16384]) {
            Ok(ino) => written.push((i, ino)),
            Err(FsError::NoSpace) => {
                failed = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(failed, "disk never filled");
    // Everything fully written must still read back. (The failed write
    // may have been partially applied, which POSIX allows.)
    for (i, ino) in &written[..written.len() - 1] {
        assert_eq!(fs.read_to_vec(*ino).unwrap(), vec![*i as u8; 16384]);
    }
}

#[test]
fn crash_without_sync_loses_tail_but_stays_consistent() {
    let mut cfg = LfsConfig::small();
    cfg.roll_forward = false;
    let crash = CrashDisk::new(4096);
    let mut fs = Lfs::format(crash, cfg).unwrap();
    fs.write_file("/durable", b"safe").unwrap();
    fs.sync().unwrap();
    fs.write_file("/volatile", b"gone").unwrap();
    // Crash now (no sync).
    let image = {
        let crash: &CrashDisk = fs.device();
        crash.image_after(crash.num_writes()).unwrap()
    };
    let mut fs2 = Lfs::mount(image, cfg).unwrap();
    let d = fs2.lookup("/durable").unwrap();
    assert_eq!(fs2.read_to_vec(d).unwrap(), b"safe");
    // Without roll-forward, the unsynced file is gone.
    assert!(fs2.lookup("/volatile").is_err());
    let report = fs2.check().unwrap();
    assert!(report.is_clean(), "{:#?}", report.errors);
}

#[test]
fn roll_forward_recovers_flushed_but_not_checkpointed_data() {
    let cfg = LfsConfig::small();
    let crash = CrashDisk::new(4096);
    let mut fs = Lfs::format(crash, cfg).unwrap();
    fs.write_file("/durable", b"safe").unwrap();
    fs.sync().unwrap();
    // Write and flush (to the log) but do NOT checkpoint.
    let v = fs.write_file("/recovered", &[0xab; 9000]).unwrap();
    fs.flush().unwrap();
    let image = {
        let crash: &CrashDisk = fs.device();
        crash.image_after(crash.num_writes()).unwrap()
    };
    let mut fs2 = Lfs::mount(image, cfg).unwrap();
    let r = fs2.lookup("/recovered").unwrap();
    assert_eq!(r, v);
    assert_eq!(fs2.read_to_vec(r).unwrap(), vec![0xab; 9000]);
    let report = fs2.check().unwrap();
    assert!(report.is_clean(), "{:#?}", report.errors);
}

#[test]
fn roll_forward_removes_half_finished_creates() {
    // Crash at every single write boundary of a small workload; every
    // crash image must mount to a consistent file system.
    let cfg = LfsConfig::small();
    let crash = CrashDisk::new(2048);
    let mut fs = Lfs::format(crash, cfg).unwrap();
    fs.device_mut().checkpoint_baseline();
    fs.mkdir("/d").unwrap();
    fs.write_file("/d/a", b"aaaa").unwrap();
    fs.flush().unwrap();
    fs.write_file("/d/b", b"bbbb").unwrap();
    fs.rename("/d/a", "/d/c").unwrap();
    fs.unlink("/d/b").unwrap();
    fs.sync().unwrap();

    let crash_ref: &CrashDisk = fs.device();
    let n = crash_ref.num_writes();
    for cut in 0..=n {
        let image = crash_ref.image_after(cut).unwrap();
        let mut fs2 = match Lfs::mount(image, cfg) {
            Ok(f) => f,
            Err(e) => panic!("cut {cut}/{n}: mount failed: {e}"),
        };
        let report = fs2.check().unwrap();
        assert!(
            report.is_clean(),
            "cut {cut}/{n}: fsck errors: {:#?}",
            report.errors
        );
    }
    // The full image must contain the final state.
    let image = crash_ref.image_after(n).unwrap();
    let mut fs3 = Lfs::mount(image, cfg).unwrap();
    assert!(fs3.lookup("/d/c").is_ok());
    assert!(fs3.lookup("/d/a").is_err());
    assert!(fs3.lookup("/d/b").is_err());
}

#[test]
fn atomic_rename_under_crashes() {
    // After a rename, any crash point shows exactly one of: old name, new
    // name — never both, never neither.
    let cfg = LfsConfig::small();
    let crash = CrashDisk::new(2048);
    let mut fs = Lfs::format(crash, cfg).unwrap();
    let ino = fs.write_file("/old", b"content").unwrap();
    fs.sync().unwrap();
    fs.device_mut().checkpoint_baseline();
    fs.rename("/old", "/new").unwrap();
    fs.sync().unwrap();

    let crash_ref: &CrashDisk = fs.device();
    let n = crash_ref.num_writes();
    for cut in 0..=n {
        let image = crash_ref.image_after(cut).unwrap();
        let mut fs2 = Lfs::mount(image, cfg).unwrap();
        let old = fs2.lookup("/old").is_ok();
        let new = fs2.lookup("/new").is_ok();
        assert!(
            old ^ new,
            "cut {cut}/{n}: old={old} new={new} — rename not atomic"
        );
        let name = if old { "/old" } else { "/new" };
        let i = fs2.lookup(name).unwrap();
        assert_eq!(i, ino);
        assert_eq!(fs2.read_to_vec(i).unwrap(), b"content");
    }
}

#[test]
fn stats_track_write_cost_components() {
    let mut fs = small_fs();
    for i in 0..50 {
        fs.write_file(&format!("/f{i}"), &[1u8; 4096]).unwrap();
    }
    fs.sync().unwrap();
    let s = fs.stats();
    assert!(s.new_log_bytes() > 50 * 4096);
    assert!(s.write_cost() >= 1.0);
    assert!(s.log_bytes(lfs_core::BlockKind::Data) >= 50 * 4096);
    assert!(s.log_bytes(lfs_core::BlockKind::Summary) > 0);
    assert!(s.log_bytes(lfs_core::BlockKind::Inode) > 0);
}

#[test]
fn segment_snapshot_reflects_usage() {
    let mut fs = small_fs();
    fs.write_file("/f", &[1u8; 65536]).unwrap();
    fs.sync().unwrap();
    let snap = fs.segment_snapshot();
    assert_eq!(snap.len(), fs.superblock().nsegments as usize);
    let used: f64 = snap.iter().map(|(_, u)| u).sum();
    assert!(used > 0.0);
}

#[test]
fn read_write_at_odd_offsets() {
    let mut fs = small_fs();
    let ino = fs.create("/odd").unwrap();
    // Overlapping unaligned writes.
    fs.write(ino, 100, &[1u8; 5000]).unwrap();
    fs.write(ino, 4000, &[2u8; 3000]).unwrap();
    fs.write(ino, 0, &[3u8; 50]).unwrap();
    let mut expect = vec![0u8; 7000];
    expect[100..5100].fill(1);
    expect[4000..7000].fill(2);
    expect[0..50].fill(3);
    assert_eq!(fs.read_to_vec(ino).unwrap(), expect);
    // Unaligned read.
    let mut buf = vec![0u8; 1234];
    let n = fs.read(ino, 3999, &mut buf).unwrap();
    assert_eq!(n, 1234);
    assert_eq!(&buf[..], &expect[3999..3999 + 1234]);
    check_clean(&mut fs);
}
