//! File-system-level tests for the submission-queue device model:
//! on-disk image parity between direct and queued devices, group-commit
//! amortization of idle `sync` calls, the paced / bounded-staging
//! behaviour of the background cleaner, and the ring's error paths —
//! how retries and giveups fold into [`LfsStats`], and what a crash cut
//! between submit and fence leaves on disk.

use blockdev::{BlockDevice, CrashDisk, FaultDisk, FaultPlan, MemDisk, QueueDevice, QueuedDev};
use lfs_core::{InvariantSuite, Lfs, LfsConfig};
use lfs_obs::Obs;
use vfs::FileSystem;

/// A mixed workload: creates, multi-block writes, overwrites, deletes,
/// and interior syncs — enough traffic to force several flushes.
fn workload<D: QueueDevice>(fs: &mut Lfs<D>) {
    for i in 0..40u32 {
        let ino = fs.create(&format!("/f{i}")).unwrap();
        let data = vec![(i % 251) as u8; 3 * 4096 + 123];
        fs.write(ino, 0, &data).unwrap();
        fs.advance_clock(50);
        if i % 3 == 0 {
            fs.sync().unwrap();
        }
        if i % 7 == 0 && i > 0 {
            fs.unlink(&format!("/f{}", i / 2)).unwrap();
        }
    }
    fs.sync().unwrap();
}

/// The tentpole equivalence claim, at the file-system level: the same
/// workload against a direct device and against the same device behind
/// a depth-8 submission queue must produce a bit-identical disk image
/// and identical mechanical device statistics. Queue depth may only
/// change *when* requests are serviced, never *what* reaches the disk.
#[test]
fn queued_device_image_and_stats_parity() {
    let cfg = LfsConfig::small();

    let mut direct = Lfs::format(MemDisk::new(4096), cfg).unwrap();
    workload(&mut direct);

    let mut queued = Lfs::format(QueuedDev::new(MemDisk::new(4096), 8), cfg).unwrap();
    workload(&mut queued);

    // Same files readable through both.
    for i in 0..40u32 {
        let a = direct.lookup(&format!("/f{i}"));
        let b = queued.lookup(&format!("/f{i}"));
        match (a, b) {
            (Ok(ia), Ok(ib)) => {
                assert_eq!(
                    direct.read_to_vec(ia).unwrap(),
                    queued.read_to_vec(ib).unwrap(),
                    "content of /f{i} diverged"
                );
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("lookup of /f{i} diverged: direct={a:?} queued={b:?}"),
        }
    }

    // The queue actually carried traffic (this was not a degenerate
    // pass-through run) and never dropped or abandoned anything.
    let q = queued.device().queue_stats();
    assert!(q.submitted > 0, "no queued submissions recorded");
    assert_eq!(q.submitted, q.completed);
    assert!(q.fences > 0, "checkpoints must fence the ring");
    assert_eq!(q.giveups, 0);
    assert_eq!(queued.stats().io_giveups, 0);

    let d = direct.into_device();
    let qd = queued.into_device().into_inner();
    assert_eq!(d.stats().writes, qd.stats().writes);
    assert_eq!(d.stats().bytes_written, qd.stats().bytes_written);
    assert_eq!(d.stats().reads, qd.stats().reads);
    assert_eq!(d.stats().bytes_read, qd.stats().bytes_read);
    assert_eq!(d.image(), qd.image(), "disk images diverged");
}

/// Idle `sync` calls group-commit: once both checkpoint regions record
/// the current log position, `sync` returns without touching the disk.
/// A region that is stale (the alternate not yet rewritten) still gets
/// its own checkpoint first — group commit never weakens the
/// dual-region invariant.
#[test]
fn group_commit_amortizes_idle_syncs() {
    let mut fs = Lfs::format(MemDisk::new(2048), LfsConfig::small()).unwrap();
    // format wrote both regions at the same sequence, so the very first
    // idle sync is already free.
    let w0 = fs.device().stats().writes;
    let cp0 = fs.stats().checkpoints;
    fs.sync().unwrap();
    assert_eq!(fs.stats().group_commits, 1);
    assert_eq!(
        fs.stats().checkpoints,
        cp0,
        "group commit must not checkpoint"
    );
    assert_eq!(
        fs.device().stats().writes,
        w0,
        "group commit must not write"
    );

    // New data: the next sync is a real checkpoint (one region)...
    fs.write_file("/f", b"dirty again").unwrap();
    fs.sync().unwrap();
    assert_eq!(fs.stats().checkpoints, cp0 + 1);
    assert_eq!(fs.stats().group_commits, 1);
    // ...the one after refreshes the alternate region (still real)...
    fs.sync().unwrap();
    assert_eq!(fs.stats().checkpoints, cp0 + 2);
    assert_eq!(fs.stats().group_commits, 1);
    // ...and only then do further idle syncs amortize away.
    let w1 = fs.device().stats().writes;
    fs.sync().unwrap();
    fs.sync().unwrap();
    assert_eq!(fs.stats().checkpoints, cp0 + 2);
    assert_eq!(fs.stats().group_commits, 3);
    assert_eq!(fs.device().stats().writes, w1);

    // The image stays mountable after a run that group-committed.
    let ino = fs.lookup("/f").unwrap();
    assert_eq!(fs.read_to_vec(ino).unwrap(), b"dirty again");
    let disk = fs.into_device();
    let mut fs = Lfs::mount(disk, LfsConfig::small()).unwrap();
    let ino = fs.lookup("/f").unwrap();
    assert_eq!(fs.read_to_vec(ino).unwrap(), b"dirty again");
}

/// Group commit composes with the queue: a queued device sees no
/// submissions at all for an idle sync.
#[test]
fn group_commit_skips_queue_traffic() {
    let mut fs = Lfs::format(QueuedDev::new(MemDisk::new(2048), 8), LfsConfig::small()).unwrap();
    fs.write_file("/f", b"x").unwrap();
    fs.sync().unwrap();
    fs.sync().unwrap(); // refresh the alternate region
    let q0 = fs.device().queue_stats();
    let w0 = fs.device().inner().stats().writes;
    fs.sync().unwrap();
    assert!(fs.stats().group_commits >= 1);
    let q1 = fs.device().queue_stats();
    assert_eq!(q0.submitted, q1.submitted);
    assert_eq!(q0.fences, q1.fences);
    assert_eq!(fs.device().inner().stats().writes, w0);
}

/// Overwrite churn that forces the cleaner, shared by the pacing tests.
fn churn<D: QueueDevice>(fs: &mut Lfs<D>) {
    let ino = fs.create("/churn").unwrap();
    for round in 0..200u32 {
        let data = vec![(round % 251) as u8; 64 * 1024];
        fs.write(ino, 0, &data).unwrap();
        fs.advance_clock(100);
    }
    fs.sync().unwrap();
}

/// With `clean_pace_segs` set, the cleaner reclaims the same space in
/// more, smaller installments instead of one low-to-high-water burst —
/// the knob that lets background cleaning interleave with foreground
/// traffic.
#[test]
fn paced_cleaner_runs_bounded_installments() {
    let mut unpaced_fs = Lfs::format(MemDisk::new(4096), LfsConfig::small()).unwrap();
    churn(&mut unpaced_fs);
    let unpaced = *unpaced_fs.stats();
    assert!(unpaced.cleaner.segments_cleaned > 0, "churn never cleaned");

    let mut paced_fs = Lfs::format(MemDisk::new(4096), LfsConfig::small().paced(1)).unwrap();
    churn(&mut paced_fs);
    let paced = *paced_fs.stats();

    assert!(
        paced.cleaner.segments_cleaned > 0,
        "paced churn never cleaned"
    );
    assert!(
        paced.cleaner.passes > unpaced.cleaner.passes,
        "pacing must split cleaning into more installments: paced {} vs unpaced {}",
        paced.cleaner.passes,
        unpaced.cleaner.passes
    );
    // Pacing changes when cleaning happens, not whether the data
    // survives it.
    let ino = paced_fs.lookup("/churn").unwrap();
    let data = paced_fs.read_to_vec(ino).unwrap();
    assert_eq!(data.len(), 64 * 1024);
    assert!(data.iter().all(|&b| b == 199)); // last round: 199 % 251
}

/// A cleaning pass over many segments must flush incrementally — at
/// most about one segment of staged live data may accumulate before
/// the pass gives the log head back — rather than staging every
/// candidate's live blocks and holding the write point across the
/// whole copy loop.
#[test]
fn cleaner_bounds_staged_data_per_flush() {
    let mut cfg = LfsConfig::small();
    cfg.segs_per_clean = 8;
    let mut fs = Lfs::format(MemDisk::new(4096), cfg).unwrap();
    fs.set_obs(Obs::recording(64));

    // 16 files of 8 blocks each, then delete every other: many
    // half-live segments for one wide pass to relocate.
    for i in 0..16u32 {
        let data = vec![(i + 1) as u8; 8 * 4096];
        fs.write_file(&format!("/f{i}"), &data).unwrap();
    }
    fs.sync().unwrap();
    for i in (0..16u32).step_by(2) {
        fs.unlink(&format!("/f{i}")).unwrap();
    }
    fs.sync().unwrap();

    let flushes = |fs: &Lfs<MemDisk>| {
        fs.metrics_snapshot()
            .and_then(|s| s.hist("op.flush_ns").map(|h| h.count))
            .unwrap_or(0)
    };
    let before = flushes(&fs);
    let cleaned = fs.clean_pass().unwrap();
    assert!(
        cleaned >= 4,
        "workload too small to exercise multi-segment staging (cleaned {cleaned})"
    );
    let delta = flushes(&fs) - before;
    assert!(
        delta >= 2,
        "a {cleaned}-segment pass must flush incrementally, got {delta} flush(es)"
    );

    // Survivors intact after the incremental pass.
    for i in (1..16u32).step_by(2) {
        let ino = fs.lookup(&format!("/f{i}")).unwrap();
        let data = fs.read_to_vec(ino).unwrap();
        assert!(data.iter().all(|&b| b == (i + 1) as u8), "/f{i} corrupted");
    }
}

/// A faulty device behind the ring, with faults off so formatting and
/// the baseline workload run clean; tests flip the plan on afterwards.
fn faulty_queued_fs(seed: u64, depth: usize) -> Lfs<QueuedDev<FaultDisk<MemDisk>>> {
    let disk = FaultDisk::new(MemDisk::new(2048), FaultPlan::new(seed));
    let mut fs = Lfs::format(QueuedDev::new(disk, depth), LfsConfig::small()).unwrap();
    fs.write_file("/base", b"stable ground").unwrap();
    fs.sync().unwrap();
    fs
}

/// A fault burst that outlasts the ring's retry budget becomes a
/// giveup: the checkpoint's fence surfaces the error, and the very same
/// call folds the ring's unclaimed retry/giveup counts into [`LfsStats`]
/// — a later probe of the device finds nothing left to claim.
#[test]
fn ring_giveup_mid_trace_folds_into_stats_once() {
    let mut fs = faulty_queued_fs(11, 8);
    {
        let plan = fs.device_mut().inner_mut().plan_mut();
        plan.write_fault_rate = 1.0;
        plan.transient_failures = 32; // outlasts the ring's retry budget
    }
    fs.write_file("/doomed", &[0x5a; 3 * 4096]).unwrap();
    assert!(fs.sync().is_err(), "fence over a giveup must surface");

    let stats = *fs.stats();
    assert_eq!(stats.io_giveups, 1, "one submission exhausted its budget");
    assert!(
        stats.io_retries >= 1,
        "the giveup's earlier attempts count as retries"
    );
    assert!(stats.degraded(), "a giveup marks the fs degraded");
    // `absorb_queue_errors` already claimed the ring's counters — the
    // device has nothing left for a second accounting.
    assert_eq!(fs.device_mut().take_queue_errors(), (0, 0));

    // The giveup lost in-flight log writes, but nothing durable: the
    // fence failed *before* the checkpoint regions were touched, so the
    // on-disk image still recovers to the last fenced state — `/base`
    // intact, `/doomed` simply never happened.
    let mut suite = InvariantSuite::new();
    suite.expect_exact("/base", b"stable ground".to_vec());
    suite.expect_history("/doomed", vec![vec![0x5a; 3 * 4096]]);
    let img = fs.device().inner().inner().image().to_vec();
    let (report, rfs) = suite.verify_device(MemDisk::from_image(img), LfsConfig::small());
    assert!(report.is_ok(), "post-giveup image unclean: {report}");
    let mut rfs = rfs.unwrap();
    assert!(
        rfs.lookup("/doomed").is_err(),
        "/doomed's writes died in the ring; it must not be visible"
    );
}

/// Fault bursts shorter than the retry budget stay invisible to the
/// caller: the ring absorbs them, the flush succeeds, and the attempts
/// surface only as `io_retries` — never as giveups or degradation.
#[test]
fn transient_ring_retries_fold_into_io_retries() {
    let mut fs = faulty_queued_fs(23, 8);
    {
        let plan = fs.device_mut().inner_mut().plan_mut();
        plan.write_fault_rate = 1.0;
        plan.transient_failures = 2; // within the ring's retry budget
    }
    fs.write_file("/survivor", &[0x7b; 2 * 4096]).unwrap();
    fs.sync().unwrap();

    let stats = *fs.stats();
    assert!(
        stats.io_retries >= 2,
        "absorbed ring retries must reach the stats ledger, got {}",
        stats.io_retries
    );
    assert_eq!(stats.io_giveups, 0);
    assert!(!stats.degraded(), "retries alone must not degrade the fs");
    assert_eq!(fs.device_mut().take_queue_errors(), (0, 0));

    let ino = fs.lookup("/survivor").unwrap();
    assert_eq!(fs.read_to_vec(ino).unwrap(), vec![0x7b; 2 * 4096]);
}

/// A crash cut between submit and fence: a flush parks its gather
/// submissions in the ring, so none of them reach the journal beneath —
/// the crash image is exactly the last fenced state, and recovery from
/// it is clean (the parked file simply never happened).
#[test]
fn crash_cut_between_submit_and_fence_recovers_clean() {
    let cfg = LfsConfig::small();
    let mut suite = InvariantSuite::new();
    let mut fs = Lfs::format(QueuedDev::new(CrashDisk::new(2048), 4), cfg).unwrap();
    for i in 0..3u8 {
        let content = vec![b'a' + i; 1500];
        suite.expect_exact(format!("/base{i}"), content.clone());
        fs.write_file(&format!("/base{i}"), &content).unwrap();
    }
    fs.sync().unwrap();
    let fenced_writes = fs.device().inner().num_writes();
    assert_eq!(fs.device().in_flight(), 0, "fence must drain the ring");

    // Dirty data, flushed but never fenced: the chunk is submitted to
    // the ring and parked there.
    suite.expect_history("/parked", vec![vec![0x42; 6000]]);
    fs.write_file("/parked", &[0x42; 6000]).unwrap();
    fs.flush().unwrap();
    assert!(
        fs.device().in_flight() > 0,
        "an unfenced flush must leave submissions parked"
    );
    assert_eq!(
        fs.device().inner().num_writes(),
        fenced_writes,
        "parked submissions must not reach the journal"
    );

    // Crash now: the journal image *is* the crash state — parked
    // submissions evaporate with the ring.
    let crash_image = fs.device().inner().image_now();
    let (report, rfs) = suite.verify_device(crash_image, cfg);
    assert!(report.is_ok(), "crash-cut state unclean: {report}");
    let mut rfs = rfs.unwrap();
    assert!(rfs.lookup("/parked").is_err(), "/parked predates any fence");

    // The original fs still holds the data in memory; a later sync
    // fences it through, and the full image then shows the file.
    fs.sync().unwrap();
    assert!(fs.device().inner().num_writes() > fenced_writes);
    let (report, rfs) = suite.verify_device(fs.device().inner().image_now(), cfg);
    assert!(report.is_ok(), "post-fence image unclean: {report}");
    let mut rfs = rfs.unwrap();
    let ino = rfs.lookup("/parked").unwrap();
    assert_eq!(rfs.read_to_vec(ino).unwrap(), vec![0x42; 6000]);
}
