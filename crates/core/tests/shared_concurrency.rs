//! Tests for the concurrent front-end (`SharedLfs`).
//!
//! Four contracts:
//!
//! 1. **Single-client equivalence** — a single client driving `SharedLfs`
//!    produces a byte-identical disk image to the same trace on a plain
//!    `Lfs`. The concurrent front-end is a pure wrapper: lock-free reads,
//!    deferred atimes, and the settled-sync fast path must not change a
//!    single on-disk byte when there is no concurrency.
//! 2. **Stats consistency** — `stats()` snapshots taken while other
//!    threads write, flush, and checkpoint are never torn: cumulative
//!    counters never go backwards between successive snapshots.
//! 3. **Eviction vs pinned reads** — publishing a block's `Arc` to the
//!    shared read cache pins it; cache-pressure evictions must skip
//!    pinned blocks and the running dirty/clean counters must never
//!    diverge from the cache's true state (`assert_running_counts`).
//! 4. **Per-block atomicity** — a reader racing a writer sees any block
//!    either entirely-old or entirely-new, never a torn mix.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use blockdev::MemDisk;
use lfs_core::{Lfs, LfsConfig, SharedLfs};
use proptest::prelude::*;
use vfs::{FileSystem, Ino};

const DISK_BLOCKS: u64 = 4096; // 16 MB

const NFILES: u8 = 3;

#[derive(Clone, Debug)]
enum Op {
    Write {
        file: u8,
        offset: u32,
        len: u16,
        fill: u8,
    },
    Truncate {
        file: u8,
        size: u32,
    },
    Read {
        file: u8,
        offset: u32,
        len: u16,
    },
    /// Unlink + recreate: forces inode reuse, the stale-snapshot hazard
    /// the per-inode generation counters exist for.
    Recreate {
        file: u8,
    },
    Sync,
    DropCaches,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..NFILES, 0u32..200_000, 1u16..12_288, any::<u8>()).prop_map(
            |(file, offset, len, fill)| Op::Write {
                file,
                offset,
                len,
                fill
            }
        ),
        (0..NFILES, 0u32..200_000).prop_map(|(file, size)| Op::Truncate { file, size }),
        (0..NFILES, 0u32..220_000, 1u16..16_384).prop_map(|(file, offset, len)| Op::Read {
            file,
            offset,
            len
        }),
        (0..NFILES, 0u32..220_000, 1u16..16_384).prop_map(|(file, offset, len)| Op::Read {
            file,
            offset,
            len
        }),
        (0..NFILES).prop_map(|file| Op::Recreate { file }),
        Just(Op::Sync),
        Just(Op::DropCaches),
    ]
}

/// Applies one op through the `FileSystem` trait (so the identical code
/// path drives both the plain and the shared instance); returns read
/// bytes for comparison.
fn apply<F: FileSystem>(fs: &mut F, inos: &mut [Ino], op: &Op) -> Option<Vec<u8>> {
    match op {
        Op::Write {
            file,
            offset,
            len,
            fill,
        } => {
            let data = vec![*fill; *len as usize];
            fs.write(inos[*file as usize], *offset as u64, &data)
                .expect("write");
            None
        }
        Op::Truncate { file, size } => {
            fs.truncate(inos[*file as usize], *size as u64)
                .expect("truncate");
            None
        }
        Op::Read { file, offset, len } => {
            let mut buf = vec![0u8; *len as usize];
            let n = fs
                .read(inos[*file as usize], *offset as u64, &mut buf)
                .expect("read");
            buf.truncate(n);
            Some(buf)
        }
        Op::Recreate { file } => {
            let path = format!("/f{file}");
            fs.unlink(&path).expect("unlink");
            inos[*file as usize] = fs.create(&path).expect("recreate");
            None
        }
        Op::Sync => {
            fs.sync().expect("sync");
            None
        }
        Op::DropCaches => None, // applied out-of-band (API differs)
    }
}

fn setup<F: FileSystem>(fs: &mut F) -> Vec<Ino> {
    (0..NFILES)
        .map(|i| fs.create(&format!("/f{i}")).expect("create"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The acceptance-criterion property: depth-1, single-client traces
    /// leave bit-identical disk images with and without the concurrent
    /// front-end.
    #[test]
    fn single_client_shared_matches_plain_bit_for_bit(
        ops in proptest::collection::vec(op_strategy(), 1..50),
    ) {
        let cfg = LfsConfig::small();
        let mut plain = Lfs::format(MemDisk::new(DISK_BLOCKS), cfg).expect("format");
        let mut shared =
            SharedLfs::format(MemDisk::new(DISK_BLOCKS), cfg).expect("format");
        let mut inos_p = setup(&mut plain);
        let mut inos_s = setup(&mut shared);

        for op in &ops {
            if matches!(op, Op::DropCaches) {
                plain.drop_caches();
                shared.drop_caches();
                continue;
            }
            let out_p = apply(&mut plain, &mut inos_p, op);
            let out_s = apply(&mut shared, &mut inos_s, op);
            prop_assert_eq!(&out_p, &out_s, "read bytes diverged on {:?}", op);
        }
        prop_assert_eq!(&inos_p, &inos_s, "inode allocation diverged");

        plain.sync().expect("final sync");
        shared.sync_all().expect("final sync");
        let plain_dev = plain.into_device();
        let shared_dev = shared
            .into_inner()
            .unwrap_or_else(|_| panic!("outstanding SharedLfs handles"))
            .into_device();
        prop_assert_eq!(plain_dev.image(), shared_dev.image());
    }

    /// Satellite: published read `Arc`s pin blocks in the writer cache;
    /// random traces under a pathologically small cache limit must keep
    /// the running dirty/clean eviction counters exactly consistent
    /// (`assert_running_counts` recounts from scratch), and every read
    /// must still return the right bytes.
    #[test]
    fn eviction_under_pinned_reads_keeps_counts_consistent(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut cfg = LfsConfig::small();
        cfg.cache_limit_bytes = 16 * 4096; // constant eviction pressure
        let mut shared = SharedLfs::format(MemDisk::new(DISK_BLOCKS), cfg).expect("format");
        let mut inos = setup(&mut shared);
        // A second handle holds reads open so published Arcs stay pinned
        // across subsequent mutations.
        let mut pin_handle = shared.clone();
        let mut pinned: Vec<Vec<u8>> = Vec::new();

        for op in &ops {
            if matches!(op, Op::DropCaches) {
                shared.drop_caches();
                continue;
            }
            apply(&mut shared, &mut inos, op);
            if let Op::Write { file, offset, .. } = op {
                // Read through the lock-free path right after the write:
                // publishes the block Arc into the shard cache (pin) while
                // the tiny cache limit forces evictions on the next op.
                let mut buf = vec![0u8; 4096];
                let n = pin_handle
                    .read(inos[*file as usize], *offset as u64, &mut buf)
                    .expect("pin read");
                buf.truncate(n);
                pinned.push(buf);
            }
            shared.with_fs(|fs| fs.assert_running_counts());
        }
        shared.with_fs(|fs| fs.assert_running_counts());
        shared.sync_all().expect("final sync");
    }
}

/// Satellite: `stats()` and `shared_stats()` snapshots racing writes and
/// checkpoints are never torn — every cumulative counter is monotonic
/// across successive snapshots, and derived totals stay self-consistent.
#[test]
fn stats_snapshots_are_monotonic_under_concurrent_flushes() {
    let shared = SharedLfs::format(MemDisk::new(DISK_BLOCKS), LfsConfig::small()).expect("format");
    let mut w = shared.clone();
    let ino = w.create("/hammer").expect("create");
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Writer: keeps the flush/checkpoint machinery busy.
        let stop_w = stop.clone();
        let writer = s.spawn(move || {
            let data = vec![0xABu8; 3 * 4096];
            let mut i = 0u64;
            while !stop_w.load(Ordering::Relaxed) {
                w.write(ino, (i % 8) * 4096, &data).expect("write");
                if i.is_multiple_of(7) {
                    w.sync().expect("sync");
                }
                i += 1;
            }
            w.sync().expect("final sync");
        });

        // Snapshot hammers: cumulative counters must never go backwards.
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let h = shared.clone();
                let stop_r = stop.clone();
                s.spawn(move || {
                    let mut last = h.stats();
                    let mut last_shared = h.shared_stats();
                    let mut snaps = 0u64;
                    while !stop_r.load(Ordering::Relaxed) {
                        let now = h.stats();
                        assert!(
                            now.checkpoints >= last.checkpoints,
                            "checkpoints went backwards"
                        );
                        assert!(
                            now.partial_writes >= last.partial_writes,
                            "partial_writes went backwards"
                        );
                        assert!(
                            now.group_commits >= last.group_commits,
                            "group_commits went backwards"
                        );
                        assert!(
                            now.app_bytes_written >= last.app_bytes_written,
                            "app_bytes_written went backwards"
                        );
                        assert!(
                            now.total_log_bytes() >= last.total_log_bytes(),
                            "total_log_bytes went backwards"
                        );
                        assert!(
                            now.cleaner.passes >= last.cleaner.passes,
                            "cleaner passes went backwards"
                        );
                        let ns = h.shared_stats();
                        assert!(ns.reads >= last_shared.reads);
                        assert!(ns.read_bytes >= last_shared.read_bytes);
                        assert!(ns.lockfree_reads >= last_shared.lockfree_reads);
                        assert!(
                            ns.lockfree_reads <= ns.reads,
                            "more lock-free reads than reads"
                        );
                        last = now;
                        last_shared = ns;
                        snaps += 1;
                    }
                    snaps
                })
            })
            .collect();

        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer panicked");
        for r in readers {
            let snaps = r.join().expect("stats reader panicked");
            assert!(snaps > 10, "stats hammer barely ran ({snaps} snapshots)");
        }
    });

    // The writer synced at the end; the final snapshot must reflect it.
    let end = shared.stats();
    assert!(end.checkpoints > 0);
    assert!(end.app_bytes_written > 0);
}

/// A reader racing a same-block writer sees every block either
/// entirely-old or entirely-new — the lock-free path hands out immutable
/// `Arc` snapshots, so a torn block is impossible by construction. This
/// test makes the construction observable: any mixed-fill buffer fails.
#[test]
fn racing_reads_never_observe_torn_blocks() {
    let shared = SharedLfs::format(MemDisk::new(DISK_BLOCKS), LfsConfig::small()).expect("format");
    let mut w = shared.clone();
    let ino = w.create("/torn").expect("create");
    w.write(ino, 0, &[0u8; 4096]).expect("seed write");
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let stop_w = stop.clone();
        let writer = s.spawn(move || {
            let mut v = 1u8;
            while !stop_w.load(Ordering::Relaxed) {
                w.write(ino, 0, &vec![v; 4096]).expect("write");
                v = v.wrapping_add(1);
            }
        });
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let mut h = shared.clone();
                let stop_r = stop.clone();
                s.spawn(move || {
                    let mut buf = vec![0u8; 4096];
                    let mut reads = 0u64;
                    while !stop_r.load(Ordering::Relaxed) {
                        let n = h.read(ino, 0, &mut buf).expect("read");
                        assert_eq!(n, 4096);
                        let first = buf[0];
                        assert!(
                            buf.iter().all(|&b| b == first),
                            "torn block: starts with {first}, contains {:?}",
                            buf.iter().find(|&&b| b != first)
                        );
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer panicked");
        for r in readers {
            assert!(r.join().expect("reader panicked") > 10);
        }
    });
    shared.with_fs(|fs| fs.assert_running_counts());
}

/// Concurrent `sync` from many clients batches through group commit: when
/// everything is already settled the calls return via the lock-free
/// handoff, and the checkpoint count stays far below the sync count.
#[test]
fn concurrent_syncs_batch_through_group_commit() {
    let shared = SharedLfs::format(MemDisk::new(DISK_BLOCKS), LfsConfig::small()).expect("format");
    let mut w = shared.clone();
    let ino = w.create("/gc").expect("create");
    w.write(ino, 0, &[7u8; 4096]).expect("write");
    w.sync().expect("sync");
    let base = shared.stats();
    let base_shared = shared.shared_stats();

    const SYNCS_PER_THREAD: u64 = 200;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let mut h = shared.clone();
                s.spawn(move || {
                    for _ in 0..SYNCS_PER_THREAD {
                        h.sync().expect("sync");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("sync thread panicked");
        }
    });

    let stats = shared.stats();
    let sstats = shared.shared_stats();
    let total = 4 * SYNCS_PER_THREAD;
    let absorbed = (sstats.sync_handoffs - base_shared.sync_handoffs)
        + (stats.group_commits - base.group_commits);
    let checkpoints = stats.checkpoints - base.checkpoints;
    // The seed sync covered one checkpoint region, so exactly one of the
    // concurrent syncs may legitimately write the second region; every
    // other call must be absorbed — group commit under the lane, or the
    // settled handoff without taking the lane at all.
    assert!(
        absorbed >= total - 1,
        "only {absorbed} of {total} redundant syncs were absorbed"
    );
    assert!(
        checkpoints <= 1,
        "redundant syncs wrote {checkpoints} checkpoints"
    );
}
