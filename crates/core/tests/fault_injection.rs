//! Fault-injection integration tests: checkpoint fallback, transient
//! device errors, and media rot must all surface as recovered state or a
//! clean `FsError` — never as a panic.

use blockdev::{BlockDevice, FaultDisk, FaultPlan, MemDisk, WriteKind, BLOCK_SIZE};
use lfs_core::checkpoint::Checkpoint;
use lfs_core::layout::{CR0_ADDR, CR1_ADDR};
use lfs_core::{Lfs, LfsConfig};
use vfs::{FileSystem, FsError};

const CR_ADDRS: [u64; 2] = [CR0_ADDR, CR1_ADDR];

/// Formats a small file system, writes `/a`, checkpoints, writes `/b`,
/// checkpoints again, and returns the raw device. The newest checkpoint
/// region knows about both files; the older one only about `/a`.
fn two_checkpoint_image(cfg: LfsConfig) -> MemDisk {
    let mut fs = Lfs::format(MemDisk::new(2048), cfg).unwrap();
    fs.write_file("/a", b"alpha").unwrap();
    fs.sync().unwrap();
    fs.write_file("/b", b"beta").unwrap();
    fs.sync().unwrap();
    fs.into_device()
}

/// Config used by the fallback tests: roll-forward off, so mounting from
/// the older checkpoint region visibly loses `/b` instead of replaying it
/// back from the log.
fn no_replay_cfg() -> LfsConfig {
    let mut cfg = LfsConfig::small();
    cfg.roll_forward = false;
    cfg
}

#[test]
fn torn_newest_checkpoint_falls_back_to_older_region() {
    let cfg = no_replay_cfg();
    let mut dev = two_checkpoint_image(cfg);
    let (_, newest) = Checkpoint::read_latest(&mut dev, CR_ADDRS).unwrap();

    // Tear the newest region: garbage over its header block, as if the
    // crash hit mid-way through the checkpoint write.
    let garbage = [0xffu8; BLOCK_SIZE];
    dev.write_block(CR_ADDRS[newest], &garbage, WriteKind::Sync)
        .unwrap();

    let mut fs = Lfs::mount(dev, cfg).expect("mount must fall back to the older region");
    assert!(fs.lookup("/a").is_ok(), "older checkpoint state lost");
    assert!(
        matches!(fs.lookup("/b"), Err(FsError::NotFound)),
        "/b postdates the surviving checkpoint and roll-forward is off"
    );
    assert!(fs.check().unwrap().is_clean());
}

#[test]
fn geometry_corrupt_but_checksummed_checkpoint_falls_back() {
    let cfg = no_replay_cfg();
    let mut dev = two_checkpoint_image(cfg);
    let (mut cp, newest) = Checkpoint::read_latest(&mut dev, CR_ADDRS).unwrap();

    // The checksum is valid but the geometry is impossible: the claimed
    // log head segment does not exist. Mount must reject this region on
    // semantic grounds and fall back, not index out of bounds.
    cp.cur_seg = u32::MAX / 2;
    cp.write_to(&mut dev, CR_ADDRS[newest]).unwrap();

    let mut fs = Lfs::mount(dev, cfg).expect("mount must reject impossible geometry");
    assert!(fs.lookup("/a").is_ok());
    assert!(matches!(fs.lookup("/b"), Err(FsError::NotFound)));
    assert!(fs.check().unwrap().is_clean());
}

#[test]
fn both_checkpoint_regions_torn_is_corrupt_not_panic() {
    let cfg = no_replay_cfg();
    let mut dev = two_checkpoint_image(cfg);
    let garbage = [0xa5u8; BLOCK_SIZE];
    for addr in CR_ADDRS {
        dev.write_block(addr, &garbage, WriteKind::Sync).unwrap();
    }
    match Lfs::mount(dev, cfg) {
        Err(FsError::Corrupt(_)) => {}
        Err(e) => panic!("expected Corrupt, got {e}"),
        Ok(_) => panic!("mount succeeded with no valid checkpoint"),
    }
}

#[test]
fn transient_write_faults_are_absorbed_by_retry() {
    let cfg = LfsConfig::small();
    let clean = Lfs::format(MemDisk::new(2048), cfg).unwrap().into_device();

    // Every second-ish write request fails twice before succeeding; the
    // file system's retry budget (5 attempts) rides it out.
    let plan = FaultPlan::new(0x51ed)
        .with_write_faults(0.5)
        .with_transient_failures(2);
    let mut fs = Lfs::mount(FaultDisk::new(clean, plan), cfg).unwrap();
    for i in 0..20 {
        fs.write_file(&format!("/f{i}"), &vec![i as u8; 3000])
            .unwrap();
    }
    fs.sync().unwrap();

    assert!(fs.stats().io_retries > 0, "no faults were injected");
    assert_eq!(fs.stats().io_giveups, 0);
    assert!(!fs.stats().degraded());
    assert!(fs.device().counts().write_faults > 0);

    // Unwrap the fault layer: the persisted image is fully consistent.
    let image = fs.into_device().into_inner();
    let mut fs2 = Lfs::mount(image, cfg).unwrap();
    assert!(fs2.check().unwrap().is_clean());
    for i in 0..20 {
        let ino = fs2.lookup(&format!("/f{i}")).unwrap();
        assert_eq!(fs2.read_to_vec(ino).unwrap(), vec![i as u8; 3000]);
    }
}

#[test]
fn exhausted_retries_surface_device_error_and_degraded_stat() {
    let cfg = LfsConfig::small();
    let clean = Lfs::format(MemDisk::new(2048), cfg).unwrap().into_device();

    // Mount through a quiet fault layer, then arm a fault burst longer
    // than the retry budget: flush must fail with `Device`, not panic.
    let mut fs = Lfs::mount(FaultDisk::new(clean, FaultPlan::new(7)), cfg).unwrap();
    {
        let plan = fs.device_mut().plan_mut();
        plan.write_fault_rate = 1.0;
        plan.transient_failures = 100;
    }
    fs.write_file("/doomed", &[1u8; 5000]).unwrap();
    match fs.flush() {
        Err(FsError::Device(_)) => {}
        Err(e) => panic!("expected Device error, got {e}"),
        Ok(()) => panic!("flush succeeded through a permanent fault"),
    }
    assert!(fs.stats().io_giveups > 0);
    assert!(fs.stats().degraded());
}

#[test]
fn rotted_checkpoint_headers_fail_mount_cleanly() {
    let cfg = LfsConfig::small();
    let dev = two_checkpoint_image(cfg);
    // Seed chosen so the deterministic flips land inside the validated
    // prefix of both header blocks (flips in the region's dead padding are
    // harmless by design — the checksum only covers live bytes).
    let plan = FaultPlan::new(0)
        .with_bitrot(CR0_ADDR)
        .with_bitrot(CR1_ADDR);
    match Lfs::mount(FaultDisk::new(dev, plan), cfg) {
        Err(FsError::Corrupt(_)) => {}
        Err(e) => panic!("expected Corrupt, got {e}"),
        Ok(_) => panic!("mount trusted rotted checkpoint headers"),
    }
}

#[test]
fn rotted_newest_checkpoint_falls_back_to_older_region() {
    let cfg = no_replay_cfg();
    let mut dev = two_checkpoint_image(cfg);
    let (_, newest) = Checkpoint::read_latest(&mut dev, CR_ADDRS).unwrap();

    let plan = FaultPlan::new(3).with_bitrot(CR_ADDRS[newest]);
    let mut fs = Lfs::mount(FaultDisk::new(dev, plan), cfg)
        .expect("mount must fall back past the rotted region");
    assert!(fs.lookup("/a").is_ok());
    assert!(matches!(fs.lookup("/b"), Err(FsError::NotFound)));
    assert!(fs.check().unwrap().is_clean());
}
