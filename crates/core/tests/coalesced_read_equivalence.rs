//! Property tests pinning the coalesced read path to the legacy per-block
//! path.
//!
//! `coalesced_reads = true` (the default) batches runs of file blocks with
//! contiguous disk addresses into single `read_run` device requests. The
//! contract is exact equivalence: the same bytes come back, the final disk
//! image is byte-identical, and on a simulated disk the service time is
//! identical — `read_run` charges precisely what the individual
//! back-to-back reads would have cost, so only the *request count* may
//! differ. Read-ahead (`read_ahead_blocks > 0`) may fetch extra blocks
//! (changing timing) but must never change file contents or the disk
//! image.

use blockdev::{BlockDevice, DiskModel, MemDisk, QueueDevice, SimDisk};
use lfs_core::{Lfs, LfsConfig};
use proptest::prelude::*;
use vfs::{FileSystem, Ino};

/// 16 MB disk: enough for the workload plus cleaner headroom.
const DISK_BLOCKS: u64 = 4096;

const NFILES: u8 = 4;

fn cfg(coalesced: bool, read_ahead: u32) -> LfsConfig {
    let mut c = LfsConfig::small();
    c.coalesced_reads = coalesced;
    c.read_ahead_blocks = read_ahead;
    c
}

#[derive(Clone, Debug)]
enum Op {
    Write {
        file: u8,
        offset: u32,
        len: u16,
        fill: u8,
    },
    Truncate {
        file: u8,
        size: u32,
    },
    Read {
        file: u8,
        offset: u32,
        len: u16,
    },
    Sync,
    DropCaches,
}

/// Offsets reach past the ten direct blocks (40 KB) so the indirect-block
/// loads that break coalesced runs actually happen.
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..NFILES, 0u32..300_000, 1u16..16_384, any::<u8>()).prop_map(
            |(file, offset, len, fill)| Op::Write {
                file,
                offset,
                len,
                fill
            }
        ),
        (0..NFILES, 0u32..300_000).prop_map(|(file, size)| Op::Truncate { file, size }),
        (0..NFILES, 0u32..320_000, 1u16..32_768).prop_map(|(file, offset, len)| Op::Read {
            file,
            offset,
            len
        }),
        (0..NFILES, 0u32..320_000, 1u16..32_768).prop_map(|(file, offset, len)| Op::Read {
            file,
            offset,
            len
        }),
        Just(Op::Sync),
        Just(Op::DropCaches),
    ]
}

/// Applies one op; returns the bytes a read produced so the instances can
/// be compared.
fn apply<D: QueueDevice>(fs: &mut Lfs<D>, inos: &[Ino], op: &Op) -> Option<Vec<u8>> {
    match op {
        Op::Write {
            file,
            offset,
            len,
            fill,
        } => {
            let data = vec![*fill; *len as usize];
            fs.write(inos[*file as usize], *offset as u64, &data)
                .expect("write");
            None
        }
        Op::Truncate { file, size } => {
            fs.truncate(inos[*file as usize], *size as u64)
                .expect("truncate");
            None
        }
        Op::Read { file, offset, len } => {
            let mut buf = vec![0u8; *len as usize];
            let n = fs
                .read(inos[*file as usize], *offset as u64, &mut buf)
                .expect("read");
            buf.truncate(n);
            Some(buf)
        }
        Op::Sync => {
            fs.sync().expect("sync");
            None
        }
        Op::DropCaches => {
            fs.drop_caches();
            None
        }
    }
}

fn setup<D: QueueDevice>(fs: &mut Lfs<D>) -> Vec<Ino> {
    (0..NFILES)
        .map(|i| fs.create(&format!("/f{i}")).expect("create"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The tentpole equivalence property: across random
    /// write/truncate/read interleavings, the coalesced path returns
    /// byte-identical data, leaves a byte-identical disk image, and costs
    /// the identical simulated service time — only the request count may
    /// shrink. A read-ahead instance (on a `MemDisk`, which exercises the
    /// default `read_run`) must agree on data and image.
    #[test]
    fn coalesced_reads_are_equivalent(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut legacy = Lfs::format(
            SimDisk::new(DISK_BLOCKS, DiskModel::wren_iv()), cfg(false, 0)).expect("format");
        let mut coalesced = Lfs::format(
            SimDisk::new(DISK_BLOCKS, DiskModel::wren_iv()), cfg(true, 0)).expect("format");
        let mut readahead = Lfs::format(
            MemDisk::new(DISK_BLOCKS), cfg(true, 8)).expect("format");
        let inos_l = setup(&mut legacy);
        let inos_c = setup(&mut coalesced);
        let inos_r = setup(&mut readahead);

        for op in &ops {
            let out_l = apply(&mut legacy, &inos_l, op);
            let out_c = apply(&mut coalesced, &inos_c, op);
            let out_r = apply(&mut readahead, &inos_r, op);
            prop_assert_eq!(&out_l, &out_c, "coalesced read bytes diverged on {:?}", op);
            prop_assert_eq!(&out_l, &out_r, "read-ahead read bytes diverged on {:?}", op);
        }

        legacy.sync().expect("final sync");
        coalesced.sync().expect("final sync");
        readahead.sync().expect("final sync");

        let sl = legacy.device().stats();
        let sc = coalesced.device().stats();
        // Simulated service time must not change at all; only the number
        // of read requests may (one run replaces N single-block reads).
        prop_assert_eq!(sl.busy_ns, sc.busy_ns);
        prop_assert_eq!(sl.sync_busy_ns, sc.sync_busy_ns);
        prop_assert_eq!(sl.positioning_ns, sc.positioning_ns);
        prop_assert_eq!(sl.seeks, sc.seeks);
        prop_assert_eq!(sl.bytes_read, sc.bytes_read);
        prop_assert_eq!(sl.bytes_written, sc.bytes_written);
        prop_assert_eq!(sl.writes, sc.writes);
        prop_assert!(sc.reads <= sl.reads, "coalescing increased request count");

        prop_assert_eq!(legacy.device().image(), coalesced.device().image());
        prop_assert_eq!(legacy.device().image(), readahead.device().image());
    }
}

/// The sparse cleaner path ("read just the live blocks", §3.4) must fetch
/// maximal runs of consecutive live blocks as single device requests: for
/// a segment whose liveness is clustered (whole small files), the request
/// count stays below the block count.
#[test]
fn sparse_cleaner_reads_coalesce_runs() {
    let mut c = LfsConfig::small();
    c.read_live_threshold = 1.0; // Every scavenge takes the sparse path.
    let mut fs = Lfs::format(SimDisk::new(DISK_BLOCKS, DiskModel::wren_iv()), c).expect("format");
    for i in 0..32 {
        fs.write_file(&format!("/f{i}"), &vec![i as u8; 3 * 4096])
            .expect("write");
    }
    fs.sync().expect("sync");
    for i in (0..32).step_by(2) {
        fs.unlink(&format!("/f{i}")).expect("unlink");
    }
    fs.sync().expect("sync");

    let before = fs.device().stats();
    let cleaned = fs.clean_pass().expect("clean");
    let after = fs.device().stats();
    assert!(cleaned > 0, "cleaner found nothing to clean");
    let requests = after.reads - before.reads;
    let blocks = (after.bytes_read - before.bytes_read) / 4096;
    assert!(
        requests < blocks,
        "sparse cleaner issued {requests} read requests for {blocks} blocks \
         (runs were not coalesced)"
    );

    // And cleaning must not have corrupted anything.
    for i in (1..32).step_by(2) {
        let ino = fs.lookup(&format!("/f{i}")).expect("lookup");
        let data = fs.read_to_vec(ino).expect("read back");
        assert_eq!(data, vec![i as u8; 3 * 4096]);
    }
}
