//! Property tests for every on-disk structure: arbitrary values roundtrip
//! bit-exactly, and corrupted bytes never decode into silently-wrong
//! values for the checksummed structures.

use lfs_core::checkpoint::Checkpoint;
use lfs_core::dirlog::{decode_block, encode_records, DirLogRecord, DirOp};
use lfs_core::inode::{IndirectBlock, Inode, INODE_DISK_SIZE};
use lfs_core::summary::{EntryKind, Summary, SummaryEntry, MAX_SUMMARY_ENTRIES};
use lfs_core::NIL_ADDR;
use proptest::prelude::*;
use vfs::FileType;

fn arb_inode() -> impl Strategy<Value = Inode> {
    (
        1u32..1_000_000,
        0u32..100,
        prop_oneof![Just(FileType::Regular), Just(FileType::Directory)],
        1u32..1000,
        0u64..1 << 40,
        proptest::collection::vec(prop_oneof![Just(NIL_ADDR), (0u64..1 << 30)], 10),
        prop_oneof![Just(NIL_ADDR), (0u64..1 << 30)],
        prop_oneof![Just(NIL_ADDR), (0u64..1 << 30)],
    )
        .prop_map(
            |(ino, version, ftype, nlink, size, direct, indirect, dindirect)| {
                let mut i = Inode::new(ino, version, ftype, 12345);
                i.nlink = nlink;
                i.size = size;
                i.direct.copy_from_slice(&direct);
                i.indirect = indirect;
                i.dindirect = dindirect;
                i
            },
        )
}

fn arb_entry() -> impl Strategy<Value = SummaryEntry> {
    (
        prop_oneof![
            Just(EntryKind::Data),
            Just(EntryKind::Indirect1),
            Just(EntryKind::Indirect2),
            Just(EntryKind::InodeBlock),
            Just(EntryKind::ImapBlock),
            Just(EntryKind::UsageBlock),
            Just(EntryKind::DirLog),
        ],
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
    )
        .prop_map(|(kind, ino, offset, version, mtime, csum)| SummaryEntry {
            kind,
            ino,
            offset,
            version,
            mtime,
            csum,
        })
}

fn arb_dirlog_record() -> impl Strategy<Value = DirLogRecord> {
    (
        prop_oneof![
            Just(DirOp::Create),
            Just(DirOp::Link),
            Just(DirOp::Unlink),
            Just(DirOp::Rename),
            Just(DirOp::Mkdir),
            Just(DirOp::Rmdir),
        ],
        1u32..10_000,
        "[a-zA-Z0-9._-]{1,64}",
        1u32..10_000,
        0u32..100,
        0u32..50,
        1u32..10_000,
        "[a-zA-Z0-9._-]{0,64}",
    )
        .prop_map(
            |(op, dir, name, ino, nlink, version, dir2, name2)| DirLogRecord {
                op,
                dir,
                name,
                ino,
                nlink,
                version,
                dir2,
                name2,
            },
        )
}

proptest! {
    #[test]
    fn inode_roundtrips(inode in arb_inode()) {
        let mut buf = [0u8; INODE_DISK_SIZE];
        inode.encode_into(&mut buf);
        let back = Inode::decode(&buf).unwrap().unwrap();
        prop_assert_eq!(back, inode);
    }

    #[test]
    fn indirect_block_roundtrips(
        ptrs in proptest::collection::vec(any::<u64>(), 512)
    ) {
        let mut b = IndirectBlock::new();
        b.ptrs.copy_from_slice(&ptrs);
        let enc = b.encode();
        prop_assert_eq!(IndirectBlock::decode(&enc), b);
    }

    #[test]
    fn summary_roundtrips(
        epoch in any::<u32>(),
        seq in 1u64..u64::MAX,
        write_time in any::<u64>(),
        entries in proptest::collection::vec(arb_entry(), 0..MAX_SUMMARY_ENTRIES),
    ) {
        let s = Summary { epoch, seq, write_time, entries };
        let enc = s.encode();
        prop_assert_eq!(Summary::decode(&enc).unwrap(), s);
    }

    #[test]
    fn summary_detects_any_single_byte_corruption_in_payload(
        entries in proptest::collection::vec(arb_entry(), 1..20),
        corrupt_at in any::<proptest::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let s = Summary { epoch: 3, seq: 9, write_time: 7, entries };
        let mut enc = s.encode();
        let payload_len = 40 + s.entries.len() * 28;
        let idx = corrupt_at.index(payload_len);
        enc[idx] ^= flip;
        // Either decoding fails, or (for a flip that only touches fields
        // outside the checksum — impossible here) the value differs.
        match Summary::decode(&enc) {
            Err(_) => {}
            Ok(back) => prop_assert_ne!(back, s),
        }
    }

    #[test]
    fn checkpoint_roundtrips(
        epoch in any::<u32>(),
        seq in any::<u64>(),
        timestamp in any::<u64>(),
        cur_seg in any::<u32>(),
        cur_off in any::<u32>(),
        extra_write_points in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..8),
        imap_addrs in proptest::collection::vec(any::<u64>(), 0..50),
        usage_addrs in proptest::collection::vec(any::<u64>(), 0..20),
        live_bytes in proptest::collection::vec(any::<u32>(), 0..100),
        heat in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..32),
    ) {
        let cp = Checkpoint {
            epoch, seq, timestamp, cur_seg, cur_off, extra_write_points,
            imap_addrs, usage_addrs, live_bytes, heat,
        };
        let enc = cp.encode().unwrap();
        prop_assert_eq!(Checkpoint::decode(&enc).unwrap(), cp);
    }

    #[test]
    fn dirlog_records_roundtrip(
        records in proptest::collection::vec(arb_dirlog_record(), 0..120)
    ) {
        let blocks = encode_records(&records);
        let mut back = Vec::new();
        for b in &blocks {
            back.extend(decode_block(b).unwrap());
        }
        prop_assert_eq!(back, records);
    }
}
