//! Fuzz-style mount tests: `Lfs::mount` on an arbitrarily mutated image
//! must return `Ok` or `Err` — it must never panic. When it returns `Ok`,
//! the offline checker must also run to completion without panicking
//! (a dirty report is acceptable; a crash is not).
//!
//! The mutations start from a real formatted image so the corruption lands
//! on structures the mount path actually parses (superblock, checkpoint
//! regions, segment summaries, inodes, dirlog blocks), not just on zeroed
//! free space.

use std::sync::OnceLock;

use blockdev::{MemDisk, BLOCK_SIZE};
use lfs_core::{Lfs, LfsConfig};
use proptest::prelude::*;
use vfs::FileSystem;

fn cfg() -> LfsConfig {
    LfsConfig::small()
}

/// A populated image exercising files, directories, renames, and enough
/// data volume to span several segments.
fn base_image() -> &'static [u8] {
    static IMG: OnceLock<Vec<u8>> = OnceLock::new();
    IMG.get_or_init(|| {
        let mut fs = Lfs::format(MemDisk::new(1024), cfg()).unwrap();
        fs.mkdir("/dir").unwrap();
        fs.write_file("/dir/f", &[7u8; 20_000]).unwrap();
        fs.write_file("/g", b"hello").unwrap();
        fs.rename("/g", "/dir/g").unwrap();
        fs.link("/dir/f", "/alias").unwrap();
        fs.sync().unwrap();
        fs.write_file("/late", &[9u8; 6_000]).unwrap();
        fs.flush().unwrap(); // past the checkpoint: exercises roll-forward
        fs.into_device().into_image()
    })
}

/// Mounts the image and, if it mounts, runs the checker; the only failure
/// mode this harness rejects is a panic (which `proptest!` catches and
/// reports with the deterministic case number).
fn mount_must_not_panic(img: Vec<u8>) {
    if let Ok(mut fs) = Lfs::mount(MemDisk::from_image(img), cfg()) {
        let _ = fs.check();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn mount_survives_scattered_byte_corruption(
        edits in proptest::collection::vec(
            (any::<proptest::sample::Index>(), any::<u8>()),
            1..96,
        )
    ) {
        let mut img = base_image().to_vec();
        for (idx, val) in edits {
            let i = idx.index(img.len());
            img[i] = val;
        }
        mount_must_not_panic(img);
    }

    #[test]
    fn mount_survives_whole_block_trashing(
        blocks in proptest::collection::vec(
            (any::<proptest::sample::Index>(), any::<u8>()),
            1..8,
        )
    ) {
        let mut img = base_image().to_vec();
        let nblocks = img.len() / BLOCK_SIZE;
        for (idx, fill) in blocks {
            let b = idx.index(nblocks);
            img[b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE].fill(fill);
        }
        mount_must_not_panic(img);
    }

    #[test]
    fn mount_survives_truncated_tail(
        keep in any::<proptest::sample::Index>(),
        fill in any::<u8>(),
    ) {
        // Zero (or fill) everything past an arbitrary point, simulating a
        // device that lost its tail.
        let mut img = base_image().to_vec();
        let cut = keep.index(img.len());
        img[cut..].fill(fill);
        mount_must_not_panic(img);
    }
}
