//! Multi-volume equivalence and striping invariants.
//!
//! The `VolumeSet` contract has two halves the file system depends on:
//!
//! 1. **Single-shard transparency** — a volume set of one disk is
//!    indistinguishable from the bare disk: byte-identical images,
//!    identical simulated service-time statistics. This pins the N=1
//!    configuration to the exact behaviour of every previous release.
//! 2. **Segment-granular striping** — with N shards, every segment's
//!    blocks live on exactly one shard, and segment `g` lives on shard
//!    `g % N`. Layout, cleaning, and recovery all assume this mapping.
//!
//! The rest of the file exercises the multi-shard file system end to
//! end: write/read/remount, roll-forward across shards after an unclean
//! shutdown, and cleaning that regenerates free segments on *every*
//! shard (the starved-shard regression).

use blockdev::{
    BlockDevice, DiskModel, FaultDisk, FaultPlan, MemDisk, QueuedDev, SimDisk, VolumeSet,
};
use lfs_core::layout::SEGMENTS_START;
use lfs_core::{Lfs, LfsConfig};
use proptest::prelude::*;
use vfs::{FileSystem, FsError, Ino};

const SEG_BLOCKS: u64 = 16;

fn cfg() -> LfsConfig {
    LfsConfig::small()
}

/// A volume set of `n` fresh MemDisks sized for `stripes` segments each.
fn mem_set(n: usize, stripes: u64) -> VolumeSet<MemDisk> {
    let shards = (0..n)
        .map(|_| MemDisk::new(SEGMENTS_START + stripes * SEG_BLOCKS))
        .collect();
    VolumeSet::new(shards, SEGMENTS_START, SEG_BLOCKS)
}

#[derive(Clone, Debug)]
enum Op {
    Write {
        file: u8,
        offset: u32,
        len: u16,
        fill: u8,
    },
    Truncate {
        file: u8,
        size: u32,
    },
    Unlink {
        file: u8,
    },
    Sync,
    DropCaches,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..4u8, 0u32..120_000, 1u16..12_288, any::<u8>()).prop_map(|(file, offset, len, fill)| {
            Op::Write {
                file,
                offset,
                len,
                fill,
            }
        }),
        (0..4u8, 0u32..120_000).prop_map(|(file, size)| Op::Truncate { file, size }),
        (0..4u8).prop_map(|file| Op::Unlink { file }),
        Just(Op::Sync),
        Just(Op::DropCaches),
    ]
}

fn apply<D: blockdev::QueueDevice>(fs: &mut Lfs<D>, op: &Op) {
    let path = |f: u8| format!("/f{f}");
    match op {
        Op::Write {
            file,
            offset,
            len,
            fill,
        } => {
            let ino = match fs.lookup(&path(*file)) {
                Ok(ino) => ino,
                Err(_) => fs.create(&path(*file)).expect("create"),
            };
            fs.write(ino, *offset as u64, &vec![*fill; *len as usize])
                .expect("write");
        }
        Op::Truncate { file, size } => {
            if let Ok(ino) = fs.lookup(&path(*file)) {
                fs.truncate(ino, *size as u64).expect("truncate");
            }
        }
        Op::Unlink { file } => {
            let _ = fs.unlink(&path(*file));
        }
        Op::Sync => fs.sync().expect("sync"),
        Op::DropCaches => fs.drop_caches(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// N=1 bit-identity: the same workload on a bare SimDisk and on a
    /// VolumeSet wrapping one SimDisk produces byte-identical images and
    /// identical simulated service-time statistics.
    #[test]
    fn single_shard_volume_is_bit_identical(
        ops in proptest::collection::vec(op_strategy(), 1..50)
    ) {
        let bare = SimDisk::new(4096, DiskModel::wren_iv());
        let wrapped = VolumeSet::new(
            vec![SimDisk::new(4096, DiskModel::wren_iv())],
            SEGMENTS_START,
            SEG_BLOCKS,
        );
        let mut fs_bare = Lfs::format(bare, cfg()).expect("format bare");
        let mut fs_wrap = Lfs::format(wrapped, cfg()).expect("format wrapped");
        for op in &ops {
            apply(&mut fs_bare, op);
            apply(&mut fs_wrap, op);
        }
        fs_bare.sync().expect("sync");
        fs_wrap.sync().expect("sync");

        let sb = fs_bare.device().stats();
        let sw = fs_wrap.device().stats();
        prop_assert_eq!(sb.busy_ns, sw.busy_ns);
        prop_assert_eq!(sb.sync_busy_ns, sw.sync_busy_ns);
        prop_assert_eq!(sb.positioning_ns, sw.positioning_ns);
        prop_assert_eq!(sb.seeks, sw.seeks);
        prop_assert_eq!(sb.reads, sw.reads);
        prop_assert_eq!(sb.writes, sw.writes);
        prop_assert_eq!(sb.bytes_read, sw.bytes_read);
        prop_assert_eq!(sb.bytes_written, sw.bytes_written);

        let bare = fs_bare.into_device();
        let wrapped = fs_wrap.into_device().into_shards();
        prop_assert_eq!(bare.image(), wrapped[0].image());
    }

    /// The multi-shard file system agrees with the single-volume one on
    /// every read, across random workloads and a final remount.
    #[test]
    fn multi_shard_contents_match_single_volume(
        ops in proptest::collection::vec(op_strategy(), 1..50)
    ) {
        let mut fs_one = Lfs::format(mem_set(1, 4 * 32), cfg()).expect("format 1");
        let mut fs_four = Lfs::format(mem_set(4, 32), cfg()).expect("format 4");
        for op in &ops {
            apply(&mut fs_one, op);
            apply(&mut fs_four, op);
        }
        fs_one.sync().expect("sync");
        fs_four.sync().expect("sync");
        let mut fs_one = Lfs::mount(fs_one.into_device(), cfg()).expect("remount 1");
        let mut fs_four = Lfs::mount(fs_four.into_device(), cfg()).expect("remount 4");
        for f in 0..4u8 {
            let a = fs_one
                .lookup(&format!("/f{f}"))
                .and_then(|ino| fs_one.read_to_vec(ino));
            let b = fs_four
                .lookup(&format!("/f{f}"))
                .and_then(|ino| fs_four.read_to_vec(ino));
            match (a, b) {
                (Ok(da), Ok(db)) => prop_assert_eq!(da, db, "contents diverged on /f{}", f),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "existence diverged on /f{}: {:?} vs {:?}",
                    f, a.is_ok(), b.is_ok()),
            }
        }
    }
}

/// Striping invariant: every block of segment `g` maps to shard `g % N`,
/// for every segment of the formatted geometry.
#[test]
fn every_segment_lives_on_exactly_one_shard() {
    for n in [2usize, 4, 8] {
        let set = mem_set(n, 16);
        let fs = Lfs::format(set, cfg()).expect("format");
        let nsegs = fs.clean_segment_count() + fs.write_points().len() as u32;
        assert!(nsegs as usize >= n, "fewer segments than shards");
        let set = fs.into_device();
        let seg_start = |g: u64| SEGMENTS_START + g * SEG_BLOCKS;
        for g in 0..(16 * n as u64) {
            let owner = set.shard_of_block(seg_start(g));
            assert_eq!(owner, (g as usize) % n, "segment {g} on wrong shard");
            for b in 0..SEG_BLOCKS {
                assert_eq!(
                    set.shard_of_block(seg_start(g) + b),
                    owner,
                    "segment {g} straddles shards at block {b}"
                );
            }
        }
        // The meta region (superblock + checkpoint regions) is pinned to
        // shard 0.
        for b in 0..SEGMENTS_START {
            assert_eq!(set.shard_of_block(b), 0, "meta block {b} off shard 0");
        }
    }
}

/// Multi-shard roll-forward: flushed-but-not-checkpointed data written
/// across all four shards' write points survives an unclean shutdown.
#[test]
fn roll_forward_recovers_tail_across_shards() {
    let mut fs = Lfs::format(mem_set(4, 32), cfg()).expect("format");
    let mut inos: Vec<(String, Ino)> = Vec::new();
    for i in 0..6 {
        let path = format!("/pre{i}");
        let ino = fs
            .write_file(&path, &vec![i as u8; 3 * 4096])
            .expect("write");
        inos.push((path, ino));
    }
    fs.sync().expect("sync");
    // Tail: enough chunks to rotate over every shard's write point.
    for i in 0..12 {
        let path = format!("/tail{i}");
        fs.write_file(&path, &vec![0xA0 + i as u8; 2 * 4096])
            .expect("write tail");
        fs.flush().expect("flush");
    }
    // No checkpoint: drop the fs as if the host crashed.
    let set = fs.into_device();
    let mut fs = Lfs::mount(set, cfg()).expect("mount after crash");
    for i in 0..6 {
        let ino = fs.lookup(&format!("/pre{i}")).expect("pre file lost");
        assert_eq!(fs.read_to_vec(ino).expect("read"), vec![i as u8; 3 * 4096]);
    }
    for i in 0..12 {
        let ino = fs
            .lookup(&format!("/tail{i}"))
            .unwrap_or_else(|_| panic!("tail file {i} not rolled forward"));
        assert_eq!(
            fs.read_to_vec(ino).expect("read"),
            vec![0xA0 + i as u8; 2 * 4096]
        );
    }
}

/// Cleaning on a volume set must regenerate clean segments on every
/// shard — a shard with zero clean segments and no pick would wedge the
/// layout even when the aggregate clean count looks healthy (the
/// starved-shard augmentation in `select_candidates`).
#[test]
fn cleaner_regenerates_segments_on_every_shard() {
    let n = 4usize;
    let mut fs = Lfs::format(mem_set(n, 16), cfg()).expect("format");
    // Fill most of the disk with small files, then delete two of every
    // three so most segments are fragmented.
    let mut created = Vec::new();
    for i in 0..96 {
        let path = format!("/f{i}");
        match fs.write_file(&path, &vec![i as u8; 2 * 4096]) {
            Ok(_) => created.push(path),
            Err(FsError::NoSpace) => break,
            Err(e) => panic!("write: {e:?}"),
        }
    }
    fs.sync().expect("sync");
    for (i, path) in created.iter().enumerate() {
        if i % 3 != 0 {
            fs.unlink(path).expect("unlink");
        }
    }
    fs.sync().expect("sync");
    for _ in 0..8 {
        if fs.clean_pass().expect("clean") == 0 {
            break;
        }
    }
    // Count clean segments per shard from the usage table exposure:
    // remount and keep writing — every shard must accept new data.
    let mut fs = Lfs::mount(fs.into_device(), cfg()).expect("remount");
    for i in 0..24 {
        fs.write_file(&format!("/post{i}"), &vec![0x5A; 4096])
            .expect("post-clean write");
        fs.sync().expect("sync");
    }
    for (i, path) in created.iter().enumerate() {
        if i % 3 == 0 {
            let ino = fs.lookup(path).expect("survivor lost");
            assert_eq!(fs.read_to_vec(ino).expect("read"), vec![i as u8; 2 * 4096]);
        }
    }
}

/// The queued (submission-ring) write path fans chunks out across the
/// shards' independent rings; contents and recovery must be unaffected.
#[test]
fn queued_volume_set_round_trips() {
    let shards: Vec<QueuedDev<MemDisk>> = (0..4)
        .map(|_| QueuedDev::new(MemDisk::new(SEGMENTS_START + 32 * SEG_BLOCKS), 8))
        .collect();
    let set = VolumeSet::new(shards, SEGMENTS_START, SEG_BLOCKS);
    let mut fs = Lfs::format(set, cfg()).expect("format");
    for i in 0..16 {
        fs.write_file(&format!("/q{i}"), &vec![i as u8; 5 * 4096])
            .expect("write");
    }
    fs.sync().expect("sync");
    let mut fs = Lfs::mount(fs.into_device(), cfg()).expect("remount");
    for i in 0..16 {
        let ino = fs.lookup(&format!("/q{i}")).expect("file lost");
        assert_eq!(fs.read_to_vec(ino).expect("read"), vec![i as u8; 5 * 4096]);
    }
}

/// Format-time geometry validation (single-device-assumption bugfixes):
/// a stripe unit that differs from the segment size, or a set with fewer
/// segments than shards, is rejected up front instead of corrupting the
/// mapping later.
#[test]
fn format_rejects_bad_volume_geometry() {
    // Stripe != segment size.
    let set = VolumeSet::new(
        (0..2).map(|_| MemDisk::new(2048)).collect::<Vec<_>>(),
        SEGMENTS_START,
        SEG_BLOCKS * 2,
    );
    assert!(matches!(
        Lfs::format(set, cfg()),
        Err(FsError::InvalidArgument(_))
    ));
}

/// Regression (single-device assumption): a volume set of synchronous
/// shims used to report its summed queue capacity, which told the fs
/// submit errors were ring-retried internally — they are not, so every
/// transient fault leaked to the caller instead of being absorbed by the
/// in-place retry path.
#[test]
fn transient_faults_on_bare_shards_are_absorbed() {
    let shards: Vec<_> = (0..4u64)
        .map(|i| {
            FaultDisk::new(
                MemDisk::new(SEGMENTS_START + 12 * SEG_BLOCKS),
                FaultPlan::new(0xFA + i)
                    .with_write_faults(0.3)
                    .with_transient_failures(2),
            )
        })
        .collect();
    let set = VolumeSet::new(shards, SEGMENTS_START, SEG_BLOCKS);
    let mut fs = Lfs::format(set, cfg()).expect("format");
    for v in 0..24u8 {
        let path = format!("/f{}", v % 6);
        let ino = match fs.lookup(&path) {
            Ok(ino) => ino,
            Err(_) => fs.create(&path).expect("create"),
        };
        fs.write(ino, 0, &vec![v; 5000])
            .expect("write under faults");
        if v % 5 == 0 {
            fs.sync().expect("sync under faults");
        }
    }
    fs.sync().expect("final sync");
    assert!(fs.stats().io_retries > 0, "the plan must actually fire");
    assert_eq!(fs.stats().io_giveups, 0);
}

/// Regression (single-device assumption): the auto-flush trigger was one
/// segment's payload no matter how many shards the set had, so every
/// flush carried a single segment of work and the chunk rotation parked
/// the large chunks on the same parity shards — on a four-volume set two
/// arms did nearly all the writing while two idled. The trigger now
/// scales with the number of write points: below N segments of dirty
/// data nothing reaches the log, and a triggered flush spreads about one
/// segment per shard.
#[test]
fn auto_flush_trigger_scales_with_shard_count_and_balances() {
    let shards: Vec<_> = (0..4)
        .map(|_| SimDisk::new(SEGMENTS_START + 12 * SEG_BLOCKS, DiskModel::wren_iv()))
        .collect();
    let set = VolumeSet::new(shards, SEGMENTS_START, SEG_BLOCKS);
    let mut fs = Lfs::format(set, cfg()).expect("format");
    let written = |fs: &Lfs<VolumeSet<SimDisk>>| -> Vec<u64> {
        (0..4)
            .map(|i| {
                fs.device()
                    .shard_stats(i)
                    .expect("shard stats")
                    .bytes_written
            })
            .collect()
    };
    let base = written(&fs);
    let threshold = cfg().flush_threshold_bytes as usize;
    let ino = fs.create("/big").expect("create");
    // Two single-volume thresholds of dirty data: under the ×4 scaled
    // trigger this stays buffered instead of dribbling out one segment.
    fs.write(ino, 0, &vec![7u8; 2 * threshold]).expect("write");
    assert_eq!(
        written(&fs),
        base,
        "dirty data below the scaled trigger hit the log"
    );
    // Well past the scaled trigger: the flushes must use all four arms
    // with comparable volume, not alternate between two of them.
    fs.write(ino, 2 * threshold as u64, &vec![9u8; 12 * threshold])
        .expect("write");
    fs.sync().expect("sync");
    let per_shard: Vec<u64> = written(&fs)
        .iter()
        .zip(&base)
        .map(|(now, was)| now - was)
        .collect();
    let max = *per_shard.iter().max().expect("four shards");
    let min = *per_shard.iter().min().expect("four shards");
    assert!(min > 0, "a shard idled through the workload: {per_shard:?}");
    assert!(
        max < 2 * min,
        "log writes skewed across shards: {per_shard:?}"
    );
}
