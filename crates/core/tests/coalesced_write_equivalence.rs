//! Property tests pinning the zero-copy gather write path to the legacy
//! assemble-then-write path.
//!
//! `gather_writes = true` (the default) hands each partial-write chunk to
//! the device as a list of borrowed slices — cached data blocks go out
//! without ever being copied into a staging buffer; only synthesized
//! blocks (summary, inode groups, indirect/imap/usage encodes) are
//! rendered, into a reusable scratch pool. The contract is exact
//! equivalence: byte-identical disk image, identical simulated service
//! time, identical request count (the flush already issued one request
//! per chunk) — the only thing that changes is host-side copying, which
//! shrinks by exactly one block-sized memcpy per cached data and
//! directory-log block.

use blockdev::{BlockDevice, CrashDisk, DiskModel, MemDisk, QueueDevice, SimDisk};
use lfs_core::{BlockKind, Lfs, LfsConfig};
use proptest::prelude::*;
use vfs::{FileSystem, FsError, Ino};

/// 16 MB disk: enough for the workload plus cleaner headroom.
const DISK_BLOCKS: u64 = 4096;

const NFILES: u8 = 4;

fn cfg(gather: bool) -> LfsConfig {
    let mut c = LfsConfig::small();
    c.gather_writes = gather;
    c
}

#[derive(Clone, Debug)]
enum Op {
    Write {
        file: u8,
        offset: u32,
        len: u16,
        fill: u8,
    },
    Truncate {
        file: u8,
        size: u32,
    },
    Sync,
    DropCaches,
    CleanPass,
}

/// Offsets reach past the ten direct blocks (40 KB) so indirect blocks —
/// synthesized on the gather path — appear in the same chunks as borrowed
/// data blocks.
fn op_strategy() -> impl Strategy<Value = Op> {
    fn write_op() -> impl Strategy<Value = Op> {
        (0..NFILES, 0u32..300_000, 1u16..16_384, any::<u8>()).prop_map(
            |(file, offset, len, fill)| Op::Write {
                file,
                offset,
                len,
                fill,
            },
        )
    }
    prop_oneof![
        write_op(),
        write_op(),
        write_op(),
        (0..NFILES, 0u32..300_000).prop_map(|(file, size)| Op::Truncate { file, size }),
        Just(Op::Sync),
        Just(Op::DropCaches),
        Just(Op::CleanPass),
    ]
}

fn apply<D: QueueDevice>(fs: &mut Lfs<D>, inos: &[Ino], op: &Op) {
    match op {
        Op::Write {
            file,
            offset,
            len,
            fill,
        } => {
            let data = vec![*fill; *len as usize];
            fs.write(inos[*file as usize], *offset as u64, &data)
                .expect("write");
        }
        Op::Truncate { file, size } => {
            fs.truncate(inos[*file as usize], *size as u64)
                .expect("truncate");
        }
        Op::Sync => {
            fs.sync().expect("sync");
        }
        Op::DropCaches => {
            fs.drop_caches();
        }
        Op::CleanPass => {
            // The cleaner's rewrites flow through the same chunk writer,
            // so gather/legacy must agree there too.
            fs.clean_pass().expect("clean");
        }
    }
}

fn setup<D: QueueDevice>(fs: &mut Lfs<D>) -> Vec<Ino> {
    (0..NFILES)
        .map(|i| fs.create(&format!("/f{i}")).expect("create"))
        .collect()
}

/// Host bytes the flush path memcpy'd into write buffers.
fn copied<D: QueueDevice>(fs: &Lfs<D>) -> u64 {
    fs.stats().flush_copy_bytes
}

/// Log bytes of the kinds the gather path borrows instead of copying.
fn borrowable_log_bytes<D: QueueDevice>(fs: &Lfs<D>) -> u64 {
    fs.stats().log_bytes(BlockKind::Data) + fs.stats().log_bytes(BlockKind::DirLog)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The tentpole equivalence property: across random
    /// write/truncate/sync/clean interleavings the gather path leaves a
    /// byte-identical disk image at identical simulated cost, and the
    /// host-copy saving is *exactly* the cached bytes it borrowed — one
    /// block-sized memcpy per data/dirlog block, deterministically.
    #[test]
    fn gather_writes_are_equivalent(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut legacy = Lfs::format(
            SimDisk::new(DISK_BLOCKS, DiskModel::wren_iv()), cfg(false)).expect("format");
        let mut gather = Lfs::format(
            SimDisk::new(DISK_BLOCKS, DiskModel::wren_iv()), cfg(true)).expect("format");
        let mut gather_mem = Lfs::format(
            MemDisk::new(DISK_BLOCKS), cfg(true)).expect("format");
        let inos_l = setup(&mut legacy);
        let inos_g = setup(&mut gather);
        let inos_m = setup(&mut gather_mem);

        for op in &ops {
            apply(&mut legacy, &inos_l, op);
            apply(&mut gather, &inos_g, op);
            apply(&mut gather_mem, &inos_m, op);
        }

        legacy.sync().expect("final sync");
        gather.sync().expect("final sync");
        gather_mem.sync().expect("final sync");

        let sl = legacy.device().stats();
        let sg = gather.device().stats();
        // A gather write is charged as precisely the one contiguous
        // request the legacy path issued, so every timing figure — not
        // just the totals — must be bit-identical.
        prop_assert_eq!(sl.busy_ns, sg.busy_ns);
        prop_assert_eq!(sl.sync_busy_ns, sg.sync_busy_ns);
        prop_assert_eq!(sl.positioning_ns, sg.positioning_ns);
        prop_assert_eq!(sl.seeks, sg.seeks);
        prop_assert_eq!(sl.bytes_read, sg.bytes_read);
        prop_assert_eq!(sl.bytes_written, sg.bytes_written);
        prop_assert_eq!(sl.reads, sg.reads);
        prop_assert_eq!(sl.writes, sg.writes, "gather changed the request count");

        prop_assert_eq!(legacy.device().image(), gather.device().image());
        prop_assert_eq!(legacy.device().image(), gather_mem.device().image());

        // Identical images mean identical log traffic, so the copy-bytes
        // delta must be exactly the data + dirlog bytes the gather path
        // borrowed from the cache instead of staging.
        prop_assert_eq!(borrowable_log_bytes(&legacy), borrowable_log_bytes(&gather));
        prop_assert_eq!(
            copied(&legacy) - copied(&gather),
            borrowable_log_bytes(&legacy),
            "copy saving must equal the borrowed data/dirlog bytes"
        );
    }
}

/// Deterministic spot check of the copy-bytes ledger: a data-heavy
/// workload must save at least one block-sized copy per data block, and
/// the saving is exact, not approximate.
#[test]
fn gather_copy_saving_is_exact() {
    let mut legacy = Lfs::format(MemDisk::new(DISK_BLOCKS), cfg(false)).expect("format");
    let mut gather = Lfs::format(MemDisk::new(DISK_BLOCKS), cfg(true)).expect("format");
    for fs in [&mut legacy, &mut gather] {
        for i in 0..16 {
            fs.write_file(&format!("/f{i}"), &vec![i as u8; 20_000])
                .expect("write");
        }
        fs.sync().expect("sync");
    }
    assert_eq!(legacy.device().image(), gather.device().image());
    let data_bytes = borrowable_log_bytes(&legacy);
    assert!(data_bytes > 0, "workload wrote no data blocks");
    assert_eq!(copied(&legacy) - copied(&gather), data_bytes);
    // And the gather path still pays for what it genuinely synthesizes.
    assert!(
        copied(&gather) > 0,
        "summary/meta blocks are still rendered"
    );
}

/// A torn gather write must recover exactly like a torn contiguous write:
/// `CrashDisk` journals the assembled gather bytes as one request, a crash
/// tears an arbitrary block subset out of it, and the per-entry summary
/// checksums make roll-forward treat the damage as end-of-log. Every
/// block-granularity cut of a gather-written log must mount, pass fsck,
/// and show each file either before or after its write — never garbage.
#[test]
fn torn_gather_write_recovers_atomically() {
    let config = cfg(true);
    let mut fs = Lfs::format(CrashDisk::new(2048), config).expect("format");
    fs.write_file("/base", b"pre-existing").expect("write");
    fs.sync().expect("sync");
    fs.device_mut().checkpoint_baseline();
    // Multi-block chunks: borrowed data blocks and synthesized metadata
    // travel in the same gather request, so a tear can split them.
    fs.write_file("/fresh", &[7u8; 12_000]).expect("write");
    fs.sync().expect("sync");

    let crash: &CrashDisk = fs.device();
    let n = crash.num_block_cuts();
    assert!(n > 0, "workload produced no tearable writes");
    for cut in 0..=n {
        for seed in [1u64, 0x9e37_79b9_7f4a_7c15] {
            let image = crash.torn_image_after(cut, seed, false).unwrap();
            let mut fs2 = Lfs::mount(image, config)
                .unwrap_or_else(|e| panic!("torn cut {cut}/{n} seed {seed:#x}: mount failed: {e}"));
            let report = fs2.check().unwrap();
            assert!(
                report.is_clean(),
                "torn cut {cut}/{n} seed {seed:#x}: fsck: {:#?}",
                report.errors
            );
            let base = fs2.lookup("/base").expect("base must survive");
            assert_eq!(fs2.read_to_vec(base).unwrap(), b"pre-existing");
            match fs2.lookup("/fresh") {
                Ok(ino) => {
                    let data = fs2.read_to_vec(ino).unwrap();
                    assert!(
                        data == vec![7u8; 12_000] || data.is_empty(),
                        "torn cut {cut}/{n}: half-written content, len {}",
                        data.len()
                    );
                }
                Err(FsError::NotFound) => {}
                Err(e) => panic!("torn cut {cut}/{n}: {e}"),
            }
        }
    }
}
