//! Edge-case tests: limits, errors, deep structures, and public API
//! corners not covered by the main integration suite.

use blockdev::{BlockDevice, MemDisk, WriteKind, BLOCK_SIZE};
use lfs_core::{Lfs, LfsConfig};
use vfs::{FileSystem, FsError, MAX_NAME_LEN};

fn small_fs() -> Lfs<MemDisk> {
    Lfs::format(MemDisk::new(4096), LfsConfig::small()).unwrap()
}

#[test]
fn deep_directory_nesting() {
    let mut fs = small_fs();
    let mut path = String::new();
    for i in 0..40 {
        path.push_str(&format!("/level{i}"));
        fs.mkdir(&path).unwrap();
    }
    let file = format!("{path}/leaf");
    fs.write_file(&file, b"deep").unwrap();
    fs.sync().unwrap();
    let dev = fs.into_device();
    let mut fs2 = Lfs::mount(dev, LfsConfig::small()).unwrap();
    let ino = fs2.lookup(&file).unwrap();
    assert_eq!(fs2.read_to_vec(ino).unwrap(), b"deep");
}

#[test]
fn max_length_names_roundtrip() {
    let mut fs = small_fs();
    let name = "n".repeat(MAX_NAME_LEN);
    let path = format!("/{name}");
    fs.write_file(&path, b"x").unwrap();
    assert!(fs.lookup(&path).is_ok());
    let too_long = format!("/{}", "n".repeat(MAX_NAME_LEN + 1));
    assert!(matches!(fs.create(&too_long), Err(FsError::NameTooLong)));
}

#[test]
fn inode_exhaustion_reports_noinodes() {
    let mut cfg = LfsConfig::small();
    cfg.max_inodes = 20; // Inos 2..19 usable (0 invalid, 1 root).
    let mut fs = Lfs::format(MemDisk::new(2048), cfg).unwrap();
    let mut made = 0;
    let err = loop {
        match fs.create(&format!("/f{made}")) {
            Ok(_) => made += 1,
            Err(e) => break e,
        }
    };
    assert_eq!(made, 18);
    assert!(matches!(err, FsError::NoInodes));
    // Deleting frees a number for reuse.
    fs.unlink("/f0").unwrap();
    fs.create("/again").unwrap();
}

#[test]
fn many_hard_links_count_correctly() {
    let mut fs = small_fs();
    let ino = fs.write_file("/base", b"shared").unwrap();
    for i in 0..50 {
        fs.link("/base", &format!("/l{i}")).unwrap();
    }
    assert_eq!(fs.metadata(ino).unwrap().nlink, 51);
    for i in 0..50 {
        fs.unlink(&format!("/l{i}")).unwrap();
    }
    assert_eq!(fs.metadata(ino).unwrap().nlink, 1);
    assert_eq!(fs.read_to_vec(ino).unwrap(), b"shared");
    fs.sync().unwrap();
    assert!(fs.check().unwrap().is_clean());
}

#[test]
fn mount_rejects_wrong_device_size() {
    let mut fs = small_fs();
    fs.sync().unwrap();
    let image = fs.into_device().into_image();
    // Truncate the image by one segment.
    let shorter = image[..image.len() - 16 * BLOCK_SIZE].to_vec();
    let res = Lfs::mount(MemDisk::from_image(shorter), LfsConfig::small());
    assert!(matches!(res, Err(FsError::Corrupt(_))));
}

#[test]
fn mount_rejects_garbage_superblock() {
    let mut disk = MemDisk::new(2048);
    let junk = [0xa5u8; BLOCK_SIZE];
    disk.write_block(0, &junk, WriteKind::Sync).unwrap();
    assert!(matches!(
        Lfs::mount(disk, LfsConfig::small()),
        Err(FsError::Corrupt(_))
    ));
}

#[test]
fn format_rejects_tiny_device() {
    assert!(matches!(
        Lfs::format(MemDisk::new(80), LfsConfig::small()),
        Err(FsError::InvalidArgument(_))
    ));
}

#[test]
fn drop_caches_preserves_correctness() {
    let mut fs = small_fs();
    let ino = fs.write_file("/f", &[7u8; 20_000]).unwrap();
    fs.sync().unwrap();
    fs.drop_caches();
    assert_eq!(fs.read_to_vec(ino).unwrap(), vec![7u8; 20_000]);
    // Dirty data must survive a cache drop.
    fs.write(ino, 0, &[9u8; 100]).unwrap();
    fs.drop_caches();
    let mut head = [0u8; 100];
    fs.read(ino, 0, &mut head).unwrap();
    assert_eq!(head, [9u8; 100]);
}

#[test]
fn clean_pass_public_api() {
    let mut fs = Lfs::format(MemDisk::new(1024), LfsConfig::small()).unwrap();
    // Dirty some segments.
    for i in 0..10 {
        fs.write_file(&format!("/f{i}"), &[1u8; 16384]).unwrap();
    }
    for i in 0..10 {
        fs.unlink(&format!("/f{i}")).unwrap();
    }
    fs.sync().unwrap();
    let cleaned = fs.clean_pass().unwrap();
    assert!(cleaned > 0, "nothing cleaned");
    assert!(fs.check().unwrap().is_clean());
}

#[test]
fn zero_byte_files_and_empty_dirs() {
    let mut fs = small_fs();
    let ino = fs.create("/empty").unwrap();
    fs.mkdir("/emptydir").unwrap();
    fs.sync().unwrap();
    let mut fs2 = Lfs::mount(fs.into_device(), LfsConfig::small()).unwrap();
    let ino2 = fs2.lookup("/empty").unwrap();
    assert_eq!(ino, ino2);
    assert_eq!(fs2.metadata(ino2).unwrap().size, 0);
    assert!(fs2.readdir("/emptydir").unwrap().is_empty());
    assert!(fs2.read_to_vec(ino2).unwrap().is_empty());
}

#[test]
fn write_at_exact_block_boundaries() {
    let mut fs = small_fs();
    let ino = fs.create("/b").unwrap();
    let bs = BLOCK_SIZE as u64;
    fs.write(ino, bs - 1, &[1, 2, 3]).unwrap(); // Straddles blocks 0/1.
    fs.write(ino, 2 * bs, &[4u8; BLOCK_SIZE]).unwrap(); // Exact block.
    let data = fs.read_to_vec(ino).unwrap();
    assert_eq!(data.len(), 3 * BLOCK_SIZE);
    assert_eq!(data[BLOCK_SIZE - 1], 1);
    assert_eq!(data[BLOCK_SIZE], 2);
    assert_eq!(data[BLOCK_SIZE + 1], 3);
    assert!(data[2 * BLOCK_SIZE..].iter().all(|&b| b == 4));
}

#[test]
fn file_too_large_is_rejected() {
    let mut fs = small_fs();
    let ino = fs.create("/f").unwrap();
    assert!(matches!(
        fs.write(ino, lfs_core::layout::MAX_FILE_SIZE, b"x"),
        Err(FsError::FileTooLarge)
    ));
    assert!(matches!(
        fs.truncate(ino, lfs_core::layout::MAX_FILE_SIZE + 1),
        Err(FsError::FileTooLarge)
    ));
}

#[test]
fn operations_on_missing_paths_fail_cleanly() {
    let mut fs = small_fs();
    assert!(matches!(fs.lookup("/nope"), Err(FsError::NotFound)));
    assert!(matches!(fs.unlink("/nope"), Err(FsError::NotFound)));
    assert!(matches!(fs.readdir("/nope"), Err(FsError::NotFound)));
    assert!(matches!(fs.rename("/nope", "/x"), Err(FsError::NotFound)));
    assert!(matches!(fs.create("/a/b/c"), Err(FsError::NotFound)));
    // File used as directory component.
    fs.write_file("/file", b"x").unwrap();
    assert!(matches!(
        fs.create("/file/under"),
        Err(FsError::NotADirectory)
    ));
}

#[test]
fn statfs_tracks_lifecycle() {
    let mut fs = small_fs();
    let s0 = fs.statfs().unwrap();
    assert_eq!(s0.num_files, 0);
    fs.mkdir("/d").unwrap();
    fs.write_file("/d/f", &[1u8; 10_000]).unwrap();
    let s1 = fs.statfs().unwrap();
    assert_eq!(s1.num_files, 2);
    assert!(s1.live_bytes > s0.live_bytes + 8192);
    fs.unlink("/d/f").unwrap();
    fs.rmdir("/d").unwrap();
    fs.sync().unwrap();
    assert_eq!(fs.statfs().unwrap().num_files, 0);
}

#[test]
fn alternating_checkpoint_regions_survive_corruption_of_one() {
    let mut fs = small_fs();
    fs.write_file("/a", b"1").unwrap();
    fs.sync().unwrap();
    fs.write_file("/b", b"2").unwrap();
    fs.sync().unwrap();
    let mut image = fs.into_device();
    // Corrupt checkpoint region A entirely.
    let junk = vec![0xffu8; BLOCK_SIZE];
    for b in 0..32u64 {
        image.write_blocks(1 + b, &junk, WriteKind::Sync).unwrap();
    }
    let mut fs2 = Lfs::mount(image, LfsConfig::small()).unwrap();
    // Both files recovered from region B (or roll-forward).
    assert!(fs2.lookup("/a").is_ok());
    assert!(fs2.lookup("/b").is_ok());
}

#[test]
fn readdir_root_after_heavy_churn() {
    let mut fs = small_fs();
    for round in 0..5 {
        for i in 0..60 {
            fs.write_file(&format!("/r{round}-{i}"), &[round as u8; 512])
                .unwrap();
        }
        for i in (0..60).step_by(2) {
            fs.unlink(&format!("/r{round}-{i}")).unwrap();
        }
    }
    let listing = fs.readdir("/").unwrap();
    assert_eq!(listing.len(), 5 * 30);
    fs.sync().unwrap();
    assert!(fs.check().unwrap().is_clean());
}

#[test]
fn sparse_scavenging_reads_less_and_stays_correct() {
    // The §3.4 "read just the live blocks" option, which Sprite never
    // tried: at low utilization the cleaner should read far less than
    // whole segments, with identical semantics.
    let run = |threshold: f64| {
        let mut cfg = LfsConfig::small();
        cfg.read_live_threshold = threshold;
        let mut fs = Lfs::format(MemDisk::new(1024), cfg).unwrap();
        let mut digests = Vec::new();
        for i in 0..20 {
            fs.write_file(&format!("/keep{i}"), &vec![i as u8; 4096])
                .unwrap();
        }
        let hot = fs.create("/hot").unwrap();
        for round in 0..120u32 {
            let off = (round % 6) as u64 * 32 * 1024;
            fs.write(hot, off, &vec![round as u8; 32 * 1024]).unwrap();
        }
        fs.sync().unwrap();
        for i in 0..20 {
            let ino = fs.lookup(&format!("/keep{i}")).unwrap();
            digests.push(fs.read_to_vec(ino).unwrap());
        }
        let report = fs.check().unwrap();
        assert!(report.is_clean(), "thr {threshold}: {:#?}", report.errors);
        (
            fs.stats().cleaner.bytes_read,
            fs.stats().cleaner.segments_cleaned,
            digests,
        )
    };
    let (full_read, full_cleaned, d1) = run(0.0);
    let (sparse_read, sparse_cleaned, d2) = run(0.9);
    assert_eq!(d1, d2, "file contents diverged");
    assert!(full_cleaned > 0 && sparse_cleaned > 0);
    // Normalise per segment cleaned; the sparse cleaner must read less.
    let full_per = full_read as f64 / full_cleaned as f64;
    let sparse_per = sparse_read as f64 / sparse_cleaned as f64;
    assert!(
        sparse_per < full_per,
        "sparse {sparse_per:.0} B/seg vs full {full_per:.0} B/seg"
    );
}

#[test]
fn per_block_mtimes_keep_cold_segments_old() {
    // The §3.6 refinement the paper planned: Sprite kept one mtime per
    // file, so touching byte 0 of a big file made ALL its segments look
    // young. With per-block times, only the segment receiving the new
    // copy of block 0 gets younger.
    let mut fs = small_fs();
    let ino = fs.create("/big").unwrap();
    fs.write(ino, 0, &vec![1u8; 256 * 1024]).unwrap(); // 64 blocks.
    fs.sync().unwrap();
    let ages_before = fs.segment_ages();
    let cold_segs: Vec<usize> = ages_before
        .iter()
        .enumerate()
        .filter(|(_, &a)| a > 0)
        .map(|(i, _)| i)
        .collect();
    assert!(cold_segs.len() >= 4, "file should span several segments");

    // Advance time, then touch only the first block, many times.
    fs.advance_clock(1_000_000);
    for _ in 0..5 {
        fs.write(ino, 0, &[9u8; 4096]).unwrap();
        fs.sync().unwrap();
    }
    let ages_after = fs.segment_ages();
    // The segments still holding the untouched cold blocks must keep
    // their ORIGINAL last_write; only segments written after the clock
    // jump may be young.
    let unchanged = cold_segs
        .iter()
        .filter(|&&i| ages_after[i] == ages_before[i])
        .count();
    assert!(
        unchanged >= cold_segs.len() - 2,
        "cold segments aged artificially: {unchanged}/{} kept their age",
        cold_segs.len()
    );
    // And the file's mtime DID advance (per-file time would have tainted
    // every segment).
    assert!(fs.metadata(ino).unwrap().mtime > 1_000_000);
}
